//! # ASAP — Prefetched Address Translation
//!
//! A full-system Rust reproduction of *"Prefetched Address Translation"*
//! (Margaritov, Ustiugov, Bugnion, Grot — MICRO-52, 2019, DOI
//! [10.1145/3352460.3358294](https://doi.org/10.1145/3352460.3358294)).
//!
//! ASAP cuts page-walk latency by prefetching the deep levels (PL1/PL2) of
//! the radix page table with pure base-plus-offset arithmetic, enabled by
//! an OS policy that keeps those levels physically contiguous and sorted by
//! virtual address. The conventional walk still runs and validates every
//! entry, so the mechanism changes no architectural behaviour.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `asap-types` | addresses, pages, PT levels |
//! | [`cache`] | `asap-cache` | caches, MSHRs, hierarchy timing |
//! | [`pt`] | `asap-pt` | x86-64 radix page table + walker |
//! | [`alloc`] | `asap-alloc` | buddy/scatter allocators, reservations |
//! | [`tlb`] | `asap-tlb` | TLBs, page-walk caches, clustered TLB |
//! | [`os`] | `asap-os` | VMAs, demand paging, ASAP OS policy |
//! | [`virt`] | `asap-virt` | nested (2D) translation |
//! | [`core`] | `asap-core` | **the contribution**: range registers, prefetcher, MMUs |
//! | [`contenders`] | `asap-contenders` | competitor backends: Victima, Revelator |
//! | [`workloads`] | `asap-workloads` | the seven calibrated workloads |
//! | [`sim`] | `asap-sim` | scenario drivers, reports |
//!
//! # Quickstart
//!
//! ```
//! use asap::core::{AsapHwConfig, Mmu, MmuConfig};
//! use asap::os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
//! use asap::types::{Asid, ByteSize};
//!
//! // An ASAP-enabled process: the OS reserves sorted PL1/PL2 regions.
//! let mut process = Process::new(ProcessConfig::new(Asid(1))
//!     .with_heap(ByteSize::mib(64))
//!     .with_asap(AsapOsConfig::pl1_and_pl2()));
//! let va = process.vma_of_kind(VmaKind::Heap).unwrap().start();
//! process.touch(va).unwrap();
//!
//! // An ASAP-enabled MMU: range registers + prefetch on TLB miss.
//! let mut mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
//! mmu.load_context(process.vma_descriptors());
//! let out = mmu.translate(process.mem(), process.page_table(),
//!                         process.asid(), va, None);
//! assert!(out.phys.is_some());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use asap_alloc as alloc;
pub use asap_cache as cache;
pub use asap_contenders as contenders;
pub use asap_core as core;
pub use asap_os as os;
pub use asap_pt as pt;
pub use asap_sim as sim;
pub use asap_tlb as tlb;
pub use asap_types as types;
pub use asap_virt as virt;
pub use asap_workloads as workloads;
