//! Virtualized key-value store: the 24-access 2D walk and per-dimension ASAP.
//!
//! Boots a VM running the redis workload, shows one full nested walk
//! (Fig. 7), then sweeps the paper's Fig. 10 prefetch configurations.
//!
//! Run with: `cargo run --release --example virtualized_kv`

use asap::core::NestedAsapConfig;
use asap::os::{AsapOsConfig, VmaKind};
use asap::sim::{RunSpec, SimConfig, Table};
use asap::types::Asid;
use asap::virt::{Dim, EptConfig, VirtualMachine};
use asap::workloads::WorkloadSpec;

fn main() {
    // Part 1: anatomy of one 2D walk.
    let redis = WorkloadSpec::redis();
    let mut vm = VirtualMachine::new(
        redis
            .process_config(Asid(1), AsapOsConfig::pl1_and_pl2(), 7)
            .with_compact_phys(),
        EptConfig::default().host_pl1_and_pl2(),
    );
    let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
    vm.touch(va).unwrap();
    let trace = vm.nested_walk(va);
    println!("one 2D walk for {va}: {} accesses", trace.steps.len());
    for (i, step) in trace.steps.iter().enumerate() {
        let dim = match step.dim {
            Dim::Guest => "guest",
            Dim::Host => "host ",
        };
        let for_level = step
            .for_guest_level
            .map_or("data".to_string(), |l| format!("g{l}"));
        println!(
            "  {:2}. [{dim}] {} (serving {for_level}) line {:#x}",
            i + 1,
            step.level,
            step.host_entry_addr.cache_line().raw(),
        );
    }

    // Part 2: the Fig. 10 sweep for redis.
    let sim = SimConfig::default();
    let configs = [
        ("Baseline", NestedAsapConfig::off()),
        ("P1g", NestedAsapConfig::p1g()),
        ("P1g+P2g", NestedAsapConfig::p1g_p2g()),
        ("P1g+P1h", NestedAsapConfig::p1g_p1h()),
        ("All four", NestedAsapConfig::all()),
    ];
    let mut table = Table::new(
        "redis, virtualized: average 2D-walk latency",
        vec!["config", "cycles", "reduction"],
    );
    let mut base = 0.0;
    for (name, asap) in configs {
        let r = RunSpec::new(redis.clone())
            .virt()
            .with_nested_asap(asap)
            .with_sim(sim)
            .run()
            .unwrap();
        if name == "Baseline" {
            base = r.avg_walk_latency();
        }
        table.row(vec![
            name.into(),
            format!("{:.1}", r.avg_walk_latency()),
            format!("{:.0}%", (1.0 - r.avg_walk_latency() / base) * 100.0),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "Guest-only prefetching helps modestly — the walk spends most of its\n\
         time in the host dimension (paper §5.2); prefetching both dimensions\n\
         unlocks the full gain."
    );
}
