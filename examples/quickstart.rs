//! Quickstart: watch one TLB miss become one overlapped walk.
//!
//! Builds an ASAP-enabled process, walks a cold address with and without
//! prefetching, and prints the per-level timing — the paper's Fig. 4 in
//! miniature.
//!
//! Run with: `cargo run --release --example quickstart`

use asap::core::{AsapHwConfig, Mmu, MmuConfig};
use asap::os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
use asap::types::{Asid, ByteSize, VirtAddr};

fn main() {
    // One process, ASAP enabled: the OS reserves contiguous, sorted
    // physical regions for the PL1 and PL2 page-table levels of each VMA.
    let mut process = Process::new(
        ProcessConfig::new(Asid(1))
            .with_heap(ByteSize::mib(256))
            .with_asap(AsapOsConfig::pl1_and_pl2())
            .with_seed(7),
    );
    let heap = process.vma_of_kind(VmaKind::Heap).expect("heap exists");
    println!("process has {} VMAs; heap = {heap}", process.vmas().len());

    // Touch a few pages (demand paging builds the page table).
    let vas: Vec<VirtAddr> = (0..4u64)
        .map(|i| VirtAddr::new(heap.start().raw() + i * (2 << 20)).unwrap())
        .collect();
    for va in &vas {
        process.touch(*va).unwrap();
    }
    println!(
        "OS descriptors exposed to hardware: {}",
        process.vma_descriptors().len()
    );

    // Two identical machines, one with ASAP prefetching.
    let mut baseline = Mmu::new(MmuConfig::default());
    let mut asap = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
    asap.load_context(process.vma_descriptors());

    for (name, mmu) in [("baseline", &mut baseline), ("ASAP P1+P2", &mut asap)] {
        let out = mmu.translate(
            process.mem(),
            process.page_table(),
            process.asid(),
            vas[0],
            None,
        );
        let walk = out.walk.expect("cold access walks");
        println!("\n{name}: cold walk took {} cycles", walk.latency);
        for (level, src) in &walk.sources {
            println!("  {level} served by {src}");
        }
        if walk.prefetches_issued > 0 {
            println!("  ({} prefetches issued)", walk.prefetches_issued);
        }
    }
    println!(
        "\nThe PL4/PL3 fetches serialize either way; with ASAP the PL2/PL1\n\
         lines were prefetched at walk start and wait in the L1-D — the\n\
         walk exposes roughly a single memory access (paper §3.1)."
    );
}
