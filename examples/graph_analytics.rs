//! Graph analytics: where ASAP earns its keep.
//!
//! Runs the bfs and pagerank workloads (60 GB Twitter-like graphs) through
//! the native and virtualized machines and prints the walk-latency picture
//! plus the Fig. 9-style serving breakdown for the leaf level.
//!
//! Run with: `cargo run --release --example graph_analytics`

use asap::core::{AsapHwConfig, NestedAsapConfig};
use asap::sim::{RunSpec, SimConfig, Table};
use asap::types::PtLevel;
use asap::workloads::WorkloadSpec;

fn main() {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "graph analytics: average page-walk latency (cycles)",
        vec![
            "workload",
            "native base",
            "native ASAP",
            "virt base",
            "virt ASAP",
        ],
    );
    for w in [WorkloadSpec::bfs(), WorkloadSpec::pagerank()] {
        let nb = RunSpec::new(w.clone()).with_sim(sim).run().unwrap();
        let na = RunSpec::new(w.clone())
            .with_asap(AsapHwConfig::p1_p2())
            .with_sim(sim)
            .run()
            .unwrap();
        let vb = RunSpec::new(w.clone()).virt().with_sim(sim).run().unwrap();
        let va = RunSpec::new(w.clone())
            .virt()
            .with_nested_asap(NestedAsapConfig::all())
            .with_sim(sim)
            .run()
            .unwrap();
        table.row(vec![
            w.name.into(),
            format!("{:.1}", nb.avg_walk_latency()),
            format!(
                "{:.1} (-{:.0}%)",
                na.avg_walk_latency(),
                na.reduction_vs(&nb) * 100.0
            ),
            format!("{:.1}", vb.avg_walk_latency()),
            format!(
                "{:.1} (-{:.0}%)",
                va.avg_walk_latency(),
                va.reduction_vs(&vb) * 100.0
            ),
        ]);
        // Fig. 9-style leaf-level breakdown for the native baseline.
        let f = nb.served.fractions(PtLevel::Pl1);
        println!(
            "{}: PL1 requests served by PWC {:.0}% | L1 {:.0}% | L2 {:.0}% | LLC {:.0}% | Mem {:.0}%",
            w.name,
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0,
            f[4] * 100.0
        );
    }
    println!("\n{}", table.render());
    println!(
        "Pointer-chasing graph traversals defeat the TLB; their PL1 entries\n\
         regularly come from LLC or memory, which is exactly the latency the\n\
         ASAP prefetches overlap."
    );
}
