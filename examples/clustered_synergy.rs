//! §5.4.1: the clustered TLB and ASAP are complementary.
//!
//! The clustered TLB eliminates *short* walks (its coalescing targets pages
//! whose PT lines were cache-warm anyway); ASAP shortens the *long* ones.
//! Together their savings add (the paper's Fig. 11).
//!
//! Run with: `cargo run --release --example clustered_synergy`

use asap::core::AsapHwConfig;
use asap::sim::{RunSpec, SimConfig, Table};
use asap::workloads::WorkloadSpec;

fn main() {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "reduction in total page-walk cycles vs baseline (native isolation)",
        vec![
            "workload",
            "Clustered TLB",
            "ASAP P1+P2",
            "Clustered + ASAP",
        ],
    );
    for w in [
        WorkloadSpec::mcf(),
        WorkloadSpec::canneal(),
        WorkloadSpec::mc80(),
    ] {
        let base = RunSpec::new(w.clone()).with_sim(sim).run().unwrap();
        let clustered = RunSpec::new(w.clone())
            .with_clustered_tlb()
            .with_sim(sim)
            .run()
            .unwrap();
        let asap = RunSpec::new(w.clone())
            .with_asap(AsapHwConfig::p1_p2())
            .with_sim(sim)
            .run()
            .unwrap();
        let both = RunSpec::new(w.clone())
            .with_clustered_tlb()
            .with_asap(AsapHwConfig::p1_p2())
            .with_sim(sim)
            .run()
            .unwrap();
        let pct =
            |r: &asap::sim::RunResult| format!("{:.1}%", r.walk_cycles_reduction_vs(&base) * 100.0);
        table.row(vec![w.name.into(), pct(&clustered), pct(&asap), pct(&both)]);
    }
    println!("{}", table.render());
    println!(
        "mcf's allocator happens to produce much physical contiguity, so\n\
         clustering shines there; memcached's does not, so ASAP carries the\n\
         load — and the combination beats either alone (paper Fig. 11)."
    );
}
