//! The §3.5 extension: five-level page tables.
//!
//! "With the advent of five-level page tables, ASAP can be naturally
//! extended" — the extra root level deepens every walk; ASAP's direct
//! indexing into PL1/PL2 is unchanged, so it claws the added latency back.
//!
//! Run with: `cargo run --release --example five_level_future`

use asap::core::AsapHwConfig;
use asap::sim::{RunSpec, SimConfig, Table};
use asap::workloads::WorkloadSpec;

fn main() {
    let sim = SimConfig::default();
    let w = WorkloadSpec::mc400();
    let mut table = Table::new(
        "memcached-400GB, native isolation: 4-level vs 5-level paging",
        vec!["config", "avg walk latency (cycles)"],
    );
    let runs = [
        ("4-level baseline", RunSpec::new(w.clone()).with_sim(sim)),
        (
            "4-level ASAP P1+P2",
            RunSpec::new(w.clone())
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        ),
        (
            "5-level baseline",
            RunSpec::new(w.clone()).five_level().with_sim(sim),
        ),
        (
            "5-level ASAP P1+P2",
            RunSpec::new(w)
                .five_level()
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        ),
    ];
    for (name, spec) in runs {
        let r = spec.run().unwrap();
        table.row(vec![name.into(), format!("{:.1}", r.avg_walk_latency())]);
    }
    println!("{}", table.render());
    println!(
        "The fifth level adds a (usually PWC-covered) step to every walk;\n\
         ASAP's prefetch arithmetic is oblivious to tree depth, so its\n\
         absolute gain carries over unchanged (paper §3.5)."
    );
}
