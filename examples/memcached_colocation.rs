//! The paper's headline scenario: memcached under SMT colocation.
//!
//! Reproduces one column of Fig. 8: baseline vs P1 vs P1+P2 walk latency
//! for memcached-80GB, in isolation and with a memory-intensive co-runner.
//!
//! Run with: `cargo run --release --example memcached_colocation`

use asap::core::AsapHwConfig;
use asap::sim::{RunSpec, SimConfig, Table};
use asap::workloads::WorkloadSpec;

fn main() {
    let sim = SimConfig::default();
    let mut table = Table::new(
        "memcached-80GB: average page-walk latency (cycles)",
        vec!["config", "isolation", "SMT colocation"],
    );
    let configs = [
        ("Baseline", AsapHwConfig::off()),
        ("P1", AsapHwConfig::p1()),
        ("P1+P2", AsapHwConfig::p1_p2()),
    ];
    let mut baselines = (0.0, 0.0);
    for (name, asap) in configs {
        let iso = RunSpec::new(WorkloadSpec::mc80())
            .with_asap(asap.clone())
            .with_sim(sim)
            .run()
            .unwrap();
        let coloc = RunSpec::new(WorkloadSpec::mc80())
            .with_asap(asap)
            .colocated()
            .with_sim(sim)
            .run()
            .unwrap();
        if name == "Baseline" {
            baselines = (iso.avg_walk_latency(), coloc.avg_walk_latency());
        }
        let pct = |x: f64, base: f64| {
            if base > 0.0 && x < base {
                format!(" (-{:.0}%)", (1.0 - x / base) * 100.0)
            } else {
                String::new()
            }
        };
        table.row(vec![
            name.into(),
            format!(
                "{:.1}{}",
                iso.avg_walk_latency(),
                pct(iso.avg_walk_latency(), baselines.0)
            ),
            format!(
                "{:.1}{}",
                coloc.avg_walk_latency(),
                pct(coloc.avg_walk_latency(), baselines.1)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "ASAP's gain grows under colocation: the co-runner pushes page-table\n\
         lines out of the caches, so there is more long-latency work for the\n\
         prefetches to overlap (paper §5.1.2)."
    );
}
