#!/usr/bin/env bash
# CI for the ASAP reproduction. Run from the repo root:
#
#   ./ci.sh              # full pass: fmt, clippy, release build, tests
#   ASAP_QUICK=1 ./ci.sh # same gates, reduced simulation windows
#
# The last two steps are the repository's tier-1 verification command
# (`cargo build --release && cargo test -q`); the script adds the style
# and lint gates in front so a green ./ci.sh implies a clean PR.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo build --release
run cargo test -q
run cargo doc --no-deps --quiet

echo
echo "ci.sh: all gates passed"
