#!/usr/bin/env bash
# CI for the ASAP reproduction. Run from the repo root:
#
#   ./ci.sh              # full pass: fmt, clippy, release build, tests,
#                        # doc, end-to-end smoke scenarios via the asap CLI
#   ./ci.sh --quick      # only the CLI dispatch + smoke scenarios
#                        # (fast driver-regression check, ~seconds)
#   ASAP_QUICK=1 ./ci.sh # full gates, reduced simulation windows
#
# The build+test steps are the repository's tier-1 verification command
# (`cargo build --release && cargo test -q`); the script adds the style
# and lint gates in front and the end-to-end smoke pass behind, so a
# green ./ci.sh implies a clean PR.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

ASAP="cargo run --release -q -p asap-bench --bin asap --"

lint_gate() {
    # Invariant gate: the ratcheted static-analysis pass (crates/lint).
    # Exceeding a committed per-rule budget fails, and so does unclaimed
    # headroom below it — fixes must ratchet lint-baseline.toml down.
    run cargo run --release -q -p asap-lint
    # The gate diffs against committed artifacts; losing either from git
    # would silently weaken the ratchet.
    if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        for f in lint-baseline.toml METRICS.json; do
            if ! git ls-files --error-unmatch "$f" >/dev/null 2>&1; then
                echo "$f must be git-tracked (the asap-lint gate diffs against it)"
                exit 1
            fi
        done
    fi
}

smoke() {
    # The whole experiment surface is one CLI now; sanity-check its
    # dispatch first (`list` must resolve the registry and name the smoke
    # scenarios) so a broken binary fails loudly before the long part.
    echo
    echo "==> asap list"
    list_output="$($ASAP list)"
    echo "$list_output"
    echo "$list_output" | grep -q "^smoke " \
        || { echo "asap list does not name the smoke scenario"; exit 1; }
    # The multi-core smoke scenario must stay in the drift-gated set: its
    # per-core + aggregate rows in BENCH_results.json are what pin the
    # shared-fabric timing model.
    echo "$list_output" | grep -q "^smp_smoke " \
        || { echo "asap list does not name the smp_smoke scenario"; exit 1; }
    # Likewise the NUMA smoke scenario: its rows pin the split-fabric
    # interconnect-hop model (window homing, per-core node assignment).
    echo "$list_output" | grep -q "^numa_smoke " \
        || { echo "asap list does not name the numa_smoke scenario"; exit 1; }
    # The full-tier results file is scratch output, never a baseline: it
    # must stay git-ignored and untracked (PR 2 declared it ignored, PR 7
    # enforces it).
    if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        if git ls-files --error-unmatch BENCH_results_full.json >/dev/null 2>&1; then
            echo "BENCH_results_full.json is tracked; it must stay git-ignored scratch"
            exit 1
        fi
    fi
    # The default result-cache directory must stay git-ignored scratch:
    # cached simulation payloads are host artifacts, and a tracked cache
    # would let stale results masquerade as a committed baseline.
    if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
        if ! git check-ignore -q target/asap-cache; then
            echo "target/asap-cache is not git-ignored; the result cache must stay untracked scratch"
            exit 1
        fi
    fi
    # The registry's smoke scenarios through the real generic driver loop
    # — catches driver regressions unit tests miss. Deterministic: it
    # regenerates BENCH_results.json, and the gate below fails on any
    # drift from the committed copy (the perf-trajectory check). A PR
    # that intentionally changes behaviour commits the regenerated file.
    #
    # The pass runs against a FRESH result-cache directory, so the drift
    # gate always exercises the real simulator — a pre-warmed cache must
    # never be able to mask a behaviour regression.
    #
    # The run is also a perf smoke: the batched hot path finishes the
    # smoke set in well under a second, so a pass that blows through the
    # (deliberately generous) ceiling means the inner loop regressed by
    # an order of magnitude, not that the machine was busy.
    cache_tmp="$(mktemp -d -t asap-cache.XXXXXX)"
    trap 'rm -rf "$cache_tmp"' EXIT
    smoke_t0=$(date +%s)
    run $ASAP smoke --cache-dir "$cache_tmp" --cache-stats
    smoke_elapsed=$(( $(date +%s) - smoke_t0 ))
    smoke_ceiling="${ASAP_SMOKE_CEILING_S:-30}"
    if (( smoke_elapsed > smoke_ceiling )); then
        echo "perf smoke FAILED: asap smoke took ${smoke_elapsed}s (ceiling ${smoke_ceiling}s)"
        exit 1
    fi
    echo "perf smoke: asap smoke finished in ${smoke_elapsed}s (ceiling ${smoke_ceiling}s)"
    # Result-cache consistency gate: a second smoke pass over the cache
    # the first one just populated must serve EVERY run from the store
    # (100% hit rate, nothing new written) and still reproduce
    # BENCH_results.json byte-identically — the warm re-run is free AND
    # indistinguishable from simulating.
    warm_json="$(mktemp -t asap-warm.XXXXXX.json)"
    echo
    echo "==> $ASAP smoke --json $warm_json --cache-dir $cache_tmp --cache-stats (warm)"
    warm_output="$($ASAP smoke --json "$warm_json" --cache-dir "$cache_tmp" --cache-stats)"
    echo "$warm_output" | tail -n 1
    echo "$warm_output" | grep -q " 0 misses (100% hit rate), 0 bytes stored" \
        || { echo "cache gate FAILED: warm smoke pass was not served 100% from the cache"; exit 1; }
    cmp -s BENCH_results.json "$warm_json" \
        || { echo "cache gate FAILED: warm smoke results differ from the cold pass"; exit 1; }
    rm -f "$warm_json"
    echo "cache gate: warm smoke pass served 100% from the cache, byte-identical results"
    # Compare against HEAD (not the index) so staged-but-uncommitted drift
    # still fails the gate. `asap smoke` runs with telemetry disabled
    # (the CLI rejects --trace/--metrics/--profile on smoke), so this is
    # also the zero-observer-effect assertion: the telemetry layer being
    # compiled in must reproduce BENCH_results.json byte-identically.
    if git rev-parse --is-inside-work-tree >/dev/null 2>&1 \
        && git cat-file -e HEAD:BENCH_results.json 2>/dev/null; then
        run git diff --exit-code HEAD -- BENCH_results.json
        echo "observer-effect gate: telemetry-off smoke reproduced BENCH_results.json byte-identically"
    else
        echo
        echo "WARNING: trajectory check skipped (BENCH_results.json not in HEAD)"
    fi
    # Trace-schema round-trip gate: a traced run must emit Chrome
    # trace-event JSON that parses under the canonical grammar and
    # re-emits byte-identically (`asap trace-check`), so the --trace
    # output Perfetto consumes can never silently drift from the parser.
    trace_tmp="$(mktemp -t asap-trace.XXXXXX.json)"
    trap 'rm -f "$trace_tmp"; rm -rf "$cache_tmp"' EXIT
    run $ASAP run numa_smoke --trace "$trace_tmp"
    run $ASAP trace-check "$trace_tmp"
    rm -f "$trace_tmp"
}

if [[ "${1:-}" == "--quick" ]]; then
    lint_gate
    smoke
    echo
    echo "ci.sh --quick: lint gate + CLI dispatch + smoke scenarios passed"
    exit 0
fi

run cargo fmt --check
# unwrap_used/expect_used are warn-level workspace lints (editor signal);
# they are allowed here because -D warnings would otherwise hard-fail on
# the whole legacy count at once — the asap-lint panic-freedom ratchet is
# the hard gate that only lets that count fall.
run cargo clippy --workspace --all-targets -- -D warnings \
    -A clippy::unwrap-used -A clippy::expect-used
run cargo build --release
run cargo test -q
run cargo doc --no-deps --quiet
lint_gate
# The committed metric-name manifest must match a live regeneration from
# every backend (the asap-lint metric-names rule checks code <-> manifest
# statically; this checks manifest <-> runtime).
run $ASAP metrics-manifest --check
smoke

# Scale-out gate: the quick-tier smp_scaling sweep covers every backend
# at 1..=64 cores. The event-queue scheduler keeps arbitration O(log n),
# so the whole sweep — 32- and 64-core rows included — must fit a fixed
# wall-clock ceiling; blowing it means scheduling cost started growing
# with core count again (the `components/arbitration` criterion group
# has the per-epoch microbench view of the same property). No --json:
# quick-tier numbers must never touch the committed smoke baseline.
scale_t0=$(date +%s)
run $ASAP run smp_scaling --quick
scale_elapsed=$(( $(date +%s) - scale_t0 ))
scale_ceiling="${ASAP_SMP_SCALING_CEILING_S:-600}"
if (( scale_elapsed > scale_ceiling )); then
    echo "scale-out gate FAILED: smp_scaling --quick took ${scale_elapsed}s (ceiling ${scale_ceiling}s)"
    exit 1
fi
echo "scale-out gate: smp_scaling --quick finished in ${scale_elapsed}s (ceiling ${scale_ceiling}s)"

echo
echo "ci.sh: all gates passed"
