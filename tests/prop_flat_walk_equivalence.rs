//! The differential harness gating the flat-mirror hot path: for ANY table
//! layout, the arena-backed [`FlatMirror`] and the authoritative radix
//! [`Walker`] must agree on every probe — same translation (pa, level via
//! page size, pte flags) and the same step-by-step walk trace (levels,
//! entry addresses, observed entries). Only with this pinned is it safe to
//! retire the radix descent from the simulator inner loop.

use asap::os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
use asap::pt::{
    BumpNodeAllocator, FlatMirror, PageTable, PteFlags, RadixSource, SimPhysMem, WalkSource, Walker,
};
use asap::types::{Asid, ByteSize, PageSize, PagingMode, PhysFrameNum, VirtAddr};
use asap::virt::{Ept, EptConfig, VirtualMachine};
use proptest::prelude::*;

/// One mapping request, built from per-level radix indices so arbitrary
/// fragmentation (shared vs fresh node chains) arises naturally.
#[derive(Debug, Clone, Copy)]
struct MapReq {
    pl4: u64,
    pl3: u64,
    pl2: u64,
    pl1: u64,
    size: PageSize,
}

impl MapReq {
    fn va(&self) -> VirtAddr {
        let (pl2, pl1) = match self.size {
            PageSize::Size4K => (self.pl2, self.pl1),
            PageSize::Size2M => (self.pl2, 0),
            PageSize::Size1G => (0, 0),
        };
        let raw = (((self.pl4 << 9 | self.pl3) << 9 | pl2) << 9 | pl1) << 12;
        VirtAddr::new(raw).unwrap()
    }
}

fn map_req() -> impl Strategy<Value = MapReq> {
    ((0u64..4, 0u64..4), (0u64..4, 0u64..8), 0u32..12).prop_map(|((pl4, pl3), (pl2, pl1), pick)| {
        // 4K-heavy mix: 8/12 small, 3/12 2M, 1/12 1G.
        let size = match pick {
            0..=7 => PageSize::Size4K,
            8..=10 => PageSize::Size2M,
            _ => PageSize::Size1G,
        };
        MapReq {
            pl4,
            pl3,
            pl2,
            pl1,
            size,
        }
    })
}

/// Probe addresses derived from a mapped VA: the page itself, interior
/// offsets, unmapped cousins at each level, and a far out-of-range address.
fn probes_for(va: VirtAddr) -> Vec<VirtAddr> {
    let mut out = vec![va];
    for delta in [0xabcu64, 0x1000, 0x3f_f000, 0x20_0000] {
        if let Ok(p) = VirtAddr::new(va.raw() ^ delta) {
            out.push(p);
        }
    }
    out.push(VirtAddr::new(1 << 50).unwrap_or(va));
    out
}

/// Asserts flat == radix on translation AND full walk trace for `va`.
fn assert_equivalent(
    mem: &SimPhysMem,
    pt: &PageTable,
    mirror: &FlatMirror,
    va: VirtAddr,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        mirror.translate(va),
        pt.translate(mem, va),
        "translate diverged at {}",
        va
    );
    let radix = RadixSource { mem, pt };
    let flat_walk = mirror.walk_fixed(va);
    let radix_walk = radix.walk_fixed(va);
    prop_assert_eq!(flat_walk, radix_walk, "walk trace diverged at {}", va);
    // The fixed walk itself must agree with the legacy Vec-backed walker.
    let legacy = Walker::walk(mem, pt, va);
    prop_assert_eq!(
        flat_walk.to_trace(),
        legacy,
        "fixed/legacy diverged at {}",
        va
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary mixes of 4K/2M/1G mappings with arbitrary sharing of node
    /// chains, under both paging modes, with a subset unmapped again
    /// (post-unmap holes): per-VA incremental sync keeps the mirror exact.
    #[test]
    fn flat_matches_radix_for_arbitrary_layouts(
        reqs in proptest::collection::vec(map_req(), 1..24),
        unmap_mask in proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 24),
        five_level in (0u32..2).prop_map(|b| b == 1),
    ) {
        let mode = if five_level { PagingMode::FiveLevel } else { PagingMode::FourLevel };
        let mut mem = SimPhysMem::new();
        let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x10_000));
        let mut pt = PageTable::new(mode, &mut mem, &mut alloc);
        let mut mirror = FlatMirror::new(&pt);
        let mut mapped = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            let va = req.va();
            // Frames aligned to the page size; conflicts with earlier large
            // pages are part of the generated layout space — a failed map
            // must leave the mirror coherent too.
            let frame = PhysFrameNum::new((0x100_000 + i as u64 * 0x4_0000) & !(req.size.base_pages() - 1));
            let _ = pt.map(&mut mem, &mut alloc, va, frame, req.size, PteFlags::user_data());
            mirror.sync_va(&mem, &pt, va);
            mapped.push(va);
        }
        for (va, unmap) in mapped.iter().zip(&unmap_mask) {
            if *unmap {
                let _ = pt.unmap(&mut mem, *va);
                mirror.sync_va(&mem, &pt, *va);
            }
        }
        for va in &mapped {
            for probe in probes_for(*va) {
                assert_equivalent(&mem, &pt, &mirror, probe)?;
            }
        }
        // A wholesale rebuild reaches the same mirror state.
        let mut rebuilt = FlatMirror::new(&pt);
        rebuilt.rebuild(&mem, &pt);
        for va in &mapped {
            assert_equivalent(&mem, &pt, &rebuilt, *va)?;
        }
    }

    /// Real demand-paged layouts: a process touching arbitrary heap pages
    /// (buddy-scattered node placement, ASAP on and off) mirrors exactly.
    #[test]
    fn flat_matches_radix_for_process_layouts(
        offsets in proptest::collection::btree_set(0u64..16_384, 1..32),
        seed in 0u64..500,
        asap in (0u32..2).prop_map(|b| b == 1),
    ) {
        let asap_cfg = if asap { AsapOsConfig::pl1_and_pl2() } else { AsapOsConfig::disabled() };
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(128))
                .with_asap(asap_cfg)
                .with_seed(seed),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let vas: Vec<VirtAddr> = offsets
            .iter()
            .map(|o| VirtAddr::new(heap.start().raw() + o * 4096).unwrap())
            .collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let mut mirror = FlatMirror::new(p.page_table());
        mirror.rebuild(p.mem(), p.page_table());
        for va in &vas {
            for probe in probes_for(*va) {
                assert_equivalent(p.mem(), p.page_table(), &mirror, probe)?;
            }
        }
    }

    /// Virt nested mode: the host-dimension (EPT) tables — identity-backed,
    /// 4K or 2M host pages — mirror exactly for every gPA the guest's node
    /// chain and data pages produce.
    #[test]
    fn flat_matches_radix_for_nested_layouts(
        offsets in proptest::collection::btree_set(0u64..4_096, 1..16),
        seed in 0u64..500,
        host_2m in (0u32..2).prop_map(|b| b == 1),
    ) {
        let ept_cfg = if host_2m { EptConfig::default().host_2m_pages() } else { EptConfig::default() };
        let mut vm = VirtualMachine::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(64))
                .with_compact_phys()
                .with_seed(seed),
            ept_cfg,
        );
        let heap = *vm.guest().vma_of_kind(VmaKind::Heap).unwrap();
        let vas: Vec<VirtAddr> = offsets
            .iter()
            .map(|o| VirtAddr::new(heap.start().raw() + o * 4096).unwrap())
            .collect();
        for va in &vas {
            vm.touch(*va).unwrap();
        }
        let mut mirror = FlatMirror::new(vm.ept().table());
        mirror.rebuild(vm.ept().mem(), vm.ept().table());
        for va in &vas {
            let gpa = vm.guest().translate(*va).unwrap().phys_addr(*va);
            for probe in probes_for(Ept::gpa_as_va(gpa)) {
                assert_equivalent(vm.ept().mem(), vm.ept().table(), &mirror, probe)?;
            }
            // Every guest PT node address is itself a walked gPA.
            let trace = vm.guest().walk(*va);
            for step in &trace.steps {
                let node_va = Ept::gpa_as_va(step.entry_addr);
                assert_equivalent(vm.ept().mem(), vm.ept().table(), &mirror, node_va)?;
            }
        }
    }
}
