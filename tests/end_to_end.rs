//! Cross-crate integration tests: the full machine, end to end.

use asap::core::{AsapHwConfig, Mmu, MmuConfig, NestedAsapConfig, TranslationPath};
use asap::os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
use asap::sim::{RunSpec, SimConfig};
use asap::types::{Asid, ByteSize, VirtAddr};
use asap::workloads::WorkloadSpec;

fn small(w: WorkloadSpec) -> WorkloadSpec {
    WorkloadSpec {
        footprint: ByteSize::mib(64 * w.big_vmas as u64),
        ..w
    }
}

/// Every workload preset drives the full native machine without faults and
/// produces plausible walk latencies.
#[test]
fn all_workloads_run_natively() {
    for w in WorkloadSpec::paper_suite() {
        let r = RunSpec::new(small(w))
            .with_sim(SimConfig::smoke_test())
            .run()
            .unwrap();
        assert_eq!(r.faults, 0, "{}", r.workload);
        assert!(r.walks.count() > 0, "{} never walked", r.workload);
        let avg = r.avg_walk_latency();
        assert!(
            (2.0..800.0).contains(&avg),
            "{}: implausible avg walk latency {avg}",
            r.workload
        );
    }
}

/// Every workload preset also runs virtualized, and the 2D walk costs more
/// than the native walk (the Fig. 3 shape).
#[test]
fn all_workloads_run_virtualized() {
    for w in WorkloadSpec::paper_suite() {
        let native = RunSpec::new(small(w.clone()))
            .with_sim(SimConfig::smoke_test())
            .run()
            .unwrap();
        let virt = RunSpec::new(small(w))
            .virt()
            .with_sim(SimConfig::smoke_test())
            .run()
            .unwrap();
        assert_eq!(virt.faults, 0, "{}", virt.workload);
        assert!(
            virt.avg_walk_latency() > native.avg_walk_latency(),
            "{}: virt {} !> native {}",
            virt.workload,
            virt.avg_walk_latency(),
            native.avg_walk_latency()
        );
    }
}

/// The paper's central ordering holds on the full machine:
/// P1+P2 <= P1 <= baseline (within noise), with real reductions on the
/// TLB-hostile workloads.
#[test]
fn asap_orderings_hold() {
    let sim = SimConfig::smoke_test();
    let w = small(WorkloadSpec::mc80());
    let base = RunSpec::new(w.clone()).with_sim(sim).run().unwrap();
    let p1 = RunSpec::new(w.clone())
        .with_asap(AsapHwConfig::p1())
        .with_sim(sim)
        .run()
        .unwrap();
    let p12 = RunSpec::new(w)
        .with_asap(AsapHwConfig::p1_p2())
        .with_sim(sim)
        .run()
        .unwrap();
    assert!(p1.avg_walk_latency() < base.avg_walk_latency());
    assert!(p12.avg_walk_latency() <= p1.avg_walk_latency() * 1.02);
}

/// Under virtualization, adding the host dimension beats guest-only
/// prefetching (the Fig. 10 ordering).
#[test]
fn nested_asap_ordering_holds() {
    let sim = SimConfig::smoke_test();
    let w = small(WorkloadSpec::mc80());
    let base = RunSpec::new(w.clone()).virt().with_sim(sim).run().unwrap();
    let p1g = RunSpec::new(w.clone())
        .virt()
        .with_nested_asap(NestedAsapConfig::p1g())
        .with_sim(sim)
        .run()
        .unwrap();
    let p1g_p1h = RunSpec::new(w.clone())
        .virt()
        .with_nested_asap(NestedAsapConfig::p1g_p1h())
        .with_sim(sim)
        .run()
        .unwrap();
    let all = RunSpec::new(w)
        .virt()
        .with_nested_asap(NestedAsapConfig::all())
        .with_sim(sim)
        .run()
        .unwrap();
    assert!(p1g.avg_walk_latency() < base.avg_walk_latency());
    assert!(p1g_p1h.avg_walk_latency() < p1g.avg_walk_latency());
    assert!(all.avg_walk_latency() <= p1g_p1h.avg_walk_latency() * 1.02);
}

/// ASAP is architecturally invisible: translations through an ASAP MMU are
/// bit-identical to the baseline for a mixed bag of addresses, including
/// after VMA growth creates out-of-line PT "holes" (§3.7.2).
#[test]
fn asap_is_architecturally_invisible_even_with_holes() {
    let mut asap_cfg = AsapOsConfig::pl1_and_pl2();
    asap_cfg.extension_failure_rate = 1.0; // every extension fails
    let mut p = Process::new(
        ProcessConfig::new(Asid(1))
            .with_heap(ByteSize::mib(8))
            .with_asap(asap_cfg)
            .with_seed(5),
    );
    let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
    let grown_end = VirtAddr::new(heap.start().raw() + (256 << 20)).unwrap();
    p.grow_heap(grown_end).unwrap();
    // Touch pages straddling the original region and the grown (hole) area.
    let vas: Vec<VirtAddr> = (0..64u64)
        .map(|i| VirtAddr::new(heap.start().raw() + i * (3 << 20)).unwrap())
        .collect();
    for va in &vas {
        p.touch(*va).unwrap();
    }
    assert!(
        p.hole_count() > 0,
        "the scenario must actually create holes"
    );

    let mut baseline = Mmu::new(MmuConfig::default());
    let mut asap = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1_p2()));
    asap.load_context(p.vma_descriptors());
    for va in &vas {
        let b = baseline.translate(p.mem(), p.page_table(), p.asid(), *va, None);
        let a = asap.translate(p.mem(), p.page_table(), p.asid(), *va, None);
        assert_eq!(b.phys, a.phys, "{va}: ASAP changed a translation");
        assert!(a.phys.is_some());
    }
}

/// The SMP machine end to end: walk latency grows monotonically-ish with
/// core count (shared-fabric contention), per-core rows line up with the
/// aggregate, and every backend survives 4-way sharing without faults.
#[test]
fn smp_scaling_shape_holds() {
    let sim = SimConfig::smoke_test();
    let w = small(WorkloadSpec::mc80());
    let lat = |cores: usize| {
        RunSpec::new(w.clone())
            .with_cores(cores)
            .with_sim(sim)
            .run()
            .unwrap()
            .avg_walk_latency()
    };
    let solo = lat(1);
    let quad = lat(4);
    assert!(
        quad > solo,
        "4-core contention must inflate walk latency: {quad} !> {solo}"
    );

    let out = RunSpec::new(w.clone())
        .with_asap(AsapHwConfig::p1_p2())
        .with_cores(4)
        .with_sim(sim)
        .run_split()
        .unwrap();
    assert_eq!(out.per_core.len(), 4);
    assert_eq!(out.aggregate.faults, 0);
    assert_eq!(
        out.aggregate.walks.count(),
        out.per_core.iter().map(|c| c.walks.count()).sum::<u64>()
    );
    for (i, core) in out.per_core.iter().enumerate() {
        assert_eq!(core.workload, format!("mc80@core{i}"));
        assert!(core.prefetches_issued > 0, "core {i} never prefetched");
    }
}

/// The TLB path works across the facade: second access to the same page is
/// a TLB hit with zero translation latency.
#[test]
fn facade_quickstart_flow() {
    let mut p = Process::new(
        ProcessConfig::new(Asid(3))
            .with_heap(ByteSize::mib(16))
            .with_asap(AsapOsConfig::pl1_only()),
    );
    let va = p.vma_of_kind(VmaKind::Heap).unwrap().start();
    p.touch(va).unwrap();
    let mut mmu = Mmu::new(MmuConfig::default().with_asap(AsapHwConfig::p1()));
    mmu.load_context(p.vma_descriptors());
    let first = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
    assert_eq!(first.path, TranslationPath::Walk);
    let second = mmu.translate(p.mem(), p.page_table(), p.asid(), va, None);
    assert_eq!(second.path, TranslationPath::TlbL1);
    assert_eq!(second.latency, 0);
}
