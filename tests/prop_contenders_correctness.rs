//! Property tests for the contender backends' central safety claim:
//! whatever a Victima block or a Revelator hash guess does for *timing*,
//! every translation an engine **commits** is bit-identical to the
//! machine's ground truth. Speculation may mispredict; it must never leak.

use asap::contenders::{RevelatorConfig, RevelatorMmu, VictimaConfig, VictimaMmu};
use asap::core::{SimMachine, TranslationEngine};
use asap::os::{Process, ProcessConfig, VmaKind};
use asap::types::{Asid, ByteSize, VirtAddr};
use proptest::prelude::*;

/// Builds a process with arbitrary fragmentation knobs and touches the
/// given page offsets of its heap.
fn build_process(
    offsets: &std::collections::BTreeSet<u64>,
    cluster_fraction: f64,
    pt_scatter_run: f64,
    seed: u64,
) -> (Process, Vec<VirtAddr>) {
    let mut p = Process::new(
        ProcessConfig::new(Asid(1))
            .with_heap(ByteSize::mib(256))
            .with_data_cluster_fraction(cluster_fraction)
            .with_pt_scatter_run(pt_scatter_run)
            .with_seed(seed),
    );
    let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
    let vas: Vec<VirtAddr> = offsets
        .iter()
        .map(|o| VirtAddr::new(heap.start().raw() + o * 4096).unwrap())
        .collect();
    for va in &vas {
        p.touch(*va).unwrap();
    }
    (p, vas)
}

/// Drives `engine` over every address three times (cold, warm, and
/// post-eviction block/TLB states) and checks each committed translation
/// against the machine's reference.
fn assert_commits_ground_truth<E>(mut engine: E, p: &mut Process, vas: &[VirtAddr])
where
    E: TranslationEngine<Machine = Process>,
{
    TranslationEngine::load_context(&mut engine, p);
    for pass in 0..3 {
        for va in vas {
            let out = engine.translate_access(p, *va);
            let reference = p.reference_translate(*va);
            assert_eq!(
                out.phys, reference,
                "pass {pass}, va {va}: committed translation diverged from ground truth"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Victima: blocks recovered from the L2 cache carry exactly the
    /// walked translation, for any touch pattern and any fragmentation.
    #[test]
    fn victima_commits_only_ground_truth(
        offsets in proptest::collection::btree_set(0u64..32_768, 1..64),
        cluster in 0u32..=10,
        scatter in 1u32..=64,
        seed in 0u64..1000,
    ) {
        let (mut p, vas) = build_process(
            &offsets,
            f64::from(cluster) / 10.0,
            f64::from(scatter),
            seed,
        );
        // A tiny S-TLB so evictions — and thus block fills/hits — occur
        // even for small touch sets.
        let config = VictimaConfig {
            l2_tlb: asap::tlb::TlbConfig {
                name: "tiny S-TLB",
                entries: 8,
                ways: 2,
                replacement: asap::cache::ReplacementKind::Lru,
            },
            l1_tlb: asap::tlb::TlbConfig {
                name: "tiny D-TLB",
                entries: 4,
                ways: 2,
                replacement: asap::cache::ReplacementKind::Lru,
            },
            ..VictimaConfig::default()
        }
        .with_seed(seed);
        assert_commits_ground_truth(VictimaMmu::new(config), &mut p, &vas);
    }

    /// Revelator: however often the hash guess mispredicts, the committed
    /// translation always comes from the verifying walk.
    #[test]
    fn revelator_commits_only_ground_truth(
        offsets in proptest::collection::btree_set(0u64..32_768, 1..64),
        cluster in 0u32..=10,
        scatter in 1u32..=64,
        seed in 0u64..1000,
    ) {
        let (mut p, vas) = build_process(
            &offsets,
            f64::from(cluster) / 10.0,
            f64::from(scatter),
            seed,
        );
        let mmu = RevelatorMmu::new(RevelatorConfig::default().with_seed(seed));
        assert_commits_ground_truth(mmu, &mut p, &vas);

        // And the speculation bookkeeping is consistent: every issued
        // guess is eventually verified one way or the other.
        let mut mmu = RevelatorMmu::new(RevelatorConfig::default().with_seed(seed));
        TranslationEngine::load_context(&mut mmu, &p);
        for va in &vas {
            let _ = mmu.translate_access(&mut p, *va);
        }
        let s = *mmu.revelator_stats();
        prop_assert_eq!(
            s.verified_correct + s.mispredicted,
            s.speculations_issued + s.speculations_dropped,
            "every computed guess (issued or dropped) must be verified"
        );
    }

    /// Contenders against each other and the reference: for one shared
    /// access sequence, all backends commit identical physical addresses.
    #[test]
    fn all_backends_agree_on_committed_frames(
        offsets in proptest::collection::btree_set(0u64..16_384, 1..48),
        seed in 0u64..1000,
    ) {
        let (mut p, vas) = build_process(&offsets, 0.5, 8.0, seed);
        let mut victima = VictimaMmu::new(VictimaConfig::default().with_seed(seed));
        let mut revelator = RevelatorMmu::new(RevelatorConfig::default().with_seed(seed));
        TranslationEngine::load_context(&mut victima, &p);
        TranslationEngine::load_context(&mut revelator, &p);
        for va in &vas {
            let v = victima.translate_access(&mut p, *va).phys;
            let r = revelator.translate_access(&mut p, *va).phys;
            let reference = p.reference_translate(*va);
            prop_assert_eq!(v, reference);
            prop_assert_eq!(r, reference);
        }
    }
}
