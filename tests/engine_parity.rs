//! Engine-parity regression test for the `TranslationEngine` refactor.
//!
//! Before `Mmu`/`NestedMmu` were rebuilt over the shared `EngineCore` and
//! `run_native`/`run_virt` collapsed into the generic `run_scenario`
//! driver, the pre-refactor drivers were run over a matrix of
//! baseline/ASAP × native/virt smoke configurations and their statistics
//! recorded below. The refactored stack must reproduce those statistics
//! **bit-identically**: the refactor is pure code motion, so any drift is
//! a timing-model regression, not noise.
//!
//! The matrix matches the registry's `smoke` scenario, so CI's end-to-end
//! smoke pass exercises exactly the configurations pinned here.

use asap::sim::scenarios::find;
use asap::sim::{RunResult, SimConfig};

/// The statistics captured from the pre-refactor drivers (commit 95f9ca6)
/// with `SimConfig::smoke_test()` on the 256 MiB mc80 smoke workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Golden {
    walks: u64,
    walk_total_cycles: u64,
    cycles: u64,
    walk_cycles: u64,
    l2_tlb_misses: u64,
    l2_tlb_accesses: u64,
    prefetches_issued: u64,
    prefetches_dropped: u64,
    faults: u64,
}

#[rustfmt::skip]
const GOLDEN: [(&str, Golden); 8] = [
    ("native/baseline", Golden { walks: 1922, walk_total_cycles: 117086, cycles: 876902, walk_cycles: 117086, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 0, prefetches_dropped: 0, faults: 0 }),
    ("native/asap", Golden { walks: 1922, walk_total_cycles: 114112, cycles: 873900, walk_cycles: 114112, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 3844, prefetches_dropped: 0, faults: 0 }),
    ("native/asap+clustered+coloc", Golden { walks: 1917, walk_total_cycles: 116880, cycles: 879927, walk_cycles: 116880, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 3834, prefetches_dropped: 0, faults: 0 }),
    ("native/baseline+5level", Golden { walks: 1922, walk_total_cycles: 117058, cycles: 876846, walk_cycles: 117058, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 0, prefetches_dropped: 0, faults: 0 }),
    ("native/perfect-tlb", Golden { walks: 0, walk_total_cycles: 0, cycles: 751722, walk_cycles: 0, l2_tlb_misses: 0, l2_tlb_accesses: 0, prefetches_issued: 0, prefetches_dropped: 0, faults: 0 }),
    ("virt/baseline", Golden { walks: 1922, walk_total_cycles: 903879, cycles: 1664347, walk_cycles: 903879, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 0, prefetches_dropped: 0, faults: 0 }),
    ("virt/asap", Golden { walks: 1922, walk_total_cycles: 477628, cycles: 1238196, walk_cycles: 477628, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 12184, prefetches_dropped: 0, faults: 0 }),
    ("virt/asap+host2m+coloc", Golden { walks: 1922, walk_total_cycles: 472458, cycles: 1235498, walk_cycles: 472458, l2_tlb_misses: 1922, l2_tlb_accesses: 3068, prefetches_issued: 8014, prefetches_dropped: 0, faults: 0 }),
];

fn snapshot(r: &RunResult) -> Golden {
    Golden {
        walks: r.walks.count(),
        walk_total_cycles: r.walks.total_cycles(),
        cycles: r.cycles,
        walk_cycles: r.walk_cycles,
        l2_tlb_misses: r.l2_tlb_misses,
        l2_tlb_accesses: r.l2_tlb_accesses,
        prefetches_issued: r.prefetches_issued,
        prefetches_dropped: r.prefetches_dropped,
        faults: r.faults,
    }
}

/// The generic driver reproduces the pre-refactor statistics exactly for
/// the whole engine matrix.
#[test]
fn refactored_drivers_match_pre_refactor_golden_stats() {
    let results = find("smoke")
        .expect("smoke scenario registered")
        .run(SimConfig::smoke_test());
    assert_eq!(results.runs.len(), GOLDEN.len(), "matrix shape changed");
    for (variant, golden) in GOLDEN {
        let run = results.get("mc80", variant);
        assert_eq!(
            snapshot(run),
            golden,
            "{variant}: statistics drifted from the pre-refactor driver"
        );
    }
}

/// The walk-latency distribution (not just its aggregates) is stable:
/// mean recomputed from the golden aggregates matches the live mean.
#[test]
fn walk_latency_means_match_golden_aggregates() {
    let results = find("smoke").unwrap().run(SimConfig::smoke_test());
    for (variant, golden) in GOLDEN {
        let run = results.get("mc80", variant);
        let expected = if golden.walks == 0 {
            0.0
        } else {
            golden.walk_total_cycles as f64 / golden.walks as f64
        };
        assert!(
            (run.avg_walk_latency() - expected).abs() < 1e-9,
            "{variant}: mean {} != golden {expected}",
            run.avg_walk_latency()
        );
    }
}
