//! Property tests for multi-core determinism: the SMP driver's fixed
//! arbitration order (lowest local clock, ties by core index) plus seeded
//! per-core state means the same seed and the same `RunSpec` must produce
//! **identical** per-core and aggregate statistics on every execution —
//! across 2- and 4-core machines, every engine backend, and both
//! isolation and colocation (co-runner-as-a-core).
//!
//! The second property is the **batching oracle**: the driver's default
//! batched schedule (the arbitration winner runs until its clock passes
//! the runner-up's) must be statistic-identical to per-access lockstep
//! arbitration at 1, 2 and 4 cores — batching changes wall-clock only,
//! never a counter. Since the batched path arbitrates through the binary
//! heap ([`asap::sim::sched::EventQueue`]) and the lockstep path rescans
//! linearly ([`asap::sim::sched::linear_scan`]), this oracle is also the
//! end-to-end heap-vs-scan equivalence check; the third property pins the
//! same equivalence at the scheduler level over arbitrary synthetic
//! clocks, and the sampled high-core-count cases extend the oracle to 16
//! and 32 cores across all four backends.

use asap::sim::sched::{linear_scan, EventQueue};
use asap::sim::{EngineSelect, RunOutput, RunResult, RunSpec, SimConfig};
use asap::types::ByteSize;
use asap::workloads::WorkloadSpec;
use proptest::prelude::*;

/// Every counter a drift could hide in.
fn snapshot(r: &RunResult) -> (String, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.workload.clone(),
        r.walks.count(),
        r.walks.total_cycles(),
        r.cycles,
        r.walk_cycles,
        r.l2_tlb_misses,
        r.l2_tlb_accesses,
        r.prefetches_issued,
        r.faults,
    )
}

fn run(spec: &RunSpec) -> RunOutput {
    spec.run_split().expect("well-formed SMP spec")
}

proptest! {
    // Each case simulates 2 full multi-core windows; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_and_spec_reproduce_per_core_and_aggregate_stats(
        seed in 0u64..1_000_000,
        cores in prop_oneof![Just(2usize), Just(4usize)],
        engine_idx in 0usize..4,
        coloc in prop_oneof![Just(false), Just(true)],
    ) {
        let workload = WorkloadSpec {
            footprint: ByteSize::mib(256),
            ..WorkloadSpec::mc80()
        };
        let engine = match engine_idx {
            0 => EngineSelect::Baseline,
            1 => EngineSelect::asap_p1_p2(),
            2 => EngineSelect::Victima,
            _ => EngineSelect::Revelator,
        };
        let sim = SimConfig {
            warmup_accesses: 300,
            measure_accesses: 1200,
            seed,
            ..SimConfig::default()
        };
        let mut spec = RunSpec::new(workload)
            .with_engine(engine)
            .with_cores(cores)
            .with_sim(sim);
        if coloc {
            spec = spec.colocated();
        }
        let a = run(&spec);
        let b = run(&spec);
        prop_assert_eq!(a.per_core.len(), cores);
        prop_assert_eq!(snapshot(&a.aggregate), snapshot(&b.aggregate));
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            prop_assert_eq!(snapshot(x), snapshot(y));
            // The full latency distribution, not just its aggregates.
            prop_assert_eq!(&x.walks, &y.walks);
        }
    }

    #[test]
    fn batched_schedule_matches_lockstep_oracle(
        seed in 0u64..1_000_000,
        cores in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        engine_idx in 0usize..4,
        coloc in prop_oneof![Just(false), Just(true)],
    ) {
        let workload = WorkloadSpec {
            footprint: ByteSize::mib(256),
            ..WorkloadSpec::mc80()
        };
        let engine = match engine_idx {
            0 => EngineSelect::Baseline,
            1 => EngineSelect::asap_p1_p2(),
            2 => EngineSelect::Victima,
            _ => EngineSelect::Revelator,
        };
        let sim = SimConfig {
            warmup_accesses: 300,
            measure_accesses: 1200,
            seed,
            lockstep: false,
        };
        let mut spec = RunSpec::new(workload)
            .with_engine(engine)
            .with_cores(cores)
            .with_sim(sim);
        if coloc {
            spec = spec.colocated();
        }
        let batched = run(&spec);
        spec.sim.lockstep = true;
        let lockstep = run(&spec);
        prop_assert_eq!(
            snapshot(&batched.aggregate),
            snapshot(&lockstep.aggregate)
        );
        for (x, y) in batched.per_core.iter().zip(&lockstep.per_core) {
            prop_assert_eq!(snapshot(x), snapshot(y));
            prop_assert_eq!(&x.walks, &y.walks);
        }
    }

    // Scheduler-level equivalence over arbitrary clocks: popping the heap
    // and advancing the winner must visit cores in exactly the order a
    // fresh linear scan would pick at every step. Only the popped core's
    // clock ever moves, so the two disagree only if the heap itself is
    // wrong — no driver, engine, or workload in the loop.
    #[test]
    fn heap_schedule_replays_the_linear_scan_schedule(
        clocks in proptest::collection::vec(0u64..10_000, 1..=64),
        bursts in proptest::collection::vec(1u64..500, 512),
    ) {
        let n = clocks.len();
        let mut queue = EventQueue::with_capacity(n);
        for (i, &t) in clocks.iter().enumerate() {
            queue.push((t, i));
        }
        let mut scan_clocks = clocks;
        for burst in bursts {
            let heap_pick = queue.pop().expect("queue stays full");
            let (scan_pick, _) =
                linear_scan(scan_clocks.iter().enumerate().map(|(i, t)| (*t, i)));
            prop_assert_eq!(Some(heap_pick), scan_pick);
            let (clock, i) = heap_pick;
            prop_assert_eq!(clock, scan_clocks[i]);
            scan_clocks[i] += burst;
            queue.push((scan_clocks[i], i));
        }
        prop_assert_eq!(queue.len(), n);
    }
}

/// The batching oracle at the core counts the heap was built for: 16 and
/// 32 cores, one sampled case per backend. Proptest would re-simulate
/// these expensive machines per case; a fixed sample keeps the coverage
/// without the wall-clock bill.
#[test]
fn high_core_counts_match_the_lockstep_oracle() {
    for (cores, engine, seed) in [
        (16, EngineSelect::Baseline, 11u64),
        (16, EngineSelect::asap_p1_p2(), 12),
        (32, EngineSelect::Victima, 13),
        (32, EngineSelect::Revelator, 14),
    ] {
        let workload = WorkloadSpec {
            footprint: ByteSize::mib(64),
            ..WorkloadSpec::mc80()
        };
        let sim = SimConfig {
            seed,
            ..SimConfig::smoke_test()
        };
        let spec = RunSpec::new(workload)
            .with_engine(engine)
            .with_cores(cores)
            .with_sim(sim);
        let batched = run(&spec);
        let mut lockstep_spec = spec;
        lockstep_spec.sim.lockstep = true;
        let lockstep = run(&lockstep_spec);
        assert_eq!(batched.per_core.len(), cores);
        assert_eq!(
            snapshot(&batched.aggregate),
            snapshot(&lockstep.aggregate),
            "{cores}-core aggregate drift"
        );
        for (x, y) in batched.per_core.iter().zip(&lockstep.per_core) {
            assert_eq!(snapshot(x), snapshot(y), "{cores}-core per-core drift");
            assert_eq!(x.walks, y.walks);
        }
    }
}
