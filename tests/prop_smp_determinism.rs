//! Property tests for multi-core determinism: the SMP driver's fixed
//! arbitration order (lowest local clock, ties by core index) plus seeded
//! per-core state means the same seed and the same `RunSpec` must produce
//! **identical** per-core and aggregate statistics on every execution —
//! across 2- and 4-core machines, every engine backend, and both
//! isolation and colocation (co-runner-as-a-core).
//!
//! The second property is the **batching oracle**: the driver's default
//! batched schedule (the arbitration winner runs until its clock passes
//! the runner-up's) must be statistic-identical to per-access lockstep
//! arbitration at 1, 2 and 4 cores — batching changes wall-clock only,
//! never a counter.

use asap::sim::{EngineSelect, RunOutput, RunResult, RunSpec, SimConfig};
use asap::types::ByteSize;
use asap::workloads::WorkloadSpec;
use proptest::prelude::*;

/// Every counter a drift could hide in.
fn snapshot(r: &RunResult) -> (String, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.workload.clone(),
        r.walks.count(),
        r.walks.total_cycles(),
        r.cycles,
        r.walk_cycles,
        r.l2_tlb_misses,
        r.l2_tlb_accesses,
        r.prefetches_issued,
        r.faults,
    )
}

fn run(spec: &RunSpec) -> RunOutput {
    spec.run_split().expect("well-formed SMP spec")
}

proptest! {
    // Each case simulates 2 full multi-core windows; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_seed_and_spec_reproduce_per_core_and_aggregate_stats(
        seed in 0u64..1_000_000,
        cores in prop_oneof![Just(2usize), Just(4usize)],
        engine_idx in 0usize..4,
        coloc in prop_oneof![Just(false), Just(true)],
    ) {
        let workload = WorkloadSpec {
            footprint: ByteSize::mib(256),
            ..WorkloadSpec::mc80()
        };
        let engine = match engine_idx {
            0 => EngineSelect::Baseline,
            1 => EngineSelect::asap_p1_p2(),
            2 => EngineSelect::Victima,
            _ => EngineSelect::Revelator,
        };
        let sim = SimConfig {
            warmup_accesses: 300,
            measure_accesses: 1200,
            seed,
            ..SimConfig::default()
        };
        let mut spec = RunSpec::new(workload)
            .with_engine(engine)
            .with_cores(cores)
            .with_sim(sim);
        if coloc {
            spec = spec.colocated();
        }
        let a = run(&spec);
        let b = run(&spec);
        prop_assert_eq!(a.per_core.len(), cores);
        prop_assert_eq!(snapshot(&a.aggregate), snapshot(&b.aggregate));
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            prop_assert_eq!(snapshot(x), snapshot(y));
            // The full latency distribution, not just its aggregates.
            prop_assert_eq!(&x.walks, &y.walks);
        }
    }

    #[test]
    fn batched_schedule_matches_lockstep_oracle(
        seed in 0u64..1_000_000,
        cores in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
        engine_idx in 0usize..4,
        coloc in prop_oneof![Just(false), Just(true)],
    ) {
        let workload = WorkloadSpec {
            footprint: ByteSize::mib(256),
            ..WorkloadSpec::mc80()
        };
        let engine = match engine_idx {
            0 => EngineSelect::Baseline,
            1 => EngineSelect::asap_p1_p2(),
            2 => EngineSelect::Victima,
            _ => EngineSelect::Revelator,
        };
        let sim = SimConfig {
            warmup_accesses: 300,
            measure_accesses: 1200,
            seed,
            lockstep: false,
        };
        let mut spec = RunSpec::new(workload)
            .with_engine(engine)
            .with_cores(cores)
            .with_sim(sim);
        if coloc {
            spec = spec.colocated();
        }
        let batched = run(&spec);
        spec.sim.lockstep = true;
        let lockstep = run(&spec);
        prop_assert_eq!(
            snapshot(&batched.aggregate),
            snapshot(&lockstep.aggregate)
        );
        for (x, y) in batched.per_core.iter().zip(&lockstep.per_core) {
            prop_assert_eq!(snapshot(x), snapshot(y));
            prop_assert_eq!(&x.walks, &y.walks);
        }
    }
}
