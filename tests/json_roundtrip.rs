//! Golden round-trip test for the `BENCH_results.json` emitter/parser.
//!
//! Two invariants:
//!
//! 1. **Golden**: the committed `BENCH_results.json` parses, and re-emitting
//!    the parsed document reproduces the committed bytes exactly — the
//!    canonical layout is stable, so trajectory diffs are always real
//!    behaviour changes, never formatting noise.
//! 2. **Fresh**: results emitted from a live smoke run round-trip
//!    byte-identically (emit → parse → re-emit).

use asap::sim::scenarios::find;
use asap::sim::{results_to_json, BenchDoc, SimConfig};

fn committed_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_results.json");
    std::fs::read_to_string(path).expect("committed BENCH_results.json exists")
}

#[test]
fn committed_results_file_round_trips_byte_identically() {
    let json = committed_json();
    let doc = BenchDoc::parse(&json).unwrap_or_else(|e| panic!("committed file must parse: {e}"));
    assert_eq!(doc.schema_version, 1);
    assert_eq!(doc.tier, "smoke");
    assert!(
        doc.scenarios.iter().any(|s| s.scenario == "smoke"),
        "the engine-matrix smoke scenario is committed"
    );
    assert_eq!(
        doc.to_json(),
        json,
        "re-emitting the parsed committed file must be byte-identical"
    );
}

#[test]
fn committed_rows_carry_the_schema_fields() {
    let doc = BenchDoc::parse(&committed_json()).unwrap();
    let smoke = doc
        .scenarios
        .iter()
        .find(|s| s.scenario == "smoke")
        .unwrap();
    let baseline = smoke
        .runs
        .iter()
        .find(|r| r.variant == "native/baseline")
        .expect("baseline row present");
    assert_eq!(baseline.workload, "mc80");
    assert_eq!(baseline.label, "Baseline");
    assert!(baseline.walks > 0);
    assert!(baseline.avg_walk_latency > 0.0);
    assert!(baseline.cycles > baseline.walk_cycles);
    assert_eq!(baseline.faults, 0);
}

#[test]
fn fresh_emission_round_trips_byte_identically() {
    let results = [find("smoke")
        .expect("smoke scenario registered")
        .run(SimConfig::smoke_test())];
    let json = results_to_json(&results, "smoke");
    let doc = BenchDoc::parse(&json).unwrap();
    assert_eq!(doc.to_json(), json);
    // And a second full cycle stays fixed (idempotent canonical form).
    let again = BenchDoc::parse(&doc.to_json()).unwrap();
    assert_eq!(again, doc);
}
