//! Property tests for the paper's central correctness claims, end to end.

use asap::core::prefetch_target;
use asap::os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
use asap::types::{Asid, ByteSize, PtLevel, VirtAddr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY set of touched pages in an ASAP process, the hardware's
    /// base-plus-offset prefetch target equals the physical address the
    /// walker reads at PL1 and PL2 — the invariant that makes prefetches
    /// useful (when it holds) and merely useless (never harmful) otherwise.
    #[test]
    fn prefetch_targets_match_walker(
        offsets in proptest::collection::btree_set(0u64..32_768, 1..32),
        seed in 0u64..1000,
    ) {
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(256))
                .with_asap(AsapOsConfig::pl1_and_pl2())
                .with_seed(seed),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let vas: Vec<VirtAddr> = offsets
            .iter()
            .map(|o| VirtAddr::new(heap.start().raw() + o * 4096).unwrap())
            .collect();
        for va in &vas {
            p.touch(*va).unwrap();
        }
        let desc = p
            .vma_descriptors()
            .iter()
            .find(|d| d.covers(heap.start()))
            .copied()
            .expect("heap descriptor");
        for va in &vas {
            let trace = p.walk(*va);
            prop_assert!(!trace.is_fault());
            for level in [PtLevel::Pl1, PtLevel::Pl2] {
                let step = trace.step_at(level).expect("walk visits the level");
                let target = prefetch_target(&desc, level, *va).expect("level reserved");
                prop_assert_eq!(target, step.entry_addr,
                    "{} prefetch target must equal the walker's read", level);
            }
        }
    }

    /// Demand paging + translation is consistent for ANY access pattern:
    /// every touched page translates, distinct pages get distinct frames,
    /// and untouched neighbours stay unmapped.
    #[test]
    fn demand_paging_is_consistent(
        offsets in proptest::collection::btree_set(0u64..16_384, 1..48),
        seed in 0u64..1000,
    ) {
        let mut p = Process::new(
            ProcessConfig::new(Asid(2))
                .with_heap(ByteSize::mib(128))
                .with_seed(seed),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let mut frames = std::collections::HashSet::new();
        for o in &offsets {
            let va = VirtAddr::new(heap.start().raw() + o * 4096).unwrap();
            p.touch(va).unwrap();
            let t = p.translate(va).expect("touched page translates");
            prop_assert!(frames.insert(t.frame.raw()), "duplicate frame");
            let neighbour_off = o + 20_000; // beyond the touched range
            let nva = VirtAddr::new(heap.start().raw() + neighbour_off * 4096).unwrap();
            if heap.contains(nva) && !offsets.contains(&neighbour_off) {
                prop_assert!(p.translate(nva).is_none());
            }
        }
    }

    /// ASAP-enabled and baseline processes with identical seeds produce
    /// identical *data* placement — the OS extension only moves page-table
    /// pages, never application data (§3.3, Fig. 5).
    #[test]
    fn asap_moves_only_page_table_pages(
        offsets in proptest::collection::btree_set(0u64..8_192, 1..24),
        seed in 0u64..1000,
    ) {
        let build = |asap: AsapOsConfig| {
            let mut p = Process::new(
                ProcessConfig::new(Asid(1))
                    .with_heap(ByteSize::mib(64))
                    .with_asap(asap)
                    .with_seed(seed),
            );
            let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
            offsets
                .iter()
                .map(|o| {
                    let va = VirtAddr::new(heap.start().raw() + o * 4096).unwrap();
                    p.touch(va).unwrap();
                    p.translate(va).unwrap().frame
                })
                .collect::<Vec<_>>()
        };
        let baseline = build(AsapOsConfig::disabled());
        let asap = build(AsapOsConfig::pl1_and_pl2());
        prop_assert_eq!(baseline, asap, "data frames must be identical");
    }
}
