//! Registry invariants: the declarative scenario DSL must keep the
//! registry sound by construction — unique scenario names, unique run
//! labels within each scenario, and every scenario resolving to
//! validatable specs without panicking.

use asap::sim::scenarios::{registry, smoke_set};
use asap::sim::SimConfig;
use std::collections::HashSet;

/// Every scenario name appears exactly once.
#[test]
fn scenario_names_are_unique() {
    let mut seen = HashSet::new();
    for s in registry() {
        assert!(seen.insert(s.name), "duplicate scenario name {:?}", s.name);
    }
}

/// Within one scenario, every generated (workload, variant) key is unique
/// — the DSL's per-axis label-fragment uniqueness must compose.
#[test]
fn run_labels_are_unique_within_each_scenario() {
    let sim = SimConfig::smoke_test();
    for s in registry() {
        let mut seen = HashSet::new();
        for run in s.runs(sim) {
            assert!(
                seen.insert((run.workload, run.variant.clone())),
                "scenario {}: duplicate run key ({}, {})",
                s.name,
                run.workload,
                run.variant
            );
        }
    }
}

/// Every scenario resolves: enumeration does not panic, every generated
/// spec passes validation (so `run()` can never trip the incompatibility
/// errors), and every run's label is derivable.
#[test]
fn every_scenario_resolves_to_valid_specs() {
    let sim = SimConfig::smoke_test();
    for s in registry() {
        for run in s.runs(sim) {
            run.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}/{}/{}: {e}", s.name, run.workload, run.variant));
            assert!(
                !run.spec.label().is_empty(),
                "{}/{}/{}: empty label",
                s.name,
                run.workload,
                run.variant
            );
            assert_eq!(run.workload, run.spec.workload_name());
        }
    }
}

/// The CI smoke set is non-empty, miniature-windowed, and a strict subset
/// of the registry.
#[test]
fn smoke_set_is_a_pinned_registry_subset() {
    let names: HashSet<&str> = registry().iter().map(|s| s.name).collect();
    let smoke = smoke_set();
    assert!(!smoke.is_empty());
    for s in &smoke {
        assert!(names.contains(s.name));
        assert_eq!(
            s.default_windows(),
            Some(SimConfig::smoke_test()),
            "{}: smoke scenarios must pin the smoke windows (the committed \
             BENCH_results.json depends on them)",
            s.name
        );
    }
}
