//! Native machine assembly: builds a [`Mmu`] + `Process` for a unified
//! [`RunSpec`] whose machine axis is native and whose engine axis is the
//! baseline or ASAP, and hands it to the generic `run_scenario` loop.
//! Reached only through [`RunSpec::run`]'s internal dispatch.

use crate::driver::{run_scenario_observed, DriverError, RunMeta};
use crate::observe::RunObserver;
use crate::{EngineSelect, RunOutput, RunSpec};
use asap_core::{AsapHwConfig, Mmu, MmuConfig, TranslationEngine};
use asap_os::{AsapOsConfig, Process};
use asap_types::Asid;

/// The hardware prefetch levels the engine axis selects (baseline = off).
pub(crate) fn hw_asap(spec: &RunSpec) -> AsapHwConfig {
    match &spec.engine {
        EngineSelect::Asap(cfg) => cfg.clone(),
        _ => AsapHwConfig::off(),
    }
}

/// Derives the OS-side ASAP configuration from the hardware levels: the OS
/// reserves sorted regions exactly for the levels hardware will prefetch.
pub(crate) fn os_asap(asap: &AsapHwConfig) -> AsapOsConfig {
    if asap.is_enabled() {
        AsapOsConfig {
            levels: asap.levels.clone(),
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    } else {
        AsapOsConfig::disabled()
    }
}

/// The MMU configuration the spec's knobs select, seeded with `seed` (the
/// per-core seed on SMP machines). Shared with the SMP assembly so a
/// 1-core and an N-core machine build bit-identical per-core MMUs.
pub(crate) fn mmu_config(spec: &RunSpec, seed: u64) -> MmuConfig {
    let mut config = MmuConfig::default()
        .with_asap(hw_asap(spec))
        .with_pwc(spec.pwc.clone())
        .with_seed(seed);
    if spec.clustered_tlb {
        config = config.with_clustered_tlb();
    }
    config
}

/// Runs one native baseline/ASAP configuration and returns its
/// measurements.
///
/// Builds the process (with the spec's paging mode threaded straight into
/// the process configuration), workload stream and MMU, then delegates to
/// [`run_scenario`].
pub(crate) fn run_native(spec: &RunSpec) -> Result<RunOutput, DriverError> {
    let mut obs = RunObserver::begin(spec.telemetry);
    let workload = spec.effective_workload();
    let seed = spec.sim.seed;
    let mut process = Process::new(
        workload
            .process_config(Asid(1), os_asap(&hw_asap(spec)), seed)
            .with_paging_mode(spec.paging_mode),
    );
    let mut stream = workload.build_stream(&process, seed ^ 0x11);
    let mut mmu = Mmu::new(mmu_config(spec, seed));
    TranslationEngine::load_context(&mut mmu, &process);
    let meta = RunMeta {
        workload: spec.workload.name.into(),
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: spec.perfect_tlb,
    };
    obs.arm(std::slice::from_mut(&mut mmu));
    let result = run_scenario_observed(
        &mut mmu,
        &mut process,
        stream.as_mut(),
        &meta,
        obs.driver_mut(),
    )?;
    let telemetry = obs.finish(
        std::slice::from_mut(&mut mmu),
        std::slice::from_ref(&meta.workload),
        meta.sim.measure_accesses,
    );
    Ok(RunOutput::single(result).with_telemetry(telemetry))
}

#[cfg(test)]
mod tests {
    use crate::scenarios::smoke_workload as small;
    use crate::{RunSpec, SimConfig};
    use asap_core::AsapHwConfig;

    #[test]
    fn baseline_run_produces_walks() {
        let spec = RunSpec::new(small()).with_sim(SimConfig::smoke_test());
        let r = spec.run().unwrap();
        assert!(r.walks.count() > 100, "uniform random must miss TLBs");
        assert!(r.avg_walk_latency() > 0.0);
        assert_eq!(r.faults, 0);
        assert!(r.cycles > 0);
        assert!(r.walk_fraction() > 0.0 && r.walk_fraction() < 1.0);
    }

    #[test]
    fn asap_reduces_walk_latency() {
        let sim = SimConfig::smoke_test();
        let base = RunSpec::new(small()).with_sim(sim).run().unwrap();
        let p12 = RunSpec::new(small())
            .with_asap(AsapHwConfig::p1_p2())
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(p12.prefetches_issued > 0);
        assert!(
            p12.avg_walk_latency() < base.avg_walk_latency(),
            "ASAP {} !< baseline {}",
            p12.avg_walk_latency(),
            base.avg_walk_latency()
        );
    }

    #[test]
    fn colocation_increases_walk_latency() {
        let sim = SimConfig::smoke_test();
        let iso = RunSpec::new(small()).with_sim(sim).run().unwrap();
        let coloc = RunSpec::new(small())
            .colocated()
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(
            coloc.avg_walk_latency() > iso.avg_walk_latency(),
            "coloc {} !> iso {}",
            coloc.avg_walk_latency(),
            iso.avg_walk_latency()
        );
    }

    #[test]
    fn perfect_tlb_run_has_no_walks() {
        let spec = RunSpec::new(small())
            .perfect_tlb()
            .with_sim(SimConfig::smoke_test());
        let r = spec.run().unwrap();
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn five_level_paging_threads_through_one_build() {
        let spec = RunSpec::new(small())
            .five_level()
            .with_sim(SimConfig::smoke_test());
        let r = spec.run().unwrap();
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = RunSpec::new(small()).with_sim(SimConfig::smoke_test());
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.cycles, b.cycles);
    }
}
