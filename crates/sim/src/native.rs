//! The native-execution driver: assembles a [`Mmu`] + [`Process`] machine
//! and hands it to the generic [`run_scenario`] loop.

use crate::driver::{run_scenario, DriverError, RunMeta};
use crate::{NativeRunSpec, RunResult};
use asap_core::{Mmu, MmuConfig, TranslationEngine};
use asap_os::{AsapOsConfig, Process};
use asap_types::Asid;
use asap_workloads::WorkloadSpec;

/// Derives the OS-side ASAP configuration from the hardware levels: the OS
/// reserves sorted regions exactly for the levels hardware will prefetch.
fn os_asap(spec: &NativeRunSpec) -> AsapOsConfig {
    if spec.asap.is_enabled() {
        AsapOsConfig {
            levels: spec.asap.levels.clone(),
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    } else {
        AsapOsConfig::disabled()
    }
}

fn effective_workload(spec: &NativeRunSpec) -> WorkloadSpec {
    let mut w = spec.workload.clone();
    if let Some(run) = spec.pt_scatter_run_override {
        w.pt_scatter_run = run;
    }
    w
}

/// Runs one native configuration and returns its measurements.
///
/// Builds the process (with the spec's paging mode threaded straight into
/// the process configuration), workload stream and MMU, then delegates to
/// [`run_scenario`].
///
/// # Errors
///
/// Returns a [`DriverError`] when the workload generates an address outside
/// its VMAs or a touched page fails to translate (a misconfigured spec).
pub fn run_native(spec: &NativeRunSpec) -> Result<RunResult, DriverError> {
    let workload = effective_workload(spec);
    let seed = spec.sim.seed;
    let mut process = Process::new(
        workload
            .process_config(Asid(1), os_asap(spec), seed)
            .with_paging_mode(spec.paging_mode),
    );
    let mut stream = workload.build_stream(&process, seed ^ 0x11);
    let mut mmu_config = MmuConfig::default()
        .with_asap(spec.asap.clone())
        .with_pwc(spec.pwc.clone())
        .with_seed(seed);
    if spec.clustered_tlb {
        mmu_config = mmu_config.with_clustered_tlb();
    }
    let mut mmu = Mmu::new(mmu_config);
    TranslationEngine::load_context(&mut mmu, &process);
    let meta = RunMeta {
        workload: spec.workload.name,
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: spec.perfect_tlb,
    };
    run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::smoke_workload as small;
    use crate::SimConfig;
    use asap_core::AsapHwConfig;

    #[test]
    fn baseline_run_produces_walks() {
        let spec = NativeRunSpec::baseline(small()).with_sim(SimConfig::smoke_test());
        let r = run_native(&spec).unwrap();
        assert!(r.walks.count() > 100, "uniform random must miss TLBs");
        assert!(r.avg_walk_latency() > 0.0);
        assert_eq!(r.faults, 0);
        assert!(r.cycles > 0);
        assert!(r.walk_fraction() > 0.0 && r.walk_fraction() < 1.0);
    }

    #[test]
    fn asap_reduces_walk_latency() {
        let sim = SimConfig::smoke_test();
        let base = run_native(&NativeRunSpec::baseline(small()).with_sim(sim)).unwrap();
        let p12 = run_native(
            &NativeRunSpec::baseline(small())
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        )
        .unwrap();
        assert!(p12.prefetches_issued > 0);
        assert!(
            p12.avg_walk_latency() < base.avg_walk_latency(),
            "ASAP {} !< baseline {}",
            p12.avg_walk_latency(),
            base.avg_walk_latency()
        );
    }

    #[test]
    fn colocation_increases_walk_latency() {
        let sim = SimConfig::smoke_test();
        let iso = run_native(&NativeRunSpec::baseline(small()).with_sim(sim)).unwrap();
        let coloc =
            run_native(&NativeRunSpec::baseline(small()).colocated().with_sim(sim)).unwrap();
        assert!(
            coloc.avg_walk_latency() > iso.avg_walk_latency(),
            "coloc {} !> iso {}",
            coloc.avg_walk_latency(),
            iso.avg_walk_latency()
        );
    }

    #[test]
    fn perfect_tlb_run_has_no_walks() {
        let spec = NativeRunSpec::baseline(small())
            .perfect_tlb()
            .with_sim(SimConfig::smoke_test());
        let r = run_native(&spec).unwrap();
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn five_level_paging_threads_through_one_build() {
        let spec = NativeRunSpec::baseline(small())
            .five_level()
            .with_sim(SimConfig::smoke_test());
        let r = run_native(&spec).unwrap();
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = NativeRunSpec::baseline(small()).with_sim(SimConfig::smoke_test());
        let a = run_native(&spec).unwrap();
        let b = run_native(&spec).unwrap();
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.cycles, b.cycles);
    }
}
