//! The native-execution driver.

use crate::{NativeRunSpec, RunResult, CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
use asap_core::{Mmu, MmuConfig, TranslationPath};
use asap_os::AsapOsConfig;
use asap_types::Asid;
use asap_workloads::{AccessStream, CoRunner, WorkloadSpec};

/// Derives the OS-side ASAP configuration from the hardware levels: the OS
/// reserves sorted regions exactly for the levels hardware will prefetch.
fn os_asap(spec: &NativeRunSpec) -> AsapOsConfig {
    if spec.asap.is_enabled() {
        AsapOsConfig {
            levels: spec.asap.levels.clone(),
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    } else {
        AsapOsConfig::disabled()
    }
}

fn effective_workload(spec: &NativeRunSpec) -> WorkloadSpec {
    let mut w = spec.workload.clone();
    if let Some(run) = spec.pt_scatter_run_override {
        w.pt_scatter_run = run;
    }
    w
}

/// Runs one native configuration and returns its measurements.
///
/// The driver loop models an in-order core: each application reference is
/// (1) demand-paged by the OS if new, (2) translated by the MMU (TLBs →
/// clustered TLB → walk with ASAP prefetches), (3) performed as a data
/// access through the cache hierarchy, with fixed non-memory work in
/// between; the colocated co-runner injects one random line per reference
/// (§4). Statistics reset after warmup.
///
/// # Panics
///
/// Panics if the workload generates an address outside its VMAs (a
/// generator bug caught loudly rather than silently skipped).
#[must_use]
pub fn run_native(spec: &NativeRunSpec) -> RunResult {
    let workload = effective_workload(spec);
    let seed = spec.sim.seed;
    let mut process = workload.build_process(Asid(1), os_asap(spec), seed);
    // Exercise the paging-mode knob through the process config when the
    // 5-level ablation is requested.
    if spec.paging_mode == asap_types::PagingMode::FiveLevel {
        process = asap_os::Process::new(
            workload
                .process_config(Asid(1), os_asap(spec), seed)
                .with_paging_mode(asap_types::PagingMode::FiveLevel),
        );
    }
    let mut stream = workload.build_stream(&process, seed ^ 0x11);
    let mut mmu_config = MmuConfig::default()
        .with_asap(spec.asap.clone())
        .with_pwc(spec.pwc.clone())
        .with_seed(seed);
    if spec.clustered_tlb {
        mmu_config = mmu_config.with_clustered_tlb();
    }
    let mut mmu = Mmu::new(mmu_config);
    mmu.load_context(process.vma_descriptors());
    let mut corunner = spec
        .colocated
        .then(|| CoRunner::memory_intensive(seed ^ 0xC0));

    let total = spec.sim.warmup_accesses + spec.sim.measure_accesses;
    let mut window_start_cycle = 0u64;
    let mut walk_cycles = 0u64;
    let mut prefetches_issued = 0u64;
    let mut prefetches_dropped = 0u64;
    for i in 0..total {
        if i == spec.sim.warmup_accesses {
            mmu.reset_stats();
            walk_cycles = 0;
            prefetches_issued = 0;
            prefetches_dropped = 0;
            window_start_cycle = mmu.now();
        }
        let va = stream.next_va();
        // OS demand paging happens off the measured path (a faulting access
        // costs microseconds of OS work either way; the paper's walk-latency
        // metric covers successful walks).
        process
            .touch(va)
            .expect("workload streams stay inside their VMAs");
        let pa = if spec.perfect_tlb {
            // Table 6 methodology: translation is free ("no page walks").
            process
                .translate(va)
                .map(|t| t.phys_addr(va))
                .expect("touched page translates")
        } else {
            let outcome = mmu.translate(
                process.mem(),
                process.page_table(),
                process.asid(),
                va,
                spec.clustered_tlb
                    .then_some(&process as &dyn asap_core::ClusterSource),
            );
            if outcome.path == TranslationPath::Walk {
                walk_cycles += outcome.latency;
                if let Some(walk) = &outcome.walk {
                    prefetches_issued += u64::from(walk.prefetches_issued);
                    prefetches_dropped += u64::from(walk.prefetches_dropped);
                }
            }
            outcome.phys.expect("touched page translates")
        };
        let _ = mmu.data_access(pa);
        mmu.advance(CPU_WORK_CYCLES_PER_ACCESS);
        if let Some(co) = corunner.as_mut() {
            for line in co.next_lines() {
                mmu.corunner_access(line);
            }
        }
    }

    let l2 = *mmu.l2_tlb_stats();
    RunResult {
        workload: spec.workload.name,
        label: spec.label(),
        walks: mmu.walk_stats().clone(),
        served: *mmu.served_matrix(),
        host_served: None,
        l2_tlb_misses: l2.misses,
        l2_tlb_accesses: l2.accesses(),
        instructions: spec.sim.measure_accesses * INSTRUCTIONS_PER_ACCESS,
        cycles: mmu.now() - window_start_cycle,
        walk_cycles,
        prefetches_issued,
        prefetches_dropped,
        faults: mmu.walk_faults(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use asap_core::AsapHwConfig;
    use asap_types::ByteSize;

    /// A small workload so tests run in milliseconds.
    fn small() -> WorkloadSpec {
        WorkloadSpec {
            footprint: ByteSize::mib(256),
            ..WorkloadSpec::mc80()
        }
    }

    #[test]
    fn baseline_run_produces_walks() {
        let spec = NativeRunSpec::baseline(small()).with_sim(SimConfig::smoke_test());
        let r = run_native(&spec);
        assert!(r.walks.count() > 100, "uniform random must miss TLBs");
        assert!(r.avg_walk_latency() > 0.0);
        assert_eq!(r.faults, 0);
        assert!(r.cycles > 0);
        assert!(r.walk_fraction() > 0.0 && r.walk_fraction() < 1.0);
    }

    #[test]
    fn asap_reduces_walk_latency() {
        let sim = SimConfig::smoke_test();
        let base = run_native(&NativeRunSpec::baseline(small()).with_sim(sim));
        let p12 = run_native(
            &NativeRunSpec::baseline(small())
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        );
        assert!(p12.prefetches_issued > 0);
        assert!(
            p12.avg_walk_latency() < base.avg_walk_latency(),
            "ASAP {} !< baseline {}",
            p12.avg_walk_latency(),
            base.avg_walk_latency()
        );
    }

    #[test]
    fn colocation_increases_walk_latency() {
        let sim = SimConfig::smoke_test();
        let iso = run_native(&NativeRunSpec::baseline(small()).with_sim(sim));
        let coloc = run_native(&NativeRunSpec::baseline(small()).colocated().with_sim(sim));
        assert!(
            coloc.avg_walk_latency() > iso.avg_walk_latency(),
            "coloc {} !> iso {}",
            coloc.avg_walk_latency(),
            iso.avg_walk_latency()
        );
    }

    #[test]
    fn perfect_tlb_run_has_no_walks() {
        let spec = NativeRunSpec::baseline(small())
            .perfect_tlb()
            .with_sim(SimConfig::smoke_test());
        let r = run_native(&spec);
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = NativeRunSpec::baseline(small()).with_sim(SimConfig::smoke_test());
        let a = run_native(&spec);
        let b = run_native(&spec);
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.cycles, b.cycles);
    }
}
