//! ASCII/markdown table rendering for the experiment binaries.

/// A simple table renderer producing GitHub-flavoured markdown that is also
/// readable as plain text.
///
/// # Examples
///
/// ```
/// use asap_sim::Table;
/// let mut t = Table::new("Demo", vec!["workload", "latency"]);
/// t.row(vec!["mcf".into(), "44.0".into()]);
/// let s = t.render();
/// assert!(s.contains("| mcf"));
/// assert!(s.contains("## Demo"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: Vec<&str>) -> Self {
        Self {
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table as markdown with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join(" | ");
            format!("| {body} |\n")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out.push('\n');
        out
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a cycle count with one decimal.
#[must_use]
pub fn fmt_cycles(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a ratio ("2.7x").
#[must_use]
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("T", vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("## T"));
        assert!(s.contains("| a      | long-header |"));
        assert!(s.contains("| xxxxxx | 1           |"));
        assert!(s.contains("| ------ | ----------- |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T", vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_cycles(44.04), "44.0");
        assert_eq!(fmt_pct(0.253), "25.3%");
        assert_eq!(fmt_ratio(2.71), "2.7x");
    }
}
