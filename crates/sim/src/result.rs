//! Results of one run.

use asap_core::{ServedByMatrix, WalkLatencyStats};

/// Everything a paper table/figure needs from one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The workload's name ("mcf", "mc80", ...).
    pub workload: &'static str,
    /// The configuration label ("Baseline", "P1+P2 coloc", ...).
    pub label: String,
    /// Walk-latency statistics over the measurement window.
    pub walks: WalkLatencyStats,
    /// Per-level serving sources (Fig. 9). For virtualized runs this is the
    /// guest dimension.
    pub served: ServedByMatrix,
    /// Host-dimension serving sources (virtualized runs only).
    pub host_served: Option<ServedByMatrix>,
    /// L2 S-TLB misses in the window.
    pub l2_tlb_misses: u64,
    /// L2 S-TLB accesses in the window.
    pub l2_tlb_accesses: u64,
    /// Instructions retired (the MPKI denominator).
    pub instructions: u64,
    /// Total cycles in the window.
    pub cycles: u64,
    /// Cycles spent in page walks.
    pub walk_cycles: u64,
    /// ASAP prefetches issued.
    pub prefetches_issued: u64,
    /// ASAP prefetches dropped (MSHRs full).
    pub prefetches_dropped: u64,
    /// Walks that ended in page faults (should be 0: the driver pre-touches
    /// pages).
    pub faults: u64,
}

impl RunResult {
    /// Mean page-walk latency in cycles — the headline metric.
    #[must_use]
    pub fn avg_walk_latency(&self) -> f64 {
        self.walks.mean()
    }

    /// L2-TLB misses per kilo-instruction (Table 7 metric).
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_tlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of execution cycles spent in walks (Fig. 2 metric).
    #[must_use]
    pub fn walk_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.walk_cycles as f64 / self.cycles as f64
        }
    }

    /// Relative walk-latency reduction versus a baseline run
    /// (`1 - this/base`), the paper's headline percentage.
    #[must_use]
    pub fn reduction_vs(&self, baseline: &RunResult) -> f64 {
        let base = baseline.avg_walk_latency();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.avg_walk_latency() / base
        }
    }

    /// Relative reduction in *total walk cycles* versus a baseline
    /// (Fig. 11's metric, which also credits eliminated walks).
    #[must_use]
    pub fn walk_cycles_reduction_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.walk_cycles == 0 {
            0.0
        } else {
            1.0 - self.walk_cycles as f64 / baseline.walk_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(walk_cycles: u64, cycles: u64) -> RunResult {
        let mut walks = WalkLatencyStats::new();
        walks.record(walk_cycles);
        RunResult {
            workload: "test",
            label: "x".into(),
            walks,
            served: ServedByMatrix::new(),
            host_served: None,
            l2_tlb_misses: 10,
            l2_tlb_accesses: 100,
            instructions: 1000,
            cycles,
            walk_cycles,
            prefetches_issued: 0,
            prefetches_dropped: 0,
            faults: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let base = result(200, 1000);
        let asap = result(100, 900);
        assert!((base.mpki() - 10.0).abs() < 1e-12);
        assert!((base.walk_fraction() - 0.2).abs() < 1e-12);
        assert!((asap.reduction_vs(&base) - 0.5).abs() < 1e-12);
        assert!((asap.walk_cycles_reduction_vs(&base) - 0.5).abs() < 1e-12);
    }
}
