//! Results of one run.

use asap_core::{ServedByMatrix, WalkLatencyStats};
use asap_telemetry::RunTelemetry;

/// Everything a paper table/figure needs from one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The workload's name ("mcf", "mc80", ...). Owned: per-core rows of a
    /// multi-core run stamp composed names ("mc80@core0") without leaking.
    pub workload: String,
    /// The configuration label ("Baseline", "P1+P2 coloc", ...).
    pub label: String,
    /// Walk-latency statistics over the measurement window.
    pub walks: WalkLatencyStats,
    /// Per-level serving sources (Fig. 9). For virtualized runs this is the
    /// guest dimension.
    pub served: ServedByMatrix,
    /// Host-dimension serving sources (virtualized runs only).
    pub host_served: Option<ServedByMatrix>,
    /// L2 S-TLB misses in the window.
    pub l2_tlb_misses: u64,
    /// L2 S-TLB accesses in the window.
    pub l2_tlb_accesses: u64,
    /// Instructions retired (the MPKI denominator).
    pub instructions: u64,
    /// Total cycles in the window.
    pub cycles: u64,
    /// Cycles spent in page walks.
    pub walk_cycles: u64,
    /// ASAP prefetches issued.
    pub prefetches_issued: u64,
    /// ASAP prefetches dropped (MSHRs full).
    pub prefetches_dropped: u64,
    /// Walks that ended in page faults (should be 0: the driver pre-touches
    /// pages).
    pub faults: u64,
}

impl RunResult {
    /// Mean page-walk latency in cycles — the headline metric.
    #[must_use]
    pub fn avg_walk_latency(&self) -> f64 {
        self.walks.mean()
    }

    /// L2-TLB misses per kilo-instruction (Table 7 metric).
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_tlb_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Fraction of execution cycles spent in walks (Fig. 2 metric).
    #[must_use]
    pub fn walk_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.walk_cycles as f64 / self.cycles as f64
        }
    }

    /// Relative walk-latency reduction versus a baseline run
    /// (`1 - this/base`), the paper's headline percentage.
    #[must_use]
    pub fn reduction_vs(&self, baseline: &RunResult) -> f64 {
        let base = baseline.avg_walk_latency();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.avg_walk_latency() / base
        }
    }

    /// Relative reduction in *total walk cycles* versus a baseline
    /// (Fig. 11's metric, which also credits eliminated walks).
    #[must_use]
    pub fn walk_cycles_reduction_vs(&self, baseline: &RunResult) -> f64 {
        if baseline.walk_cycles == 0 {
            0.0
        } else {
            1.0 - self.walk_cycles as f64 / baseline.walk_cycles as f64
        }
    }
}

/// What one executed [`RunSpec`](crate::RunSpec) produces: the aggregate
/// measurements plus, for multi-core runs, every core's own row.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The whole-machine measurements. For a single-core run this IS the
    /// run's result; for N cores it merges walk/TLB/prefetch counters
    /// across cores and takes the longest core window as the cycle count.
    pub aggregate: RunResult,
    /// Per-core rows ("mc80@core0", "corunner@core1", ...), in core order.
    /// Empty for single-core runs.
    pub per_core: Vec<RunResult>,
    /// Telemetry harvested from the run — `Some` only when the spec
    /// enabled tracing, metrics or profiling.
    pub telemetry: Option<RunTelemetry>,
}

impl RunOutput {
    /// Wraps a single-core result (no per-core breakdown).
    #[must_use]
    pub fn single(aggregate: RunResult) -> Self {
        Self {
            aggregate,
            per_core: Vec::new(),
            telemetry: None,
        }
    }

    /// Attaches harvested telemetry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Option<RunTelemetry>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Builds the aggregate row of a multi-core run by merging `per_core`.
    ///
    /// Counters (walks, TLB misses, walk cycles, prefetches, faults,
    /// instructions) sum across cores; `cycles` is the longest per-core
    /// measurement window (the machine's wall-clock for the run). Note
    /// that derived `walk_fraction` on the aggregate therefore measures
    /// walker-busy *core*-cycles per machine wall cycle — a concurrency
    /// number that legitimately exceeds 1 when several walkers overlap.
    ///
    /// # Panics
    ///
    /// Panics on an empty `per_core` slice (a harness bug).
    #[must_use]
    pub fn aggregate_of(workload: &str, per_core: Vec<RunResult>) -> Self {
        let first = per_core.first().expect("at least one core");
        let mut walks = asap_core::WalkLatencyStats::new();
        let mut served = asap_core::ServedByMatrix::new();
        let mut host_served: Option<asap_core::ServedByMatrix> = None;
        let mut aggregate = RunResult {
            workload: workload.to_string(),
            label: first.label.clone(),
            walks: asap_core::WalkLatencyStats::new(),
            served,
            host_served: None,
            l2_tlb_misses: 0,
            l2_tlb_accesses: 0,
            instructions: 0,
            cycles: 0,
            walk_cycles: 0,
            prefetches_issued: 0,
            prefetches_dropped: 0,
            faults: 0,
        };
        for core in &per_core {
            walks.merge(&core.walks);
            served.merge(&core.served);
            if let Some(h) = &core.host_served {
                host_served
                    .get_or_insert_with(asap_core::ServedByMatrix::new)
                    .merge(h);
            }
            aggregate.l2_tlb_misses += core.l2_tlb_misses;
            aggregate.l2_tlb_accesses += core.l2_tlb_accesses;
            aggregate.instructions += core.instructions;
            aggregate.cycles = aggregate.cycles.max(core.cycles);
            aggregate.walk_cycles += core.walk_cycles;
            aggregate.prefetches_issued += core.prefetches_issued;
            aggregate.prefetches_dropped += core.prefetches_dropped;
            aggregate.faults += core.faults;
        }
        aggregate.walks = walks;
        aggregate.served = served;
        aggregate.host_served = host_served;
        Self {
            aggregate,
            per_core,
            telemetry: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(walk_cycles: u64, cycles: u64) -> RunResult {
        let mut walks = WalkLatencyStats::new();
        walks.record(walk_cycles);
        RunResult {
            workload: "test".into(),
            label: "x".into(),
            walks,
            served: ServedByMatrix::new(),
            host_served: None,
            l2_tlb_misses: 10,
            l2_tlb_accesses: 100,
            instructions: 1000,
            cycles,
            walk_cycles,
            prefetches_issued: 0,
            prefetches_dropped: 0,
            faults: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let base = result(200, 1000);
        let asap = result(100, 900);
        assert!((base.mpki() - 10.0).abs() < 1e-12);
        assert!((base.walk_fraction() - 0.2).abs() < 1e-12);
        assert!((asap.reduction_vs(&base) - 0.5).abs() < 1e-12);
        assert!((asap.walk_cycles_reduction_vs(&base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_merges_counters_and_takes_the_longest_window() {
        let mut a = result(200, 1000);
        a.workload = "w@core0".into();
        let mut b = result(100, 900);
        b.workload = "w@core1".into();
        let out = RunOutput::aggregate_of("w", vec![a, b]);
        assert_eq!(out.aggregate.workload, "w");
        assert_eq!(out.aggregate.walks.count(), 2);
        assert_eq!(out.aggregate.walk_cycles, 300);
        assert_eq!(out.aggregate.cycles, 1000, "longest core window wins");
        assert_eq!(out.aggregate.l2_tlb_misses, 20);
        assert_eq!(out.aggregate.instructions, 2000);
        assert_eq!(out.per_core.len(), 2);
        assert_eq!(out.per_core[0].workload, "w@core0");

        let single = RunOutput::single(result(5, 50));
        assert!(single.per_core.is_empty());
    }
}
