//! Byte-exact serialization of [`RunResult`] / [`RunOutput`] for the
//! result cache.
//!
//! Every field of a [`RunResult`] is an integer or a string, so a
//! decimal re-emit is lossless by construction — there is no float
//! formatting anywhere in this codec, which is what makes "cached rows
//! can never drift from fresh ones" a structural guarantee rather than a
//! rounding promise. The golden test below pins the exact byte layout;
//! `parse(serialize(x)) == x` and `serialize(parse(s)) == s` both hold.
//!
//! The cache payload wraps the [`RunOutput`] rows with a codec version
//! (decoders reject unknown versions, which the cache treats as a miss)
//! and the observed wall-clock of the producing run (the executor's
//! cost hint — advisory, never part of any reported statistic).

use crate::json::{escape, JsonParseError, Parser};
use crate::{RunOutput, RunResult};
use asap_core::{ServedByMatrix, WalkLatencyStats};
use std::fmt::Write as _;

/// Version stamp of the payload layout; bump on any byte-layout change.
pub const CODEC_VERSION: u64 = 1;

/// Serializes one result row as a single-line JSON object.
#[must_use]
pub fn result_to_json(r: &RunResult) -> String {
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"workload\":\"{}\",\"label\":\"{}\"",
        escape(&r.workload),
        escape(&r.label)
    );
    for (name, value) in [
        ("l2_tlb_misses", r.l2_tlb_misses),
        ("l2_tlb_accesses", r.l2_tlb_accesses),
        ("instructions", r.instructions),
        ("cycles", r.cycles),
        ("walk_cycles", r.walk_cycles),
        ("prefetches_issued", r.prefetches_issued),
        ("prefetches_dropped", r.prefetches_dropped),
        ("faults", r.faults),
    ] {
        let _ = write!(out, ",\"{name}\":{value}");
    }
    let _ = write!(
        out,
        ",\"walks\":{{\"count\":{},\"total_cycles\":{},\"min\":{},\"max\":{},\"buckets\":{}}}",
        r.walks.count(),
        r.walks.total_cycles(),
        r.walks.min(),
        r.walks.max(),
        u64_array(r.walks.buckets())
    );
    let _ = write!(out, ",\"served\":{}", matrix(&r.served));
    match &r.host_served {
        Some(h) => {
            let _ = write!(out, ",\"host_served\":{}", matrix(h));
        }
        None => out.push_str(",\"host_served\":null"),
    }
    out.push('}');
    out
}

/// Parses a row serialized by [`result_to_json`].
///
/// # Errors
///
/// [`JsonParseError`] on malformed input or schema drift.
pub fn result_from_json(input: &str) -> Result<RunResult, JsonParseError> {
    let mut p = Parser::new(input);
    let row = parse_result(&mut p)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing content after result row"));
    }
    Ok(row)
}

/// Serializes a cache payload: codec version, observed wall-clock of the
/// producing run, and the output's aggregate + per-core rows.
#[must_use]
pub fn encode_payload(output: &RunOutput, elapsed_nanos: u64) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"codec_version\":{CODEC_VERSION},\"elapsed_nanos\":{elapsed_nanos},\"aggregate\":{},\"per_core\":[",
        result_to_json(&output.aggregate)
    );
    for (i, core) in output.per_core.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&result_to_json(core));
    }
    out.push_str("]}");
    out
}

/// Decodes a payload produced by [`encode_payload`] back into a
/// [`RunOutput`] (telemetry is `None` — cached entries never carry live
/// artifacts) plus the stored wall-clock cost hint.
///
/// # Errors
///
/// [`JsonParseError`] on malformed input, schema drift, or an unknown
/// codec version — callers treat any error as a cache miss.
pub fn decode_payload(input: &str) -> Result<(RunOutput, u64), JsonParseError> {
    let mut p = Parser::new(input);
    p.expect_char('{')?;
    p.key("codec_version")?;
    let version = p.u64_value()?;
    if version != CODEC_VERSION {
        return Err(p.err(format!("unknown codec version {version}")));
    }
    p.expect_char(',')?;
    p.key("elapsed_nanos")?;
    let elapsed_nanos = p.u64_value()?;
    p.expect_char(',')?;
    p.key("aggregate")?;
    let aggregate = parse_result(&mut p)?;
    p.expect_char(',')?;
    p.key("per_core")?;
    p.expect_char('[')?;
    let mut per_core = Vec::new();
    if !p.eat(']') {
        loop {
            per_core.push(parse_result(&mut p)?);
            if !p.eat(',') {
                break;
            }
        }
        p.expect_char(']')?;
    }
    p.expect_char('}')?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing content after payload"));
    }
    Ok((
        RunOutput {
            aggregate,
            per_core,
            telemetry: None,
        },
        elapsed_nanos,
    ))
}

fn u64_array(values: &[u64]) -> String {
    let mut out = String::with_capacity(values.len() * 4 + 2);
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// A served-by matrix as a flat 25-element row-major array (depth 1..=5
/// rows, PWC/L1/L2/LLC/Mem columns).
fn matrix(m: &ServedByMatrix) -> String {
    let rows = m.raw_counts();
    let flat: Vec<u64> = rows.iter().flat_map(|row| row.iter().copied()).collect();
    u64_array(&flat)
}

fn parse_u64_array<const N: usize>(p: &mut Parser<'_>) -> Result<[u64; N], JsonParseError> {
    p.expect_char('[')?;
    let mut out = [0u64; N];
    for (i, slot) in out.iter_mut().enumerate() {
        if i > 0 {
            p.expect_char(',')?;
        }
        *slot = p.u64_value()?;
    }
    p.expect_char(']')?;
    Ok(out)
}

fn parse_matrix(p: &mut Parser<'_>) -> Result<ServedByMatrix, JsonParseError> {
    let flat: [u64; 25] = parse_u64_array(p)?;
    let mut counts = [[0u64; 5]; 5];
    for (i, v) in flat.iter().enumerate() {
        counts[i / 5][i % 5] = *v;
    }
    Ok(ServedByMatrix::from_raw_counts(counts))
}

fn parse_result(p: &mut Parser<'_>) -> Result<RunResult, JsonParseError> {
    p.expect_char('{')?;
    p.key("workload")?;
    let workload = p.string()?;
    p.expect_char(',')?;
    p.key("label")?;
    let label = p.string()?;
    let mut counters = [0u64; 8];
    for (name, slot) in [
        "l2_tlb_misses",
        "l2_tlb_accesses",
        "instructions",
        "cycles",
        "walk_cycles",
        "prefetches_issued",
        "prefetches_dropped",
        "faults",
    ]
    .iter()
    .zip(counters.iter_mut())
    {
        p.expect_char(',')?;
        p.key(name)?;
        *slot = p.u64_value()?;
    }
    p.expect_char(',')?;
    p.key("walks")?;
    p.expect_char('{')?;
    p.key("count")?;
    let count = p.u64_value()?;
    p.expect_char(',')?;
    p.key("total_cycles")?;
    let total_cycles = p.u64_value()?;
    p.expect_char(',')?;
    p.key("min")?;
    let min = p.u64_value()?;
    p.expect_char(',')?;
    p.key("max")?;
    let max = p.u64_value()?;
    p.expect_char(',')?;
    p.key("buckets")?;
    let buckets: [u64; 16] = parse_u64_array(p)?;
    p.expect_char('}')?;
    let walks = WalkLatencyStats::from_raw(count, total_cycles, min, max, buckets);
    p.expect_char(',')?;
    p.key("served")?;
    let served = parse_matrix(p)?;
    p.expect_char(',')?;
    p.key("host_served")?;
    let host_served = if p.eat_keyword("null") {
        None
    } else {
        Some(parse_matrix(p)?)
    };
    p.expect_char('}')?;
    let [l2_tlb_misses, l2_tlb_accesses, instructions, cycles, walk_cycles, prefetches_issued, prefetches_dropped, faults] =
        counters;
    Ok(RunResult {
        workload,
        label,
        walks,
        served,
        host_served,
        l2_tlb_misses,
        l2_tlb_accesses,
        instructions,
        cycles,
        walk_cycles,
        prefetches_issued,
        prefetches_dropped,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_cache::ServedBy;
    use asap_core::{ServedSource, WalkLatencyStats};
    use asap_types::PtLevel;

    fn sample(host: bool) -> RunResult {
        let mut walks = WalkLatencyStats::new();
        for l in [12u64, 80, 300] {
            walks.record(l);
        }
        let mut served = ServedByMatrix::new();
        served.record(PtLevel::Pl1, ServedSource::Pwc);
        served.record(PtLevel::Pl2, ServedSource::Cache(ServedBy::Memory));
        let mut host_served = None;
        if host {
            let mut h = ServedByMatrix::new();
            h.record(PtLevel::Pl3, ServedSource::Cache(ServedBy::L2));
            host_served = Some(h);
        }
        RunResult {
            workload: "mc80".into(),
            label: "P1+P2 coloc".into(),
            walks,
            served,
            host_served,
            l2_tlb_misses: 11,
            l2_tlb_accesses: 222,
            instructions: 3333,
            cycles: 44444,
            walk_cycles: 555,
            prefetches_issued: 66,
            prefetches_dropped: 7,
            faults: 0,
        }
    }

    #[test]
    fn golden_row_bytes() {
        let json = result_to_json(&sample(false));
        let golden = concat!(
            "{\"workload\":\"mc80\",\"label\":\"P1+P2 coloc\",",
            "\"l2_tlb_misses\":11,\"l2_tlb_accesses\":222,\"instructions\":3333,",
            "\"cycles\":44444,\"walk_cycles\":555,\"prefetches_issued\":66,",
            "\"prefetches_dropped\":7,\"faults\":0,",
            "\"walks\":{\"count\":3,\"total_cycles\":392,\"min\":12,\"max\":300,",
            "\"buckets\":[0,0,0,1,0,0,1,0,1,0,0,0,0,0,0,0]},",
            "\"served\":[1,0,0,0,0,0,0,0,0,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],",
            "\"host_served\":null}"
        );
        assert_eq!(json, golden);
    }

    #[test]
    fn roundtrip_both_directions() {
        for host in [false, true] {
            let row = sample(host);
            let json = result_to_json(&row);
            let back = result_from_json(&json).unwrap();
            assert_eq!(back, row);
            assert_eq!(result_to_json(&back), json, "re-emit is byte-identical");
        }
    }

    #[test]
    fn empty_stats_roundtrip() {
        let mut row = sample(false);
        row.walks = WalkLatencyStats::new();
        let back = result_from_json(&result_to_json(&row)).unwrap();
        assert_eq!(back, row, "empty-min sentinel survives the round trip");
    }

    #[test]
    fn payload_roundtrip_and_version_gate() {
        let output = RunOutput {
            aggregate: sample(true),
            per_core: vec![sample(false), sample(false)],
            telemetry: None,
        };
        let payload = encode_payload(&output, 123_456);
        let (back, elapsed) = decode_payload(&payload).unwrap();
        assert_eq!(elapsed, 123_456);
        assert_eq!(back.aggregate, output.aggregate);
        assert_eq!(back.per_core, output.per_core);
        assert!(back.telemetry.is_none());
        assert_eq!(encode_payload(&back, elapsed), payload);

        let future = payload.replacen("\"codec_version\":1", "\"codec_version\":2", 1);
        assert!(decode_payload(&future).is_err(), "unknown version rejected");
        assert!(decode_payload("{\"codec_version\":1").is_err());
    }

    #[test]
    fn escaped_labels_survive() {
        let mut row = sample(false);
        row.label = "odd \"label\"\nwith\tescapes".into();
        let back = result_from_json(&result_to_json(&row)).unwrap();
        assert_eq!(back.label, row.label);
    }
}
