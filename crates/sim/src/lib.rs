//! The simulation driver for the ASAP reproduction.
//!
//! Assembles a full machine — workload process (or VM), MMU (or nested
//! MMU), optional SMT co-runner — runs a warmup window followed by a
//! measurement window, and collects the statistics every paper table and
//! figure is built from:
//!
//! * [`run_native`] — native execution (Figs. 3/8/9/11, Tables 1/2/6/7);
//! * [`run_virt`] — virtualized execution (Figs. 3/10/12, Table 1);
//! * [`parallel_map`] — deterministic fan-out of independent runs across
//!   host threads;
//! * [`Table`] — the ASCII/markdown renderer used by every experiment
//!   binary.
//!
//! # Examples
//!
//! ```
//! use asap_sim::{NativeRunSpec, SimConfig};
//! use asap_workloads::WorkloadSpec;
//!
//! let spec = NativeRunSpec::baseline(WorkloadSpec::mcf())
//!     .with_sim(SimConfig::smoke_test());
//! let result = asap_sim::run_native(&spec);
//! assert!(result.walks.count() > 0);
//! assert!(result.walks.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cycles;
mod native;
mod parallel;
mod report;
mod result;
mod virt;

pub use config::{NativeRunSpec, SimConfig, VirtRunSpec};
pub use cycles::{CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
pub use native::run_native;
pub use parallel::parallel_map;
pub use report::{fmt_cycles, fmt_pct, fmt_ratio, Table};
pub use result::RunResult;
pub use virt::run_virt;
