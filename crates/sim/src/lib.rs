//! The simulation driver for the ASAP reproduction.
//!
//! Assembles a full machine — workload process (or VM), translation engine
//! (native or nested MMU), optional SMT co-runner — runs a warmup window
//! followed by a measurement window, and collects the statistics every
//! paper table and figure is built from:
//!
//! * [`run_scenario`] — the ONE generic driver loop, over any
//!   [`asap_core::TranslationEngine`];
//! * [`run_native`] / [`run_virt`] / [`run_contender`] — thin wrappers
//!   assembling the native (Figs. 3/8/9/11, Tables 1/2/6/7), virtualized
//!   (Figs. 3/10/12, Table 1) and contender-backend (Victima/Revelator
//!   head-to-head) machines for it;
//! * [`scenarios`] — the registry naming every paper experiment as an
//!   enumerable workload × engine × window cross product;
//! * [`parallel_map`] — deterministic fan-out of independent runs across
//!   host threads;
//! * [`Table`] / [`results_to_json`] — the markdown renderer and the
//!   machine-readable `BENCH_results.json` emitter used by the experiment
//!   binaries.
//!
//! # Examples
//!
//! ```
//! use asap_sim::{NativeRunSpec, SimConfig};
//! use asap_workloads::WorkloadSpec;
//!
//! let spec = NativeRunSpec::baseline(WorkloadSpec::mcf())
//!     .with_sim(SimConfig::smoke_test());
//! let result = asap_sim::run_native(&spec).expect("well-formed spec");
//! assert!(result.walks.count() > 0);
//! assert!(result.walks.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod contender;
mod cycles;
mod driver;
mod json;
mod native;
mod parallel;
mod report;
mod result;
pub mod scenarios;
mod virt;

pub use config::{ContenderRunSpec, NativeRunSpec, SimConfig, VirtRunSpec};
pub use contender::run_contender;
pub use cycles::{CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
pub use driver::{run_scenario, DriverError, RunMeta};
pub use json::results_to_json;
pub use native::run_native;
pub use parallel::parallel_map;
pub use report::{fmt_cycles, fmt_pct, fmt_ratio, Table};
pub use result::RunResult;
pub use virt::run_virt;
