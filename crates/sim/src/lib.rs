//! The simulation driver for the ASAP reproduction.
//!
//! Assembles a full machine — workload process (or VM), translation engine
//! (baseline, ASAP, or a contender backend), optional SMT co-runner — runs
//! a warmup window followed by a measurement window, and collects the
//! statistics every paper table and figure is built from:
//!
//! * [`RunSpec`] — the ONE unified run specification: `workload ×`
//!   [`EngineSelect`] `×` [`MachineSelect`] `× cores × knobs`, executed
//!   with [`RunSpec::run`] / [`RunSpec::run_split`] (machine assembly is
//!   internal dispatch; `cores > 1` builds N engines over one shared
//!   memory fabric and returns per-core plus aggregate rows);
//! * [`run_cores`] / [`run_scenario`] — the one generic cycle-interleaved
//!   driver loop, over any [`asap_core::TranslationEngine`];
//! * [`scenarios`] — the declarative registry naming every paper
//!   experiment as a workload × engine × machine cross product;
//! * [`parallel_map`] — deterministic fan-out of independent runs across
//!   host threads;
//! * [`Table`] / [`results_to_json`] / [`BenchDoc`] — the markdown
//!   renderer and the machine-readable `BENCH_results.json`
//!   emitter/parser used by the `asap` CLI.
//!
//! # Examples
//!
//! ```
//! use asap_sim::{EngineSelect, RunSpec, SimConfig};
//! use asap_workloads::WorkloadSpec;
//!
//! let result = RunSpec::new(WorkloadSpec::mcf())
//!     .with_engine(EngineSelect::asap_p1_p2())
//!     .with_sim(SimConfig::smoke_test())
//!     .run()
//!     .expect("well-formed spec");
//! assert!(result.walks.count() > 0);
//! assert!(result.walks.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod codec;
mod config;
mod contender;
mod cycles;
mod driver;
mod json;
mod native;
mod observe;
mod parallel;
mod report;
mod result;
pub mod scenarios;
pub mod sched;
mod smp;
mod virt;

pub use asap_store::{CacheHandle, CacheKey, CacheStats, CostProfile};
pub use asap_telemetry::{RunTelemetry, TelemetryConfig};
pub use cache::{engine_fingerprint, SIM_SEMVER};
pub use codec::{decode_payload, encode_payload, result_from_json, result_to_json, CODEC_VERSION};
pub use config::{EngineSelect, MachineSelect, RunSpec, SimConfig, MAX_CORES, MAX_NUMA_NODES};
pub use cycles::{CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
pub use driver::{
    run_cores, run_cores_observed, run_scenario, run_scenario_observed, CoreSlot, DriverError,
    DriverErrorKind, DriverObserver, RunMeta,
};
pub use json::{results_to_json, BenchDoc, BenchError, BenchRun, BenchScenario, JsonParseError};
pub use parallel::{parallel_map, parallel_map_prioritized};
pub use report::{fmt_cycles, fmt_pct, fmt_ratio, Table};
pub use result::{RunOutput, RunResult};
