//! Minimal JSON rendering for machine-readable benchmark results.
//!
//! The workspace is offline (no serde); this hand-rolled writer covers the
//! flat schema `BENCH_results.json` needs. Runs are fully deterministic
//! (seeded simulation), so the emitted file is byte-stable across hosts —
//! diffing it between commits IS the perf-trajectory check.

use crate::scenarios::ScenarioResults;
use crate::RunResult;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; the metrics
/// emitted here are ratios and means, never NaN/inf).
fn num(x: f64) -> String {
    debug_assert!(x.is_finite());
    format!("{x:.4}")
}

fn run_json(r: &RunResult, workload: &str, variant: &str, indent: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{indent}{{\"workload\": \"{}\", \"variant\": \"{}\", \"label\": \"{}\", ",
        escape(workload),
        escape(variant),
        escape(&r.label)
    );
    let _ = write!(
        s,
        "\"walks\": {}, \"avg_walk_latency\": {}, \"walk_cycles\": {}, \"cycles\": {}, ",
        r.walks.count(),
        num(r.avg_walk_latency()),
        r.walk_cycles,
        r.cycles
    );
    let _ = write!(
        s,
        "\"walk_fraction\": {}, \"mpki\": {}, \"l2_tlb_misses\": {}, \"l2_tlb_accesses\": {}, ",
        num(r.walk_fraction()),
        num(r.mpki()),
        r.l2_tlb_misses,
        r.l2_tlb_accesses
    );
    let _ = write!(
        s,
        "\"instructions\": {}, \"prefetches_issued\": {}, \"prefetches_dropped\": {}, \"faults\": {}}}",
        r.instructions, r.prefetches_issued, r.prefetches_dropped, r.faults
    );
    s
}

/// Renders a full scenario-results set as the `BENCH_results.json` schema.
///
/// `tier` records the window scale the numbers were produced at ("full",
/// "quick" or "smoke") so trajectory diffs never compare across scales.
///
/// # Examples
///
/// ```
/// use asap_sim::scenarios::find;
/// use asap_sim::{results_to_json, SimConfig};
///
/// let results = [find("smoke").unwrap().run(SimConfig::smoke_test())];
/// let json = results_to_json(&results, "smoke");
/// assert!(json.starts_with('{'));
/// assert!(json.contains("\"scenario\": \"smoke\""));
/// ```
#[must_use]
pub fn results_to_json(results: &[ScenarioResults], tier: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"tier\": \"{}\",", escape(tier));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in results.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"scenario\": \"{}\", \"runs\": [",
            escape(sc.name)
        );
        for (j, r) in sc.runs.iter().enumerate() {
            s.push_str(&run_json(&r.result, r.workload, &r.variant, "      "));
            s.push_str(if j + 1 < sc.runs.len() { ",\n" } else { "\n" });
        }
        s.push_str("    ]}");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{ScenarioResults, ScenarioRunResult};
    use asap_core::{ServedByMatrix, WalkLatencyStats};

    fn result() -> RunResult {
        let mut walks = WalkLatencyStats::new();
        walks.record(100);
        RunResult {
            workload: "mc80",
            label: "Baseline \"quoted\"".into(),
            walks,
            served: ServedByMatrix::new(),
            host_served: None,
            l2_tlb_misses: 5,
            l2_tlb_accesses: 10,
            instructions: 1000,
            cycles: 400,
            walk_cycles: 100,
            prefetches_issued: 2,
            prefetches_dropped: 1,
            faults: 0,
        }
    }

    #[test]
    fn renders_escaped_valid_shape() {
        let results = [ScenarioResults {
            name: "smoke",
            runs: vec![ScenarioRunResult {
                workload: "mc80",
                variant: "native/baseline".into(),
                result: result(),
            }],
            errors: Vec::new(),
        }];
        let json = results_to_json(&results, "smoke");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"tier\": \"smoke\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"avg_walk_latency\": 100.0000"));
        assert!(json.contains("\"walk_fraction\": 0.2500"));
        // Balanced braces/brackets (a cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_scenarios_render() {
        let results = [ScenarioResults {
            name: "table2",
            runs: Vec::new(),
            errors: Vec::new(),
        }];
        let json = results_to_json(&results, "full");
        assert!(json.contains("\"scenario\": \"table2\", \"runs\": [\n    ]}"));
    }
}
