//! Machine-readable benchmark results: the `BENCH_results.json`
//! emitter/parser.
//!
//! The workspace is offline (no serde); this hand-rolled writer and
//! reader cover exactly the flat schema `BENCH_results.json` needs. Runs
//! are fully deterministic (seeded simulation), so the emitted file is
//! byte-stable across hosts — diffing it between commits IS the
//! perf-trajectory check, and [`BenchDoc`] round-trips it byte-identically
//! (emit → parse → re-emit reproduces the input, pinned by the golden
//! round-trip test).

use crate::scenarios::ScenarioResults;
use crate::RunResult;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; the metrics
/// emitted here are ratios and means, never NaN/inf).
fn num(x: f64) -> String {
    debug_assert!(x.is_finite());
    format!("{x:.4}")
}

/// One run's emitted metrics — a parsed `BENCH_results.json` row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// The workload's name.
    pub workload: String,
    /// The variant key within the scenario.
    pub variant: String,
    /// The spec's configuration label.
    pub label: String,
    /// Page walks performed in the measurement window.
    pub walks: u64,
    /// Mean walk latency in cycles (4 decimal places).
    pub avg_walk_latency: f64,
    /// Total cycles spent in walks.
    pub walk_cycles: u64,
    /// Total execution cycles of the measurement window.
    pub cycles: u64,
    /// Fraction of execution time spent walking (4 decimal places).
    pub walk_fraction: f64,
    /// Walks per kilo-instruction (4 decimal places).
    pub mpki: f64,
    /// L2 S-TLB misses.
    pub l2_tlb_misses: u64,
    /// L2 S-TLB accesses.
    pub l2_tlb_accesses: u64,
    /// Instructions modeled for the window.
    pub instructions: u64,
    /// Prefetches issued by the engine.
    pub prefetches_issued: u64,
    /// Prefetches dropped (MSHR pressure).
    pub prefetches_dropped: u64,
    /// Translation faults (always 0 in a healthy run).
    pub faults: u64,
}

impl BenchRun {
    fn from_result(r: &RunResult, workload: &str, variant: &str) -> Self {
        Self {
            workload: workload.into(),
            variant: variant.into(),
            label: r.label.clone(),
            walks: r.walks.count(),
            avg_walk_latency: r.avg_walk_latency(),
            walk_cycles: r.walk_cycles,
            cycles: r.cycles,
            walk_fraction: r.walk_fraction(),
            mpki: r.mpki(),
            l2_tlb_misses: r.l2_tlb_misses,
            l2_tlb_accesses: r.l2_tlb_accesses,
            instructions: r.instructions,
            prefetches_issued: r.prefetches_issued,
            prefetches_dropped: r.prefetches_dropped,
            faults: r.faults,
        }
    }

    fn emit(&self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{\"workload\": \"{}\", \"variant\": \"{}\", \"label\": \"{}\", ",
            escape(&self.workload),
            escape(&self.variant),
            escape(&self.label)
        );
        let _ = write!(
            out,
            "\"walks\": {}, \"avg_walk_latency\": {}, \"walk_cycles\": {}, \"cycles\": {}, ",
            self.walks,
            num(self.avg_walk_latency),
            self.walk_cycles,
            self.cycles
        );
        let _ = write!(
            out,
            "\"walk_fraction\": {}, \"mpki\": {}, \"l2_tlb_misses\": {}, \"l2_tlb_accesses\": {}, ",
            num(self.walk_fraction),
            num(self.mpki),
            self.l2_tlb_misses,
            self.l2_tlb_accesses
        );
        let _ = write!(
            out,
            "\"instructions\": {}, \"prefetches_issued\": {}, \"prefetches_dropped\": {}, \"faults\": {}}}",
            self.instructions, self.prefetches_issued, self.prefetches_dropped, self.faults
        );
    }
}

/// One run the driver refused to execute, as emitted into the document —
/// machine-readable fan-out failures (satellite of the telemetry layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError {
    /// The workload's name.
    pub workload: String,
    /// The variant key within the scenario.
    pub variant: String,
    /// The driver's error, rendered.
    pub error: String,
}

impl BenchError {
    fn emit(&self, out: &mut String, indent: &str) {
        let _ = write!(
            out,
            "{indent}{{\"workload\": \"{}\", \"variant\": \"{}\", \"error\": \"{}\"}}",
            escape(&self.workload),
            escape(&self.variant),
            escape(&self.error)
        );
    }
}

/// One scenario's parsed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchScenario {
    /// The scenario's registry key.
    pub scenario: String,
    /// The emitted runs, in registry order.
    pub runs: Vec<BenchRun>,
    /// Runs the driver rejected with a typed error, in registry order.
    /// Emitted (and parsed) only when non-empty, so documents of healthy
    /// sweeps are byte-identical to the pre-`errors` schema.
    pub errors: Vec<BenchError>,
}

/// A parsed (or about-to-be-emitted) `BENCH_results.json` document.
///
/// # Schema
///
/// The file is a single JSON object:
///
/// ```json
/// {
///   "schema_version": 1,
///   "tier": "smoke" | "quick" | "full",
///   "scenarios": [
///     {"scenario": "<registry key>", "runs": [
///       {"workload": "<name>", "variant": "<key>", "label": "<spec label>",
///        "walks": u64, "avg_walk_latency": f64(4dp), "walk_cycles": u64,
///        "cycles": u64, "walk_fraction": f64(4dp), "mpki": f64(4dp),
///        "l2_tlb_misses": u64, "l2_tlb_accesses": u64, "instructions": u64,
///        "prefetches_issued": u64, "prefetches_dropped": u64, "faults": u64}
///     ]}
///   ]
/// }
/// ```
///
/// `tier` records the window scale the numbers were produced at so
/// trajectory diffs never compare across scales. Float metrics carry
/// exactly four decimal places; [`BenchDoc::to_json`] re-emits a parsed
/// document byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Schema version (currently 1).
    pub schema_version: u64,
    /// Window-scale tag ("full", "quick" or "smoke").
    pub tier: String,
    /// Per-scenario result rows.
    pub scenarios: Vec<BenchScenario>,
}

impl BenchDoc {
    /// Builds the document from executed scenario results. A multi-core
    /// run contributes its per-core rows (workload "mc80@core0", ...)
    /// followed by its aggregate row, named by the aggregate result
    /// itself (the plain workload name, or "mc80+corunner" for colocated
    /// SMP runs whose counters blend the neighbor's); a single-core run
    /// contributes only the aggregate row, so documents for single-core
    /// scenarios are unchanged by the cores axis.
    #[must_use]
    pub fn from_results(results: &[ScenarioResults], tier: &str) -> Self {
        Self {
            schema_version: 1,
            tier: tier.into(),
            scenarios: results
                .iter()
                .map(|sc| BenchScenario {
                    scenario: sc.name.into(),
                    runs: sc
                        .runs
                        .iter()
                        .flat_map(|r| {
                            r.per_core
                                .iter()
                                .chain(std::iter::once(&r.result))
                                .map(|row| BenchRun::from_result(row, &row.workload, &r.variant))
                        })
                        .collect(),
                    errors: sc
                        .errors
                        .iter()
                        .map(|e| BenchError {
                            workload: e.workload.into(),
                            variant: e.variant.clone(),
                            error: e.error.to_string(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Renders the document in the canonical `BENCH_results.json` layout.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"tier\": \"{}\",", escape(&self.tier));
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"scenario\": \"{}\", \"runs\": [",
                escape(&sc.scenario)
            );
            for (j, r) in sc.runs.iter().enumerate() {
                r.emit(&mut s, "      ");
                s.push_str(if j + 1 < sc.runs.len() { ",\n" } else { "\n" });
            }
            if sc.errors.is_empty() {
                s.push_str("    ]}");
            } else {
                s.push_str("    ], \"errors\": [\n");
                for (j, e) in sc.errors.iter().enumerate() {
                    e.emit(&mut s, "      ");
                    s.push_str(if j + 1 < sc.errors.len() { ",\n" } else { "\n" });
                }
                s.push_str("    ]}");
            }
            s.push_str(if i + 1 < self.scenarios.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a `BENCH_results.json` document.
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] (with a byte offset) on malformed JSON or a
    /// document that does not match the schema above.
    pub fn parse(input: &str) -> Result<Self, JsonParseError> {
        let mut p = Parser::new(input);
        let doc = p.document()?;
        p.skip_ws();
        if !p.at_end() {
            return Err(p.err("trailing content after document"));
        }
        Ok(doc)
    }
}

/// A `BENCH_results.json` parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl core::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// A minimal schema-directed JSON parser (whitespace-tolerant; strings,
/// unsigned integers and decimal floats — all this schema contains).
pub(crate) struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Self { input, pos: 0 }
    }

    pub(crate) fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    pub(crate) fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    pub(crate) fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start_matches([' ', '\t', '\n', '\r']);
        self.pos = self.input.len() - trimmed.len();
    }

    pub(crate) fn expect_char(&mut self, token: char) -> Result<(), JsonParseError> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    /// Consumes the literal keyword `word` if present (after whitespace).
    pub(crate) fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    /// Consumes `token` if present (after whitespace).
    pub(crate) fn eat(&mut self, token: char) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            true
        } else {
            false
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect_char('"')?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, esc)) = chars.next() else { break };
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some((_, h)) = chars.next() else {
                                    return Err(self.err("truncated \\u escape"));
                                };
                                let Some(d) = h.to_digit(16) else {
                                    return Err(self.err("invalid \\u escape digit"));
                                };
                                code = code * 16 + d;
                            }
                            let Some(c) = char::from_u32(code) else {
                                return Err(self.err("\\u escape is not a scalar value"));
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{other}")));
                        }
                    }
                }
                c => out.push(c),
            }
        }
        Err(self.err("unterminated string"))
    }

    /// The raw lexeme of a number (sign, digits, optional fraction).
    fn number_lexeme(&mut self) -> Result<&'a str, JsonParseError> {
        self.skip_ws();
        let rest = self.rest();
        let len = rest
            .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
            .unwrap_or(rest.len());
        if len == 0 {
            return Err(self.err("expected a number"));
        }
        self.pos += len;
        Ok(&rest[..len])
    }

    pub(crate) fn u64_value(&mut self) -> Result<u64, JsonParseError> {
        let lexeme = self.number_lexeme()?;
        lexeme
            .parse()
            .map_err(|_| self.err(format!("expected an unsigned integer, got {lexeme:?}")))
    }

    fn f64_value(&mut self) -> Result<f64, JsonParseError> {
        let lexeme = self.number_lexeme()?;
        lexeme
            .parse()
            .map_err(|_| self.err(format!("expected a number, got {lexeme:?}")))
    }

    pub(crate) fn key(&mut self, expected: &str) -> Result<(), JsonParseError> {
        let k = self.string()?;
        if k != expected {
            return Err(self.err(format!("expected key {expected:?}, got {k:?}")));
        }
        self.expect_char(':')
    }

    fn document(&mut self) -> Result<BenchDoc, JsonParseError> {
        self.expect_char('{')?;
        self.key("schema_version")?;
        let schema_version = self.u64_value()?;
        self.expect_char(',')?;
        self.key("tier")?;
        let tier = self.string()?;
        self.expect_char(',')?;
        self.key("scenarios")?;
        self.expect_char('[')?;
        let mut scenarios = Vec::new();
        if !self.eat(']') {
            loop {
                scenarios.push(self.scenario()?);
                if !self.eat(',') {
                    break;
                }
            }
            self.expect_char(']')?;
        }
        self.expect_char('}')?;
        Ok(BenchDoc {
            schema_version,
            tier,
            scenarios,
        })
    }

    fn scenario(&mut self) -> Result<BenchScenario, JsonParseError> {
        self.expect_char('{')?;
        self.key("scenario")?;
        let scenario = self.string()?;
        self.expect_char(',')?;
        self.key("runs")?;
        self.expect_char('[')?;
        let mut runs = Vec::new();
        if !self.eat(']') {
            loop {
                runs.push(self.run()?);
                if !self.eat(',') {
                    break;
                }
            }
            self.expect_char(']')?;
        }
        let mut errors = Vec::new();
        if self.eat(',') {
            self.key("errors")?;
            self.expect_char('[')?;
            if !self.eat(']') {
                loop {
                    errors.push(self.error_entry()?);
                    if !self.eat(',') {
                        break;
                    }
                }
                self.expect_char(']')?;
            }
        }
        self.expect_char('}')?;
        Ok(BenchScenario {
            scenario,
            runs,
            errors,
        })
    }

    fn error_entry(&mut self) -> Result<BenchError, JsonParseError> {
        self.expect_char('{')?;
        self.key("workload")?;
        let workload = self.string()?;
        self.expect_char(',')?;
        self.key("variant")?;
        let variant = self.string()?;
        self.expect_char(',')?;
        self.key("error")?;
        let error = self.string()?;
        self.expect_char('}')?;
        Ok(BenchError {
            workload,
            variant,
            error,
        })
    }

    fn run(&mut self) -> Result<BenchRun, JsonParseError> {
        self.expect_char('{')?;
        self.key("workload")?;
        let workload = self.string()?;
        self.expect_char(',')?;
        self.key("variant")?;
        let variant = self.string()?;
        self.expect_char(',')?;
        self.key("label")?;
        let label = self.string()?;
        self.expect_char(',')?;
        self.key("walks")?;
        let walks = self.u64_value()?;
        self.expect_char(',')?;
        self.key("avg_walk_latency")?;
        let avg_walk_latency = self.f64_value()?;
        self.expect_char(',')?;
        self.key("walk_cycles")?;
        let walk_cycles = self.u64_value()?;
        self.expect_char(',')?;
        self.key("cycles")?;
        let cycles = self.u64_value()?;
        self.expect_char(',')?;
        self.key("walk_fraction")?;
        let walk_fraction = self.f64_value()?;
        self.expect_char(',')?;
        self.key("mpki")?;
        let mpki = self.f64_value()?;
        self.expect_char(',')?;
        self.key("l2_tlb_misses")?;
        let l2_tlb_misses = self.u64_value()?;
        self.expect_char(',')?;
        self.key("l2_tlb_accesses")?;
        let l2_tlb_accesses = self.u64_value()?;
        self.expect_char(',')?;
        self.key("instructions")?;
        let instructions = self.u64_value()?;
        self.expect_char(',')?;
        self.key("prefetches_issued")?;
        let prefetches_issued = self.u64_value()?;
        self.expect_char(',')?;
        self.key("prefetches_dropped")?;
        let prefetches_dropped = self.u64_value()?;
        self.expect_char(',')?;
        self.key("faults")?;
        let faults = self.u64_value()?;
        self.expect_char('}')?;
        Ok(BenchRun {
            workload,
            variant,
            label,
            walks,
            avg_walk_latency,
            walk_cycles,
            cycles,
            walk_fraction,
            mpki,
            l2_tlb_misses,
            l2_tlb_accesses,
            instructions,
            prefetches_issued,
            prefetches_dropped,
            faults,
        })
    }
}

/// Renders a full scenario-results set as the `BENCH_results.json` schema
/// (see [`BenchDoc`]).
///
/// `tier` records the window scale the numbers were produced at ("full",
/// "quick" or "smoke") so trajectory diffs never compare across scales.
///
/// # Examples
///
/// ```
/// use asap_sim::scenarios::find;
/// use asap_sim::{results_to_json, BenchDoc, SimConfig};
///
/// let results = [find("smoke").unwrap().run(SimConfig::smoke_test())];
/// let json = results_to_json(&results, "smoke");
/// assert!(json.starts_with('{'));
/// assert!(json.contains("\"scenario\": \"smoke\""));
/// // The emitter round-trips byte-identically.
/// assert_eq!(BenchDoc::parse(&json).unwrap().to_json(), json);
/// ```
#[must_use]
pub fn results_to_json(results: &[ScenarioResults], tier: &str) -> String {
    BenchDoc::from_results(results, tier).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{ScenarioResults, ScenarioRunResult};
    use asap_core::{ServedByMatrix, WalkLatencyStats};

    fn result() -> RunResult {
        let mut walks = WalkLatencyStats::new();
        walks.record(100);
        RunResult {
            workload: "mc80".into(),
            label: "Baseline \"quoted\"".into(),
            walks,
            served: ServedByMatrix::new(),
            host_served: None,
            l2_tlb_misses: 5,
            l2_tlb_accesses: 10,
            instructions: 1000,
            cycles: 400,
            walk_cycles: 100,
            prefetches_issued: 2,
            prefetches_dropped: 1,
            faults: 0,
        }
    }

    fn sample() -> [ScenarioResults; 1] {
        [ScenarioResults {
            name: "smoke",
            runs: vec![ScenarioRunResult {
                workload: "mc80",
                variant: "native/baseline".into(),
                result: result(),
                per_core: Vec::new(),
                telemetry: None,
            }],
            errors: Vec::new(),
        }]
    }

    #[test]
    fn multi_core_runs_emit_per_core_rows_before_the_aggregate() {
        let mut core0 = result();
        core0.workload = "mc80@core0".into();
        let mut core1 = result();
        core1.workload = "mc80@core1".into();
        let results = [ScenarioResults {
            name: "smp_smoke",
            runs: vec![ScenarioRunResult {
                workload: "mc80",
                variant: "Baseline+2c".into(),
                result: result(),
                per_core: vec![core0, core1],
                telemetry: None,
            }],
            errors: Vec::new(),
        }];
        let doc = BenchDoc::from_results(&results, "smoke");
        let rows: Vec<&str> = doc.scenarios[0]
            .runs
            .iter()
            .map(|r| r.workload.as_str())
            .collect();
        assert_eq!(rows, ["mc80@core0", "mc80@core1", "mc80"]);
        assert!(doc.scenarios[0]
            .runs
            .iter()
            .all(|r| r.variant == "Baseline+2c"));
        let json = doc.to_json();
        assert_eq!(BenchDoc::parse(&json).unwrap().to_json(), json);
    }

    #[test]
    fn renders_escaped_valid_shape() {
        let json = results_to_json(&sample(), "smoke");
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"tier\": \"smoke\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"avg_walk_latency\": 100.0000"));
        assert!(json.contains("\"walk_fraction\": 0.2500"));
        // Balanced braces/brackets (a cheap structural sanity check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_scenarios_render() {
        let results = [ScenarioResults {
            name: "table2",
            runs: Vec::new(),
            errors: Vec::new(),
        }];
        let json = results_to_json(&results, "full");
        assert!(json.contains("\"scenario\": \"table2\", \"runs\": [\n    ]}"));
        assert_eq!(BenchDoc::parse(&json).unwrap().to_json(), json);
    }

    #[test]
    fn parse_round_trips_byte_identically() {
        let json = results_to_json(&sample(), "smoke");
        let doc = BenchDoc::parse(&json).unwrap();
        assert_eq!(doc.schema_version, 1);
        assert_eq!(doc.tier, "smoke");
        assert_eq!(doc.scenarios.len(), 1);
        let run = &doc.scenarios[0].runs[0];
        assert_eq!(run.label, "Baseline \"quoted\"");
        assert_eq!(run.walks, 1);
        assert!((run.avg_walk_latency - 100.0).abs() < 1e-12);
        assert_eq!(doc.to_json(), json, "re-emit must be byte-identical");
    }

    #[test]
    fn failed_runs_surface_in_an_errors_array() {
        use crate::scenarios::ScenarioRunError;
        use crate::DriverError;
        let mut results = sample();
        results[0].errors.push(ScenarioRunError {
            workload: "mc80",
            variant: "Baseline+99c".into(),
            error: DriverError::incompatible_spec("cores exceed MAX_CORES"),
        });
        let json = results_to_json(&results, "smoke");
        assert!(json.contains("], \"errors\": [\n"));
        assert!(json.contains("\"variant\": \"Baseline+99c\""));
        let doc = BenchDoc::parse(&json).unwrap();
        assert_eq!(doc.scenarios[0].errors.len(), 1);
        assert_eq!(doc.scenarios[0].errors[0].workload, "mc80");
        assert_eq!(doc.to_json(), json, "re-emit must be byte-identical");
        // A healthy sweep emits no errors key at all, so pre-`errors`
        // documents (and the committed BENCH_results.json) are unchanged.
        let clean = results_to_json(&sample(), "smoke");
        assert!(!clean.contains("errors"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"schema_version\": 1}",
            "{\"schema_version\": \"x\", \"tier\": \"t\", \"scenarios\": []}",
            "{\"schema_version\": 1, \"tier\": \"t\", \"scenarios\": []} trailing",
        ] {
            let err = BenchDoc::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let json = results_to_json(&sample(), "smoke");
        // Whitespace-insensitivity: collapse the layout entirely.
        let squashed: String = json.split('\n').map(str::trim).collect::<Vec<_>>().join("");
        let a = BenchDoc::parse(&json).unwrap();
        let b = BenchDoc::parse(&squashed).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.to_json(), json, "canonical layout is restored");
    }
}
