//! Deterministic parallel fan-out of independent runs.
//!
//! Both entry points share one work-stealing core: a shared atomic work
//! index over single-take slots, so no thread ever owns a fixed chunk
//! and a straggler item delays only the one thread running it. The
//! prioritized variant additionally *orders* the shared queue
//! longest-expected-first, so known-expensive runs start before the
//! cheap tail instead of landing on an otherwise-drained pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a pool of host threads, preserving input
/// order in the output. Each run is internally deterministic (seeded), so
/// the parallel result is identical to the sequential one.
///
/// # Examples
///
/// ```
/// let squares = asap_sim::parallel_map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates panics from `f` (the experiment harness prefers failing loudly
/// over reporting partial tables).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    dispatch(items, None, f)
}

/// [`parallel_map`] with cost-aware scheduling: items are *executed* in
/// descending `costs` order (ties keep input order), while the output
/// still matches input order exactly. Pass the largest cost for items
/// whose cost is unknown — starting an unknown early is the conservative
/// choice, since an unknown straggler scheduled last serializes the
/// whole fan-out behind one thread.
///
/// # Panics
///
/// Panics when `costs.len() != items.len()`, and propagates panics from
/// `f` like [`parallel_map`].
pub fn parallel_map_prioritized<T, R, F>(items: Vec<T>, costs: &[u64], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert_eq!(items.len(), costs.len(), "one cost estimate per work item");
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| costs[b].cmp(&costs[a]).then(a.cmp(&b)));
    dispatch(items, Some(order), f)
}

/// The shared executor: workers claim positions of the (optionally
/// reordered) schedule from one atomic index; results land in input
/// order.
fn dispatch<T, R, F>(items: Vec<T>, order: Option<Vec<usize>>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let order = order.as_deref();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let pos = next.fetch_add(1, Ordering::Relaxed);
                if pos >= n {
                    break;
                }
                let i = order.map_or(pos, |o| o[pos]);
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_for_stateful_work() {
        let seq: Vec<u64> = (0..16u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        let par = parallel_map((0..16u64).collect(), |x| x.wrapping_mul(x) ^ 7);
        assert_eq!(seq, par);
    }

    #[test]
    fn prioritized_output_is_still_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let costs: Vec<u64> = items.iter().map(|x| x % 7).collect();
        let out = parallel_map_prioritized(items, &costs, |x| x + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "one cost estimate per work item")]
    fn prioritized_rejects_mismatched_costs() {
        let _ = parallel_map_prioritized(vec![1, 2, 3], &[1], |x| x);
    }

    /// The satellite contract: one pathological straggler (100× every
    /// other item) must not serialize the cheap tail behind it. With the
    /// shared-index executor the thread that claims the straggler
    /// processes (almost) nothing else, and the fan-out completes in
    /// ~max(item), not ~sum(chunk) — asserted structurally by counting
    /// per-thread items processed rather than by timing.
    #[test]
    fn straggler_does_not_serialize_a_chunk() {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if workers < 2 {
            return; // single-threaded host: nothing to schedule around
        }
        // Item 0 costs 100 ticks, 63 others cost 1 tick each; the
        // prioritized schedule starts the straggler first.
        let n = 64usize;
        let costs: Vec<u64> = (0..n).map(|i| if i == 0 { 100 } else { 1 }).collect();
        let tick = Duration::from_millis(1);
        let processed: Mutex<HashMap<ThreadId, Vec<usize>>> = Mutex::new(HashMap::new());
        let out = parallel_map_prioritized((0..n).collect(), &costs, |i| {
            std::thread::sleep(tick * costs[i] as u32);
            processed
                .lock()
                .unwrap()
                .entry(std::thread::current().id())
                .or_default()
                .push(i);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
        let processed = processed.into_inner().unwrap();
        let straggler_thread: Vec<usize> = processed
            .values()
            .find(|items| items.contains(&0))
            .expect("someone ran the straggler")
            .clone();
        // The straggler's thread was busy for ~the whole fan-out, so the
        // cheap items ran elsewhere. A fixed-chunk split at 2 threads
        // would hand it 32 items; allow generous slack for slow CI hosts
        // while still ruling any chunked schedule out.
        assert!(
            straggler_thread.len() <= 8,
            "straggler thread also processed {} cheap items — \
             the schedule serialized a chunk behind it",
            straggler_thread.len() - 1
        );
        // Work conservation: every item ran exactly once.
        let mut all: Vec<usize> = processed.values().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}
