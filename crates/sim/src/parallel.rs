//! Deterministic parallel fan-out of independent runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a pool of host threads, preserving input
/// order in the output. Each run is internally deterministic (seeded), so
/// the parallel result is identical to the sequential one.
///
/// # Examples
///
/// ```
/// let squares = asap_sim::parallel_map(vec![1, 2, 3, 4], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates panics from `f` (the experiment harness prefers failing loudly
/// over reporting partial tables).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot taken once");
                let r = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_sequential_for_stateful_work() {
        let seq: Vec<u64> = (0..16u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        let par = parallel_map((0..16u64).collect(), |x| x.wrapping_mul(x) ^ 7);
        assert_eq!(seq, par);
    }
}
