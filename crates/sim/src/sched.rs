//! The event-queue core scheduler: O(log n) arbitration for the
//! multi-core driver.
//!
//! The driver arbitrates cores by the key `(local_clock, core_idx)` —
//! lowest clock first, ties broken by core index. Through PR 6 the winner
//! and runner-up were found with a linear scan over every core at each
//! batch boundary, which made arbitration cost O(cores) per epoch and
//! capped the machine at 8 cores. This module replaces the scan with a
//! binary min-heap ([`EventQueue`]): the winner pops in O(log n), bursts
//! until its key passes the new heap top, and re-pushes.
//!
//! **The event-queue invariant:** heap order ≡ scan order. Keys are unique
//! (no two cores share an index), tuple comparison orders them exactly as
//! the scan's `key < best` test did, and only the popped core's clock ever
//! moves — so every key resident in the heap always equals its core's
//! current `(now, idx)`, and the pop sequence replays the scan's winner
//! sequence bit-for-bit. [`linear_scan`] keeps the PR-6 scan alive as an
//! independent reference implementation: the lockstep driver path uses it
//! as the per-access oracle, and the `arbitration_scaling` criterion bench
//! uses it as the O(n) contrast row.

/// An arbitration key: `(local_clock, core_idx)`. Tuple order gives
/// lowest-clock-first with ties broken by the lower core index.
pub type ArbKey = (u64, usize);

/// A binary min-heap of arbitration keys — the event queue the batched
/// multi-core driver schedules from.
///
/// Hand-rolled rather than `std::collections::BinaryHeap` so the ordering
/// is visibly min-first (no `Reverse` wrappers at every call site) and the
/// sift loops stay simple enough to audit against the scheduling
/// invariant.
///
/// # Examples
///
/// ```
/// use asap_sim::sched::EventQueue;
///
/// let mut q = EventQueue::with_capacity(3);
/// q.push((40, 2));
/// q.push((10, 1));
/// q.push((10, 0));
/// assert_eq!(q.pop(), Some((10, 0))); // ties break by core index
/// assert_eq!(q.peek(), Some((10, 1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: Vec<ArbKey>,
}

impl EventQueue {
    /// An empty queue with room for `n` keys.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            heap: Vec::with_capacity(n),
        }
    }

    /// Number of queued keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The minimum key without removing it — the next arbitration winner,
    /// or (after a pop) the bound the current winner bursts against.
    #[must_use]
    pub fn peek(&self) -> Option<ArbKey> {
        self.heap.first().copied()
    }

    /// Inserts a key in O(log n).
    // asap-lint: hot-path
    pub fn push(&mut self, key: ArbKey) {
        self.heap.push(key);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[parent] <= self.heap[i] {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    /// Removes and returns the minimum key in O(log n).
    // asap-lint: hot-path
    pub fn pop(&mut self) -> Option<ArbKey> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let min = self.heap.pop();
        let mut i = 0;
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.heap[l] < self.heap[smallest] {
                smallest = l;
            }
            if r < self.heap.len() && self.heap[r] < self.heap[smallest] {
                smallest = r;
            }
            if smallest == i {
                return min;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

/// The PR-6 linear arbitration scan, kept verbatim as the independent
/// reference implementation: one pass over the ready keys returning the
/// winner and the runner-up's key (the winner's burst bound). The lockstep
/// driver path rescans with this after every access — that is the oracle
/// schedule `prop_smp_determinism` pins the event queue against — and the
/// `arbitration_scaling` bench charts it as the O(n) baseline.
#[must_use]
pub fn linear_scan(keys: impl IntoIterator<Item = ArbKey>) -> (Option<ArbKey>, Option<ArbKey>) {
    let mut best: Option<ArbKey> = None;
    let mut bound: Option<ArbKey> = None;
    for key in keys {
        match best {
            None => best = Some(key),
            Some(b) if key < b => {
                bound = best;
                best = Some(key);
            }
            _ => {
                if bound.map_or(true, |r| key < r) {
                    bound = Some(key);
                }
            }
        }
    }
    (best, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LCG so the tests need no RNG dependency.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn pops_in_sorted_order() {
        let mut state = 7u64;
        let keys: Vec<ArbKey> = (0..257).map(|i| (lcg(&mut state) % 1000, i)).collect();
        let mut q = EventQueue::with_capacity(keys.len());
        for &k in &keys {
            q.push(k);
        }
        assert_eq!(q.len(), keys.len());
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut popped = Vec::new();
        while let Some(k) = q.pop() {
            popped.push(k);
        }
        assert_eq!(popped, sorted);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn ties_break_by_core_index() {
        let mut q = EventQueue::default();
        for i in (0..8).rev() {
            q.push((500, i));
        }
        for i in 0..8 {
            assert_eq!(q.pop(), Some((500, i)));
        }
    }

    #[test]
    fn peek_matches_scan_winner_and_bound() {
        // The invariant in miniature: for random key sets, (pop, peek)
        // equals linear_scan's (winner, bound).
        let mut state = 99u64;
        for round in 0..50 {
            let n = 1 + (round % 16);
            let keys: Vec<ArbKey> = (0..n).map(|i| (lcg(&mut state) % 64, i)).collect();
            let mut q = EventQueue::with_capacity(n);
            for &k in &keys {
                q.push(k);
            }
            let (winner, bound) = linear_scan(keys.iter().copied());
            assert_eq!(q.pop(), winner);
            assert_eq!(q.peek(), bound);
        }
    }

    #[test]
    fn replays_the_scan_schedule_exactly() {
        // Synthetic cores whose clocks advance by pseudo-random strides:
        // the heap scheduler (pop, burst to bound, re-push) must visit
        // cores in exactly the order the per-step linear rescan does.
        let n = 12usize;
        let steps_per_core = 200u32;

        let stride = |core: usize, step: u32| -> u64 {
            let mut s = (core as u64) << 32 | u64::from(step) | 0xA5A5;
            1 + lcg(&mut s) % 97
        };

        // Reference: rescan every step.
        let mut clocks = vec![0u64; n];
        let mut done = vec![0u32; n];
        let mut scan_order: Vec<usize> = Vec::new();
        loop {
            let ready = clocks
                .iter()
                .enumerate()
                .filter(|(i, _)| done[*i] < steps_per_core)
                .map(|(i, t)| (*t, i));
            let (best, _) = linear_scan(ready);
            let Some((_, i)) = best else { break };
            clocks[i] += stride(i, done[i]);
            done[i] += 1;
            scan_order.push(i);
        }

        // Event queue: pop, burst until passing the bound, re-push.
        let mut clocks = vec![0u64; n];
        let mut done = vec![0u32; n];
        let mut heap_order: Vec<usize> = Vec::new();
        let mut q = EventQueue::with_capacity(n);
        for i in 0..n {
            q.push((0, i));
        }
        while let Some((_, i)) = q.pop() {
            let bound = q.peek();
            loop {
                clocks[i] += stride(i, done[i]);
                done[i] += 1;
                heap_order.push(i);
                if done[i] == steps_per_core {
                    break;
                }
                let key = (clocks[i], i);
                if bound.is_some_and(|b| key >= b) {
                    q.push(key);
                    break;
                }
            }
        }

        assert_eq!(heap_order, scan_order);
    }
}
