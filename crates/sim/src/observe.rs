//! Sim-side telemetry glue: one [`RunObserver`] per executed spec,
//! spanning the machine-assembly (setup), drive (warmup + measure) and
//! harvest (flush) phases.
//!
//! The observer is deliberately phase-shaped so every machine assembly —
//! native, virtualized, contender, SMP — follows the same four calls:
//! [`RunObserver::begin`] before building anything, [`RunObserver::arm`]
//! once the engines exist (installs per-core trace sinks and starts the
//! driver observer), the driver itself via [`RunObserver::driver_mut`],
//! and [`RunObserver::finish`] to fold traces, metrics and phase timings
//! into one [`RunTelemetry`]. With every telemetry switch off, `begin`
//! returns an inert observer and each phase costs one branch.

use crate::driver::DriverObserver;
use asap_core::TranslationEngine;
use asap_telemetry::{MetricSet, PhaseProfile, RunTelemetry, TelemetryConfig, TraceSink};
use std::time::{Duration, Instant};

/// Accumulates one run's telemetry across the assembly / drive / harvest
/// phases.
pub(crate) struct RunObserver {
    cfg: TelemetryConfig,
    setup_started: Option<Instant>,
    setup: Duration,
    driver: Option<DriverObserver>,
}

impl RunObserver {
    /// Starts observing; the setup clock starts now. An all-off config
    /// observes nothing.
    pub(crate) fn begin(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            setup_started: cfg.profile.then(Instant::now),
            setup: Duration::ZERO,
            driver: None,
        }
    }

    /// Machine assembly is done: stops the setup clock, installs a trace
    /// sink per engine (core i ← slot i), and arms the driver observer.
    pub(crate) fn arm<E: TranslationEngine>(&mut self, engines: &mut [E]) {
        if let Some(t0) = self.setup_started.take() {
            self.setup = t0.elapsed();
        }
        if self.cfg.trace {
            for (i, engine) in engines.iter_mut().enumerate() {
                engine.set_tracer(TraceSink::default().for_core(i as u32));
            }
        }
        if self.cfg.trace || self.cfg.profile {
            self.driver = Some(DriverObserver::new(self.cfg.trace));
        }
    }

    /// The driver-loop hooks, to pass into `run_cores_observed`.
    pub(crate) fn driver_mut(&mut self) -> Option<&mut DriverObserver> {
        self.driver.as_mut()
    }

    /// The run is done: harvests per-core traces (labelled by `names`),
    /// collects every engine's metrics (prefixed `core{i}_` on multi-core
    /// machines), and folds the scheduler track and phase timings in.
    pub(crate) fn finish<E: TranslationEngine>(
        mut self,
        engines: &mut [E],
        names: &[String],
        measure_accesses: u64,
    ) -> Option<RunTelemetry> {
        if !self.cfg.any() {
            return None;
        }
        let flush_started = Instant::now();
        let mut out = RunTelemetry::default();
        if self.cfg.trace {
            for (engine, name) in engines.iter_mut().zip(names) {
                if let Some(sink) = engine.take_tracer() {
                    out.cores.push(sink.into_core_trace(name.clone()));
                }
            }
        }
        if self.cfg.metrics {
            let mut set = MetricSet::new();
            let single = engines.len() == 1;
            for (i, engine) in engines.iter().enumerate() {
                let prefix = if single {
                    String::new()
                } else {
                    format!("core{i}_")
                };
                engine.collect_metrics(&prefix, &mut set);
            }
            out.metrics = set;
        }
        if let Some(driver) = self.driver.take() {
            let (sched, warmup, measure) = driver.finish();
            out.sched = sched;
            if self.cfg.profile {
                out.profile = Some(PhaseProfile {
                    setup: self.setup,
                    warmup,
                    measure,
                    flush: flush_started.elapsed(),
                    measure_accesses,
                });
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Mmu, MmuConfig};

    #[test]
    fn off_config_harvests_nothing() {
        let obs = RunObserver::begin(TelemetryConfig::off());
        let mut engines = [Mmu::new(MmuConfig::default())];
        assert!(obs.finish(&mut engines, &["x".into()], 100).is_none());
    }

    #[test]
    fn armed_observer_installs_and_harvests_tracers() {
        let cfg = TelemetryConfig {
            trace: true,
            metrics: true,
            profile: true,
        };
        let mut obs = RunObserver::begin(cfg);
        let mut engines = [
            Mmu::new(MmuConfig::default()),
            Mmu::new(MmuConfig::default()),
        ];
        obs.arm(&mut engines);
        assert!(obs.driver_mut().is_some());
        let t = obs
            .finish(&mut engines, &["a".into(), "b".into()], 500)
            .unwrap();
        assert_eq!(t.cores.len(), 2);
        assert_eq!(t.cores[0].core, 0);
        assert_eq!(t.cores[1].label, "b");
        // Two cores → prefixed metric names, both cores present.
        assert!(t.metrics.get("core0_walks_total").is_some());
        assert!(t.metrics.get("core1_walks_total").is_some());
        let profile = t.profile.unwrap();
        assert_eq!(profile.measure_accesses, 500);
    }
}
