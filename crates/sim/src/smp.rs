//! SMP machine assembly: builds N per-core engines over ONE shared
//! [`SharedFabric`] for a unified [`RunSpec`] whose `cores` axis exceeds
//! one, and hands them to the cycle-interleaved [`run_cores`] driver.
//! Reached only through [`RunSpec::run_split`]'s internal dispatch.
//!
//! Core 0 always runs the spec's workload. Cores 1..N run workload copies
//! (isolation — the homogeneous-scaling question) or, when the spec is
//! colocated, the [`WorkloadSpec::corunner`] preset as a *real* core —
//! replacing the single-core out-of-band line-injection shim with honest
//! contention: the neighbor takes its own TLB misses and walks on the
//! shared hierarchy.
//!
//! Every core gets its own process (distinct ASID, hence a disjoint
//! physical window — see `asap_os::PhysMap`), its own derived seed, and a
//! bit-identical per-core MMU configuration to the single-core machine's;
//! only the fabric is shared.
//!
//! When the spec's `numa_nodes` axis exceeds one, this module also lays
//! the NUMA topology: cores go to nodes round-robin by index, and every
//! process window registers a DRAM home node round-robin in core-major
//! order, so each core ends up with a deterministic mix of local and
//! remote windows. The engines stay topology-oblivious — each one simply
//! receives a [`SharedFabric::for_node`] handle stamped with its core's
//! node.

use crate::driver::{run_cores_observed, CoreSlot, DriverError, RunMeta};
use crate::native::{hw_asap, mmu_config, os_asap};
use crate::observe::RunObserver;
use crate::{EngineSelect, RunOutput, RunResult, RunSpec};
use asap_cache::{HierarchyConfig, NumaConfig, SharedFabric};
use asap_contenders::{RevelatorConfig, RevelatorMmu, VictimaConfig, VictimaMmu};
use asap_core::{Mmu, TranslationEngine};
use asap_os::{PhysMap, Process};
use asap_telemetry::RunTelemetry;
use asap_types::{Asid, CacheLineAddr};
use asap_workloads::{BoxedStream, WorkloadSpec};

/// Derives core `i`'s seed from the run seed. Core 0 keeps the run seed
/// unchanged, so its process and stream are bit-identical to the
/// single-core machine's — scaling comparisons vary only the contention.
fn core_seed(seed: u64, core: usize) -> u64 {
    seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Core `i`'s ASID: the kernel keeps ASID 0, cores count up from 1.
fn core_asid(core: usize) -> Asid {
    Asid(1 + u16::try_from(core).expect("cores <= 64"))
}

/// The first cache line of a physical frame (a 4 KiB frame spans 64
/// lines).
fn frame_line(frame: asap_types::PhysFrameNum) -> CacheLineAddr {
    CacheLineAddr::new(frame.raw() << 6)
}

/// Context-loads every engine, zips the per-core pieces into driver
/// slots, runs the interleaved loop, and harvests the machine's
/// telemetry.
fn drive<E: TranslationEngine<Machine = Process>>(
    mut engines: Vec<E>,
    processes: &mut [Process],
    streams: &mut [BoxedStream],
    names: &[String],
    meta: &RunMeta,
    mut obs: RunObserver,
) -> Result<(Vec<RunResult>, Option<RunTelemetry>), DriverError> {
    for (engine, process) in engines.iter_mut().zip(processes.iter()) {
        TranslationEngine::load_context(engine, process);
    }
    obs.arm(&mut engines);
    let mut slots: Vec<CoreSlot<'_, E>> = engines
        .iter_mut()
        .zip(processes.iter_mut())
        .zip(streams.iter_mut())
        .zip(names)
        .map(|(((engine, machine), stream), name)| CoreSlot {
            engine,
            machine,
            stream: stream.as_mut(),
            workload: name.clone(),
            corunner: None,
        })
        .collect();
    let per_core = run_cores_observed(&mut slots, meta, obs.driver_mut())?;
    drop(slots);
    let telemetry = obs.finish(&mut engines, names, meta.sim.measure_accesses);
    Ok((per_core, telemetry))
}

/// Runs one multi-core configuration: N cores, one fabric, per-core plus
/// aggregate measurements.
pub(crate) fn run_smp(spec: &RunSpec) -> Result<RunOutput, DriverError> {
    let obs = RunObserver::begin(spec.telemetry);
    let n = spec.cores;
    let seed = spec.sim.seed;
    let base_workload = spec.effective_workload();
    let core_workloads: Vec<WorkloadSpec> = (0..n)
        .map(|i| {
            if i == 0 || !spec.colocated {
                base_workload.clone()
            } else {
                WorkloadSpec::corunner()
            }
        })
        .collect();
    // Cores go to NUMA nodes round-robin; at one node (uniform memory)
    // everything below degenerates to the pre-NUMA assembly bit-for-bit.
    let nodes = spec.numa_nodes;
    let core_node = |i: usize| i % nodes;
    let names: Vec<String> = core_workloads
        .iter()
        .enumerate()
        .map(|(i, w)| {
            if nodes > 1 {
                format!("{}@core{i}n{}", w.name, core_node(i))
            } else {
                format!("{}@core{i}", w.name)
            }
        })
        .collect();

    // Every core runs the same OS policy (an SMP machine has one kernel):
    // ASAP reservations exist exactly for the levels hardware prefetches.
    let os = os_asap(&hw_asap(spec));
    let mut processes: Vec<Process> = Vec::with_capacity(n);
    let mut streams: Vec<BoxedStream> = Vec::with_capacity(n);
    for (i, w) in core_workloads.iter().enumerate() {
        let s = core_seed(seed, i);
        let process = Process::new(
            w.process_config(core_asid(i), os.clone(), s)
                .with_paging_mode(spec.paging_mode),
        );
        streams.push(w.build_stream(&process, s ^ 0x11));
        processes.push(process);
    }

    let meta = RunMeta {
        workload: spec.workload.name.into(),
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: spec.perfect_tlb,
    };
    // The machine-wide fabric, built ONCE from the SAME hierarchy config
    // the per-core engine constructor would use — one source of truth, so
    // a 1-core and an N-core run of the same spec simulate the same
    // memory system even if an engine config swaps its hierarchy.
    let hierarchy: HierarchyConfig = match &spec.engine {
        EngineSelect::Victima => VictimaConfig::default().hierarchy,
        EngineSelect::Revelator => RevelatorConfig::default().hierarchy,
        _ => mmu_config(spec, seed).hierarchy,
    };
    let fabric = SharedFabric::new(hierarchy);
    if nodes > 1 {
        // The NUMA layout: every process window registers a home node
        // round-robin in core-major order (core 0's four windows first,
        // then core 1's, ...), so window k lands on node k % N — a
        // deterministic model of allocation classes spreading across
        // sockets rather than following their core. Each core therefore
        // sees a fixed mix of local and remote windows (half remote at 2
        // nodes, three quarters at 4), and page-table windows land remote
        // for most cores — exactly the traffic that stresses walk latency
        // at rack scale.
        fabric.configure_numa(NumaConfig::symmetric(nodes));
        for i in 0..n {
            for (base, frames) in PhysMap::new(core_asid(i)).windows() {
                fabric.assign_window(frame_line(base), frames << 6);
            }
        }
    }
    let (per_core, telemetry) = match &spec.engine {
        EngineSelect::Victima => drive(
            (0..n)
                .map(|i| {
                    VictimaMmu::with_fabric(
                        VictimaConfig::default().with_seed(core_seed(seed, i)),
                        fabric.for_node(core_node(i)),
                    )
                })
                .collect(),
            &mut processes,
            &mut streams,
            &names,
            &meta,
            obs,
        )?,
        EngineSelect::Revelator => drive(
            (0..n)
                .map(|i| {
                    RevelatorMmu::with_fabric(
                        RevelatorConfig::default().with_seed(core_seed(seed, i)),
                        fabric.for_node(core_node(i)),
                    )
                })
                .collect(),
            &mut processes,
            &mut streams,
            &names,
            &meta,
            obs,
        )?,
        // Baseline / ASAP (nested engines are rejected by validation on
        // native machines, and cores > 1 requires a native machine).
        _ => drive(
            (0..n)
                .map(|i| {
                    Mmu::with_fabric(
                        mmu_config(spec, core_seed(seed, i)),
                        fabric.for_node(core_node(i)),
                    )
                })
                .collect::<Vec<Mmu>>(),
            &mut processes,
            &mut streams,
            &names,
            &meta,
            obs,
        )?,
    };
    // A colocated aggregate blends the neighbor's counters into the row;
    // compose the name so nobody reads the blend as the workload alone.
    let aggregate_name = if spec.colocated {
        format!("{}+corunner", spec.workload.name)
    } else {
        spec.workload.name.to_string()
    };
    Ok(RunOutput::aggregate_of(&aggregate_name, per_core).with_telemetry(telemetry))
}

#[cfg(test)]
mod tests {
    use crate::scenarios::smoke_workload as small;
    use crate::{EngineSelect, RunSpec, SimConfig};
    use asap_core::AsapHwConfig;

    #[test]
    fn smp_run_yields_per_core_and_aggregate_rows() {
        let out = RunSpec::new(small())
            .with_cores(2)
            .with_sim(SimConfig::smoke_test())
            .run_split()
            .unwrap();
        assert_eq!(out.per_core.len(), 2);
        assert_eq!(out.per_core[0].workload, "mc80@core0");
        assert_eq!(out.per_core[1].workload, "mc80@core1");
        assert_eq!(out.aggregate.workload, "mc80");
        assert_eq!(out.aggregate.label, "Baseline 2c");
        for core in &out.per_core {
            assert!(core.walks.count() > 100, "{} never walked", core.workload);
            assert_eq!(core.faults, 0);
            assert!(core.cycles > 0);
        }
        assert_eq!(
            out.aggregate.walks.count(),
            out.per_core.iter().map(|c| c.walks.count()).sum::<u64>()
        );
        assert_eq!(
            out.aggregate.cycles,
            out.per_core.iter().map(|c| c.cycles).max().unwrap()
        );
    }

    #[test]
    fn shared_fabric_contention_inflates_walk_latency() {
        let sim = SimConfig::smoke_test();
        let solo = RunSpec::new(small()).with_sim(sim).run().unwrap();
        let quad = RunSpec::new(small())
            .with_cores(4)
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(
            quad.avg_walk_latency() > solo.avg_walk_latency(),
            "4-core {} !> 1-core {}",
            quad.avg_walk_latency(),
            solo.avg_walk_latency()
        );
    }

    #[test]
    fn smp_colocation_runs_the_corunner_as_a_real_core() {
        let out = RunSpec::new(small())
            .with_cores(2)
            .colocated()
            .with_sim(SimConfig::smoke_test())
            .run_split()
            .unwrap();
        assert_eq!(out.per_core[0].workload, "mc80@core0");
        assert_eq!(out.per_core[1].workload, "corunner@core1");
        assert_eq!(
            out.aggregate.workload, "mc80+corunner",
            "a blended aggregate must not masquerade as the workload alone"
        );
        assert!(
            out.per_core[1].walks.count() > 0,
            "a real neighbor core takes real walks"
        );
    }

    /// The NUMA axis end-to-end: per-core rows name their nodes, the
    /// label gains the node fragment, and interconnect hops inflate both
    /// walk latency and cycles against the uniform-memory run of the same
    /// core count.
    #[test]
    fn numa_hops_inflate_walk_latency() {
        let sim = SimConfig::smoke_test();
        let uma = RunSpec::new(small())
            .with_cores(4)
            .with_sim(sim)
            .run_split()
            .unwrap();
        let spec = RunSpec::new(small())
            .with_cores(4)
            .with_numa_nodes(2)
            .with_sim(sim);
        let numa = spec.run_split().unwrap();
        assert_eq!(numa.per_core[0].workload, "mc80@core0n0");
        assert_eq!(numa.per_core[1].workload, "mc80@core1n1");
        assert_eq!(numa.per_core[2].workload, "mc80@core2n0");
        assert_eq!(numa.aggregate.label, "Baseline 4c 2n");
        assert!(
            numa.aggregate.avg_walk_latency() > uma.aggregate.avg_walk_latency(),
            "2-node walk latency {} !> uniform {}",
            numa.aggregate.avg_walk_latency(),
            uma.aggregate.avg_walk_latency()
        );
        assert!(numa.aggregate.cycles > uma.aggregate.cycles);
        // Same seed, same topology: bit-identical on a re-run.
        let again = spec.run_split().unwrap();
        assert_eq!(numa.aggregate.walks, again.aggregate.walks);
        assert_eq!(numa.aggregate.cycles, again.aggregate.cycles);
    }

    /// More nodes, more remote windows: walk latency grows monotonically
    /// across the node-count axis at a fixed core count.
    #[test]
    fn walk_latency_grows_with_node_count() {
        let sim = SimConfig::smoke_test();
        let at = |nodes: usize| {
            RunSpec::new(small())
                .with_cores(4)
                .with_numa_nodes(nodes)
                .with_sim(sim)
                .run()
                .unwrap()
                .avg_walk_latency()
        };
        let (n1, n2, n4) = (at(1), at(2), at(4));
        assert!(n2 > n1, "{n2} !> {n1}");
        assert!(n4 > n2, "{n4} !> {n2}");
    }

    #[test]
    fn smp_runs_are_deterministic() {
        let spec = RunSpec::new(small())
            .with_cores(2)
            .with_sim(SimConfig::smoke_test());
        let a = spec.run_split().unwrap();
        let b = spec.run_split().unwrap();
        assert_eq!(a.aggregate.walks, b.aggregate.walks);
        assert_eq!(a.aggregate.cycles, b.aggregate.cycles);
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.walks, y.walks);
            assert_eq!(x.cycles, y.cycles);
        }
    }

    #[test]
    fn contender_engines_run_multi_core() {
        let sim = SimConfig::smoke_test();
        for engine in [
            EngineSelect::Victima,
            EngineSelect::Revelator,
            EngineSelect::Asap(AsapHwConfig::p1_p2()),
        ] {
            let out = RunSpec::new(small())
                .with_engine(engine.clone())
                .with_cores(2)
                .with_sim(sim)
                .run_split()
                .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            assert_eq!(out.per_core.len(), 2);
            assert_eq!(out.aggregate.faults, 0, "{engine:?}");
            assert!(out.aggregate.walks.count() > 0, "{engine:?}");
        }
    }
}
