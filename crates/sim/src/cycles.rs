//! The execution-time model.
//!
//! The paper measures Fig. 2's "fraction of execution time spent in page
//! walks" with hardware counters on a real Xeon. We substitute a simple
//! in-order accounting (documented in DESIGN.md): each application memory
//! access carries a fixed amount of non-memory work, plus its data-access
//! latency, plus whatever the translation cost (0 on an L1 TLB hit, the
//! full walk latency on a miss). Fractions of a consistent accounting are
//! comparable across scenarios even though absolute IPC is not modelled.

/// Non-memory work charged per application memory access (ALU work of the
/// surrounding instructions).
pub const CPU_WORK_CYCLES_PER_ACCESS: u64 = 3;

/// Instructions retired per memory access (~25% loads/stores, the classic
/// rule of thumb) — the MPKI denominator.
pub const INSTRUCTIONS_PER_ACCESS: u64 = 4;

// Compile-time sanity: the cycle model's denominators must be non-zero.
const _: () = assert!(CPU_WORK_CYCLES_PER_ACCESS > 0);
const _: () = assert!(INSTRUCTIONS_PER_ACCESS >= 1);
