//! The scenario registry: every paper experiment as a declarative,
//! enumerable cross product.
//!
//! A [`Scenario`] is built with a small DSL instead of a hand-rolled run
//! list: name a workload suite ([`Scenario::workloads`]), add labeled axes
//! ([`Scenario::engines`], [`Scenario::machines`], [`Scenario::colocation`],
//! or a generic [`Scenario::axis`]), and the cross product — with its
//! per-run labels — is derived automatically. Labels are unique by
//! construction: each axis rejects duplicate fragments at build time, and
//! [`Scenario::runs`] verifies the composed (workload, variant) keys as a
//! final gate, so a colliding join or shadowing row panics instead of
//! silently producing ambiguous results. Hand-picked run lists (Table 1's
//! mixed workloads, the CI engine matrix) use explicit [`Scenario::row`]
//! entries instead.
//!
//! The registry ([`registry`]) enumerates one scenario per paper experiment
//! (fig2…fig12, table1…table7, the ablations) plus the CI smoke set.
//! Harnesses resolve runs here; rendering is selected by the scenario's
//! [`RendererKind`] metadata, so adding a scenario is one registry entry —
//! drivers, parallel fan-out, reporting and the CLI come for free.
//!
//! # Examples
//!
//! Running a registered scenario:
//!
//! ```
//! use asap_sim::scenarios::{find, registry};
//! use asap_sim::SimConfig;
//!
//! assert!(registry().iter().any(|s| s.name == "fig3"));
//! let smoke = find("smoke").unwrap();
//! let results = smoke.run(SimConfig::smoke_test());
//! assert!(results.get("mc80", "native/baseline").walks.count() > 0);
//! ```
//!
//! Declaring a new one (~10 lines — this is the whole recipe):
//!
//! ```
//! use asap_sim::scenarios::Scenario;
//! use asap_sim::{EngineSelect, SimConfig};
//! use asap_workloads::WorkloadSpec;
//!
//! let sweep = Scenario::new("my_sweep", "ASAP vs baseline on redis/mcf")
//!     .workloads([WorkloadSpec::redis(), WorkloadSpec::mcf()])
//!     .engines([
//!         ("Baseline", EngineSelect::Baseline),
//!         ("ASAP", EngineSelect::asap_p1_p2()),
//!     ])
//!     .colocation();
//! // 2 workloads × 2 engines × {isolation, coloc} = 8 labeled runs.
//! assert_eq!(sweep.runs(SimConfig::smoke_test()).len(), 8);
//! ```

use crate::driver::DriverError;
use crate::{parallel_map, EngineSelect, MachineSelect, RunResult, RunSpec, SimConfig};
use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_telemetry::{RunTelemetry, TelemetryConfig};
use asap_tlb::PwcConfig;
use asap_types::ByteSize;
use asap_workloads::WorkloadSpec;

/// Which renderer the experiment harness should use for a scenario's
/// results — metadata, so new scenarios pick an existing presentation (or
/// the default [`RendererKind::RunMatrix`]) without touching the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RendererKind {
    /// One row per run: variant, walks, latency, cycles (the default).
    RunMatrix,
    /// Table 1's normalized walk-latency growth ladder.
    Table1,
    /// Figs. 2-style grid: walk fraction across the four machine scenarios.
    WalkFractionGrid,
    /// Figs. 3-style grid: walk latency across the four machine scenarios.
    WalkLatencyGrid,
    /// Table 2's analytic page-table census (no simulation runs).
    PtCensus,
    /// Fig. 8: native Baseline/P1/P1+P2 sweep, isolation + colocation.
    AsapSweep,
    /// Fig. 9: which hierarchy level served each walk request.
    ServedBy,
    /// Fig. 10: virtualized per-dimension ASAP sweep.
    NestedAsapSweep,
    /// Table 6: conservative speedup projection.
    Projection,
    /// Fig. 11 + Table 7: clustered TLB vs ASAP vs both.
    ClusteredSynergy,
    /// Fig. 12: virtualization over 2 MiB host pages.
    HostHugePages,
    /// PWC capacity ablation.
    PwcAblation,
    /// PT physical-layout (scatter) ablation.
    ScatterAblation,
    /// Five-level paging extension.
    FiveLevelAblation,
    /// Contender head-to-head (latency + cycles tables).
    HeadToHead,
    /// SMP scaling: per-core + aggregate rows across core counts.
    SmpScaling,
}

/// One named run within a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The workload's name (first lookup key).
    pub workload: &'static str,
    /// The variant key within the scenario ("native", "P1+P2+coloc", ...).
    pub variant: String,
    /// The full specification.
    pub spec: RunSpec,
}

/// A named, enumerable experiment: a declarative cross product of
/// workloads × labeled axes (plus optional explicit rows), with rendering
/// and window metadata.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key ("fig2", "table1", "ablation_pwc", ...).
    pub name: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// Whether the scenario belongs to the CI smoke set (small enough to
    /// run end-to-end on every `ci.sh` pass).
    pub smoke: bool,
    /// Which renderer the harness should use for the results.
    pub renderer: RendererKind,
    windows: Option<SimConfig>,
    /// When set, every enumerated spec runs at this core count regardless
    /// of any `cores` axis — the CLI's `--cores` override.
    forced_cores: Option<usize>,
    /// When set, every enumerated spec runs over this many NUMA nodes
    /// regardless of any `numa` axis — the CLI's `--numa` override.
    forced_numa: Option<usize>,
    /// Telemetry switches applied to every enumerated spec — the CLI's
    /// `--trace`/`--metrics`/`--profile` flags. Off by default.
    telemetry: TelemetryConfig,
    workloads: Vec<WorkloadSpec>,
    /// The derived cross product: (variant key, spec template). The
    /// template's workload and windows are placeholders replaced at
    /// enumeration time.
    variants: Vec<(String, RunSpec)>,
    /// Hand-picked rows (variant key, full spec); enumerated before the
    /// cross product, in insertion order.
    explicit: Vec<(String, RunSpec)>,
}

/// Joins two label fragments with `+`, eliding empty sides.
fn join_label(a: &str, b: &str) -> String {
    match (a.is_empty(), b.is_empty()) {
        (true, _) => b.to_string(),
        (_, true) => a.to_string(),
        _ => format!("{a}+{b}"),
    }
}

impl Scenario {
    /// Starts a scenario: native baseline runs, default renderer, no axes.
    #[must_use]
    pub fn new(name: &'static str, title: &'static str) -> Self {
        Self {
            name,
            title,
            smoke: false,
            renderer: RendererKind::RunMatrix,
            windows: None,
            forced_cores: None,
            forced_numa: None,
            telemetry: TelemetryConfig::off(),
            workloads: Vec::new(),
            variants: Vec::new(),
            explicit: Vec::new(),
        }
    }

    /// Marks the scenario as part of the CI smoke set.
    #[must_use]
    pub fn ci_smoke(mut self) -> Self {
        self.smoke = true;
        self
    }

    /// Selects the renderer the harness should use.
    #[must_use]
    pub fn rendered_by(mut self, renderer: RendererKind) -> Self {
        self.renderer = renderer;
        self
    }

    /// Declares the scenario's own window configuration (the CI smoke
    /// scenarios pin miniature windows here; paper scenarios leave it
    /// unset and inherit the harness default).
    #[must_use]
    pub fn windows(mut self, sim: SimConfig) -> Self {
        self.windows = Some(sim);
        self
    }

    /// The scenario's declared windows, if any.
    #[must_use]
    pub fn default_windows(&self) -> Option<SimConfig> {
        self.windows
    }

    /// The declared windows, or `fallback`.
    #[must_use]
    pub fn windows_or(&self, fallback: SimConfig) -> SimConfig {
        self.windows.unwrap_or(fallback)
    }

    /// Declares the workload suite the axes cross against.
    #[must_use]
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = WorkloadSpec>) -> Self {
        self.workloads = workloads.into_iter().collect();
        self
    }

    /// The declared workload suite (renderers use it for row order).
    #[must_use]
    pub fn workload_specs(&self) -> &[WorkloadSpec] {
        &self.workloads
    }

    /// Adds a labeled axis: the existing variants are crossed with every
    /// option, labels joined with `+` (empty fragments elided).
    ///
    /// # Panics
    ///
    /// Panics when two options share a label — per-axis fragments must be
    /// unique so composed labels stay unique by construction.
    #[must_use]
    pub fn axis<L, F>(mut self, options: impl IntoIterator<Item = (L, F)>) -> Self
    where
        L: Into<String>,
        F: Fn(RunSpec) -> RunSpec,
    {
        let options: Vec<(String, F)> = options.into_iter().map(|(l, f)| (l.into(), f)).collect();
        for (i, (label, _)) in options.iter().enumerate() {
            assert!(
                !options[..i].iter().any(|(other, _)| other == label),
                "scenario {}: duplicate axis label {label:?}",
                self.name
            );
        }
        let seed = self
            .workloads
            .first()
            .cloned()
            .unwrap_or_else(WorkloadSpec::mc80);
        let base = if self.variants.is_empty() {
            vec![(String::new(), RunSpec::new(seed))]
        } else {
            std::mem::take(&mut self.variants)
        };
        for (blabel, bspec) in base {
            for (olabel, f) in &options {
                self.variants
                    .push((join_label(&blabel, olabel), f(bspec.clone())));
            }
        }
        self
    }

    /// Applies an unlabeled transform to every variant (e.g. "this whole
    /// scenario runs virtualized") without adding a label fragment.
    #[must_use]
    pub fn base<F: Fn(RunSpec) -> RunSpec>(self, f: F) -> Self {
        self.axis([("", f)])
    }

    /// Sugar: an engine axis.
    #[must_use]
    pub fn engines(self, engines: impl IntoIterator<Item = (&'static str, EngineSelect)>) -> Self {
        self.axis(
            engines
                .into_iter()
                .map(|(l, e)| (l, move |s: RunSpec| s.with_engine(e.clone()))),
        )
    }

    /// Sugar: a machine axis.
    #[must_use]
    pub fn machines(
        self,
        machines: impl IntoIterator<Item = (&'static str, MachineSelect)>,
    ) -> Self {
        self.axis(
            machines
                .into_iter()
                .map(|(l, m)| (l, move |s: RunSpec| s.with_machine(m))),
        )
    }

    /// Sugar: the isolation/colocation axis (§4).
    #[must_use]
    pub fn colocation(self) -> Self {
        self.axis([
            ("", (|s| s) as fn(RunSpec) -> RunSpec),
            ("coloc", |s: RunSpec| s.colocated()),
        ])
    }

    /// Sugar: a core-count axis ("1c", "2c", "4c", ...) over the shared
    /// memory fabric.
    #[must_use]
    pub fn cores(self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.axis(
            counts
                .into_iter()
                .map(|n| (format!("{n}c"), move |s: RunSpec| s.with_cores(n))),
        )
    }

    /// Sugar: a NUMA-node axis ("1n", "2n", "4n", ...) splitting the
    /// memory fabric across nodes.
    #[must_use]
    pub fn numa(self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.axis(
            counts
                .into_iter()
                .map(|n| (format!("{n}n"), move |s: RunSpec| s.with_numa_nodes(n))),
        )
    }

    /// Forces every enumerated run to `cores` cores, overriding any
    /// `cores` axis (the CLI's `--cores` flag). Variant labels are NOT
    /// rewritten — this is an execution override, not a new axis.
    #[must_use]
    pub fn with_forced_cores(mut self, cores: usize) -> Self {
        self.forced_cores = Some(cores);
        self
    }

    /// Forces every enumerated run onto `nodes` NUMA nodes, overriding
    /// any `numa` axis (the CLI's `--numa` flag). Same contract as
    /// [`Scenario::with_forced_cores`]: an execution override, labels
    /// untouched.
    #[must_use]
    pub fn with_forced_numa(mut self, nodes: usize) -> Self {
        self.forced_numa = Some(nodes);
        self
    }

    /// Enables telemetry on every enumerated run (the CLI's
    /// `--trace`/`--metrics`/`--profile` flags). Same contract as
    /// [`Scenario::with_forced_cores`]: an execution override, labels
    /// untouched.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Adds one hand-picked row: the spec's own workload is the lookup
    /// key. Explicit rows enumerate before the cross product, in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics when the (workload, variant) pair is already present.
    #[must_use]
    pub fn row(mut self, variant: impl Into<String>, spec: RunSpec) -> Self {
        let variant = variant.into();
        assert!(
            !self
                .explicit
                .iter()
                .any(|(v, s)| *v == variant && s.workload.name == spec.workload.name),
            "scenario {}: duplicate row ({}, {variant})",
            self.name,
            spec.workload.name
        );
        self.explicit.push((variant, spec));
        self
    }

    /// Enumerates the scenario's runs for the given window configuration:
    /// explicit rows first, then the workload × axes cross product.
    ///
    /// # Panics
    ///
    /// Panics when two runs share a (workload, variant) key. Per-axis
    /// fragment checks catch most collisions at construction; this final
    /// gate also catches cross-axis joins that happen to collide (e.g.
    /// `"A"+"B"` vs `"A+B"+""`) and explicit rows shadowing the cross
    /// product, so duplicate keys can never reach the driver or the
    /// results JSON.
    #[must_use]
    pub fn runs(&self, sim: SimConfig) -> Vec<ScenarioRun> {
        let force = |spec: RunSpec| {
            let spec = spec.with_telemetry(self.telemetry);
            let spec = match self.forced_cores {
                Some(n) => spec.with_cores(n),
                None => spec,
            };
            match self.forced_numa {
                Some(n) => spec.with_numa_nodes(n),
                None => spec,
            }
        };
        let mut out = Vec::new();
        for (variant, spec) in &self.explicit {
            out.push(ScenarioRun {
                workload: spec.workload.name,
                variant: variant.clone(),
                spec: force(spec.clone().with_sim(sim)),
            });
        }
        for w in &self.workloads {
            for (variant, template) in &self.variants {
                out.push(ScenarioRun {
                    workload: w.name,
                    variant: variant.clone(),
                    spec: force(template.clone().with_workload(w.clone()).with_sim(sim)),
                });
            }
        }
        let mut keys = asap_types::FastSet::default();
        for r in &out {
            assert!(
                keys.insert((r.workload, r.variant.as_str())),
                "scenario {}: duplicate run key ({}, {})",
                self.name,
                r.workload,
                r.variant
            );
        }
        out
    }

    /// Executes every run across host threads and collects the results.
    #[must_use]
    pub fn run(&self, sim: SimConfig) -> ScenarioResults {
        run_scenarios(std::slice::from_ref(self), sim)
            .pop()
            .expect("one scenario in, one result set out")
    }
}

/// The measurements of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioRunResult {
    /// The workload's name.
    pub workload: &'static str,
    /// The variant key.
    pub variant: String,
    /// The aggregate (whole-machine) measurements.
    pub result: RunResult,
    /// Per-core rows for multi-core runs ("mc80@core0", ...), in core
    /// order; empty for single-core runs.
    pub per_core: Vec<RunResult>,
    /// Telemetry harvested from the run, when the scenario enabled any.
    pub telemetry: Option<RunTelemetry>,
}

/// A run the driver refused to execute (misconfigured spec), reported
/// alongside the successful runs instead of aborting the fan-out.
#[derive(Debug, Clone)]
pub struct ScenarioRunError {
    /// The workload's name.
    pub workload: &'static str,
    /// The variant key.
    pub variant: String,
    /// What the driver reported.
    pub error: DriverError,
}

/// All results of one executed scenario, addressable by (workload, variant).
#[derive(Debug, Clone)]
pub struct ScenarioResults {
    /// The scenario's registry key.
    pub name: &'static str,
    /// Every successful run's measurements, in registry order.
    pub runs: Vec<ScenarioRunResult>,
    /// Runs the driver rejected with a typed error, in registry order.
    pub errors: Vec<ScenarioRunError>,
}

impl ScenarioResults {
    /// The result for (workload, variant).
    ///
    /// # Panics
    ///
    /// Panics when the pair is not part of the scenario — a harness bug
    /// reported loudly (including any driver error for the pair) rather
    /// than rendered as an empty cell.
    #[must_use]
    pub fn get(&self, workload: &str, variant: &str) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(|r| &r.result)
            .unwrap_or_else(|| {
                if let Some(e) = self
                    .errors
                    .iter()
                    .find(|e| e.workload == workload && e.variant == variant)
                {
                    panic!(
                        "scenario {}: run ({workload}, {variant}) failed: {}",
                        self.name, e.error
                    );
                }
                panic!("scenario {}: no run ({workload}, {variant})", self.name)
            })
    }

    /// Whether every enumerated run executed successfully.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }

    /// The per-core rows for (workload, variant) — empty for single-core
    /// runs.
    ///
    /// # Panics
    ///
    /// Panics when the pair is not part of the scenario (same contract as
    /// [`ScenarioResults::get`]).
    #[must_use]
    pub fn per_core(&self, workload: &str, variant: &str) -> &[RunResult] {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(|r| r.per_core.as_slice())
            .unwrap_or_else(|| panic!("scenario {}: no run ({workload}, {variant})", self.name))
    }
}

/// Runs several scenarios as ONE flattened parallel fan-out (better load
/// balancing than nesting `parallel_map` per scenario), preserving order.
#[must_use]
pub fn run_scenarios(scenarios: &[Scenario], sim: SimConfig) -> Vec<ScenarioResults> {
    run_scenarios_cached(scenarios, sim, None)
}

/// [`run_scenarios`] with an optional result cache: each run first probes
/// the content-addressed store ([`crate::RunSpec::run_split_cached`]),
/// the fan-out executes longest-expected-first using the cache's
/// advisory cost profile (unknown costs schedule first — the
/// conservative choice for stragglers), and observed wall-clocks are
/// folded back into the profile afterwards. With `cache: None` this is
/// exactly [`run_scenarios`]. Results are identical either way — the
/// cache stores byte-exact payloads and the schedule order never
/// influences any statistic.
#[must_use]
pub fn run_scenarios_cached(
    scenarios: &[Scenario],
    sim: SimConfig,
    cache: Option<&asap_store::CacheHandle>,
) -> Vec<ScenarioResults> {
    let mut flat: Vec<(usize, ScenarioRun)> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        flat.extend(s.runs(sim).into_iter().map(|r| (i, r)));
    }
    let done = match cache {
        None => parallel_map(flat, |(i, run)| {
            (
                i,
                run.workload,
                run.variant,
                run.spec.run_split().map(|output| (output, None)),
            )
        }),
        Some(cache) => {
            let profile = cache.load_costs();
            let costs: Vec<u64> = flat
                .iter()
                .map(|(_, run)| profile.get(&run.spec.cost_label()).unwrap_or(u64::MAX))
                .collect();
            let done = crate::parallel_map_prioritized(flat, &costs, |(i, run)| {
                let label = run.spec.cost_label();
                (
                    i,
                    run.workload,
                    run.variant,
                    run.spec
                        .run_split_cached_timed(cache)
                        .map(|(output, nanos)| (output, nanos.map(|n| (label, n)))),
                )
            });
            let mut observed = asap_store::CostProfile::new();
            for (_, _, _, r) in &done {
                if let Ok((_, Some((label, nanos)))) = r {
                    observed.record(label, *nanos);
                }
            }
            if !observed.is_empty() {
                let _ = cache.save_costs(&observed);
            }
            done
        }
    };
    let done = done
        .into_iter()
        .map(|(i, workload, variant, r)| (i, workload, variant, r.map(|(output, _)| output)));
    let mut out: Vec<ScenarioResults> = scenarios
        .iter()
        .map(|s| ScenarioResults {
            name: s.name,
            runs: Vec::new(),
            errors: Vec::new(),
        })
        .collect();
    for (i, workload, variant, r) in done {
        match r {
            Ok(output) => out[i].runs.push(ScenarioRunResult {
                workload,
                variant,
                result: output.aggregate,
                per_core: output.per_core,
                telemetry: output.telemetry,
            }),
            Err(error) => out[i].errors.push(ScenarioRunError {
                workload,
                variant,
                error,
            }),
        }
    }
    out
}

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The scenarios of the CI smoke set.
#[must_use]
pub fn smoke_set() -> Vec<Scenario> {
    registry().into_iter().filter(|s| s.smoke).collect()
}

/// The full registry, in paper order.
#[must_use]
pub fn registry() -> Vec<Scenario> {
    vec![
        table1(),
        fig2(),
        fig3(),
        table2(),
        fig8(),
        fig9(),
        fig10(),
        table6(),
        fig11_table7(),
        fig12(),
        ablation_pwc(),
        ablation_scatter(),
        ablation_5level(),
        contenders(),
        smp_scaling(),
        numa_scaling(),
        smoke(),
        contenders_smoke(),
        smp_smoke(),
        numa_smoke(),
    ]
}

fn table1() -> Scenario {
    let mc80 = WorkloadSpec::mc80;
    Scenario::new(
        "table1",
        "Table 1: memcached walk-latency growth under scaling, colocation, virtualization",
    )
    .rendered_by(RendererKind::Table1)
    .row("native", RunSpec::new(mc80()))
    .row("native", RunSpec::new(WorkloadSpec::mc400()))
    .row("native+coloc", RunSpec::new(mc80()).colocated())
    .row("virt", RunSpec::new(mc80()).virt())
    .row("virt+coloc", RunSpec::new(mc80()).virt().colocated())
}

/// The four execution scenarios of Figs. 2/3: {native, virt} × {isolation,
/// colocation}.
fn four_machine_scenarios(s: Scenario) -> Scenario {
    s.machines([
        ("native", MachineSelect::Native),
        ("virt", MachineSelect::virt()),
    ])
    .colocation()
}

fn fig2() -> Scenario {
    four_machine_scenarios(
        Scenario::new(
            "fig2",
            "Figure 2: fraction of execution time spent in page walks",
        )
        .rendered_by(RendererKind::WalkFractionGrid)
        .workloads(WorkloadSpec::paper_suite_no_mc400()),
    )
}

fn fig3() -> Scenario {
    four_machine_scenarios(
        Scenario::new(
            "fig3",
            "Figure 3: average page-walk latency across the four scenarios",
        )
        .rendered_by(RendererKind::WalkLatencyGrid)
        .workloads(WorkloadSpec::paper_suite()),
    )
}

fn table2() -> Scenario {
    Scenario::new(
        "table2",
        "Table 2: VMAs, PT pages and physical contiguity (analytic census, no sim runs)",
    )
    .rendered_by(RendererKind::PtCensus)
    .workloads(WorkloadSpec::paper_suite())
}

fn fig8() -> Scenario {
    Scenario::new(
        "fig8",
        "Figure 8: native walk latency, Baseline vs P1 vs P1+P2",
    )
    .rendered_by(RendererKind::AsapSweep)
    .workloads(WorkloadSpec::paper_suite())
    .engines([
        ("Baseline", EngineSelect::Baseline),
        ("P1", EngineSelect::Asap(AsapHwConfig::p1())),
        ("P1+P2", EngineSelect::Asap(AsapHwConfig::p1_p2())),
    ])
    .colocation()
}

fn fig9() -> Scenario {
    Scenario::new(
        "fig9",
        "Figure 9: walk requests served by each hierarchy level",
    )
    .rendered_by(RendererKind::ServedBy)
    .workloads([WorkloadSpec::mcf(), WorkloadSpec::redis()])
    .axis([
        ("isolation", (|s| s) as fn(RunSpec) -> RunSpec),
        ("coloc", |s: RunSpec| s.colocated()),
    ])
}

fn fig10() -> Scenario {
    Scenario::new(
        "fig10",
        "Figure 10: virtualized walk latency across per-dimension ASAP configs",
    )
    .rendered_by(RendererKind::NestedAsapSweep)
    .workloads(WorkloadSpec::paper_suite())
    .base(|s| s.virt())
    .engines([
        ("Baseline", EngineSelect::Baseline),
        ("P1g", EngineSelect::NestedAsap(NestedAsapConfig::p1g())),
        (
            "P1g+P2g",
            EngineSelect::NestedAsap(NestedAsapConfig::p1g_p2g()),
        ),
        (
            "P1g+P1h",
            EngineSelect::NestedAsap(NestedAsapConfig::p1g_p1h()),
        ),
        ("All", EngineSelect::NestedAsap(NestedAsapConfig::all())),
    ])
    .colocation()
}

fn table6() -> Scenario {
    Scenario::new("table6", "Table 6: conservative performance projection")
        .rendered_by(RendererKind::Projection)
        .workloads(
            WorkloadSpec::paper_suite()
                .into_iter()
                .filter(|w| !w.name.starts_with("mc")),
        )
        .axis([
            ("native", (|s| s) as fn(RunSpec) -> RunSpec),
            ("native-perfect", |s: RunSpec| s.perfect_tlb()),
            ("virt", |s: RunSpec| s.virt()),
            ("virt+asap", |s: RunSpec| {
                s.virt().with_nested_asap(NestedAsapConfig::all())
            }),
        ])
}

fn fig11_table7() -> Scenario {
    Scenario::new(
        "fig11_table7",
        "Fig. 11 + Table 7: clustered TLB vs ASAP vs both",
    )
    .rendered_by(RendererKind::ClusteredSynergy)
    .workloads(WorkloadSpec::paper_suite())
    .axis([
        ("Baseline", (|s| s) as fn(RunSpec) -> RunSpec),
        ("Clustered", |s: RunSpec| s.with_clustered_tlb()),
        ("ASAP", |s: RunSpec| s.with_asap(AsapHwConfig::p1_p2())),
        ("Clustered+ASAP", |s: RunSpec| {
            s.with_asap(AsapHwConfig::p1_p2()).with_clustered_tlb()
        }),
    ])
}

fn fig12() -> Scenario {
    Scenario::new("fig12", "Figure 12: virtualization with 2 MiB host pages")
        .rendered_by(RendererKind::HostHugePages)
        .workloads(WorkloadSpec::paper_suite())
        .base(|s| s.host_2m_pages())
        .engines([
            ("Baseline", EngineSelect::Baseline),
            (
                "ASAP",
                EngineSelect::NestedAsap(NestedAsapConfig::host_2m()),
            ),
        ])
        .colocation()
}

fn ablation_pwc() -> Scenario {
    Scenario::new("ablation_pwc", "Ablation (§5.1.1): PWC capacity doubling")
        .rendered_by(RendererKind::PwcAblation)
        .workloads(WorkloadSpec::paper_suite())
        .axis([
            ("default", (|s| s) as fn(RunSpec) -> RunSpec),
            ("doubled", |s: RunSpec| {
                s.with_pwc(PwcConfig::split_doubled())
            }),
        ])
}

fn ablation_scatter() -> Scenario {
    Scenario::new(
        "ablation_scatter",
        "Ablation: baseline sensitivity to PT physical layout",
    )
    .rendered_by(RendererKind::ScatterAblation)
    .workloads([WorkloadSpec::mc80()])
    .axis([1.0f64, 4.0, 23.2, 256.0].map(|run| {
        (format!("run={run:.1}"), move |s: RunSpec| {
            s.with_pt_scatter_run(run)
        })
    }))
}

fn ablation_5level() -> Scenario {
    Scenario::new("ablation_5level", "Extension (§3.5): five-level page table")
        .rendered_by(RendererKind::FiveLevelAblation)
        .workloads([WorkloadSpec::mc400()])
        .axis([
            ("4-level", (|s| s) as fn(RunSpec) -> RunSpec),
            ("5-level", |s: RunSpec| s.five_level()),
            ("5-level+ASAP", |s: RunSpec| {
                s.five_level().with_asap(AsapHwConfig::p1_p2())
            }),
        ])
}

/// The engine axis of the head-to-head comparison: the two paper machines
/// (baseline, ASAP P1+P2) and the two contender backends, all native, all
/// over identical processes (ASAP's OS policy moves only PT pages, so data
/// placement — and thus Revelator's hash accuracy — is unaffected).
fn head_to_head_engines() -> [(&'static str, EngineSelect); 4] {
    [
        ("Baseline", EngineSelect::Baseline),
        ("ASAP", EngineSelect::asap_p1_p2()),
        ("Victima", EngineSelect::Victima),
        ("Revelator", EngineSelect::Revelator),
    ]
}

fn contenders() -> Scenario {
    // The workloads of the head-to-head comparison: a pointer chaser with
    // high physical contiguity (Revelator's best case), a zipfian server
    // whose hot set exceeds S-TLB reach (Victima's best case), and the
    // fragmented uniform sweep both degrade on.
    Scenario::new(
        "contenders",
        "Head-to-head: baseline vs ASAP vs Victima vs Revelator (native)",
    )
    .rendered_by(RendererKind::HeadToHead)
    .workloads([
        WorkloadSpec::mcf(),
        WorkloadSpec::redis(),
        WorkloadSpec::mc80(),
    ])
    .engines(head_to_head_engines())
}

fn smp_scaling() -> Scenario {
    // How translation scales when cores genuinely contend for one memory
    // fabric: the uniform sweep (maximum cache pressure), the zipfian
    // server (Victima's block regime under shared-L2 pressure), and the
    // graph traversal, each across every backend from 1 to 64 cores. The
    // top of the range is what the event-queue scheduler buys: arbitration
    // stays O(log n), so the 64-core rows cost per-core work, not
    // per-epoch scans.
    Scenario::new(
        "smp_scaling",
        "SMP scaling: walk latency and cycles as 1..=64 cores share the memory fabric",
    )
    .rendered_by(RendererKind::SmpScaling)
    .workloads([
        WorkloadSpec::mc80(),
        WorkloadSpec::redis(),
        WorkloadSpec::bfs(),
    ])
    .engines(head_to_head_engines())
    .cores([1, 2, 4, 8, 16, 32, 64])
}

fn numa_scaling() -> Scenario {
    // Splitting one 16-core fabric across 1/2/4/8 NUMA nodes: every
    // remote-node DRAM fill pays the interconnect hop, so walk latency
    // grows with node count and ASAP's prefetches (which hide the hop by
    // landing early) matter more, not less, on bigger machines.
    Scenario::new(
        "numa_scaling",
        "NUMA scaling: 16-core walk latency as the fabric splits across 1/2/4/8 nodes",
    )
    .rendered_by(RendererKind::SmpScaling)
    .workloads([WorkloadSpec::mc80(), WorkloadSpec::redis()])
    .engines([
        ("Baseline", EngineSelect::Baseline),
        ("ASAP", EngineSelect::asap_p1_p2()),
    ])
    .base(|s| s.with_cores(16))
    .numa([1, 2, 4, 8])
}

fn smp_smoke() -> Scenario {
    // CI-sized multi-core coverage: enough cores that fabric contention
    // and per-core rows are exercised end-to-end on every ci.sh pass, and
    // a coloc row so the co-runner-as-a-core path is drift-gated too.
    Scenario::new(
        "smp_smoke",
        "CI smoke: multi-core fabric sharing (baseline/ASAP/Victima × 1/2 cores) at miniature scale",
    )
    .ci_smoke()
    .windows(SimConfig::smoke_test())
    .rendered_by(RendererKind::SmpScaling)
    .workloads([smoke_workload()])
    .engines([
        ("Baseline", EngineSelect::Baseline),
        ("ASAP", EngineSelect::asap_p1_p2()),
        ("Victima", EngineSelect::Victima),
    ])
    .cores([1, 2])
    .row(
        "Baseline+coloc2c",
        RunSpec::new(smoke_workload()).with_cores(2).colocated(),
    )
}

fn numa_smoke() -> Scenario {
    // CI-sized NUMA coverage: the same miniature workload on a 4-core
    // fabric, UMA vs 2 nodes, so window homing, hop charging, and the
    // per-core node labels are drift-gated on every ci.sh pass. Appended
    // at the END of the registry so pre-existing BENCH_results.json
    // blocks keep their byte positions.
    Scenario::new(
        "numa_smoke",
        "CI smoke: NUMA fabric splitting (baseline/ASAP × 4 cores × 1/2 nodes) at miniature scale",
    )
    .ci_smoke()
    .windows(SimConfig::smoke_test())
    .rendered_by(RendererKind::SmpScaling)
    .workloads([smoke_workload()])
    .engines([
        ("Baseline", EngineSelect::Baseline),
        ("ASAP", EngineSelect::asap_p1_p2()),
    ])
    .base(|s| s.with_cores(4))
    .numa([1, 2])
}

fn contenders_smoke() -> Scenario {
    // The same miniature redis variant the contender unit tests use: small
    // enough for CI, enough page reuse that both contender mechanisms
    // actually fire.
    let w = WorkloadSpec {
        footprint: ByteSize::mib(256),
        ..WorkloadSpec::redis()
    };
    Scenario::new(
        "contenders_smoke",
        "CI smoke: the contender matrix (baseline/ASAP/Victima/Revelator) at miniature scale",
    )
    .ci_smoke()
    .windows(SimConfig::smoke_test())
    .rendered_by(RendererKind::HeadToHead)
    .workloads([w])
    .engines(head_to_head_engines())
}

/// The miniature workload the smoke scenario (and the engine-parity test)
/// is pinned to.
#[must_use]
pub fn smoke_workload() -> WorkloadSpec {
    WorkloadSpec {
        footprint: ByteSize::mib(256),
        ..WorkloadSpec::mc80()
    }
}

fn smoke() -> Scenario {
    let w = smoke_workload;
    Scenario::new(
        "smoke",
        "CI smoke: the full engine matrix (native/virt × baseline/ASAP/features) at miniature scale",
    )
    .ci_smoke()
    .windows(SimConfig::smoke_test())
    .row("native/baseline", RunSpec::new(w()))
    .row(
        "native/asap",
        RunSpec::new(w()).with_asap(AsapHwConfig::p1_p2()),
    )
    .row(
        "native/asap+clustered+coloc",
        RunSpec::new(w())
            .with_asap(AsapHwConfig::p1_p2())
            .with_clustered_tlb()
            .colocated(),
    )
    .row("native/baseline+5level", RunSpec::new(w()).five_level())
    .row("native/perfect-tlb", RunSpec::new(w()).perfect_tlb())
    .row("virt/baseline", RunSpec::new(w()).virt())
    .row(
        "virt/asap",
        RunSpec::new(w())
            .virt()
            .with_nested_asap(NestedAsapConfig::all()),
    )
    .row(
        "virt/asap+host2m+coloc",
        RunSpec::new(w())
            .with_nested_asap(NestedAsapConfig::host_2m())
            .host_2m_pages()
            .colocated(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate scenario names");
        for expected in [
            "table1",
            "fig2",
            "fig3",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "table6",
            "fig11_table7",
            "fig12",
            "ablation_pwc",
            "ablation_scatter",
            "ablation_5level",
            "contenders",
            "smp_scaling",
            "numa_scaling",
            "smoke",
            "contenders_smoke",
            "smp_smoke",
            "numa_smoke",
        ] {
            assert!(find(expected).is_some(), "missing scenario {expected}");
        }
    }

    #[test]
    fn every_scenario_enumerates_unique_valid_run_keys() {
        let sim = SimConfig::smoke_test();
        for s in registry() {
            let runs = s.runs(sim);
            let mut keys: Vec<(String, String)> = runs
                .iter()
                .map(|r| (r.workload.to_string(), r.variant.clone()))
                .collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), n, "scenario {} has duplicate keys", s.name);
            for r in &runs {
                r.spec
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}/{}: {e}", s.name, r.workload, r.variant));
            }
        }
    }

    #[test]
    fn cross_product_matches_the_hand_rolled_shape() {
        // fig8 = 7 workloads × 3 engines × {iso, coloc}; labels composed
        // exactly as the pre-DSL registry spelled them by hand.
        let s = find("fig8").unwrap();
        let runs = s.runs(SimConfig::smoke_test());
        assert_eq!(runs.len(), WorkloadSpec::paper_suite().len() * 6);
        assert!(runs
            .iter()
            .any(|r| r.workload == "mcf" && r.variant == "P1+P2+coloc"));
        assert!(runs
            .iter()
            .any(|r| r.workload == "mcf" && r.variant == "Baseline"));
    }

    #[test]
    fn duplicate_axis_labels_panic() {
        let caught = std::panic::catch_unwind(|| {
            let _ = Scenario::new("dup", "duplicate axis labels").axis([
                ("same", (|s| s) as fn(RunSpec) -> RunSpec),
                ("same", |s: RunSpec| s.colocated()),
            ]);
        });
        assert!(caught.is_err(), "duplicate labels must be rejected");
    }

    #[test]
    fn colliding_cross_axis_joins_panic_at_enumeration() {
        // Both axes pass the per-axis check, but "A"+"B" == "A+B"+"".
        let s = Scenario::new("collide", "cross-axis label collision")
            .workloads([WorkloadSpec::mcf()])
            .axis([
                ("A", (|s| s) as fn(RunSpec) -> RunSpec),
                ("A+B", |s: RunSpec| s.colocated()),
            ])
            .axis([
                ("B", (|s| s) as fn(RunSpec) -> RunSpec),
                ("", |s: RunSpec| s.perfect_tlb()),
            ]);
        let caught = std::panic::catch_unwind(|| s.runs(SimConfig::smoke_test()));
        assert!(caught.is_err(), "colliding joined keys must be rejected");
    }

    #[test]
    fn explicit_row_shadowing_the_cross_product_panics() {
        let s = Scenario::new("shadow", "row shadows the cross product")
            .workloads([WorkloadSpec::mcf()])
            .engines([("Baseline", EngineSelect::Baseline)])
            .row("Baseline", RunSpec::new(WorkloadSpec::mcf()));
        let caught = std::panic::catch_unwind(|| s.runs(SimConfig::smoke_test()));
        assert!(caught.is_err(), "shadowing rows must be rejected");
    }

    #[test]
    fn smp_smoke_scenario_produces_per_core_rows() {
        let results = find("smp_smoke").unwrap().run(SimConfig::smoke_test());
        // 3 engines × {1c, 2c} + the explicit coloc row.
        assert_eq!(results.runs.len(), 7);
        assert!(results.per_core("mc80", "Baseline+1c").is_empty());
        let duo = results.per_core("mc80", "Baseline+2c");
        assert_eq!(duo.len(), 2);
        assert_eq!(duo[0].workload, "mc80@core0");
        assert_eq!(duo[1].workload, "mc80@core1");
        let coloc = results.per_core("mc80", "Baseline+coloc2c");
        assert_eq!(coloc[1].workload, "corunner@core1");
        // Contention is visible in the aggregate rows.
        let solo = results.get("mc80", "Baseline+1c");
        let pair = results.get("mc80", "Baseline+2c");
        assert!(pair.avg_walk_latency() > solo.avg_walk_latency());
    }

    #[test]
    fn forced_cores_override_every_run() {
        let s = Scenario::new("forced", "forced-cores override")
            .workloads([WorkloadSpec::mcf()])
            .cores([1, 2])
            .with_forced_cores(4);
        for run in s.runs(SimConfig::smoke_test()) {
            assert_eq!(run.spec.cores, 4, "{} not overridden", run.variant);
        }
    }

    #[test]
    fn forced_numa_overrides_every_run() {
        let s = Scenario::new("forced-numa", "forced-numa override")
            .workloads([WorkloadSpec::mcf()])
            .base(|s| s.with_cores(4))
            .numa([1, 2])
            .with_forced_numa(4);
        for run in s.runs(SimConfig::smoke_test()) {
            assert_eq!(run.spec.numa_nodes, 4, "{} not overridden", run.variant);
        }
    }

    #[test]
    fn numa_smoke_scenario_splits_the_fabric() {
        let results = find("numa_smoke").unwrap().run(SimConfig::smoke_test());
        // 2 engines × {1n, 2n}, all at 4 cores.
        assert_eq!(results.runs.len(), 4);
        assert!(results.is_complete());
        // UMA rows keep the plain per-core names; split rows carry the
        // round-robin node assignment in theirs.
        let uma = results.per_core("mc80", "Baseline+1n");
        assert_eq!(uma[0].workload, "mc80@core0");
        let split = results.per_core("mc80", "Baseline+2n");
        assert_eq!(split.len(), 4);
        assert_eq!(split[0].workload, "mc80@core0n0");
        assert_eq!(split[1].workload, "mc80@core1n1");
        // Remote-node fills pay the interconnect hop: same machine,
        // strictly slower walks once the fabric splits.
        let flat = results.get("mc80", "Baseline+1n");
        let numa = results.get("mc80", "Baseline+2n");
        assert!(numa.avg_walk_latency() > flat.avg_walk_latency());
    }

    #[test]
    fn smoke_scenario_runs_end_to_end() {
        let results = find("smoke").unwrap().run(SimConfig::smoke_test());
        assert_eq!(results.runs.len(), 8);
        let base = results.get("mc80", "native/baseline");
        let asap = results.get("mc80", "native/asap");
        assert!(asap.avg_walk_latency() < base.avg_walk_latency());
        assert_eq!(results.get("mc80", "native/perfect-tlb").walks.count(), 0);
        assert!(results.get("mc80", "virt/baseline").host_served.is_some());
    }

    #[test]
    fn run_scenarios_flattens_and_regroups() {
        let sim = SimConfig {
            warmup_accesses: 200,
            measure_accesses: 500,
            seed: 42,
            ..SimConfig::default()
        };
        let set: Vec<Scenario> = registry()
            .into_iter()
            .filter(|s| s.name == "smoke" || s.name == "table2")
            .collect();
        let all = run_scenarios(&set, sim);
        assert_eq!(all.len(), 2);
        let smoke = all.iter().find(|r| r.name == "smoke").unwrap();
        let table2 = all.iter().find(|r| r.name == "table2").unwrap();
        assert_eq!(smoke.runs.len(), 8);
        assert!(table2.runs.is_empty(), "table2 is an analytic scenario");
        // Grouped results match a per-scenario run exactly.
        let direct = find("smoke").unwrap().run(sim);
        for (a, b) in smoke.runs.iter().zip(direct.runs.iter()) {
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.result.walks, b.result.walks);
        }
    }

    #[test]
    fn smoke_scenarios_declare_their_windows() {
        for s in smoke_set() {
            assert_eq!(
                s.default_windows(),
                Some(SimConfig::smoke_test()),
                "{} must pin miniature windows",
                s.name
            );
        }
        assert_eq!(find("fig3").unwrap().default_windows(), None);
        let fallback = SimConfig::default();
        assert_eq!(
            find("smoke").unwrap().windows_or(fallback),
            SimConfig::smoke_test()
        );
        assert_eq!(find("fig3").unwrap().windows_or(fallback), fallback);
    }
}
