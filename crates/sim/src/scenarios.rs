//! The scenario registry: every paper experiment as a named, enumerable
//! set of runs.
//!
//! A [`Scenario`] is a named cross product of workload × engine
//! configuration × simulation configuration. The registry ([`registry`])
//! enumerates one scenario per paper experiment (fig2…fig12, table1…table7,
//! the ablations) plus a `smoke` scenario covering the whole engine matrix
//! at miniature scale for CI. Experiment harnesses resolve their runs here
//! instead of hand-rolling spec lists, so adding a scenario is one registry
//! entry — the drivers, parallel fan-out and reporting come for free.
//!
//! # Examples
//!
//! ```
//! use asap_sim::scenarios::{find, registry};
//! use asap_sim::SimConfig;
//!
//! assert!(registry().iter().any(|s| s.name == "fig3"));
//! let smoke = find("smoke").unwrap();
//! let results = smoke.run(SimConfig::smoke_test());
//! assert!(results.get("mc80", "native/baseline").walks.count() > 0);
//! ```

use crate::driver::DriverError;
use crate::{
    parallel_map, run_contender, run_native, run_virt, ContenderRunSpec, NativeRunSpec, RunResult,
    SimConfig, VirtRunSpec,
};
use asap_contenders::ContenderKind;
use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_tlb::PwcConfig;
use asap_types::ByteSize;
use asap_workloads::WorkloadSpec;

/// One run specification, native or virtualized — the unit the registry
/// enumerates and the generic driver executes.
#[derive(Debug, Clone)]
pub enum RunSpec {
    /// A native-execution run.
    Native(NativeRunSpec),
    /// A virtualized-execution run.
    Virt(VirtRunSpec),
    /// A contender-backend run (Victima/Revelator head-to-head).
    Contender(ContenderRunSpec),
}

impl RunSpec {
    /// Executes the run through the generic driver.
    ///
    /// # Errors
    ///
    /// Propagates the driver's [`DriverError`] for a misconfigured spec.
    pub fn run(&self) -> Result<RunResult, DriverError> {
        match self {
            RunSpec::Native(s) => run_native(s),
            RunSpec::Virt(s) => run_virt(s),
            RunSpec::Contender(s) => run_contender(s),
        }
    }

    /// The workload's name.
    #[must_use]
    pub fn workload(&self) -> &'static str {
        match self {
            RunSpec::Native(s) => s.workload.name,
            RunSpec::Virt(s) => s.workload.name,
            RunSpec::Contender(s) => s.workload.name,
        }
    }

    /// The configuration label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RunSpec::Native(s) => s.label(),
            RunSpec::Virt(s) => s.label(),
            RunSpec::Contender(s) => s.label(),
        }
    }
}

/// One named run within a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The workload's name (first lookup key).
    pub workload: &'static str,
    /// The variant key within the scenario ("native", "P1+P2+coloc", ...).
    pub variant: String,
    /// The full specification.
    pub spec: RunSpec,
}

/// A named, enumerable experiment: workload × engine config × sim config.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key ("fig2", "table1", "ablation_pwc", ...).
    pub name: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// Whether the scenario belongs to the CI smoke set (small enough to
    /// run end-to-end on every `ci.sh` pass).
    pub smoke: bool,
    builder: fn(SimConfig) -> Vec<ScenarioRun>,
}

impl Scenario {
    /// Enumerates the scenario's runs for the given window configuration.
    #[must_use]
    pub fn runs(&self, sim: SimConfig) -> Vec<ScenarioRun> {
        (self.builder)(sim)
    }

    /// Executes every run across host threads and collects the results.
    #[must_use]
    pub fn run(&self, sim: SimConfig) -> ScenarioResults {
        run_scenarios(std::slice::from_ref(self), sim)
            .pop()
            .expect("one scenario in, one result set out")
    }
}

/// The measurements of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioRunResult {
    /// The workload's name.
    pub workload: &'static str,
    /// The variant key.
    pub variant: String,
    /// The driver's measurements.
    pub result: RunResult,
}

/// A run the driver refused to execute (misconfigured spec), reported
/// alongside the successful runs instead of aborting the fan-out.
#[derive(Debug, Clone)]
pub struct ScenarioRunError {
    /// The workload's name.
    pub workload: &'static str,
    /// The variant key.
    pub variant: String,
    /// What the driver reported.
    pub error: DriverError,
}

/// All results of one executed scenario, addressable by (workload, variant).
#[derive(Debug, Clone)]
pub struct ScenarioResults {
    /// The scenario's registry key.
    pub name: &'static str,
    /// Every successful run's measurements, in registry order.
    pub runs: Vec<ScenarioRunResult>,
    /// Runs the driver rejected with a typed error, in registry order.
    pub errors: Vec<ScenarioRunError>,
}

impl ScenarioResults {
    /// The result for (workload, variant).
    ///
    /// # Panics
    ///
    /// Panics when the pair is not part of the scenario — a harness bug
    /// reported loudly (including any driver error for the pair) rather
    /// than rendered as an empty cell.
    #[must_use]
    pub fn get(&self, workload: &str, variant: &str) -> &RunResult {
        self.runs
            .iter()
            .find(|r| r.workload == workload && r.variant == variant)
            .map(|r| &r.result)
            .unwrap_or_else(|| {
                if let Some(e) = self
                    .errors
                    .iter()
                    .find(|e| e.workload == workload && e.variant == variant)
                {
                    panic!(
                        "scenario {}: run ({workload}, {variant}) failed: {}",
                        self.name, e.error
                    );
                }
                panic!("scenario {}: no run ({workload}, {variant})", self.name)
            })
    }

    /// Whether every enumerated run executed successfully.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Runs several scenarios as ONE flattened parallel fan-out (better load
/// balancing than nesting `parallel_map` per scenario), preserving order.
#[must_use]
pub fn run_scenarios(scenarios: &[Scenario], sim: SimConfig) -> Vec<ScenarioResults> {
    let mut flat: Vec<(usize, ScenarioRun)> = Vec::new();
    for (i, s) in scenarios.iter().enumerate() {
        flat.extend(s.runs(sim).into_iter().map(|r| (i, r)));
    }
    let done = parallel_map(flat, |(i, run)| {
        (i, run.workload, run.variant, run.spec.run())
    });
    let mut out: Vec<ScenarioResults> = scenarios
        .iter()
        .map(|s| ScenarioResults {
            name: s.name,
            runs: Vec::new(),
            errors: Vec::new(),
        })
        .collect();
    for (i, workload, variant, r) in done {
        match r {
            Ok(result) => out[i].runs.push(ScenarioRunResult {
                workload,
                variant,
                result,
            }),
            Err(error) => out[i].errors.push(ScenarioRunError {
                workload,
                variant,
                error,
            }),
        }
    }
    out
}

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The scenarios of the CI smoke set.
#[must_use]
pub fn smoke_set() -> Vec<Scenario> {
    registry().into_iter().filter(|s| s.smoke).collect()
}

/// The full registry, in paper order.
#[must_use]
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "table1",
            title: "Table 1: memcached walk-latency growth under scaling, colocation, virtualization",
            smoke: false,
            builder: table1_runs,
        },
        Scenario {
            name: "fig2",
            title: "Figure 2: fraction of execution time spent in page walks",
            smoke: false,
            builder: fig2_runs,
        },
        Scenario {
            name: "fig3",
            title: "Figure 3: average page-walk latency across the four scenarios",
            smoke: false,
            builder: fig3_runs,
        },
        Scenario {
            name: "table2",
            title: "Table 2: VMAs, PT pages and physical contiguity (analytic census, no sim runs)",
            smoke: false,
            builder: |_| Vec::new(),
        },
        Scenario {
            name: "fig8",
            title: "Figure 8: native walk latency, Baseline vs P1 vs P1+P2",
            smoke: false,
            builder: fig8_runs,
        },
        Scenario {
            name: "fig9",
            title: "Figure 9: walk requests served by each hierarchy level",
            smoke: false,
            builder: fig9_runs,
        },
        Scenario {
            name: "fig10",
            title: "Figure 10: virtualized walk latency across per-dimension ASAP configs",
            smoke: false,
            builder: fig10_runs,
        },
        Scenario {
            name: "table6",
            title: "Table 6: conservative performance projection",
            smoke: false,
            builder: table6_runs,
        },
        Scenario {
            name: "fig11_table7",
            title: "Fig. 11 + Table 7: clustered TLB vs ASAP vs both",
            smoke: false,
            builder: fig11_table7_runs,
        },
        Scenario {
            name: "fig12",
            title: "Figure 12: virtualization with 2 MiB host pages",
            smoke: false,
            builder: fig12_runs,
        },
        Scenario {
            name: "ablation_pwc",
            title: "Ablation (§5.1.1): PWC capacity doubling",
            smoke: false,
            builder: ablation_pwc_runs,
        },
        Scenario {
            name: "ablation_scatter",
            title: "Ablation: baseline sensitivity to PT physical layout",
            smoke: false,
            builder: ablation_scatter_runs,
        },
        Scenario {
            name: "ablation_5level",
            title: "Extension (§3.5): five-level page table",
            smoke: false,
            builder: ablation_5level_runs,
        },
        Scenario {
            name: "contenders",
            title: "Head-to-head: baseline vs ASAP vs Victima vs Revelator (native)",
            smoke: false,
            builder: contenders_runs,
        },
        Scenario {
            name: "smoke",
            title: "CI smoke: the full engine matrix (native/virt × baseline/ASAP/features) at miniature scale",
            smoke: true,
            builder: smoke_runs,
        },
        Scenario {
            name: "contenders_smoke",
            title: "CI smoke: the contender matrix (baseline/ASAP/Victima/Revelator) at miniature scale",
            smoke: true,
            builder: contenders_smoke_runs,
        },
    ]
}

fn native(w: WorkloadSpec, sim: SimConfig) -> NativeRunSpec {
    NativeRunSpec::baseline(w).with_sim(sim)
}

fn virt(w: WorkloadSpec, sim: SimConfig) -> VirtRunSpec {
    VirtRunSpec::baseline(w).with_sim(sim)
}

fn table1_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mc80 = WorkloadSpec::mc80;
    vec![
        ScenarioRun {
            workload: mc80().name,
            variant: "native".into(),
            spec: RunSpec::Native(native(mc80(), sim)),
        },
        ScenarioRun {
            workload: WorkloadSpec::mc400().name,
            variant: "native".into(),
            spec: RunSpec::Native(native(WorkloadSpec::mc400(), sim)),
        },
        ScenarioRun {
            workload: mc80().name,
            variant: "native+coloc".into(),
            spec: RunSpec::Native(native(mc80(), sim).colocated()),
        },
        ScenarioRun {
            workload: mc80().name,
            variant: "virt".into(),
            spec: RunSpec::Virt(virt(mc80(), sim)),
        },
        ScenarioRun {
            workload: mc80().name,
            variant: "virt+coloc".into(),
            spec: RunSpec::Virt(virt(mc80(), sim).colocated()),
        },
    ]
}

/// The four execution scenarios of Figs. 2/3 for one workload.
fn four_scenarios(w: &WorkloadSpec, sim: SimConfig) -> Vec<ScenarioRun> {
    vec![
        ScenarioRun {
            workload: w.name,
            variant: "native".into(),
            spec: RunSpec::Native(native(w.clone(), sim)),
        },
        ScenarioRun {
            workload: w.name,
            variant: "native+coloc".into(),
            spec: RunSpec::Native(native(w.clone(), sim).colocated()),
        },
        ScenarioRun {
            workload: w.name,
            variant: "virt".into(),
            spec: RunSpec::Virt(virt(w.clone(), sim)),
        },
        ScenarioRun {
            workload: w.name,
            variant: "virt+coloc".into(),
            spec: RunSpec::Virt(virt(w.clone(), sim).colocated()),
        },
    ]
}

fn fig2_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    WorkloadSpec::paper_suite_no_mc400()
        .iter()
        .flat_map(|w| four_scenarios(w, sim))
        .collect()
}

fn fig3_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    WorkloadSpec::paper_suite()
        .iter()
        .flat_map(|w| four_scenarios(w, sim))
        .collect()
}

fn fig8_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let configs = [
        ("Baseline", AsapHwConfig::off()),
        ("P1", AsapHwConfig::p1()),
        ("P1+P2", AsapHwConfig::p1_p2()),
    ];
    let mut runs = Vec::new();
    for coloc in [false, true] {
        for w in WorkloadSpec::paper_suite() {
            for (key, asap) in &configs {
                let mut s = native(w.clone(), sim).with_asap(asap.clone());
                if coloc {
                    s = s.colocated();
                }
                runs.push(ScenarioRun {
                    workload: w.name,
                    variant: if coloc {
                        format!("{key}+coloc")
                    } else {
                        (*key).into()
                    },
                    spec: RunSpec::Native(s),
                });
            }
        }
    }
    runs
}

fn fig9_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for (w, coloc) in [
        (WorkloadSpec::mcf(), false),
        (WorkloadSpec::redis(), false),
        (WorkloadSpec::mcf(), true),
        (WorkloadSpec::redis(), true),
    ] {
        let mut s = native(w.clone(), sim);
        if coloc {
            s = s.colocated();
        }
        runs.push(ScenarioRun {
            workload: w.name,
            variant: if coloc { "coloc" } else { "isolation" }.into(),
            spec: RunSpec::Native(s),
        });
    }
    runs
}

fn fig10_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let configs: [(&str, NestedAsapConfig); 5] = [
        ("Baseline", NestedAsapConfig::off()),
        ("P1g", NestedAsapConfig::p1g()),
        ("P1g+P2g", NestedAsapConfig::p1g_p2g()),
        ("P1g+P1h", NestedAsapConfig::p1g_p1h()),
        ("All", NestedAsapConfig::all()),
    ];
    let mut runs = Vec::new();
    for coloc in [false, true] {
        for w in WorkloadSpec::paper_suite() {
            for (key, asap) in &configs {
                let mut s = virt(w.clone(), sim).with_asap(asap.clone());
                if coloc {
                    s = s.colocated();
                }
                runs.push(ScenarioRun {
                    workload: w.name,
                    variant: if coloc {
                        format!("{key}+coloc")
                    } else {
                        (*key).into()
                    },
                    spec: RunSpec::Virt(s),
                });
            }
        }
    }
    runs
}

fn table6_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for w in WorkloadSpec::paper_suite()
        .into_iter()
        .filter(|w| !w.name.starts_with("mc"))
    {
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "native".into(),
            spec: RunSpec::Native(native(w.clone(), sim)),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "native-perfect".into(),
            spec: RunSpec::Native(native(w.clone(), sim).perfect_tlb()),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "virt".into(),
            spec: RunSpec::Virt(virt(w.clone(), sim)),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "virt+asap".into(),
            spec: RunSpec::Virt(virt(w.clone(), sim).with_asap(NestedAsapConfig::all())),
        });
    }
    runs
}

fn fig11_table7_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for w in WorkloadSpec::paper_suite() {
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "Baseline".into(),
            spec: RunSpec::Native(native(w.clone(), sim)),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "Clustered".into(),
            spec: RunSpec::Native(native(w.clone(), sim).with_clustered_tlb()),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "ASAP".into(),
            spec: RunSpec::Native(native(w.clone(), sim).with_asap(AsapHwConfig::p1_p2())),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "Clustered+ASAP".into(),
            spec: RunSpec::Native(
                native(w.clone(), sim)
                    .with_asap(AsapHwConfig::p1_p2())
                    .with_clustered_tlb(),
            ),
        });
    }
    runs
}

fn fig12_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for w in WorkloadSpec::paper_suite() {
        let mk = |asap: bool, coloc: bool| {
            let mut s = virt(w.clone(), sim).host_2m_pages();
            if asap {
                s = s.with_asap(NestedAsapConfig::host_2m());
            }
            if coloc {
                s = s.colocated();
            }
            RunSpec::Virt(s)
        };
        for (variant, asap, coloc) in [
            ("Baseline", false, false),
            ("ASAP", true, false),
            ("Baseline+coloc", false, true),
            ("ASAP+coloc", true, true),
        ] {
            runs.push(ScenarioRun {
                workload: w.name,
                variant: variant.into(),
                spec: mk(asap, coloc),
            });
        }
    }
    runs
}

fn ablation_pwc_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = Vec::new();
    for w in WorkloadSpec::paper_suite() {
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "default".into(),
            spec: RunSpec::Native(native(w.clone(), sim)),
        });
        runs.push(ScenarioRun {
            workload: w.name,
            variant: "doubled".into(),
            spec: RunSpec::Native(native(w.clone(), sim).with_pwc(PwcConfig::split_doubled())),
        });
    }
    runs
}

fn ablation_scatter_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    [1.0f64, 4.0, 23.2, 256.0]
        .into_iter()
        .map(|run| ScenarioRun {
            workload: WorkloadSpec::mc80().name,
            variant: format!("run={run:.1}"),
            spec: RunSpec::Native(native(WorkloadSpec::mc80(), sim).with_pt_scatter_run(run)),
        })
        .collect()
}

fn ablation_5level_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let w = WorkloadSpec::mc400;
    vec![
        ScenarioRun {
            workload: w().name,
            variant: "4-level".into(),
            spec: RunSpec::Native(native(w(), sim)),
        },
        ScenarioRun {
            workload: w().name,
            variant: "5-level".into(),
            spec: RunSpec::Native(native(w(), sim).five_level()),
        },
        ScenarioRun {
            workload: w().name,
            variant: "5-level+ASAP".into(),
            spec: RunSpec::Native(
                native(w(), sim)
                    .five_level()
                    .with_asap(AsapHwConfig::p1_p2()),
            ),
        },
    ]
}

/// The four head-to-head variants of one workload: the two paper machines
/// (baseline, ASAP P1+P2) and the two contender backends, all native, all
/// over identical processes (ASAP's OS policy moves only PT pages, so data
/// placement — and thus Revelator's hash accuracy — is unaffected).
fn head_to_head(w: &WorkloadSpec, sim: SimConfig) -> Vec<ScenarioRun> {
    let mut runs = vec![
        ScenarioRun {
            workload: w.name,
            variant: "Baseline".into(),
            spec: RunSpec::Native(native(w.clone(), sim)),
        },
        ScenarioRun {
            workload: w.name,
            variant: "ASAP".into(),
            spec: RunSpec::Native(native(w.clone(), sim).with_asap(AsapHwConfig::p1_p2())),
        },
    ];
    for kind in ContenderKind::ALL {
        runs.push(ScenarioRun {
            workload: w.name,
            variant: kind.label().into(),
            spec: RunSpec::Contender(ContenderRunSpec::new(w.clone(), kind).with_sim(sim)),
        });
    }
    runs
}

/// The workloads of the head-to-head comparison: a pointer chaser with
/// high physical contiguity (Revelator's best case), a zipfian server
/// whose hot set exceeds S-TLB reach (Victima's best case), and the
/// fragmented uniform sweep both degrade on.
fn contender_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::mcf(),
        WorkloadSpec::redis(),
        WorkloadSpec::mc80(),
    ]
}

fn contenders_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    contender_suite()
        .iter()
        .flat_map(|w| head_to_head(w, sim))
        .collect()
}

fn contenders_smoke_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    // The same miniature redis variant the contender unit tests use: small
    // enough for CI, enough page reuse that both contender mechanisms
    // actually fire.
    let w = WorkloadSpec {
        footprint: ByteSize::mib(256),
        ..WorkloadSpec::redis()
    };
    head_to_head(&w, sim)
}

/// The miniature workload the smoke scenario (and the engine-parity test)
/// is pinned to.
#[must_use]
pub fn smoke_workload() -> WorkloadSpec {
    WorkloadSpec {
        footprint: ByteSize::mib(256),
        ..WorkloadSpec::mc80()
    }
}

fn smoke_runs(sim: SimConfig) -> Vec<ScenarioRun> {
    let w = smoke_workload;
    let name = w().name;
    let mk = |variant: &str, spec: RunSpec| ScenarioRun {
        workload: name,
        variant: variant.into(),
        spec,
    };
    vec![
        mk("native/baseline", RunSpec::Native(native(w(), sim))),
        mk(
            "native/asap",
            RunSpec::Native(native(w(), sim).with_asap(AsapHwConfig::p1_p2())),
        ),
        mk(
            "native/asap+clustered+coloc",
            RunSpec::Native(
                native(w(), sim)
                    .with_asap(AsapHwConfig::p1_p2())
                    .with_clustered_tlb()
                    .colocated(),
            ),
        ),
        mk(
            "native/baseline+5level",
            RunSpec::Native(native(w(), sim).five_level()),
        ),
        mk(
            "native/perfect-tlb",
            RunSpec::Native(native(w(), sim).perfect_tlb()),
        ),
        mk("virt/baseline", RunSpec::Virt(virt(w(), sim))),
        mk(
            "virt/asap",
            RunSpec::Virt(virt(w(), sim).with_asap(NestedAsapConfig::all())),
        ),
        mk(
            "virt/asap+host2m+coloc",
            RunSpec::Virt(
                virt(w(), sim)
                    .with_asap(NestedAsapConfig::host_2m())
                    .host_2m_pages()
                    .colocated(),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names, deduped, "duplicate scenario names");
        for expected in [
            "table1",
            "fig2",
            "fig3",
            "table2",
            "fig8",
            "fig9",
            "fig10",
            "table6",
            "fig11_table7",
            "fig12",
            "ablation_pwc",
            "ablation_scatter",
            "ablation_5level",
            "contenders",
            "smoke",
            "contenders_smoke",
        ] {
            assert!(find(expected).is_some(), "missing scenario {expected}");
        }
    }

    #[test]
    fn every_scenario_enumerates_unique_run_keys() {
        let sim = SimConfig::smoke_test();
        for s in registry() {
            let runs = s.runs(sim);
            let mut keys: Vec<(String, String)> = runs
                .iter()
                .map(|r| (r.workload.to_string(), r.variant.clone()))
                .collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), n, "scenario {} has duplicate keys", s.name);
        }
    }

    #[test]
    fn smoke_scenario_runs_end_to_end() {
        let results = find("smoke").unwrap().run(SimConfig::smoke_test());
        assert_eq!(results.runs.len(), 8);
        let base = results.get("mc80", "native/baseline");
        let asap = results.get("mc80", "native/asap");
        assert!(asap.avg_walk_latency() < base.avg_walk_latency());
        assert_eq!(results.get("mc80", "native/perfect-tlb").walks.count(), 0);
        assert!(results.get("mc80", "virt/baseline").host_served.is_some());
    }

    #[test]
    fn run_scenarios_flattens_and_regroups() {
        let sim = SimConfig {
            warmup_accesses: 200,
            measure_accesses: 500,
            seed: 42,
        };
        let set: Vec<Scenario> = registry()
            .into_iter()
            .filter(|s| s.name == "smoke" || s.name == "table2")
            .collect();
        let all = run_scenarios(&set, sim);
        assert_eq!(all.len(), 2);
        let smoke = all.iter().find(|r| r.name == "smoke").unwrap();
        let table2 = all.iter().find(|r| r.name == "table2").unwrap();
        assert_eq!(smoke.runs.len(), 8);
        assert!(table2.runs.is_empty(), "table2 is an analytic scenario");
        // Grouped results match a per-scenario run exactly.
        let direct = find("smoke").unwrap().run(sim);
        for (a, b) in smoke.runs.iter().zip(direct.runs.iter()) {
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.result.walks, b.result.walks);
        }
    }
}
