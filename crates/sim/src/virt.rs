//! The virtualized-execution driver: assembles a [`NestedMmu`] +
//! [`VirtualMachine`] and hands it to the generic [`run_scenario`] loop.

use crate::driver::{run_scenario, DriverError, RunMeta};
use crate::{RunResult, VirtRunSpec};
use asap_core::{NestedMmu, NestedMmuConfig, TranslationEngine};
use asap_os::AsapOsConfig;
use asap_types::{Asid, PageSize};
use asap_virt::{EptConfig, VirtualMachine};

/// Runs one virtualized configuration and returns its measurements.
///
/// The guest process runs the workload; every TLB miss triggers the full 2D
/// walk of Fig. 7 with the configured per-dimension prefetching. The guest
/// OS reserves sorted regions for the guest prefetch levels (negotiated
/// with the hypervisor via the §3.6 vmcall protocol), and the hypervisor
/// keeps the host PT levels sorted for the host prefetch levels.
///
/// # Errors
///
/// Returns a [`DriverError`] when the workload generates an address outside
/// its VMAs or a touched page fails to translate (a misconfigured spec).
pub fn run_virt(spec: &VirtRunSpec) -> Result<RunResult, DriverError> {
    let seed = spec.sim.seed;
    let guest_asap = if spec.asap.guest.is_empty() {
        AsapOsConfig::disabled()
    } else {
        AsapOsConfig {
            levels: spec.asap.guest.clone(),
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    };
    let mut ept_config = EptConfig {
        host_levels: spec.asap.host.clone(),
        host_page_size: spec.host_page_size,
        scatter_run: spec.workload.pt_scatter_run,
        seed: seed ^ 0xE9,
    };
    if spec.host_page_size == PageSize::Size2M {
        // With 2 MiB host pages the host PT has no PL1 level to reserve.
        ept_config
            .host_levels
            .retain(|l| *l != asap_types::PtLevel::Pl1);
    }
    let guest_config = spec
        .workload
        .process_config(Asid(1), guest_asap, seed)
        .with_compact_phys();
    let mut vm = VirtualMachine::new(guest_config, ept_config);
    let mut stream = spec.workload.build_stream(vm.guest(), seed ^ 0x11);
    let mut mmu = NestedMmu::new(
        NestedMmuConfig::default()
            .with_asap(spec.asap.clone())
            .with_seed(seed),
    );
    TranslationEngine::load_context(&mut mmu, &vm);
    let meta = RunMeta {
        workload: spec.workload.name,
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: false,
    };
    run_scenario(&mut mmu, &mut vm, stream.as_mut(), &meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::smoke_workload as small;
    use crate::{run_native, NativeRunSpec, SimConfig};
    use asap_core::NestedAsapConfig;

    #[test]
    fn virtualization_multiplies_walk_latency() {
        let sim = SimConfig::smoke_test();
        let native = run_native(&NativeRunSpec::baseline(small()).with_sim(sim)).unwrap();
        let virt = run_virt(&VirtRunSpec::baseline(small()).with_sim(sim)).unwrap();
        // Table 1 / Fig. 3 shape: virt baseline is several times native.
        let ratio = virt.avg_walk_latency() / native.avg_walk_latency();
        assert!(
            ratio > 2.5,
            "virt/native walk-latency ratio {ratio:.2} too low"
        );
        assert_eq!(virt.faults, 0);
    }

    #[test]
    fn full_asap_beats_guest_only() {
        let sim = SimConfig::smoke_test();
        let base = run_virt(&VirtRunSpec::baseline(small()).with_sim(sim)).unwrap();
        let p1g = run_virt(
            &VirtRunSpec::baseline(small())
                .with_asap(NestedAsapConfig::p1g())
                .with_sim(sim),
        )
        .unwrap();
        let all = run_virt(
            &VirtRunSpec::baseline(small())
                .with_asap(NestedAsapConfig::all())
                .with_sim(sim),
        )
        .unwrap();
        assert!(p1g.avg_walk_latency() < base.avg_walk_latency());
        assert!(
            all.avg_walk_latency() < p1g.avg_walk_latency(),
            "all {} !< p1g {}",
            all.avg_walk_latency(),
            p1g.avg_walk_latency()
        );
        assert!(all.prefetches_issued > p1g.prefetches_issued);
    }

    #[test]
    fn host_2m_pages_shorten_baseline_walks() {
        let sim = SimConfig::smoke_test();
        let b4k = run_virt(&VirtRunSpec::baseline(small()).with_sim(sim)).unwrap();
        let b2m = run_virt(&VirtRunSpec::baseline(small()).host_2m_pages().with_sim(sim)).unwrap();
        assert!(b2m.avg_walk_latency() < b4k.avg_walk_latency());
    }

    #[test]
    fn virt_runs_are_deterministic() {
        let spec = VirtRunSpec::baseline(small()).with_sim(SimConfig::smoke_test());
        let a = run_virt(&spec).unwrap();
        let b = run_virt(&spec).unwrap();
        assert_eq!(a.walks, b.walks);
    }
}
