//! Virtualized machine assembly: builds a [`NestedMmu`] +
//! `VirtualMachine` for a unified [`RunSpec`] whose machine axis is
//! virtualized, and hands it to the generic `run_scenario` loop. Reached
//! only through [`RunSpec::run`]'s internal dispatch.

use crate::driver::{run_scenario_observed, DriverError, RunMeta};
use crate::observe::RunObserver;
use crate::{EngineSelect, MachineSelect, RunOutput, RunSpec};
use asap_core::{NestedAsapConfig, NestedMmu, NestedMmuConfig, TranslationEngine};
use asap_os::AsapOsConfig;
use asap_types::{Asid, PageSize};
use asap_virt::{EptConfig, VirtualMachine};

/// The per-dimension prefetch levels the engine axis selects.
fn nested_asap(spec: &RunSpec) -> NestedAsapConfig {
    match &spec.engine {
        EngineSelect::NestedAsap(cfg) => cfg.clone(),
        _ => NestedAsapConfig::off(),
    }
}

/// Runs one virtualized configuration and returns its measurements.
///
/// The guest process runs the workload; every TLB miss triggers the full 2D
/// walk of Fig. 7 with the configured per-dimension prefetching. The guest
/// OS reserves sorted regions for the guest prefetch levels (negotiated
/// with the hypervisor via the §3.6 vmcall protocol), and the hypervisor
/// keeps the host PT levels sorted for the host prefetch levels.
pub(crate) fn run_virt(spec: &RunSpec) -> Result<RunOutput, DriverError> {
    let mut obs = RunObserver::begin(spec.telemetry);
    let workload = spec.effective_workload();
    let asap = nested_asap(spec);
    let host_page_size = match spec.machine {
        MachineSelect::Virt { host_page_size } => host_page_size,
        MachineSelect::Native => unreachable!("dispatch sends only virt specs here"),
    };
    let seed = spec.sim.seed;
    let guest_asap = if asap.guest.is_empty() {
        AsapOsConfig::disabled()
    } else {
        AsapOsConfig {
            levels: asap.guest.clone(),
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    };
    let mut ept_config = EptConfig {
        host_levels: asap.host.clone(),
        host_page_size,
        scatter_run: workload.pt_scatter_run,
        seed: seed ^ 0xE9,
    };
    if host_page_size == PageSize::Size2M {
        // With 2 MiB host pages the host PT has no PL1 level to reserve.
        ept_config
            .host_levels
            .retain(|l| *l != asap_types::PtLevel::Pl1);
    }
    let guest_config = workload
        .process_config(Asid(1), guest_asap, seed)
        .with_compact_phys();
    let mut vm = VirtualMachine::new(guest_config, ept_config);
    let mut stream = workload.build_stream(vm.guest(), seed ^ 0x11);
    let mut mmu = NestedMmu::new(NestedMmuConfig::default().with_asap(asap).with_seed(seed));
    TranslationEngine::load_context(&mut mmu, &vm);
    let meta = RunMeta {
        workload: spec.workload.name.into(),
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: spec.perfect_tlb,
    };
    obs.arm(std::slice::from_mut(&mut mmu));
    let result =
        run_scenario_observed(&mut mmu, &mut vm, stream.as_mut(), &meta, obs.driver_mut())?;
    let telemetry = obs.finish(
        std::slice::from_mut(&mut mmu),
        std::slice::from_ref(&meta.workload),
        meta.sim.measure_accesses,
    );
    Ok(RunOutput::single(result).with_telemetry(telemetry))
}

#[cfg(test)]
mod tests {
    use crate::scenarios::smoke_workload as small;
    use crate::{RunSpec, SimConfig};
    use asap_core::NestedAsapConfig;

    #[test]
    fn virtualization_multiplies_walk_latency() {
        let sim = SimConfig::smoke_test();
        let native = RunSpec::new(small()).with_sim(sim).run().unwrap();
        let virt = RunSpec::new(small()).virt().with_sim(sim).run().unwrap();
        // Table 1 / Fig. 3 shape: virt baseline is several times native.
        let ratio = virt.avg_walk_latency() / native.avg_walk_latency();
        assert!(
            ratio > 2.5,
            "virt/native walk-latency ratio {ratio:.2} too low"
        );
        assert_eq!(virt.faults, 0);
    }

    #[test]
    fn full_asap_beats_guest_only() {
        let sim = SimConfig::smoke_test();
        let base = RunSpec::new(small()).virt().with_sim(sim).run().unwrap();
        let p1g = RunSpec::new(small())
            .virt()
            .with_nested_asap(NestedAsapConfig::p1g())
            .with_sim(sim)
            .run()
            .unwrap();
        let all = RunSpec::new(small())
            .virt()
            .with_nested_asap(NestedAsapConfig::all())
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(p1g.avg_walk_latency() < base.avg_walk_latency());
        assert!(
            all.avg_walk_latency() < p1g.avg_walk_latency(),
            "all {} !< p1g {}",
            all.avg_walk_latency(),
            p1g.avg_walk_latency()
        );
        assert!(all.prefetches_issued > p1g.prefetches_issued);
    }

    #[test]
    fn host_2m_pages_shorten_baseline_walks() {
        let sim = SimConfig::smoke_test();
        let b4k = RunSpec::new(small()).virt().with_sim(sim).run().unwrap();
        let b2m = RunSpec::new(small())
            .host_2m_pages()
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(b2m.avg_walk_latency() < b4k.avg_walk_latency());
    }

    #[test]
    fn virt_runs_are_deterministic() {
        let spec = RunSpec::new(small())
            .virt()
            .with_sim(SimConfig::smoke_test());
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a.walks, b.walks);
    }
}
