//! The one generic driver loop every scenario runs through.
//!
//! [`run_scenario`] models an in-order core over any
//! [`TranslationEngine`]: each application reference is (1) demand-paged by
//! the OS if new, (2) translated by the engine (or resolved for free in
//! perfect-TLB mode), (3) performed as a data access through the cache
//! hierarchy, with fixed non-memory work in between; the colocated
//! co-runner injects cache pressure per reference (§4). Statistics reset
//! after the warmup window. `run_native` and `run_virt` are thin wrappers
//! that assemble the machine and call this loop.

use crate::{RunResult, SimConfig, CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
use asap_core::{SimMachine, TranslationEngine, TranslationPath};
use asap_workloads::{AccessStream, CoRunner};

/// Everything the generic driver needs besides the engine/machine pair:
/// window sizes, the co-runner switch, the perfect-TLB switch, and the
/// labels stamped onto the [`RunResult`].
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The workload's name (stamped onto the result).
    pub workload: &'static str,
    /// The configuration label (stamped onto the result).
    pub label: String,
    /// Window sizes and seeding.
    pub sim: SimConfig,
    /// Whether the SMT co-runner is active.
    pub colocated: bool,
    /// Table 6 methodology: translation is free ("no page walks"); the
    /// engine still serves data accesses and the clock still advances.
    pub perfect_tlb: bool,
}

/// Runs one scenario — warmup window, stats reset, measurement window —
/// over any translation engine, and collects the measurements.
///
/// The engine must already be constructed and context-loaded; `machine`
/// owns the page tables and backs demand paging; `stream` generates the
/// application's reference sequence.
///
/// # Panics
///
/// Panics if the workload generates an address outside its VMAs (a
/// generator bug caught loudly rather than silently skipped).
pub fn run_scenario<E: TranslationEngine>(
    engine: &mut E,
    machine: &mut E::Machine,
    stream: &mut dyn AccessStream,
    meta: &RunMeta,
) -> RunResult {
    let mut corunner = meta
        .colocated
        .then(|| CoRunner::memory_intensive(meta.sim.seed ^ 0xC0));

    let total = meta.sim.warmup_accesses + meta.sim.measure_accesses;
    let mut window_start_cycle = 0u64;
    let mut walk_cycles = 0u64;
    let mut prefetches_issued = 0u64;
    let mut prefetches_dropped = 0u64;
    for i in 0..total {
        if i == meta.sim.warmup_accesses {
            engine.reset_stats();
            walk_cycles = 0;
            prefetches_issued = 0;
            prefetches_dropped = 0;
            window_start_cycle = engine.now();
        }
        let va = stream.next_va();
        // OS demand paging happens off the measured path (a faulting access
        // costs microseconds of OS work either way; the paper's walk-latency
        // metric covers successful walks).
        machine
            .demand_page(va)
            .expect("workload streams stay inside their VMAs");
        let pa = if meta.perfect_tlb {
            machine
                .reference_translate(va)
                .expect("touched page translates")
        } else {
            let outcome = engine.translate_access(machine, va);
            if outcome.path == TranslationPath::Walk {
                walk_cycles += outcome.latency;
                prefetches_issued += u64::from(outcome.prefetches_issued);
                prefetches_dropped += u64::from(outcome.prefetches_dropped);
            }
            outcome.phys.expect("touched page translates")
        };
        let _ = engine.data_access(pa);
        engine.advance(CPU_WORK_CYCLES_PER_ACCESS);
        if let Some(co) = corunner.as_mut() {
            for line in co.next_lines() {
                engine.corunner_access(line);
            }
        }
    }

    let stats = engine.stats_snapshot();
    RunResult {
        workload: meta.workload,
        label: meta.label.clone(),
        walks: stats.walks,
        served: stats.served,
        host_served: stats.host_served,
        l2_tlb_misses: stats.l2_tlb.misses,
        l2_tlb_accesses: stats.l2_tlb.accesses(),
        instructions: meta.sim.measure_accesses * INSTRUCTIONS_PER_ACCESS,
        cycles: engine.now() - window_start_cycle,
        walk_cycles,
        prefetches_issued,
        prefetches_dropped,
        faults: stats.walk_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::smoke_workload as small;
    use asap_core::{Mmu, MmuConfig, NestedMmu, NestedMmuConfig};
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_virt::VirtualMachine;

    fn meta(sim: SimConfig) -> RunMeta {
        RunMeta {
            workload: "test",
            label: "direct".into(),
            sim,
            colocated: false,
            perfect_tlb: false,
        }
    }

    #[test]
    fn drives_a_native_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &process);
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta(sim));
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
        assert!(r.host_served.is_none());
    }

    #[test]
    fn drives_a_nested_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let guest = w
            .process_config(Asid(1), AsapOsConfig::disabled(), sim.seed)
            .with_compact_phys();
        let ept = asap_virt::EptConfig {
            scatter_run: w.pt_scatter_run,
            seed: sim.seed ^ 0xE9,
            ..asap_virt::EptConfig::default()
        };
        let mut vm = VirtualMachine::new(guest, ept);
        let mut stream = w.build_stream(vm.guest(), sim.seed ^ 0x11);
        let mut mmu = NestedMmu::new(NestedMmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &vm);
        let r = run_scenario(&mut mmu, &mut vm, stream.as_mut(), &meta(sim));
        assert!(r.walks.count() > 100);
        assert!(r.host_served.is_some());
    }

    #[test]
    fn perfect_tlb_never_queries_the_engine() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        let mut m = meta(sim);
        m.perfect_tlb = true;
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &m);
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert_eq!(r.l2_tlb_accesses, 0);
        assert!(r.cycles > 0);
    }
}
