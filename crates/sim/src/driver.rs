//! The one generic driver loop every scenario runs through.
//!
//! [`run_scenario`] models an in-order core over any
//! [`TranslationEngine`]: each application reference is (1) demand-paged by
//! the OS if new, (2) translated by the engine (or resolved for free in
//! perfect-TLB mode), (3) performed as a data access through the cache
//! hierarchy, with fixed non-memory work in between; the colocated
//! co-runner injects cache pressure per reference (§4). Statistics reset
//! after the warmup window. `run_native`, `run_virt` and `run_contender`
//! are thin wrappers that assemble the machine and call this loop.
//!
//! A misconfigured scenario — a workload stream escaping its VMAs, a
//! machine that cannot translate a touched page — surfaces as a typed
//! [`DriverError`] instead of a panic, so one bad run in a `parallel_map`
//! fan-out reports cleanly instead of aborting the whole batch.

use crate::{RunResult, SimConfig, CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
use asap_core::{SimMachine, TranslationEngine, TranslationPath};
use asap_os::OsError;
use asap_types::VirtAddr;
use asap_workloads::{AccessStream, CoRunner};

/// A scenario misconfiguration detected while driving a run. These are
/// *harness* errors (bad workload/machine pairings), not simulated
/// architectural events — a correctly registered scenario never produces
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// The workload stream generated an address outside every VMA of its
    /// machine (a generator/machine mismatch).
    StreamEscapedVma {
        /// The offending address.
        va: VirtAddr,
        /// The OS error demand paging reported.
        source: OsError,
    },
    /// A page the driver just demand-paged failed to translate — the
    /// machine's paging state is inconsistent with its engine.
    UntranslatablePage {
        /// The offending address.
        va: VirtAddr,
    },
    /// The spec's engine/machine/knob combination is not one the simulator
    /// models (e.g. a contender backend on a virtualized machine).
    IncompatibleSpec {
        /// What made the combination invalid.
        reason: &'static str,
    },
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DriverError::StreamEscapedVma { va, source } => {
                write!(f, "workload stream escaped its VMAs at {va}: {source}")
            }
            DriverError::UntranslatablePage { va } => {
                write!(f, "demand-paged address {va} failed to translate")
            }
            DriverError::IncompatibleSpec { reason } => {
                write!(f, "incompatible run spec: {reason}")
            }
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::StreamEscapedVma { source, .. } => Some(source),
            DriverError::UntranslatablePage { .. } | DriverError::IncompatibleSpec { .. } => None,
        }
    }
}

/// Everything the generic driver needs besides the engine/machine pair:
/// window sizes, the co-runner switch, the perfect-TLB switch, and the
/// labels stamped onto the [`RunResult`].
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The workload's name (stamped onto the result).
    pub workload: &'static str,
    /// The configuration label (stamped onto the result).
    pub label: String,
    /// Window sizes and seeding.
    pub sim: SimConfig,
    /// Whether the SMT co-runner is active.
    pub colocated: bool,
    /// Table 6 methodology: translation is free ("no page walks"); the
    /// engine still serves data accesses and the clock still advances.
    pub perfect_tlb: bool,
}

/// Runs one scenario — warmup window, stats reset, measurement window —
/// over any translation engine, and collects the measurements.
///
/// The engine must already be constructed and context-loaded; `machine`
/// owns the page tables and backs demand paging; `stream` generates the
/// application's reference sequence.
///
/// # Errors
///
/// Returns a [`DriverError`] when the workload generates an address outside
/// its VMAs or a touched page fails to translate — misconfigurations
/// reported to the caller rather than panicking mid-fan-out.
pub fn run_scenario<E: TranslationEngine>(
    engine: &mut E,
    machine: &mut E::Machine,
    stream: &mut dyn AccessStream,
    meta: &RunMeta,
) -> Result<RunResult, DriverError> {
    let mut corunner = meta
        .colocated
        .then(|| CoRunner::memory_intensive(meta.sim.seed ^ 0xC0));

    let total = meta.sim.warmup_accesses + meta.sim.measure_accesses;
    let mut window_start_cycle = 0u64;
    let mut walk_cycles = 0u64;
    let mut prefetches_issued = 0u64;
    let mut prefetches_dropped = 0u64;
    for i in 0..total {
        if i == meta.sim.warmup_accesses {
            engine.reset_stats();
            walk_cycles = 0;
            prefetches_issued = 0;
            prefetches_dropped = 0;
            window_start_cycle = engine.now();
        }
        let va = stream.next_va();
        // OS demand paging happens off the measured path (a faulting access
        // costs microseconds of OS work either way; the paper's walk-latency
        // metric covers successful walks).
        machine
            .demand_page(va)
            .map_err(|source| DriverError::StreamEscapedVma { va, source })?;
        let pa = if meta.perfect_tlb {
            machine
                .reference_translate(va)
                .ok_or(DriverError::UntranslatablePage { va })?
        } else {
            let outcome = engine.translate_access(machine, va);
            if outcome.path == TranslationPath::Walk {
                walk_cycles += outcome.latency;
                prefetches_issued += u64::from(outcome.prefetches_issued);
                prefetches_dropped += u64::from(outcome.prefetches_dropped);
            }
            outcome.phys.ok_or(DriverError::UntranslatablePage { va })?
        };
        let _ = engine.data_access(pa);
        engine.advance(CPU_WORK_CYCLES_PER_ACCESS);
        if let Some(co) = corunner.as_mut() {
            for line in co.next_lines() {
                engine.corunner_access(line);
            }
        }
    }

    let stats = engine.stats_snapshot();
    Ok(RunResult {
        workload: meta.workload,
        label: meta.label.clone(),
        walks: stats.walks,
        served: stats.served,
        host_served: stats.host_served,
        l2_tlb_misses: stats.l2_tlb.misses,
        l2_tlb_accesses: stats.l2_tlb.accesses(),
        instructions: meta.sim.measure_accesses * INSTRUCTIONS_PER_ACCESS,
        cycles: engine.now() - window_start_cycle,
        walk_cycles,
        prefetches_issued,
        prefetches_dropped,
        faults: stats.walk_faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::smoke_workload as small;
    use asap_core::{Mmu, MmuConfig, NestedMmu, NestedMmuConfig};
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_virt::VirtualMachine;

    fn meta(sim: SimConfig) -> RunMeta {
        RunMeta {
            workload: "test",
            label: "direct".into(),
            sim,
            colocated: false,
            perfect_tlb: false,
        }
    }

    #[test]
    fn drives_a_native_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &process);
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta(sim)).unwrap();
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
        assert!(r.host_served.is_none());
    }

    #[test]
    fn drives_a_nested_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let guest = w
            .process_config(Asid(1), AsapOsConfig::disabled(), sim.seed)
            .with_compact_phys();
        let ept = asap_virt::EptConfig {
            scatter_run: w.pt_scatter_run,
            seed: sim.seed ^ 0xE9,
            ..asap_virt::EptConfig::default()
        };
        let mut vm = VirtualMachine::new(guest, ept);
        let mut stream = w.build_stream(vm.guest(), sim.seed ^ 0x11);
        let mut mmu = NestedMmu::new(NestedMmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &vm);
        let r = run_scenario(&mut mmu, &mut vm, stream.as_mut(), &meta(sim)).unwrap();
        assert!(r.walks.count() > 100);
        assert!(r.host_served.is_some());
    }

    #[test]
    fn perfect_tlb_never_queries_the_engine() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        let mut m = meta(sim);
        m.perfect_tlb = true;
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &m).unwrap();
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert_eq!(r.l2_tlb_accesses, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn escaping_stream_reports_instead_of_panicking() {
        /// A stream that wanders outside every VMA.
        struct WildStream;
        impl AccessStream for WildStream {
            fn next_va(&mut self) -> VirtAddr {
                VirtAddr::new(0x1234_5678_0000).unwrap()
            }
            fn name(&self) -> &'static str {
                "wild"
            }
        }
        let sim = SimConfig::smoke_test();
        let mut process = small().build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        let err = run_scenario(&mut mmu, &mut process, &mut WildStream, &meta(sim)).unwrap_err();
        match err {
            DriverError::StreamEscapedVma { va, source } => {
                assert_eq!(va, VirtAddr::new(0x1234_5678_0000).unwrap());
                assert_eq!(source, OsError::Segfault(va));
            }
            other => panic!("expected StreamEscapedVma, got {other:?}"),
        }
        assert!(err.to_string().contains("escaped"));
    }
}
