//! The one generic driver loop every scenario runs through — now a
//! cycle-interleaved **multi-core** driver.
//!
//! [`run_cores`] models N in-order cores over one shared memory fabric:
//! at every step the ready core with the *lowest local clock* (ties broken
//! by core index, so arbitration order is fixed and results are
//! seed-reproducible) issues its next application reference. The winner is
//! found through the [`sched::EventQueue`] min-heap — O(log n) per
//! scheduling epoch, so arbitration cost stays near-flat out to 64 cores —
//! while `SimConfig::lockstep` rescans linearly per access as the oracle
//! schedule. Each reference is
//! (1) demand-paged by the OS if new, (2) translated by that core's engine
//! (or resolved for free in perfect-TLB mode), (3) performed as a data
//! access through the shared hierarchy, with fixed non-memory work in
//! between. Each core runs its own [`AccessStream`] and keeps its own
//! warmup/measurement window; statistics reset per core at its warmup
//! boundary. With one core the loop degenerates into exactly the classic
//! single-core driver, which is what pins the engine-parity goldens.
//!
//! [`run_scenario`] is the single-core entry point the machine-assembly
//! modules call; `run_native`, `run_virt` and `run_contender` are thin
//! wrappers that assemble one core, and `smp.rs` assembles N.
//!
//! A misconfigured scenario — a workload stream escaping its VMAs, a
//! machine that cannot translate a touched page — surfaces as a typed
//! [`DriverError`] instead of a panic, so one bad run in a `parallel_map`
//! fan-out reports cleanly instead of aborting the whole batch.

use crate::{sched, RunResult, SimConfig, CPU_WORK_CYCLES_PER_ACCESS, INSTRUCTIONS_PER_ACCESS};
use asap_core::{SimMachine, TranslationEngine, TranslationPath};
use asap_os::OsError;
use asap_telemetry::{TraceEvent, TraceEventKind, TraceSink};
use asap_types::VirtAddr;
use asap_workloads::{AccessStream, CoRunner};
use std::time::{Duration, Instant};

/// What went wrong while driving a run — the payload of a [`DriverError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverErrorKind {
    /// The workload stream generated an address outside every VMA of its
    /// machine (a generator/machine mismatch).
    StreamEscapedVma {
        /// The offending address.
        va: VirtAddr,
        /// The OS error demand paging reported.
        source: OsError,
    },
    /// A page the driver just demand-paged failed to translate — the
    /// machine's paging state is inconsistent with its engine.
    UntranslatablePage {
        /// The offending address.
        va: VirtAddr,
    },
    /// The spec's engine/machine/knob combination is not one the simulator
    /// models (e.g. a contender backend on a virtualized machine).
    IncompatibleSpec {
        /// What made the combination invalid.
        reason: &'static str,
    },
}

/// A scenario misconfiguration detected while driving a run. These are
/// *harness* errors (bad workload/machine pairings), not simulated
/// architectural events — a correctly registered scenario never produces
/// one.
///
/// Besides the typed [`kind`](DriverErrorKind), every error carries the
/// **source location that raised it**, captured with `#[track_caller]` at
/// the construction site. The CLI renders it as a `file:line:` diagnostic
/// anchor (`crates/sim/src/driver.rs:371`-shaped) so a failed run in a CI
/// log is clickable straight into the code that rejected it. Equality
/// deliberately ignores the origin — tests compare errors by kind.
#[derive(Debug, Clone, Copy)]
pub struct DriverError {
    /// What went wrong.
    pub kind: DriverErrorKind,
    /// Where the error was raised (file + line in the workspace source).
    pub origin: &'static core::panic::Location<'static>,
}

impl DriverError {
    /// Wraps `kind`, stamping the caller's location as the origin.
    #[must_use]
    #[track_caller]
    pub fn new(kind: DriverErrorKind) -> Self {
        Self {
            kind,
            origin: core::panic::Location::caller(),
        }
    }

    /// A [`DriverErrorKind::StreamEscapedVma`] raised here.
    #[must_use]
    #[track_caller]
    pub fn stream_escaped_vma(va: VirtAddr, source: OsError) -> Self {
        Self::new(DriverErrorKind::StreamEscapedVma { va, source })
    }

    /// An [`DriverErrorKind::UntranslatablePage`] raised here.
    #[must_use]
    #[track_caller]
    pub fn untranslatable_page(va: VirtAddr) -> Self {
        Self::new(DriverErrorKind::UntranslatablePage { va })
    }

    /// An [`DriverErrorKind::IncompatibleSpec`] raised here.
    #[must_use]
    #[track_caller]
    pub fn incompatible_spec(reason: &'static str) -> Self {
        Self::new(DriverErrorKind::IncompatibleSpec { reason })
    }

    /// The `file:line` diagnostic anchor of the raising source line.
    #[must_use]
    pub fn anchor(&self) -> String {
        format!("{}:{}", self.origin.file(), self.origin.line())
    }
}

impl PartialEq for DriverError {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

impl Eq for DriverError {}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            DriverErrorKind::StreamEscapedVma { va, source } => {
                write!(f, "workload stream escaped its VMAs at {va}: {source}")
            }
            DriverErrorKind::UntranslatablePage { va } => {
                write!(f, "demand-paged address {va} failed to translate")
            }
            DriverErrorKind::IncompatibleSpec { reason } => {
                write!(f, "incompatible run spec: {reason}")
            }
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            DriverErrorKind::StreamEscapedVma { source, .. } => Some(source),
            DriverErrorKind::UntranslatablePage { .. }
            | DriverErrorKind::IncompatibleSpec { .. } => None,
        }
    }
}

/// Everything the generic driver needs besides the per-core slots:
/// window sizes, the co-runner switch, the perfect-TLB switch, and the
/// labels stamped onto each [`RunResult`].
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The workload's name (stamped onto the result). Owned, because
    /// multi-core runs stamp dynamically composed per-core names
    /// ("mc80@core0").
    pub workload: String,
    /// The configuration label (stamped onto the result).
    pub label: String,
    /// Window sizes and seeding.
    pub sim: SimConfig,
    /// Whether the legacy single-core SMT co-runner shim is active (see
    /// [`run_scenario`]). Multi-core colocation runs the co-runner as a
    /// real core instead and ignores this flag.
    pub colocated: bool,
    /// Table 6 methodology: translation is free ("no page walks"); the
    /// engine still serves data accesses and the clock still advances.
    pub perfect_tlb: bool,
}

/// One core's slice of a (possibly multi-core) run: its private engine,
/// its software machine, and its reference stream.
pub struct CoreSlot<'a, E: TranslationEngine> {
    /// The core's translation engine (attached to the shared fabric).
    pub engine: &'a mut E,
    /// The software machine backing this core's demand paging.
    pub machine: &'a mut E::Machine,
    /// The core's application reference stream.
    pub stream: &'a mut dyn AccessStream,
    /// The workload name stamped onto this core's result ("mc80",
    /// "mc80@core0", "corunner@core1", ...).
    pub workload: String,
    /// Compat shim: the legacy out-of-band SMT co-runner that injects raw
    /// cache lines per reference instead of executing as a real core. Kept
    /// **only** because the committed engine-parity goldens and the
    /// smoke-tier `BENCH_results.json` pin the single-core `coloc` rows to
    /// this injection model; multi-core runs model the neighbor as an
    /// ordinary workload on its own core and leave this `None`.
    pub corunner: Option<CoRunner>,
}

/// Observation hooks for one driver invocation: the scheduler's
/// arbitration events (a per-event-core trace track) and the
/// warmup/measure wall-clock split for the simulator self-profile.
///
/// Machine assemblies construct one only when the spec enables telemetry;
/// [`run_cores`] itself passes `None`, so with telemetry off every hook
/// compiles to a never-taken `Option` branch on the hot path.
#[derive(Debug)]
pub struct DriverObserver {
    /// Arbitration events across every core (`record_for` stamps the
    /// popped/pushed core explicitly). `None` when only profiling.
    sched: Option<TraceSink>,
    started: Instant,
    /// When the last core crossed its warmup boundary — the machine-wide
    /// warmup/measure split (per-core boundaries differ under skew; the
    /// last crossing is when the whole machine is measuring).
    warmup_ended: Option<Instant>,
}

impl DriverObserver {
    /// Starts observing now; `trace` additionally records the scheduler's
    /// arbitration events.
    #[must_use]
    pub fn new(trace: bool) -> Self {
        Self {
            sched: trace.then(TraceSink::default),
            // asap-lint: allow(determinism-time) — self-profile wall clock
            started: Instant::now(),
            warmup_ended: None,
        }
    }

    fn sched_event(&mut self, ts: u64, core: usize, kind: TraceEventKind) {
        if let Some(s) = self.sched.as_mut() {
            s.record_for(ts, core as u32, kind);
        }
    }

    fn warmup_boundary(&mut self) {
        // asap-lint: allow(determinism-time) — self-profile wall clock
        self.warmup_ended = Some(Instant::now());
    }

    /// Consumes the observer: the scheduler events plus the (warmup,
    /// measure) wall-clock split.
    #[must_use]
    pub fn finish(self) -> (Vec<TraceEvent>, Duration, Duration) {
        // asap-lint: allow(determinism-time) — self-profile wall clock
        let end = Instant::now();
        let boundary = self.warmup_ended.unwrap_or(self.started);
        let sched = self.sched.map(|s| s.events()).unwrap_or_default();
        (sched, boundary - self.started, end - boundary)
    }
}

/// Per-core window accounting the driver keeps outside the engines.
#[derive(Debug, Clone, Copy, Default)]
struct CoreAccounting {
    accesses_done: u64,
    window_start_cycle: u64,
    walk_cycles: u64,
    prefetches_issued: u64,
    prefetches_dropped: u64,
}

/// Runs one scenario over N cores sharing a memory fabric — warmup
/// window, per-core stats reset, measurement window — and collects one
/// [`RunResult`] per core, in slot order.
///
/// Arbitration is deterministic: at each step the unfinished core with the
/// lowest local clock issues its next reference; ties resolve to the
/// lowest core index. The batched path schedules from an
/// [`sched::EventQueue`] (O(log n) per epoch); `meta.sim.lockstep` instead
/// rescans every core per access with [`sched::linear_scan`] — an
/// independent implementation of the same order that serves as the oracle
/// schedule. Every engine must already be constructed (over one shared
/// fabric for N > 1) and context-loaded.
///
/// # Errors
///
/// Returns a [`DriverError`] when any core's workload generates an address
/// outside its VMAs, a touched page fails to translate, or the slot list
/// is empty (a machine needs at least one core).
pub fn run_cores<E: TranslationEngine>(
    cores: &mut [CoreSlot<'_, E>],
    meta: &RunMeta,
) -> Result<Vec<RunResult>, DriverError> {
    run_cores_observed(cores, meta, None)
}

/// [`run_cores`] with observation hooks: `Some` records scheduler events
/// and the warmup/measure wall split into the observer; `None` is the
/// plain driver with every hook branch never taken.
///
/// # Errors
///
/// Same contract as [`run_cores`].
pub fn run_cores_observed<E: TranslationEngine>(
    cores: &mut [CoreSlot<'_, E>],
    meta: &RunMeta,
    obs: Option<&mut DriverObserver>,
) -> Result<Vec<RunResult>, DriverError> {
    if cores.is_empty() {
        return Err(DriverError::incompatible_spec(
            "a machine needs at least one core",
        ));
    }
    let total = meta.sim.warmup_accesses + meta.sim.measure_accesses;
    let mut accounting = vec![CoreAccounting::default(); cores.len()];
    if meta.sim.lockstep {
        run_lockstep(cores, &mut accounting, total, meta, obs)?;
    } else {
        run_event_queue(cores, &mut accounting, total, meta, obs)?;
    }

    Ok(cores
        .iter()
        .zip(&accounting)
        .map(|(core, acct)| {
            let stats = core.engine.stats_snapshot();
            RunResult {
                workload: core.workload.clone(),
                label: meta.label.clone(),
                walks: stats.walks,
                served: stats.served,
                host_served: stats.host_served,
                l2_tlb_misses: stats.l2_tlb.misses,
                l2_tlb_accesses: stats.l2_tlb.accesses(),
                instructions: meta.sim.measure_accesses * INSTRUCTIONS_PER_ACCESS,
                cycles: core.engine.now() - acct.window_start_cycle,
                walk_cycles: acct.walk_cycles,
                prefetches_issued: acct.prefetches_issued,
                prefetches_dropped: acct.prefetches_dropped,
                faults: stats.walk_faults,
            }
        })
        .collect())
}

/// The batched scheduler: a binary min-heap keyed by `(local_clock,
/// core_idx)`. The winner pops, bursts until its key passes the new heap
/// top (the runner-up at pop time), and re-pushes — O(log n) arbitration
/// per epoch instead of the old O(n) rescan. Because only the popped
/// core's clock moves while it runs, every resident key always equals its
/// core's current `(now, idx)` and the pop order replays the per-access
/// linear-scan schedule exactly (the `prop_smp_determinism` oracle); with
/// one core the bound is `None` and the loop degenerates into the classic
/// run-to-completion single-core driver.
// asap-lint: hot-path
fn run_event_queue<E: TranslationEngine>(
    cores: &mut [CoreSlot<'_, E>],
    accounting: &mut [CoreAccounting],
    total: u64,
    meta: &RunMeta,
    mut obs: Option<&mut DriverObserver>,
) -> Result<(), DriverError> {
    let mut queue = sched::EventQueue::with_capacity(cores.len());
    if total > 0 {
        for (i, core) in cores.iter().enumerate() {
            queue.push((core.engine.now(), i));
        }
    }
    while let Some((ts, i)) = queue.pop() {
        if let Some(o) = obs.as_deref_mut() {
            o.sched_event(ts, i, TraceEventKind::ArbPop);
        }
        let bound = queue.peek();
        loop {
            step_core(&mut cores[i], &mut accounting[i], meta, obs.as_deref_mut())?;
            if accounting[i].accesses_done == total {
                break;
            }
            let key = (cores[i].engine.now(), i);
            if bound.is_some_and(|b| key >= b) {
                queue.push(key);
                if let Some(o) = obs.as_deref_mut() {
                    o.sched_event(key.0, i, TraceEventKind::ArbPush);
                }
                break;
            }
        }
    }
    Ok(())
}

/// The per-access oracle schedule: rescan every unfinished core with the
/// PR-6 [`sched::linear_scan`] after each access. Statistically identical
/// to [`run_event_queue`] (pinned by `prop_smp_determinism`); kept as a
/// genuinely independent implementation of the arbitration order, not a
/// special case of the heap path.
fn run_lockstep<E: TranslationEngine>(
    cores: &mut [CoreSlot<'_, E>],
    accounting: &mut [CoreAccounting],
    total: u64,
    meta: &RunMeta,
    mut obs: Option<&mut DriverObserver>,
) -> Result<(), DriverError> {
    loop {
        let ready = cores
            .iter()
            .enumerate()
            .filter(|(i, _)| accounting[*i].accesses_done < total)
            .map(|(i, core)| (core.engine.now(), i));
        let (best, _) = sched::linear_scan(ready);
        let Some((ts, i)) = best else { break };
        if let Some(o) = obs.as_deref_mut() {
            o.sched_event(ts, i, TraceEventKind::ArbPop);
        }
        step_core(&mut cores[i], &mut accounting[i], meta, obs.as_deref_mut())?;
    }
    Ok(())
}

/// One core's next application reference: warmup-boundary stats reset,
/// demand paging, translation, the data access, and the co-runner burst.
// asap-lint: hot-path
fn step_core<E: TranslationEngine>(
    core: &mut CoreSlot<'_, E>,
    acct: &mut CoreAccounting,
    meta: &RunMeta,
    obs: Option<&mut DriverObserver>,
) -> Result<(), DriverError> {
    if acct.accesses_done == meta.sim.warmup_accesses {
        if let Some(o) = obs {
            o.warmup_boundary();
        }
        core.engine.reset_stats();
        *acct = CoreAccounting {
            accesses_done: acct.accesses_done,
            window_start_cycle: core.engine.now(),
            ..CoreAccounting::default()
        };
    }
    let va = core.stream.next_va();
    // OS demand paging happens off the measured path (a faulting access
    // costs microseconds of OS work either way; the paper's walk-latency
    // metric covers successful walks).
    core.machine
        .demand_page(va)
        .map_err(|source| DriverError::stream_escaped_vma(va, source))?;
    let pa = if meta.perfect_tlb {
        core.machine
            .reference_translate(va)
            .ok_or(DriverError::untranslatable_page(va))?
    } else {
        let outcome = core.engine.translate_access(core.machine, va);
        if outcome.path == TranslationPath::Walk {
            acct.walk_cycles += outcome.latency;
            acct.prefetches_issued += u64::from(outcome.prefetches_issued);
            acct.prefetches_dropped += u64::from(outcome.prefetches_dropped);
        }
        outcome.phys.ok_or(DriverError::untranslatable_page(va))?
    };
    let _ = core.engine.data_access(pa);
    core.engine.advance(CPU_WORK_CYCLES_PER_ACCESS);
    if let Some(co) = core.corunner.as_mut() {
        // Drawn one line at a time — the burst is per-access hot path, so
        // no `Vec` is collected; the RNG draw order matches the old
        // collected form exactly.
        for _ in 0..co.burst() {
            core.engine.corunner_access(co.next_line());
        }
    }
    acct.accesses_done += 1;
    Ok(())
}

/// Runs one **single-core** scenario over any translation engine — the
/// entry point the native/virt/contender machine assemblies use, and a
/// one-core special case of [`run_cores`].
///
/// When `meta.colocated` is set, the SMT co-runner runs through the legacy
/// out-of-band line-injection shim (see [`CoreSlot::corunner`]): the
/// engine-parity goldens and the committed smoke rows pin that model for
/// single-core runs. Multi-core colocation instead schedules the
/// co-runner as a real core (see `smp.rs`).
///
/// # Errors
///
/// Returns a [`DriverError`] when the workload generates an address outside
/// its VMAs or a touched page fails to translate — misconfigurations
/// reported to the caller rather than panicking mid-fan-out.
pub fn run_scenario<E: TranslationEngine>(
    engine: &mut E,
    machine: &mut E::Machine,
    stream: &mut dyn AccessStream,
    meta: &RunMeta,
) -> Result<RunResult, DriverError> {
    run_scenario_observed(engine, machine, stream, meta, None)
}

/// [`run_scenario`] with observation hooks (see [`run_cores_observed`]).
///
/// # Errors
///
/// Same contract as [`run_scenario`].
pub fn run_scenario_observed<E: TranslationEngine>(
    engine: &mut E,
    machine: &mut E::Machine,
    stream: &mut dyn AccessStream,
    meta: &RunMeta,
    obs: Option<&mut DriverObserver>,
) -> Result<RunResult, DriverError> {
    let corunner = meta
        .colocated
        .then(|| CoRunner::memory_intensive(meta.sim.seed ^ 0xC0));
    let mut slots = [CoreSlot {
        engine,
        machine,
        stream,
        workload: meta.workload.clone(),
        corunner,
    }];
    Ok(run_cores_observed(&mut slots, meta, obs)?
        .pop()
        .expect("one core in, one result out"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::smoke_workload as small;
    use asap_core::{Mmu, MmuConfig, NestedMmu, NestedMmuConfig};
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_virt::VirtualMachine;

    fn meta(sim: SimConfig) -> RunMeta {
        RunMeta {
            workload: "test".into(),
            label: "direct".into(),
            sim,
            colocated: false,
            perfect_tlb: false,
        }
    }

    #[test]
    fn drives_a_native_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &process);
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta(sim)).unwrap();
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
        assert!(r.host_served.is_none());
    }

    #[test]
    fn drives_a_nested_engine_directly() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let guest = w
            .process_config(Asid(1), AsapOsConfig::disabled(), sim.seed)
            .with_compact_phys();
        let ept = asap_virt::EptConfig {
            scatter_run: w.pt_scatter_run,
            seed: sim.seed ^ 0xE9,
            ..asap_virt::EptConfig::default()
        };
        let mut vm = VirtualMachine::new(guest, ept);
        let mut stream = w.build_stream(vm.guest(), sim.seed ^ 0x11);
        let mut mmu = NestedMmu::new(NestedMmuConfig::default().with_seed(sim.seed));
        TranslationEngine::load_context(&mut mmu, &vm);
        let r = run_scenario(&mut mmu, &mut vm, stream.as_mut(), &meta(sim)).unwrap();
        assert!(r.walks.count() > 100);
        assert!(r.host_served.is_some());
    }

    #[test]
    fn perfect_tlb_never_queries_the_engine() {
        let w = small();
        let sim = SimConfig::smoke_test();
        let mut process = w.build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        let mut m = meta(sim);
        m.perfect_tlb = true;
        let r = run_scenario(&mut mmu, &mut process, stream.as_mut(), &m).unwrap();
        assert_eq!(r.walks.count(), 0);
        assert_eq!(r.walk_cycles, 0);
        assert_eq!(r.l2_tlb_accesses, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn escaping_stream_reports_instead_of_panicking() {
        /// A stream that wanders outside every VMA.
        struct WildStream;
        impl AccessStream for WildStream {
            fn next_va(&mut self) -> VirtAddr {
                VirtAddr::new(0x1234_5678_0000).unwrap()
            }
            fn name(&self) -> &'static str {
                "wild"
            }
        }
        let sim = SimConfig::smoke_test();
        let mut process = small().build_process(Asid(1), AsapOsConfig::disabled(), sim.seed);
        let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
        let err = run_scenario(&mut mmu, &mut process, &mut WildStream, &meta(sim)).unwrap_err();
        match err.kind {
            DriverErrorKind::StreamEscapedVma { va, source } => {
                assert_eq!(va, VirtAddr::new(0x1234_5678_0000).unwrap());
                assert_eq!(source, OsError::Segfault(va));
            }
            other => panic!("expected StreamEscapedVma, got {other:?}"),
        }
        assert!(err.to_string().contains("escaped"));
    }

    /// No cores is a typed spec error now, not a panic — a `parallel_map`
    /// fan-out reports it like any other misconfiguration.
    #[test]
    fn zero_cores_is_a_spec_error_not_a_panic() {
        let mut slots: [CoreSlot<'_, Mmu>; 0] = [];
        let err = run_cores(&mut slots, &meta(SimConfig::smoke_test())).unwrap_err();
        assert_eq!(
            err,
            DriverError::incompatible_spec("a machine needs at least one core")
        );
        // The anchor points into this crate's driver source — the
        // clickable `file:line:` the CLI prefixes diagnostics with.
        assert!(
            err.anchor().contains("driver.rs:"),
            "unexpected anchor {}",
            err.anchor()
        );
    }

    /// Two cores over one fabric: the multi-core loop yields one result
    /// per core, and each core's measurement window is populated.
    #[test]
    fn drives_two_cores_over_one_fabric() {
        use asap_cache::SharedFabric;
        let w = small();
        let sim = SimConfig::smoke_test();
        let fabric = SharedFabric::new(asap_cache::HierarchyConfig::broadwell_like());
        let mut processes: Vec<_> = (0..2u16)
            .map(|i| {
                w.build_process(
                    Asid(1 + i),
                    AsapOsConfig::disabled(),
                    sim.seed ^ u64::from(i),
                )
            })
            .collect();
        let mut streams: Vec<_> = processes
            .iter()
            .enumerate()
            .map(|(i, p)| w.build_stream(p, sim.seed ^ 0x11 ^ ((i as u64) << 8)))
            .collect();
        let mut engines: Vec<Mmu> = (0..2)
            .map(|i| Mmu::with_fabric(MmuConfig::default().with_seed(i), fabric.clone()))
            .collect();
        for (e, p) in engines.iter_mut().zip(&processes) {
            TranslationEngine::load_context(e, p);
        }
        let mut slots: Vec<CoreSlot<'_, Mmu>> = engines
            .iter_mut()
            .zip(processes.iter_mut())
            .zip(streams.iter_mut())
            .enumerate()
            .map(|(i, ((engine, machine), stream))| CoreSlot {
                engine,
                machine,
                stream: stream.as_mut(),
                workload: format!("test@core{i}"),
                corunner: None,
            })
            .collect();
        let results = run_cores(&mut slots, &meta(sim)).unwrap();
        assert_eq!(results.len(), 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.workload, format!("test@core{i}"));
            assert!(r.walks.count() > 100, "core {i} never walked");
            assert_eq!(r.faults, 0);
            assert!(r.cycles > 0);
        }
    }

    /// Shared-fabric contention is visible: the same workload's walk
    /// latency is higher with a thrashing neighbor core than alone.
    #[test]
    fn neighbor_core_inflates_walk_latency() {
        use asap_cache::SharedFabric;
        let w = small();
        let sim = SimConfig::smoke_test();

        let run_with_neighbors = |n: usize| {
            let fabric = SharedFabric::new(asap_cache::HierarchyConfig::broadwell_like());
            let mut processes: Vec<_> = (0..n as u16)
                .map(|i| {
                    w.build_process(
                        Asid(1 + i),
                        AsapOsConfig::disabled(),
                        sim.seed ^ (u64::from(i) * 0x9E37),
                    )
                })
                .collect();
            let mut streams: Vec<_> = processes
                .iter()
                .enumerate()
                .map(|(i, p)| w.build_stream(p, sim.seed ^ 0x11 ^ (i as u64 * 0x51)))
                .collect();
            let mut engines: Vec<Mmu> = (0..n as u64)
                .map(|i| Mmu::with_fabric(MmuConfig::default().with_seed(i), fabric.clone()))
                .collect();
            for (e, p) in engines.iter_mut().zip(&processes) {
                TranslationEngine::load_context(e, p);
            }
            let mut slots: Vec<CoreSlot<'_, Mmu>> = engines
                .iter_mut()
                .zip(processes.iter_mut())
                .zip(streams.iter_mut())
                .map(|((engine, machine), stream)| CoreSlot {
                    engine,
                    machine,
                    stream: stream.as_mut(),
                    workload: "test".into(),
                    corunner: None,
                })
                .collect();
            run_cores(&mut slots, &meta(sim)).unwrap()[0].walks.mean()
        };

        let alone = run_with_neighbors(1);
        let contended = run_with_neighbors(4);
        assert!(
            contended > alone,
            "4-core walk latency {contended:.1} !> single-core {alone:.1}"
        );
    }
}
