//! The unified run specification: one builder-style spec for every
//! simulation the harness can drive.
//!
//! A [`RunSpec`] is `workload × engine × machine × knobs`. The engine
//! ([`EngineSelect`]: Baseline / ASAP / Victima / Revelator) and the
//! machine ([`MachineSelect`]: native / virtualized) are *data*, not
//! types — the same spec type describes a native baseline run, a
//! virtualized per-dimension ASAP sweep, and a contender head-to-head bar,
//! and [`RunSpec::run`] dispatches to the right machine assembly
//! internally. New backends plug in as `EngineSelect` variants without a
//! new spec type or driver entry point.
//!
//! # Examples
//!
//! ```
//! use asap_sim::{EngineSelect, RunSpec, SimConfig};
//! use asap_workloads::WorkloadSpec;
//!
//! // A native ASAP run…
//! let native = RunSpec::new(WorkloadSpec::mcf())
//!     .with_engine(EngineSelect::asap_p1_p2())
//!     .with_sim(SimConfig::smoke_test());
//! assert_eq!(native.label(), "P1+P2");
//!
//! // …and a virtualized baseline, same spec type.
//! let virt = RunSpec::new(WorkloadSpec::mcf()).virt();
//! assert_eq!(virt.label(), "Baseline");
//! ```

use crate::driver::DriverError;
#[cfg(test)]
use crate::driver::DriverErrorKind;
use crate::{RunOutput, RunResult};
use asap_contenders::ContenderKind;
use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_telemetry::TelemetryConfig;
use asap_tlb::PwcConfig;
use asap_types::{PageSize, PagingMode, PtLevel};
use asap_workloads::WorkloadSpec;

/// Window sizes and seeding for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Accesses before statistics reset (cache/TLB warmup).
    pub warmup_accesses: u64,
    /// Accesses measured after warmup.
    pub measure_accesses: u64,
    /// Deterministic seed for the whole run.
    pub seed: u64,
    /// Force per-access arbitration in the multi-core driver instead of
    /// the batched schedule. The two produce identical statistics (pinned
    /// by the `prop_smp_determinism` batching oracle); lockstep exists as
    /// the oracle's reference schedule and differs only in wall-clock.
    pub lockstep: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup_accesses: 40_000,
            measure_accesses: 160_000,
            seed: 42,
            lockstep: false,
        }
    }
}

impl SimConfig {
    /// A tiny configuration for unit tests and doc examples.
    #[must_use]
    pub fn smoke_test() -> Self {
        Self {
            warmup_accesses: 1_000,
            measure_accesses: 4_000,
            seed: 42,
            lockstep: false,
        }
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Which translation mechanism runs — an axis value, not a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSelect {
    /// The stock radix MMU (no prefetching).
    Baseline,
    /// ASAP prefetching at the given hardware levels (native machines).
    Asap(AsapHwConfig),
    /// ASAP prefetching per walk dimension (virtualized machines).
    NestedAsap(NestedAsapConfig),
    /// Victima-style cache-resident TLB blocks (native machines).
    Victima,
    /// Revelator-style hash speculation (native machines).
    Revelator,
}

impl EngineSelect {
    /// Native ASAP at `P1+P2` — the paper's headline configuration.
    #[must_use]
    pub fn asap_p1_p2() -> Self {
        EngineSelect::Asap(AsapHwConfig::p1_p2())
    }

    /// The contender backend of `kind`.
    #[must_use]
    pub fn contender(kind: ContenderKind) -> Self {
        match kind {
            ContenderKind::Victima => EngineSelect::Victima,
            ContenderKind::Revelator => EngineSelect::Revelator,
        }
    }

    /// The engine part of the run label ("Baseline", "P1+P2",
    /// "P1g+P1h+P2g+P2h", "Victima", …).
    #[must_use]
    pub fn label_fragment(&self) -> String {
        match self {
            EngineSelect::Baseline => "Baseline".into(),
            EngineSelect::Asap(cfg) => {
                if cfg.is_enabled() {
                    let mut levels: Vec<&str> = Vec::new();
                    if cfg.levels.contains(&PtLevel::Pl1) {
                        levels.push("P1");
                    }
                    if cfg.levels.contains(&PtLevel::Pl2) {
                        levels.push("P2");
                    }
                    levels.join("+")
                } else {
                    "Baseline".into()
                }
            }
            EngineSelect::NestedAsap(cfg) => {
                if cfg.is_enabled() {
                    let mut bits: Vec<&str> = Vec::new();
                    if cfg.guest.contains(&PtLevel::Pl1) {
                        bits.push("P1g");
                    }
                    if cfg.host.contains(&PtLevel::Pl1) {
                        bits.push("P1h");
                    }
                    if cfg.guest.contains(&PtLevel::Pl2) {
                        bits.push("P2g");
                    }
                    if cfg.host.contains(&PtLevel::Pl2) {
                        bits.push("P2h");
                    }
                    bits.join("+")
                } else {
                    "Baseline".into()
                }
            }
            EngineSelect::Victima => ContenderKind::Victima.label().into(),
            EngineSelect::Revelator => ContenderKind::Revelator.label().into(),
        }
    }
}

/// Which machine the workload executes on — an axis value, not a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSelect {
    /// Bare-metal native execution.
    Native,
    /// A guest under a hypervisor; every TLB miss takes the 2D walk.
    Virt {
        /// Host page size backing guest memory (2 MiB for Fig. 12).
        host_page_size: PageSize,
    },
}

impl MachineSelect {
    /// Virtualized execution over 4 KiB host pages (the common case).
    #[must_use]
    pub fn virt() -> Self {
        MachineSelect::Virt {
            host_page_size: PageSize::Size4K,
        }
    }

    /// Virtualized execution over 2 MiB host pages (Fig. 12).
    #[must_use]
    pub fn virt_2m() -> Self {
        MachineSelect::Virt {
            host_page_size: PageSize::Size2M,
        }
    }

    /// Whether this is the native machine.
    #[must_use]
    pub fn is_native(self) -> bool {
        matches!(self, MachineSelect::Native)
    }
}

/// The most simulated cores one machine supports. The event-queue
/// scheduler arbitrates in O(log n), so the bound is no longer the
/// scheduler — it is the physical map's 128-ASID window budget (each core
/// gets its own ASID starting at 1, plus headroom for the kernel and
/// co-runner windows).
pub const MAX_CORES: usize = 64;

/// The most NUMA nodes the interconnect model supports — a datacenter
/// socket count, not a scheduling limit.
pub const MAX_NUMA_NODES: usize = 8;

/// One run: `workload × engine × machine × cores × knobs` — the unit the
/// scenario registry enumerates and [`RunSpec::run`] executes.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The workload preset.
    pub workload: WorkloadSpec,
    /// Which translation mechanism runs.
    pub engine: EngineSelect,
    /// Which machine the workload executes on.
    pub machine: MachineSelect,
    /// How many cores share the memory fabric (1 = the classic paper
    /// machine). At N > 1, core 0 runs the workload and cores 1..N run
    /// either workload copies (isolation) or the co-runner workload
    /// (colocation); native machines only.
    pub cores: usize,
    /// How many NUMA nodes the memory fabric spans (1 = uniform memory,
    /// the classic paper machine). At N > 1, cores and their physical
    /// windows are assigned to nodes round-robin and DRAM accesses whose
    /// home node differs from the requesting core's pay an interconnect
    /// hop; native multi-core machines only.
    pub numa_nodes: usize,
    /// Whether the SMT co-runner is active (§4 colocation). At `cores = 1`
    /// this is the legacy out-of-band line-injection shim; at `cores > 1`
    /// the co-runner executes as a real core.
    pub colocated: bool,
    /// Enable the clustered TLB (§5.4.1; native baseline/ASAP only).
    pub clustered_tlb: bool,
    /// Run with translation disabled entirely — the Table 6 methodology
    /// (execution time "in the absence of TLB misses").
    pub perfect_tlb: bool,
    /// Page-walk-cache geometry (ablation knob, §5.1.1; native only).
    pub pwc: PwcConfig,
    /// Paging depth (5-level exercises the §3.5 extension; native only).
    pub paging_mode: PagingMode,
    /// Overrides the workload's PT scatter run length (ablation), if set.
    pub pt_scatter_run_override: Option<f64>,
    /// Window configuration.
    pub sim: SimConfig,
    /// Telemetry switches (event tracing / metrics snapshot / simulator
    /// self-profile). All off by default, in which case every hook in the
    /// engines and the driver compiles to a never-taken branch.
    pub telemetry: TelemetryConfig,
}

impl RunSpec {
    /// The baseline native run of `workload`: stock MMU, no clustering,
    /// default PWCs, isolation. Every other configuration is a builder
    /// call away.
    #[must_use]
    pub fn new(workload: WorkloadSpec) -> Self {
        Self {
            workload,
            engine: EngineSelect::Baseline,
            machine: MachineSelect::Native,
            cores: 1,
            numa_nodes: 1,
            colocated: false,
            clustered_tlb: false,
            perfect_tlb: false,
            pwc: PwcConfig::split_default(),
            paging_mode: PagingMode::FourLevel,
            pt_scatter_run_override: None,
            sim: SimConfig::default(),
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Swaps the workload, keeping every knob (scenario cross products).
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Selects the engine.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineSelect) -> Self {
        self.engine = engine;
        self
    }

    /// Enables native ASAP at the given levels (hardware + OS together).
    #[must_use]
    pub fn with_asap(self, asap: AsapHwConfig) -> Self {
        self.with_engine(EngineSelect::Asap(asap))
    }

    /// Enables per-dimension ASAP (virtualized machines).
    #[must_use]
    pub fn with_nested_asap(self, asap: NestedAsapConfig) -> Self {
        self.with_engine(EngineSelect::NestedAsap(asap))
    }

    /// Selects the machine.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineSelect) -> Self {
        self.machine = machine;
        self
    }

    /// Runs virtualized over 4 KiB host pages.
    #[must_use]
    pub fn virt(self) -> Self {
        self.with_machine(MachineSelect::virt())
    }

    /// Runs virtualized over 2 MiB host pages (Fig. 12).
    #[must_use]
    pub fn host_2m_pages(self) -> Self {
        self.with_machine(MachineSelect::virt_2m())
    }

    /// Adds the SMT co-runner.
    #[must_use]
    pub fn colocated(mut self) -> Self {
        self.colocated = true;
        self
    }

    /// Simulates `cores` cores sharing one memory fabric.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Spreads the memory fabric over `nodes` NUMA nodes (remote-node DRAM
    /// pays an interconnect hop).
    #[must_use]
    pub fn with_numa_nodes(mut self, nodes: usize) -> Self {
        self.numa_nodes = nodes;
        self
    }

    /// Enables the clustered TLB.
    #[must_use]
    pub fn with_clustered_tlb(mut self) -> Self {
        self.clustered_tlb = true;
        self
    }

    /// Switches to perfect-TLB mode (Table 6).
    #[must_use]
    pub fn perfect_tlb(mut self) -> Self {
        self.perfect_tlb = true;
        self
    }

    /// Swaps the PWC geometry.
    #[must_use]
    pub fn with_pwc(mut self, pwc: PwcConfig) -> Self {
        self.pwc = pwc;
        self
    }

    /// Uses five-level paging (§3.5 extension).
    #[must_use]
    pub fn five_level(mut self) -> Self {
        self.paging_mode = PagingMode::FiveLevel;
        self
    }

    /// Overrides the PT scatter run length.
    #[must_use]
    pub fn with_pt_scatter_run(mut self, run: f64) -> Self {
        self.pt_scatter_run_override = Some(run);
        self
    }

    /// Sets the window configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Sets the telemetry switches (tracing / metrics / self-profile).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The workload's name.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        self.workload.name
    }

    /// The workload with the spec's overrides applied.
    pub(crate) fn effective_workload(&self) -> WorkloadSpec {
        let mut w = self.workload.clone();
        if let Some(run) = self.pt_scatter_run_override {
            w.pt_scatter_run = run;
        }
        w
    }

    /// A short label for reports, derived from the engine, machine and
    /// feature knobs: "Baseline", "P1+P2 ClusteredTLB coloc",
    /// "P1g+P2g+P2h host2M", "Victima coloc", ….
    #[must_use]
    pub fn label(&self) -> String {
        let mut parts = vec![self.engine.label_fragment()];
        if self.clustered_tlb {
            parts.push("ClusteredTLB".into());
        }
        if matches!(
            self.machine,
            MachineSelect::Virt {
                host_page_size: PageSize::Size2M
            }
        ) {
            parts.push("host2M".into());
        }
        if self.colocated {
            parts.push("coloc".into());
        }
        if self.cores > 1 {
            parts.push(format!("{}c", self.cores));
        }
        if self.numa_nodes > 1 {
            parts.push(format!("{}n", self.numa_nodes));
        }
        parts.join(" ")
    }

    /// Checks that the engine, machine, and knobs are a combination the
    /// simulator models. The registry only produces valid specs; this is
    /// the typed error a hand-built spec gets instead of a panic deep in
    /// machine assembly.
    ///
    /// # Errors
    ///
    /// [`IncompatibleSpec`](crate::driver::DriverErrorKind::IncompatibleSpec) naming the first offending
    /// combination.
    pub fn validate(&self) -> Result<(), DriverError> {
        let err = |reason| Err(DriverError::incompatible_spec(reason));
        match (&self.engine, &self.machine) {
            (EngineSelect::NestedAsap(_), MachineSelect::Native) => {
                return err("nested (per-dimension) ASAP needs a virtualized machine; use EngineSelect::Asap for native runs");
            }
            (EngineSelect::Asap(_), MachineSelect::Virt { .. }) => {
                return err(
                    "native ASAP levels on a virtualized machine; use EngineSelect::NestedAsap",
                );
            }
            (EngineSelect::Victima | EngineSelect::Revelator, MachineSelect::Virt { .. }) => {
                return err("contender backends (Victima/Revelator) model native machines only");
            }
            _ => {}
        }
        if self.cores == 0 {
            return err("a machine needs at least one core");
        }
        if self.cores > MAX_CORES {
            return err("the physical map's ASID windows support at most 64 cores");
        }
        if self.cores > 1 && !self.machine.is_native() {
            return err("multi-core simulation models native machines only");
        }
        if self.numa_nodes == 0 {
            return err("a memory fabric needs at least one NUMA node");
        }
        if self.numa_nodes > MAX_NUMA_NODES {
            return err("the interconnect model supports at most 8 NUMA nodes");
        }
        if self.numa_nodes > 1 && !self.machine.is_native() {
            return err("NUMA simulation models native machines only");
        }
        if self.numa_nodes > self.cores {
            return err("every NUMA node needs at least one core (numa_nodes <= cores)");
        }
        let contender = matches!(self.engine, EngineSelect::Victima | EngineSelect::Revelator);
        if self.clustered_tlb && (!self.machine.is_native() || contender) {
            return err("the clustered TLB is modeled only in the native baseline/ASAP MMU");
        }
        if self.pwc != PwcConfig::split_default() && (!self.machine.is_native() || contender) {
            return err("PWC geometry is configurable only on the native baseline/ASAP machine");
        }
        if self.paging_mode != PagingMode::FourLevel && (!self.machine.is_native() || contender) {
            return err("five-level paging is modeled only on the native machine");
        }
        Ok(())
    }

    /// Executes the run and returns the aggregate measurements (for
    /// multi-core runs, the whole-machine row; see [`RunSpec::run_split`]
    /// for the per-core breakdown).
    ///
    /// # Errors
    ///
    /// [`IncompatibleSpec`](crate::driver::DriverErrorKind::IncompatibleSpec) for a combination the simulator
    /// does not model, or the driver's error for a misconfigured
    /// workload/machine pairing.
    pub fn run(&self) -> Result<RunResult, DriverError> {
        self.run_split().map(|o| o.aggregate)
    }

    /// Executes the run: validates the spec, assembles the machine the
    /// engine/machine/cores axes select, and drives it through the one
    /// generic driver loop. Multi-core specs return per-core rows plus
    /// the merged aggregate; single-core specs return only the aggregate.
    ///
    /// # Errors
    ///
    /// [`IncompatibleSpec`](crate::driver::DriverErrorKind::IncompatibleSpec) for a combination the simulator
    /// does not model, or the driver's error for a misconfigured
    /// workload/machine pairing.
    pub fn run_split(&self) -> Result<RunOutput, DriverError> {
        self.validate()?;
        if self.cores > 1 {
            return crate::smp::run_smp(self);
        }
        match (&self.machine, &self.engine) {
            (MachineSelect::Native, EngineSelect::Victima | EngineSelect::Revelator) => {
                crate::contender::run_contender(self)
            }
            (MachineSelect::Native, _) => crate::native::run_native(self),
            (MachineSelect::Virt { .. }, _) => crate::virt::run_virt(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_labels() {
        let w = WorkloadSpec::mcf;
        assert_eq!(RunSpec::new(w()).label(), "Baseline");
        assert_eq!(
            RunSpec::new(w()).with_asap(AsapHwConfig::p1()).label(),
            "P1"
        );
        assert_eq!(
            RunSpec::new(w())
                .with_asap(AsapHwConfig::p1_p2())
                .colocated()
                .label(),
            "P1+P2 coloc"
        );
        assert_eq!(
            RunSpec::new(w()).with_clustered_tlb().label(),
            "Baseline ClusteredTLB"
        );
        assert_eq!(
            RunSpec::new(w()).with_asap(AsapHwConfig::off()).label(),
            "Baseline"
        );
    }

    #[test]
    fn virt_labels() {
        let w = WorkloadSpec::redis;
        assert_eq!(RunSpec::new(w()).virt().label(), "Baseline");
        assert_eq!(
            RunSpec::new(w())
                .virt()
                .with_nested_asap(NestedAsapConfig::all())
                .label(),
            "P1g+P1h+P2g+P2h"
        );
        assert_eq!(
            RunSpec::new(w())
                .with_nested_asap(NestedAsapConfig::host_2m())
                .host_2m_pages()
                .label(),
            "P1g+P2g+P2h host2M"
        );
    }

    #[test]
    fn contender_labels() {
        let spec = RunSpec::new(WorkloadSpec::mcf())
            .with_engine(EngineSelect::contender(ContenderKind::Revelator))
            .colocated();
        assert_eq!(spec.label(), "Revelator coloc");
        assert_eq!(
            RunSpec::new(WorkloadSpec::mcf())
                .with_engine(EngineSelect::Victima)
                .label(),
            "Victima"
        );
    }

    #[test]
    fn cores_axis_labels() {
        let w = WorkloadSpec::mcf;
        assert_eq!(RunSpec::new(w()).with_cores(1).label(), "Baseline");
        assert_eq!(RunSpec::new(w()).with_cores(4).label(), "Baseline 4c");
        assert_eq!(
            RunSpec::new(w())
                .with_asap(AsapHwConfig::p1_p2())
                .colocated()
                .with_cores(2)
                .label(),
            "P1+P2 coloc 2c"
        );
        assert_eq!(
            RunSpec::new(w()).with_cores(16).with_numa_nodes(4).label(),
            "Baseline 16c 4n"
        );
        assert_eq!(
            RunSpec::new(w()).with_numa_nodes(1).with_cores(64).label(),
            "Baseline 64c"
        );
    }

    /// The 64-core boundary: `MAX_CORES` itself validates, one past it is
    /// a typed error naming the new limit, and multi-core (and NUMA) stay
    /// native-only.
    #[test]
    fn core_and_numa_limits() {
        let w = WorkloadSpec::mcf;
        assert_eq!(MAX_CORES, 64);
        RunSpec::new(w()).with_cores(MAX_CORES).validate().unwrap();
        let over = RunSpec::new(w()).with_cores(MAX_CORES + 1).validate();
        assert_eq!(
            over.unwrap_err(),
            DriverError::incompatible_spec(
                "the physical map's ASID windows support at most 64 cores"
            )
        );
        assert!(RunSpec::new(w()).virt().with_cores(2).validate().is_err());
        RunSpec::new(w())
            .with_cores(MAX_NUMA_NODES)
            .with_numa_nodes(MAX_NUMA_NODES)
            .validate()
            .unwrap();
        for bad in [
            RunSpec::new(w()).with_cores(2).with_numa_nodes(0),
            RunSpec::new(w())
                .with_cores(MAX_CORES)
                .with_numa_nodes(MAX_NUMA_NODES + 1),
            RunSpec::new(w()).with_numa_nodes(2), // 2 nodes need >= 2 cores
            RunSpec::new(w()).with_cores(2).with_numa_nodes(4),
            RunSpec::new(w()).virt().with_numa_nodes(2),
        ] {
            assert!(
                matches!(
                    bad.validate().unwrap_err().kind,
                    DriverErrorKind::IncompatibleSpec { .. }
                ),
                "{bad:?} should be incompatible"
            );
        }
    }

    #[test]
    fn validation_rejects_mismatched_axes() {
        let w = WorkloadSpec::mcf;
        let bad = [
            RunSpec::new(w()).with_nested_asap(NestedAsapConfig::all()),
            RunSpec::new(w()).virt().with_asap(AsapHwConfig::p1()),
            RunSpec::new(w()).virt().with_engine(EngineSelect::Victima),
            RunSpec::new(w()).virt().with_clustered_tlb(),
            RunSpec::new(w())
                .with_engine(EngineSelect::Revelator)
                .five_level(),
            RunSpec::new(w())
                .virt()
                .with_pwc(asap_tlb::PwcConfig::split_doubled()),
            RunSpec::new(w()).with_cores(0),
            RunSpec::new(w()).with_cores(MAX_CORES + 1),
            RunSpec::new(w()).virt().with_cores(2),
        ];
        for spec in bad {
            let err = spec.validate().unwrap_err();
            assert!(
                matches!(err.kind, DriverErrorKind::IncompatibleSpec { .. }),
                "{spec:?} should be incompatible"
            );
            assert_eq!(spec.run().unwrap_err(), err, "run() must validate first");
        }
    }

    #[test]
    fn validation_accepts_the_modeled_matrix() {
        let w = WorkloadSpec::mcf;
        for spec in [
            RunSpec::new(w()),
            RunSpec::new(w())
                .with_asap(AsapHwConfig::p1_p2())
                .colocated(),
            RunSpec::new(w()).with_clustered_tlb().five_level(),
            RunSpec::new(w()).perfect_tlb(),
            RunSpec::new(w()).virt(),
            RunSpec::new(w())
                .host_2m_pages()
                .with_nested_asap(NestedAsapConfig::host_2m()),
            RunSpec::new(w()).with_engine(EngineSelect::Victima),
            RunSpec::new(w())
                .with_engine(EngineSelect::Revelator)
                .colocated(),
            RunSpec::new(w()).with_cores(4),
            RunSpec::new(w()).with_cores(2).colocated(),
            RunSpec::new(w())
                .with_engine(EngineSelect::Victima)
                .with_cores(2),
            RunSpec::new(w())
                .with_asap(AsapHwConfig::p1_p2())
                .with_cores(MAX_CORES),
            RunSpec::new(w()).with_cores(4).with_numa_nodes(2),
            RunSpec::new(w())
                .with_engine(EngineSelect::Victima)
                .with_cores(8)
                .with_numa_nodes(4),
        ] {
            spec.validate().unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        }
    }
}
