//! Run specifications.

use asap_contenders::ContenderKind;
use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_tlb::PwcConfig;
use asap_types::{PageSize, PagingMode};
use asap_workloads::WorkloadSpec;

/// Window sizes and seeding for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Accesses before statistics reset (cache/TLB warmup).
    pub warmup_accesses: u64,
    /// Accesses measured after warmup.
    pub measure_accesses: u64,
    /// Deterministic seed for the whole run.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            warmup_accesses: 40_000,
            measure_accesses: 160_000,
            seed: 42,
        }
    }
}

impl SimConfig {
    /// A tiny configuration for unit tests and doc examples.
    #[must_use]
    pub fn smoke_test() -> Self {
        Self {
            warmup_accesses: 1_000,
            measure_accesses: 4_000,
            seed: 42,
        }
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One native-execution run (a bar of Figs. 3/8/11 or a row of the tables).
#[derive(Debug, Clone)]
pub struct NativeRunSpec {
    /// The workload preset.
    pub workload: WorkloadSpec,
    /// Whether the SMT co-runner is active (§4 colocation).
    pub colocated: bool,
    /// Hardware prefetch levels; the OS reserves matching sorted regions.
    pub asap: AsapHwConfig,
    /// Enable the clustered TLB (§5.4.1).
    pub clustered_tlb: bool,
    /// Run with translation disabled entirely — the Table 6 methodology
    /// (execution time "in the absence of TLB misses").
    pub perfect_tlb: bool,
    /// Page-walk-cache geometry (ablation knob, §5.1.1).
    pub pwc: PwcConfig,
    /// Paging depth (5-level exercises the §3.5 extension).
    pub paging_mode: PagingMode,
    /// Overrides the workload's PT scatter run length (ablation), if set.
    pub pt_scatter_run_override: Option<f64>,
    /// Window configuration.
    pub sim: SimConfig,
}

impl NativeRunSpec {
    /// The baseline configuration for `workload`: no ASAP, no clustering,
    /// default PWCs, isolation.
    #[must_use]
    pub fn baseline(workload: WorkloadSpec) -> Self {
        Self {
            workload,
            colocated: false,
            asap: AsapHwConfig::off(),
            clustered_tlb: false,
            perfect_tlb: false,
            pwc: PwcConfig::split_default(),
            paging_mode: PagingMode::FourLevel,
            pt_scatter_run_override: None,
            sim: SimConfig::default(),
        }
    }

    /// Enables ASAP at the given levels (hardware + OS sides together).
    #[must_use]
    pub fn with_asap(mut self, asap: AsapHwConfig) -> Self {
        self.asap = asap;
        self
    }

    /// Adds the SMT co-runner.
    #[must_use]
    pub fn colocated(mut self) -> Self {
        self.colocated = true;
        self
    }

    /// Enables the clustered TLB.
    #[must_use]
    pub fn with_clustered_tlb(mut self) -> Self {
        self.clustered_tlb = true;
        self
    }

    /// Switches to perfect-TLB mode (Table 6).
    #[must_use]
    pub fn perfect_tlb(mut self) -> Self {
        self.perfect_tlb = true;
        self
    }

    /// Swaps the PWC geometry.
    #[must_use]
    pub fn with_pwc(mut self, pwc: PwcConfig) -> Self {
        self.pwc = pwc;
        self
    }

    /// Uses five-level paging (§3.5 extension).
    #[must_use]
    pub fn five_level(mut self) -> Self {
        self.paging_mode = PagingMode::FiveLevel;
        self
    }

    /// Overrides the PT scatter run length.
    #[must_use]
    pub fn with_pt_scatter_run(mut self, run: f64) -> Self {
        self.pt_scatter_run_override = Some(run);
        self
    }

    /// Sets the window configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// A short label for reports ("Baseline", "P1", "P1+P2", ...).
    #[must_use]
    pub fn label(&self) -> String {
        use asap_types::PtLevel;
        let mut parts = Vec::new();
        if self.asap.is_enabled() {
            let mut levels: Vec<&str> = Vec::new();
            if self.asap.levels.contains(&PtLevel::Pl1) {
                levels.push("P1");
            }
            if self.asap.levels.contains(&PtLevel::Pl2) {
                levels.push("P2");
            }
            parts.push(levels.join("+"));
        } else {
            parts.push("Baseline".into());
        }
        if self.clustered_tlb {
            parts.push("ClusteredTLB".into());
        }
        if self.colocated {
            parts.push("coloc".into());
        }
        parts.join(" ")
    }
}

/// One contender-backend run (a bar of the head-to-head comparison): the
/// workload executes natively under a Victima- or Revelator-style MMU
/// instead of the baseline/ASAP machine.
#[derive(Debug, Clone)]
pub struct ContenderRunSpec {
    /// The workload preset.
    pub workload: WorkloadSpec,
    /// Which contender backend translates.
    pub backend: ContenderKind,
    /// Whether the SMT co-runner is active.
    pub colocated: bool,
    /// Window configuration.
    pub sim: SimConfig,
}

impl ContenderRunSpec {
    /// A contender run of `workload` under `backend`, in isolation.
    #[must_use]
    pub fn new(workload: WorkloadSpec, backend: ContenderKind) -> Self {
        Self {
            workload,
            backend,
            colocated: false,
            sim: SimConfig::default(),
        }
    }

    /// Adds the SMT co-runner.
    #[must_use]
    pub fn colocated(mut self) -> Self {
        self.colocated = true;
        self
    }

    /// Sets the window configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// A short label for reports ("Victima", "Revelator coloc", ...).
    #[must_use]
    pub fn label(&self) -> String {
        if self.colocated {
            format!("{} coloc", self.backend.label())
        } else {
            self.backend.label().to_string()
        }
    }
}

/// One virtualized-execution run (a bar of Figs. 10/12).
#[derive(Debug, Clone)]
pub struct VirtRunSpec {
    /// The workload preset (runs inside the guest).
    pub workload: WorkloadSpec,
    /// Whether the SMT co-runner is active.
    pub colocated: bool,
    /// Per-dimension prefetch levels; guest OS and hypervisor reserve
    /// matching regions.
    pub asap: NestedAsapConfig,
    /// Host page size backing guest memory (2 MiB for Fig. 12).
    pub host_page_size: PageSize,
    /// Window configuration.
    pub sim: SimConfig,
}

impl VirtRunSpec {
    /// The virtualized baseline: no ASAP anywhere, 4 KiB host pages.
    #[must_use]
    pub fn baseline(workload: WorkloadSpec) -> Self {
        Self {
            workload,
            colocated: false,
            asap: NestedAsapConfig::off(),
            host_page_size: PageSize::Size4K,
            sim: SimConfig::default(),
        }
    }

    /// Sets the per-dimension ASAP levels.
    #[must_use]
    pub fn with_asap(mut self, asap: NestedAsapConfig) -> Self {
        self.asap = asap;
        self
    }

    /// Adds the SMT co-runner.
    #[must_use]
    pub fn colocated(mut self) -> Self {
        self.colocated = true;
        self
    }

    /// Uses 2 MiB host pages (Fig. 12).
    #[must_use]
    pub fn host_2m_pages(mut self) -> Self {
        self.host_page_size = PageSize::Size2M;
        self
    }

    /// Sets the window configuration.
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// A short label for reports ("Baseline", "P1g", "P1g+P1h+P2g+P2h"...).
    #[must_use]
    pub fn label(&self) -> String {
        use asap_types::PtLevel;
        let mut parts = Vec::new();
        if self.asap.is_enabled() {
            let mut bits = Vec::new();
            if self.asap.guest.contains(&PtLevel::Pl1) {
                bits.push("P1g");
            }
            if self.asap.host.contains(&PtLevel::Pl1) {
                bits.push("P1h");
            }
            if self.asap.guest.contains(&PtLevel::Pl2) {
                bits.push("P2g");
            }
            if self.asap.host.contains(&PtLevel::Pl2) {
                bits.push("P2h");
            }
            parts.push(bits.join("+"));
        } else {
            parts.push("Baseline".into());
        }
        if self.host_page_size == PageSize::Size2M {
            parts.push("host2M".into());
        }
        if self.colocated {
            parts.push("coloc".into());
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_labels() {
        let w = WorkloadSpec::mcf;
        assert_eq!(NativeRunSpec::baseline(w()).label(), "Baseline");
        assert_eq!(
            NativeRunSpec::baseline(w())
                .with_asap(AsapHwConfig::p1())
                .label(),
            "P1"
        );
        assert_eq!(
            NativeRunSpec::baseline(w())
                .with_asap(AsapHwConfig::p1_p2())
                .colocated()
                .label(),
            "P1+P2 coloc"
        );
        assert_eq!(
            NativeRunSpec::baseline(w()).with_clustered_tlb().label(),
            "Baseline ClusteredTLB"
        );
    }

    #[test]
    fn virt_labels() {
        let w = WorkloadSpec::redis;
        assert_eq!(VirtRunSpec::baseline(w()).label(), "Baseline");
        assert_eq!(
            VirtRunSpec::baseline(w())
                .with_asap(NestedAsapConfig::all())
                .label(),
            "P1g+P1h+P2g+P2h"
        );
        assert_eq!(
            VirtRunSpec::baseline(w())
                .with_asap(NestedAsapConfig::host_2m())
                .host_2m_pages()
                .label(),
            "P1g+P2g+P2h host2M"
        );
    }
}
