//! Contender machine assembly: builds a Victima- or Revelator-style MMU +
//! `Process` for a unified [`RunSpec`] whose engine axis selects a
//! contender backend, and hands it to the generic `run_scenario` loop.
//! Reached only through [`RunSpec::run`]'s internal dispatch.

use crate::driver::{run_scenario_observed, DriverError, RunMeta};
use crate::observe::RunObserver;
use crate::{EngineSelect, RunOutput, RunSpec};
use asap_contenders::{RevelatorConfig, RevelatorMmu, VictimaConfig, VictimaMmu};
use asap_core::TranslationEngine;
use asap_os::{AsapOsConfig, Process};
use asap_types::Asid;
use asap_workloads::BoxedStream;

/// Context-loads one contender engine, drives it, and harvests its
/// telemetry — the shared tail of both contender arms.
fn drive_one<E: TranslationEngine<Machine = Process>>(
    mut mmu: E,
    process: &mut Process,
    stream: &mut BoxedStream,
    meta: &RunMeta,
    mut obs: RunObserver,
) -> Result<RunOutput, DriverError> {
    TranslationEngine::load_context(&mut mmu, process);
    obs.arm(std::slice::from_mut(&mut mmu));
    let result = run_scenario_observed(&mut mmu, process, stream.as_mut(), meta, obs.driver_mut())?;
    let telemetry = obs.finish(
        std::slice::from_mut(&mut mmu),
        std::slice::from_ref(&meta.workload),
        meta.sim.measure_accesses,
    );
    Ok(RunOutput::single(result).with_telemetry(telemetry))
}

/// Runs one contender configuration and returns its measurements.
///
/// Contender backends need no ASAP OS policy — Victima is OS-transparent
/// and Revelator consumes the speculation hint the stock OS already
/// publishes — so the process is always built with ASAP disabled, making
/// the comparison against the registry's baseline runs apples-to-apples
/// (identical data placement, identical page tables).
pub(crate) fn run_contender(spec: &RunSpec) -> Result<RunOutput, DriverError> {
    let obs = RunObserver::begin(spec.telemetry);
    let workload = spec.effective_workload();
    let seed = spec.sim.seed;
    let mut process =
        Process::new(workload.process_config(Asid(1), AsapOsConfig::disabled(), seed));
    let mut stream = workload.build_stream(&process, seed ^ 0x11);
    let meta = RunMeta {
        workload: spec.workload.name.into(),
        label: spec.label(),
        sim: spec.sim,
        colocated: spec.colocated,
        perfect_tlb: spec.perfect_tlb,
    };
    match spec.engine {
        EngineSelect::Victima => drive_one(
            VictimaMmu::new(VictimaConfig::default().with_seed(seed)),
            &mut process,
            &mut stream,
            &meta,
            obs,
        ),
        EngineSelect::Revelator => drive_one(
            RevelatorMmu::new(RevelatorConfig::default().with_seed(seed)),
            &mut process,
            &mut stream,
            &meta,
            obs,
        ),
        _ => unreachable!("dispatch sends only contender specs here"),
    }
}

#[cfg(test)]
mod tests {
    use crate::scenarios::smoke_workload as small;
    use crate::{EngineSelect, RunSpec, SimConfig};

    #[test]
    fn victima_run_produces_walks_and_no_faults() {
        let spec = RunSpec::new(small())
            .with_engine(EngineSelect::Victima)
            .with_sim(SimConfig::smoke_test());
        let r = spec.run().unwrap();
        assert!(r.walks.count() > 100);
        assert_eq!(r.faults, 0);
        assert_eq!(r.label, "Victima");
    }

    #[test]
    fn victima_eliminates_walks_versus_baseline() {
        // A zipfian workload whose hot set exceeds S-TLB reach but fits the
        // L2's block capacity — the regime Victima targets. Uniform sweeps
        // (stock mc80) have too little page reuse for blocks to matter.
        let w = asap_workloads::WorkloadSpec {
            footprint: asap_types::ByteSize::mib(256),
            ..asap_workloads::WorkloadSpec::redis()
        };
        let sim = SimConfig::smoke_test();
        let base = RunSpec::new(w.clone()).with_sim(sim).run().unwrap();
        let victima = RunSpec::new(w)
            .with_engine(EngineSelect::Victima)
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(
            victima.walks.count() < base.walks.count(),
            "Victima blocks must absorb misses: {} !< {}",
            victima.walks.count(),
            base.walks.count()
        );
    }

    #[test]
    fn revelator_speculates_and_beats_baseline_cycles() {
        // A high-contiguity variant: hash speculation verifies ~80% of the
        // time, so the overlapped data fetches must show up as fewer total
        // cycles. (On fragmented workloads like stock mc80 the mechanism
        // degrades gracefully — covered by the scenario matrix.)
        let w = asap_workloads::WorkloadSpec {
            data_cluster_fraction: 0.8,
            ..small()
        };
        let sim = SimConfig::smoke_test();
        let base = RunSpec::new(w.clone()).with_sim(sim).run().unwrap();
        let rev = RunSpec::new(w)
            .with_engine(EngineSelect::Revelator)
            .with_sim(sim)
            .run()
            .unwrap();
        assert!(rev.prefetches_issued > 0, "speculative fetches must issue");
        // Walk latencies are untouched; the win is overlapped data fetch.
        assert!(
            rev.cycles < base.cycles,
            "Revelator {} !< baseline {} cycles",
            rev.cycles,
            base.cycles
        );
    }

    #[test]
    fn contender_runs_are_deterministic() {
        let spec = RunSpec::new(small())
            .with_engine(EngineSelect::Victima)
            .with_sim(SimConfig::smoke_test());
        let a = spec.run().unwrap();
        let b = spec.run().unwrap();
        assert_eq!(a.walks, b.walks);
        assert_eq!(a.cycles, b.cycles);
    }
}
