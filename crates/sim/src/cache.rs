//! Content-addressed caching of run results: the canonical [`RunSpec`]
//! byte encoding, the engine fingerprint, and [`RunSpec::run_cached`].
//!
//! # Key derivation
//!
//! A run's cache key is `fnv1a_128(canonical spec bytes || engine
//! fingerprint)`. The canonical encoding is a versioned, explicit byte
//! serialization of every axis and knob that influences simulated
//! statistics: workload (all calibration fields, floats as IEEE bit
//! patterns), engine (prefetch level *sets* — order-insensitive, since
//! `AsapHwConfig` has set semantics), machine, cores, NUMA nodes, the
//! boolean knobs, PWC geometry, paging mode, the scatter override, and
//! the window configuration. The [`TelemetryConfig`] is deliberately
//! excluded: telemetry is proven observer-effect-free (CI pins that
//! `BENCH_results.json` is produced with telemetry off and stays
//! byte-identical), so tracing a run must not change its identity —
//! but runs that *ask* for telemetry bypass the cache entirely, because
//! their artifacts (traces, profiles) are live by definition.
//!
//! # `SIM_SEMVER` bump discipline
//!
//! [`SIM_SEMVER`] names the *semantics* version of the simulator. Any PR
//! that intentionally changes simulated statistics — a new engine model,
//! a calibration fix, a driver-loop change that moves numbers — must
//! bump it, which rewrites every cache key and invalidates all stored
//! results at once. The existing drift gate enforces the discipline from
//! the other side: a semantics change without a bump still fails CI,
//! because the regenerated `BENCH_results.json` (produced cold under a
//! fresh CI cache dir) diffs against the committed rows. Refactors that
//! keep statistics byte-identical must NOT bump it — warm caches staying
//! valid across no-op changes is the whole point.

use crate::codec;
use crate::driver::DriverError;
use crate::{EngineSelect, MachineSelect, RunOutput, RunResult, RunSpec};
use asap_store::{CacheHandle, CacheKey};
use asap_types::{PageSize, PtLevel};

/// The simulation-semantics version. Bump on any intentional change to
/// simulated statistics (see the module docs for the discipline); never
/// bump for refactors that keep `BENCH_results.json` byte-identical.
pub const SIM_SEMVER: &str = "1.0.0";

/// Version byte of the canonical encoding itself; bump when the byte
/// layout below changes (also rewrites every key, which is safe).
const CANON_VERSION: u8 = 1;

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64_bits(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Prefetch levels as an order-insensitive bitmask: `AsapHwConfig` and
/// `NestedAsapConfig` treat their level vectors as sets (`contains`
/// queries), so `[Pl1, Pl2]` and `[Pl2, Pl1]` must produce one key.
fn level_mask(levels: &[PtLevel]) -> u8 {
    levels
        .iter()
        .fold(0u8, |mask, level| mask | 1 << (level.depth() - 1))
}

fn page_size_tag(size: PageSize) -> u8 {
    match size {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

impl RunSpec {
    /// The stable canonical byte serialization of every
    /// statistics-relevant axis and knob (telemetry excluded — see the
    /// module docs).
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(160);
        out.push(CANON_VERSION);

        // Workload: every calibration field.
        let w = &self.workload;
        push_str(&mut out, w.name);
        push_u64(&mut out, w.footprint.bytes());
        push_u64(&mut out, w.big_vmas as u64);
        push_u64(&mut out, w.libs as u64);
        match &w.pattern {
            asap_workloads::PatternKind::Uniform {
                hot_fraction,
                seq_run,
            } => {
                out.push(0);
                push_f64_bits(&mut out, *hot_fraction);
                push_u64(&mut out, *seq_run);
            }
            asap_workloads::PatternKind::Zipfian { s } => {
                out.push(1);
                push_f64_bits(&mut out, *s);
            }
            asap_workloads::PatternKind::PointerChase {
                reuse,
                capacity,
                scan_mean,
            } => {
                out.push(2);
                push_f64_bits(&mut out, *reuse);
                push_u64(&mut out, *capacity as u64);
                push_u64(&mut out, *scan_mean);
            }
            asap_workloads::PatternKind::Graph(mode) => {
                out.push(match mode {
                    asap_workloads::GraphMode::Bfs => 3,
                    asap_workloads::GraphMode::PageRank => 4,
                });
            }
        }
        push_f64_bits(&mut out, w.pt_scatter_run);
        push_f64_bits(&mut out, w.data_cluster_fraction);

        // Engine axis.
        match &self.engine {
            EngineSelect::Baseline => out.push(0),
            EngineSelect::Asap(cfg) => {
                out.push(1);
                out.push(level_mask(&cfg.levels));
            }
            EngineSelect::NestedAsap(cfg) => {
                out.push(2);
                out.push(level_mask(&cfg.guest));
                out.push(level_mask(&cfg.host));
            }
            EngineSelect::Victima => out.push(3),
            EngineSelect::Revelator => out.push(4),
        }

        // Machine axis.
        match self.machine {
            MachineSelect::Native => out.push(0),
            MachineSelect::Virt { host_page_size } => {
                out.push(1);
                out.push(page_size_tag(host_page_size));
            }
        }

        push_u64(&mut out, self.cores as u64);
        push_u64(&mut out, self.numa_nodes as u64);
        out.push(
            u8::from(self.colocated)
                | u8::from(self.clustered_tlb) << 1
                | u8::from(self.perfect_tlb) << 2,
        );

        push_u64(&mut out, self.pwc.pl4_entries as u64);
        push_u64(&mut out, self.pwc.pl3_entries as u64);
        push_u64(&mut out, self.pwc.pl2_entries as u64);
        push_u64(&mut out, self.pwc.pl2_ways as u64);
        push_u64(&mut out, self.pwc.latency);

        out.push(self.paging_mode.depth() as u8);
        match self.pt_scatter_run_override {
            None => out.push(0),
            Some(run) => {
                out.push(1);
                push_f64_bits(&mut out, run);
            }
        }

        push_u64(&mut out, self.sim.warmup_accesses);
        push_u64(&mut out, self.sim.measure_accesses);
        push_u64(&mut out, self.sim.seed);
        out.push(u8::from(self.sim.lockstep));
        out
    }

    /// The content-addressed cache key: digest of the canonical bytes
    /// followed by the engine fingerprint.
    #[must_use]
    pub fn cache_key(&self) -> CacheKey {
        let mut bytes = self.canonical_bytes();
        bytes.extend_from_slice(&engine_fingerprint().to_le_bytes());
        CacheKey::of(&bytes)
    }

    /// The advisory cost-profile label for this spec: stable across cache
    /// invalidations (it names *what* runs, not the semantics version),
    /// so stale wall-clock estimates keep scheduling longest-first even
    /// after a [`SIM_SEMVER`] bump rewrites every result key.
    #[must_use]
    pub fn cost_label(&self) -> String {
        format!(
            "{} | {} | {}+{}",
            self.workload.name,
            self.label(),
            self.sim.warmup_accesses,
            self.sim.measure_accesses
        )
    }

    /// Cache-aware [`RunSpec::run_split`]: returns the decoded stored
    /// output on hit, runs and stores on miss. Specs with any telemetry
    /// enabled bypass the cache entirely (their artifacts are live by
    /// definition); a corrupt or version-skewed stored entry degrades to
    /// a fresh run that overwrites it. Store failures are swallowed —
    /// a broken cache directory slows runs down but never fails them.
    ///
    /// # Errors
    ///
    /// Exactly [`RunSpec::run_split`]'s errors; the cache adds none.
    pub fn run_split_cached(&self, cache: &CacheHandle) -> Result<RunOutput, DriverError> {
        self.run_split_cached_timed(cache).map(|(output, _)| output)
    }

    /// [`RunSpec::run_split_cached`] plus the wall-clock cost hint: the
    /// stored producer cost on a hit, the measured cost on a miss, and
    /// `None` for telemetry bypasses (live runs feed no cost profile —
    /// tracing overhead would pollute the estimate).
    pub(crate) fn run_split_cached_timed(
        &self,
        cache: &CacheHandle,
    ) -> Result<(RunOutput, Option<u64>), DriverError> {
        if self.telemetry.any() {
            return self.run_split().map(|output| (output, None));
        }
        let key = self.cache_key();
        if let Some(bytes) = cache.get(&key) {
            if let Some((output, stored_nanos)) = std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| codec::decode_payload(text).ok())
            {
                return Ok((output, Some(stored_nanos)));
            }
        }
        let (output, elapsed_nanos) = self.run_split_timed()?;
        let payload = codec::encode_payload(&output, elapsed_nanos);
        let _ = cache.put(&key, payload.as_bytes());
        Ok((output, Some(elapsed_nanos)))
    }

    /// Cache-aware [`RunSpec::run`]: the aggregate row of
    /// [`RunSpec::run_split_cached`].
    ///
    /// # Errors
    ///
    /// Exactly [`RunSpec::run`]'s errors; the cache adds none.
    pub fn run_cached(&self, cache: &CacheHandle) -> Result<RunResult, DriverError> {
        self.run_split_cached(cache).map(|o| o.aggregate)
    }

    /// Runs the spec and measures its wall-clock (the executor's cost
    /// hint — advisory only, never part of any reported statistic).
    pub(crate) fn run_split_timed(&self) -> Result<(RunOutput, u64), DriverError> {
        let start = std::time::Instant::now();
        let output = self.run_split()?;
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok((output, elapsed.max(1)))
    }
}

/// The engine fingerprint folded into every cache key: the digest of
/// [`SIM_SEMVER`]. One constant, one bump, every key rewritten.
#[must_use]
pub fn engine_fingerprint() -> u128 {
    asap_store::fnv1a_128(SIM_SEMVER.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use asap_core::{AsapHwConfig, NestedAsapConfig};
    use asap_telemetry::TelemetryConfig;
    use asap_tlb::PwcConfig;
    use asap_workloads::WorkloadSpec;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "asap-sim-cache-test-{}-{tag}-{seq}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn smoke_spec() -> RunSpec {
        RunSpec::new(WorkloadSpec::mcf()).with_sim(SimConfig::smoke_test())
    }

    #[test]
    fn level_masks_are_order_insensitive() {
        assert_eq!(
            level_mask(&[PtLevel::Pl1, PtLevel::Pl2]),
            level_mask(&[PtLevel::Pl2, PtLevel::Pl1])
        );
        assert_ne!(level_mask(&[PtLevel::Pl1]), level_mask(&[PtLevel::Pl2]));
    }

    #[test]
    fn telemetry_does_not_change_the_key() {
        let plain = smoke_spec();
        let traced = smoke_spec().with_telemetry(TelemetryConfig {
            trace: true,
            metrics: true,
            profile: true,
        });
        assert_eq!(plain.cache_key(), traced.cache_key());
    }

    #[test]
    fn every_axis_flip_changes_the_key() {
        let base = smoke_spec();
        let variants = [
            base.clone().with_workload(WorkloadSpec::mc80()),
            base.clone().with_asap(AsapHwConfig::p1()),
            base.clone().with_asap(AsapHwConfig::p1_p2()),
            base.clone().with_engine(EngineSelect::Victima),
            base.clone().with_engine(EngineSelect::Revelator),
            base.clone().virt(),
            base.clone().host_2m_pages(),
            base.clone()
                .virt()
                .with_nested_asap(NestedAsapConfig::all()),
            base.clone().with_cores(2),
            base.clone().with_cores(4).with_numa_nodes(2),
            base.clone().colocated(),
            base.clone().with_clustered_tlb(),
            base.clone().perfect_tlb(),
            base.clone().with_pwc(PwcConfig::split_doubled()),
            base.clone().five_level(),
            base.clone().with_pt_scatter_run(4.0),
            base.clone().with_sim(SimConfig::default()),
            base.clone().with_sim(SimConfig::smoke_test().with_seed(7)),
        ];
        let base_key = base.cache_key();
        let mut seen = vec![base_key];
        for variant in variants {
            let key = variant.cache_key();
            assert!(
                !seen.contains(&key),
                "key collision for {variant:?} (canonical encoding missed an axis)"
            );
            seen.push(key);
        }
    }

    #[test]
    fn canonical_bytes_are_stable_across_clones() {
        let a = smoke_spec().with_asap(AsapHwConfig::p1_p2()).colocated();
        let b = a.clone();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn cold_then_warm_returns_identical_results() {
        let scratch = Scratch::new("warm");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let spec = smoke_spec();
        let direct = spec.run().unwrap();
        let cold = spec.run_cached(&cache).unwrap();
        let warm = spec.run_cached(&cache).unwrap();
        assert_eq!(cold, direct, "cold cached run matches a direct run");
        assert_eq!(warm, direct, "warm cached run matches a direct run");
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn telemetry_specs_bypass_the_cache() {
        let scratch = Scratch::new("bypass");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let spec = smoke_spec().with_telemetry(TelemetryConfig {
            trace: false,
            metrics: true,
            profile: false,
        });
        let out = spec.run_split_cached(&cache).unwrap();
        assert!(out.telemetry.is_some(), "live telemetry still harvested");
        assert_eq!(cache.stats().lookups(), 0, "no cache traffic at all");
    }

    #[test]
    fn corrupt_entries_degrade_to_fresh_runs() {
        let scratch = Scratch::new("corrupt");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let spec = smoke_spec();
        cache.put(&spec.cache_key(), b"not a payload").unwrap();
        let out = spec.run_cached(&cache).unwrap();
        assert_eq!(out, spec.run().unwrap());
        // The fresh run overwrote the corrupt entry; next lookup decodes.
        let again = spec.run_cached(&cache).unwrap();
        assert_eq!(again, out);
    }
}
