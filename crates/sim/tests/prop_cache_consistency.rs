//! Property tests: the result cache is invisible and the key is sound.
//!
//! Two invariants, both checked against the real scenario registry (so
//! every engine, machine shape and knob combination the experiments use
//! is covered, not a hand-picked sample):
//!
//! * **transparency** — for any registry spec, `run_cached` returns
//!   byte-identical results to a direct `run()`, both on the cold pass
//!   (which populates the store) and on the warm pass (which decodes it);
//! * **key soundness** — two specs get the same cache key exactly when
//!   their canonical encodings are equal, and flipping any single axis of
//!   a spec changes its key.

use std::sync::atomic::{AtomicU32, Ordering};

use asap_sim::scenarios::registry;
use asap_sim::{result_to_json, CacheHandle, RunSpec, SimConfig};
use proptest::prelude::*;

/// Every `RunSpec` the registry can produce, pinned to micro windows so
/// a single simulated run costs milliseconds.
fn registry_specs() -> Vec<RunSpec> {
    let sim = SimConfig {
        warmup_accesses: 100,
        measure_accesses: 300,
        seed: 42,
        ..SimConfig::default()
    };
    let mut out = Vec::new();
    for s in registry() {
        for run in s.runs(s.windows_or(sim)) {
            out.push(run.spec.with_sim(sim));
        }
    }
    assert!(!out.is_empty(), "the registry enumerates no runs");
    out
}

/// A fresh, self-cleaning cache directory per test case.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new() -> Self {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "asap-prop-cache-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Same canonical bytes ⇔ same key, across the full registry cross
/// product. (Deliberately a plain exhaustive test, not a sampled one:
/// the registry is small enough to enumerate completely.)
#[test]
fn keys_collide_exactly_when_canonical_bytes_do() {
    let specs = registry_specs();
    let mut seen: std::collections::BTreeMap<String, Vec<u8>> = std::collections::BTreeMap::new();
    for spec in &specs {
        let key = spec.cache_key().hex();
        let bytes = spec.canonical_bytes();
        match seen.get(&key) {
            Some(prior) => assert_eq!(
                prior, &bytes,
                "two specs with different canonical encodings share key {key}"
            ),
            None => {
                seen.insert(key, bytes);
            }
        }
    }
    let distinct: std::collections::BTreeSet<Vec<u8>> =
        specs.iter().map(RunSpec::canonical_bytes).collect();
    assert_eq!(
        seen.len(),
        distinct.len(),
        "key count must equal distinct-canonical-encoding count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single axis of a registry spec changes its cache key.
    #[test]
    fn any_single_axis_flip_changes_the_key(pick in 0usize..4096, axis in 0usize..5) {
        let specs = registry_specs();
        let spec = specs[pick % specs.len()].clone();
        let flipped = match axis {
            0 => spec.clone().with_sim(spec.sim.with_seed(spec.sim.seed.wrapping_add(1))),
            1 => spec.clone().with_sim(SimConfig {
                warmup_accesses: spec.sim.warmup_accesses + 1,
                ..spec.sim
            }),
            2 => spec.clone().with_sim(SimConfig {
                measure_accesses: spec.sim.measure_accesses + 1,
                ..spec.sim
            }),
            3 => spec.clone().with_cores(spec.cores % asap_sim::MAX_CORES + 1),
            _ => spec
                .clone()
                .with_numa_nodes(spec.numa_nodes % asap_sim::MAX_NUMA_NODES + 1),
        };
        prop_assert_ne!(
            spec.cache_key().raw(),
            flipped.cache_key().raw(),
            "axis {} flip left the key unchanged", axis
        );
        prop_assert_eq!(
            spec.cache_key().raw(),
            specs[pick % specs.len()].cache_key().raw(),
            "key derivation must be pure"
        );
    }
}

proptest! {
    // Each case simulates the same spec three times; keep the count low
    // enough that the whole test stays in unit-test territory.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cold and warm `run_cached` are bit-identical to a direct `run()`,
    /// and the second pass is served from the store.
    #[test]
    fn cold_then_warm_run_cached_matches_direct_run(pick in 0usize..4096) {
        let specs = registry_specs();
        let spec = specs[pick % specs.len()].clone();
        let scratch = Scratch::new();
        let cache = CacheHandle::open(&scratch.0).expect("temp cache dir opens");

        let direct = spec.run().expect("registry specs are valid");
        let cold = spec.run_cached(&cache).expect("cold cached run succeeds");
        let warm = spec.run_cached(&cache).expect("warm cached run succeeds");

        // Bit-identical means byte-identical serialized rows, not merely
        // equal structs — the committed BENCH_results.json drift gate
        // compares bytes.
        prop_assert_eq!(result_to_json(&cold), result_to_json(&direct));
        prop_assert_eq!(result_to_json(&warm), result_to_json(&direct));
        prop_assert_eq!(cache.stats().misses(), 1, "cold pass simulates once");
        prop_assert_eq!(cache.stats().hits(), 1, "warm pass decodes the store");
    }
}
