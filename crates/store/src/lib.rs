//! Content-addressed on-disk result cache.
//!
//! The store knows nothing about simulations: it maps a 128-bit
//! [`CacheKey`] (a hash of canonical bytes the *caller* produces) to an
//! opaque blob on disk, and keeps a sidecar *cost profile* — a map from
//! caller-chosen labels to observed wall-clock nanoseconds — that the
//! scenario executor uses for longest-expected-first scheduling. The two
//! halves have different lifetimes by design: objects are invalidated by
//! key (bump the engine fingerprint and every key changes), while cost
//! hints survive invalidation because a stale estimate is still a useful
//! schedule.
//!
//! Durability model: `put` writes a temporary file in the same directory
//! and renames it into place, so readers never observe a partially
//! written object and concurrent writers of the same key are safe (the
//! content is identical by construction — the key is the content hash of
//! the inputs). All I/O errors degrade to cache misses; a broken cache
//! directory can slow a run down but never fail or corrupt it.
//!
//! Hit/miss/byte counters are exposed through the workspace telemetry
//! [`Collect`] trait so `asap --cache-stats` reports through the same
//! `MetricSet` machinery as every other stats source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use asap_telemetry::{Collect, MetricSet};

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Hashes `bytes` with 128-bit FNV-1a. Not cryptographic — the cache is
/// a trusted-input content store, and 128 bits makes accidental
/// collisions across a few thousand run specs vanishingly unlikely.
// asap-lint: hot-path
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A content-addressed key: the 128-bit digest of the caller's canonical
/// byte encoding. Rendered as 32 lowercase hex characters on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Digests `bytes` into a key.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        Self(fnv1a_128(bytes))
    }

    /// Wraps a raw digest (for tests and key-composition callers).
    #[must_use]
    pub fn from_raw(raw: u128) -> Self {
        Self(raw)
    }

    /// The raw 128-bit digest.
    #[must_use]
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// The on-disk object name: 32 lowercase hex characters.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// Monotonic hit/miss/byte counters for one [`CacheHandle`], shared
/// across the fan-out threads. Collected as `{prefix}hits_total`,
/// `{prefix}misses_total` and `{prefix}stored_bytes_total`.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stored_bytes: AtomicU64,
}

impl CacheStats {
    /// Lookups served from the store.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a fresh run (absent key or any I/O
    /// error — errors degrade to misses).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Payload bytes written by `put` over this handle's lifetime.
    #[must_use]
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    /// Total lookups (hits + misses).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses()
    }
}

impl Collect for CacheStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        out.counter(
            format!("{prefix}hits_total"),
            "result-cache lookups served from the store",
            self.hits(),
        );
        out.counter(
            format!("{prefix}misses_total"),
            "result-cache lookups that ran fresh",
            self.misses(),
        );
        out.counter(
            format!("{prefix}stored_bytes_total"),
            "payload bytes written to the result cache",
            self.stored_bytes(),
        );
    }
}

/// Observed wall-clock costs, keyed by a caller-chosen stable label
/// (for the simulator: workload + variant + window size). Persisted as a
/// sorted `costs.tsv` sidecar so a later run — even one whose result
/// keys were all invalidated — can still schedule longest-first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostProfile {
    entries: BTreeMap<String, u64>,
}

impl CostProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `nanos` for `label`, keeping the larger of the old and new
    /// observation (costs schedule stragglers, so over-estimates are the
    /// safe direction; a cache-hit "run" must never shrink the estimate).
    pub fn record(&mut self, label: &str, nanos: u64) {
        let slot = self.entries.entry(label.to_string()).or_insert(0);
        *slot = (*slot).max(nanos);
    }

    /// The recorded cost for `label`, if any.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<u64> {
        self.entries.get(label).copied()
    }

    /// Number of labels with a recorded cost.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no costs are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds every entry of `other` into `self` (max-merge).
    pub fn merge(&mut self, other: &CostProfile) {
        for (label, nanos) in &other.entries {
            self.record(label, *nanos);
        }
    }

    /// Parses the `costs.tsv` format: one `nanos<TAB>label` line per
    /// entry. Malformed lines are skipped — the profile is advisory.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut profile = Self::new();
        for line in text.lines() {
            if let Some((nanos, label)) = line.split_once('\t') {
                if let Ok(nanos) = nanos.parse::<u64>() {
                    profile.record(label, nanos);
                }
            }
        }
        profile
    }

    /// Renders the sorted `costs.tsv` text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (label, nanos) in &self.entries {
            out.push_str(&nanos.to_string());
            out.push('\t');
            out.push_str(label);
            out.push('\n');
        }
        out
    }
}

/// A handle to one on-disk cache directory.
///
/// Layout under the root:
///
/// ```text
/// objects/<32-hex-key>   one blob per key (atomic rename on write)
/// costs.tsv              advisory cost profile (sorted, line-oriented)
/// tmp-<pid>-<seq>        in-flight writes, renamed into place
/// ```
#[derive(Debug)]
pub struct CacheHandle {
    root: PathBuf,
    stats: CacheStats,
    tmp_seq: AtomicU64,
}

impl CacheHandle {
    /// Opens (creating if needed) the cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created — the only fatal condition a cache has; everything later
    /// degrades to misses.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = dir.into();
        fs::create_dir_all(root.join("objects"))?;
        Ok(Self {
            root,
            stats: CacheStats::default(),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// This handle's hit/miss/byte counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn object_path(&self, key: &CacheKey) -> PathBuf {
        self.root.join("objects").join(key.hex())
    }

    /// Reads the blob stored under `key`, counting a hit or a miss. Any
    /// read error (absent, unreadable, truncated directory) is a miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Vec<u8>> {
        match fs::read(self.object_path(key)) {
            Ok(bytes) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `bytes` under `key` via write-to-temp + atomic rename.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers are expected to treat a
    /// failed store as "cache disabled for this entry" and carry on.
    pub fn put(&self, key: &CacheKey, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.temp_path();
        fs::write(&tmp, bytes)?;
        let renamed = fs::rename(&tmp, self.object_path(key));
        if renamed.is_err() {
            // Leave nothing behind on failure; removal errors are moot.
            let _ = fs::remove_file(&tmp);
        }
        renamed?;
        self.stats
            .stored_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn temp_path(&self) -> PathBuf {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        self.root.join(format!("tmp-{}-{seq}", std::process::id()))
    }

    fn costs_path(&self) -> PathBuf {
        self.root.join("costs.tsv")
    }

    /// Loads the advisory cost profile (empty when absent or unreadable).
    #[must_use]
    pub fn load_costs(&self) -> CostProfile {
        match fs::read_to_string(self.costs_path()) {
            Ok(text) => CostProfile::parse(&text),
            Err(_) => CostProfile::new(),
        }
    }

    /// Max-merges `observed` into the stored cost profile and atomically
    /// rewrites `costs.tsv`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error from the rewrite; the profile is
    /// advisory, so callers may ignore it.
    pub fn save_costs(&self, observed: &CostProfile) -> std::io::Result<()> {
        let mut merged = self.load_costs();
        merged.merge(observed);
        let tmp = self.temp_path();
        fs::write(&tmp, merged.render())?;
        let renamed = fs::rename(&tmp, self.costs_path());
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A unique scratch directory per test, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "asap-store-test-{}-{tag}-{seq}",
                std::process::id()
            ));
            fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 128: hash of "" is the offset basis.
        assert_eq!(fnv1a_128(b""), FNV_OFFSET);
        // One manual step: h = (basis ^ 'a') * prime.
        let expect = (FNV_OFFSET ^ u128::from(b'a')).wrapping_mul(FNV_PRIME);
        assert_eq!(fnv1a_128(b"a"), expect);
        assert_ne!(fnv1a_128(b"ab"), fnv1a_128(b"ba"), "order matters");
    }

    #[test]
    fn key_hex_is_32_lowercase_chars() {
        let key = CacheKey::from_raw(0xAB);
        assert_eq!(key.hex(), "000000000000000000000000000000ab");
        assert_eq!(CacheKey::of(b"x").hex().len(), 32);
    }

    #[test]
    fn get_put_roundtrip_and_stats() {
        let scratch = Scratch::new("roundtrip");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let key = CacheKey::of(b"spec");
        assert!(cache.get(&key).is_none());
        cache.put(&key, b"payload").unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some(&b"payload"[..]));
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
        assert_eq!(cache.stats().stored_bytes(), 7);
        assert_eq!(cache.stats().lookups(), 2);
        // No stray temp files.
        let stray: Vec<_> = fs::read_dir(&scratch.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("tmp-"))
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
    }

    #[test]
    fn second_handle_sees_stored_objects() {
        let scratch = Scratch::new("reopen");
        let key = CacheKey::of(b"persisted");
        {
            let cache = CacheHandle::open(&scratch.0).unwrap();
            cache.put(&key, b"v1").unwrap();
        }
        let cache = CacheHandle::open(&scratch.0).unwrap();
        assert_eq!(cache.get(&key).as_deref(), Some(&b"v1"[..]));
        assert_eq!(cache.stats().hits(), 1);
    }

    #[test]
    fn cost_profile_parse_render_roundtrip() {
        let mut profile = CostProfile::new();
        profile.record("b label with spaces", 250);
        profile.record("a", 10);
        profile.record("a", 7); // smaller observation never shrinks
        let text = profile.render();
        assert_eq!(text, "10\ta\n250\tb label with spaces\n");
        assert_eq!(CostProfile::parse(&text), profile);
        // Malformed lines are skipped, not fatal.
        let sloppy = CostProfile::parse("garbage\nnot-a-number\tx\n5\tok\n");
        assert_eq!(sloppy.get("ok"), Some(5));
        assert_eq!(sloppy.len(), 1);
    }

    #[test]
    fn save_costs_max_merges_across_handles() {
        let scratch = Scratch::new("costs");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let mut first = CostProfile::new();
        first.record("slow", 100);
        first.record("fast", 5);
        cache.save_costs(&first).unwrap();

        let mut second = CostProfile::new();
        second.record("slow", 40); // stale smaller sample
        second.record("new", 60);
        cache.save_costs(&second).unwrap();

        let loaded = cache.load_costs();
        assert_eq!(loaded.get("slow"), Some(100), "max-merge keeps the peak");
        assert_eq!(loaded.get("fast"), Some(5));
        assert_eq!(loaded.get("new"), Some(60));
    }

    #[test]
    fn collect_exposes_telemetry_counters() {
        let scratch = Scratch::new("collect");
        let cache = CacheHandle::open(&scratch.0).unwrap();
        let key = CacheKey::of(b"k");
        assert!(cache.get(&key).is_none());
        cache.put(&key, b"abc").unwrap();
        assert!(cache.get(&key).is_some());
        let mut set = MetricSet::new();
        cache.stats().collect("cache_", &mut set);
        let value = |name: &str| match set.get(name).map(|m| &m.value) {
            Some(asap_telemetry::MetricValue::Counter(v)) => *v,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(value("cache_hits_total"), 1);
        assert_eq!(value("cache_misses_total"), 1);
        assert_eq!(value("cache_stored_bytes_total"), 3);
    }
}
