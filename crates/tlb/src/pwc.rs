//! Split page-walk caches (paging-structure caches).
//!
//! Modern walkers keep small caches of intermediate radix-tree entries,
//! tagged by virtual-address prefix (§2.1). A hit on the PL2 cache hands the
//! walker the PL1 table's frame directly, skipping the PL4/PL3/PL2 node
//! reads; PL3 and PL4 hits skip proportionally less. The walker consults all
//! three in parallel and resumes from the **longest matching prefix**.
//!
//! Crucially, PWCs cache PL4/PL3/PL2 *entries only* — PL1 leaves go to the
//! TLB. This is why the paper targets PL1/PL2 with prefetches: "the fourth
//! and third PT levels are small and efficiently covered by the Page Walk
//! Caches" (§3.1), while PL1 is never PWC-resident and PL2 often misses.

use crate::PwcConfig;
use asap_cache::{ReplacementKind, SetAssoc};
use asap_types::{Asid, PhysFrameNum, PtLevel, VirtAddr};

/// A page-walk-cache hit: the walker may skip straight to reading the node
/// at `next_level`, whose table page is `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcHit {
    /// The deepest level whose entry was cached (PL2 beats PL3 beats PL4).
    pub hit_level: PtLevel,
    /// The level the walker resumes at (child of `hit_level`).
    pub next_level: PtLevel,
    /// Frame of the table page the walker reads next.
    pub node: PhysFrameNum,
}

/// The split PWC: one structure per cached level.
///
/// # Examples
///
/// ```
/// use asap_tlb::{PageWalkCaches, PwcConfig};
/// use asap_types::{Asid, PhysFrameNum, PtLevel, VirtAddr};
///
/// let mut pwc = PageWalkCaches::new(PwcConfig::split_default(), 0);
/// let va = VirtAddr::new(0x7f00_1234_5000).unwrap();
/// assert!(pwc.lookup(Asid(0), va).is_none());
/// // After a walk, the PL2 entry (pointing at the PL1 table) is cached.
/// pwc.fill(Asid(0), va, PtLevel::Pl2, PhysFrameNum::new(0x88));
/// let hit = pwc.lookup(Asid(0), va).unwrap();
/// assert_eq!(hit.hit_level, PtLevel::Pl2);
/// assert_eq!(hit.next_level, PtLevel::Pl1);
/// assert_eq!(hit.node, PhysFrameNum::new(0x88));
/// ```
#[derive(Debug, Clone)]
pub struct PageWalkCaches {
    /// PL2-entry cache, set-associative.
    pl2: SetAssoc<(Asid, u64), PhysFrameNum>,
    pl2_sets: usize,
    /// PL3-entry cache, fully associative.
    pl3: SetAssoc<(Asid, u64), PhysFrameNum>,
    /// PL4-entry cache, fully associative.
    pl4: SetAssoc<(Asid, u64), PhysFrameNum>,
    latency: u64,
    lookups: u64,
    hits_per_level: [u64; 3], // PL2, PL3, PL4
}

impl PageWalkCaches {
    /// Creates empty PWCs with the given geometry.
    #[must_use]
    pub fn new(config: PwcConfig, seed: u64) -> Self {
        let pl2_sets = (config.pl2_entries / config.pl2_ways).max(1);
        assert!(
            pl2_sets.is_power_of_two(),
            "PL2 PWC set count must be a power of two"
        );
        Self {
            pl2: SetAssoc::new(pl2_sets, config.pl2_ways, ReplacementKind::Lru, seed ^ 2),
            pl2_sets,
            pl3: SetAssoc::new(1, config.pl3_entries, ReplacementKind::Lru, seed ^ 3),
            pl4: SetAssoc::new(1, config.pl4_entries, ReplacementKind::Lru, seed ^ 4),
            latency: config.latency,
            lookups: 0,
            hits_per_level: [0; 3],
        }
    }

    /// Tag for a cached entry at `level`: the VA prefix above the entry's
    /// coverage (works for both 4- and 5-level VAs).
    fn tag(level: PtLevel, va: VirtAddr) -> u64 {
        va.raw() >> level.index_shift()
    }

    /// Looks up all levels in parallel, returning the deepest hit.
    pub fn lookup(&mut self, asid: Asid, va: VirtAddr) -> Option<PwcHit> {
        self.lookups += 1;
        let pl2_tag = Self::tag(PtLevel::Pl2, va);
        let set = (pl2_tag as usize) & (self.pl2_sets - 1);
        if let Some(&node) = self.pl2.lookup(set, &(asid, pl2_tag)) {
            self.hits_per_level[0] += 1;
            return Some(PwcHit {
                hit_level: PtLevel::Pl2,
                next_level: PtLevel::Pl1,
                node,
            });
        }
        if let Some(&node) = self.pl3.lookup(0, &(asid, Self::tag(PtLevel::Pl3, va))) {
            self.hits_per_level[1] += 1;
            return Some(PwcHit {
                hit_level: PtLevel::Pl3,
                next_level: PtLevel::Pl2,
                node,
            });
        }
        if let Some(&node) = self.pl4.lookup(0, &(asid, Self::tag(PtLevel::Pl4, va))) {
            self.hits_per_level[2] += 1;
            return Some(PwcHit {
                hit_level: PtLevel::Pl4,
                next_level: PtLevel::Pl3,
                node,
            });
        }
        None
    }

    /// Installs the entry observed at `level` during a walk: `node` is the
    /// child table frame the entry points to. Only PL2/PL3/PL4 entries are
    /// cacheable; other levels are ignored (PL1 belongs to the TLB, PL5 is
    /// not cached by this three-level split design).
    pub fn fill(&mut self, asid: Asid, va: VirtAddr, level: PtLevel, node: PhysFrameNum) {
        match level {
            PtLevel::Pl2 => {
                let tag = Self::tag(PtLevel::Pl2, va);
                let set = (tag as usize) & (self.pl2_sets - 1);
                self.pl2.insert(set, (asid, tag), node);
            }
            PtLevel::Pl3 => {
                self.pl3
                    .insert(0, (asid, Self::tag(PtLevel::Pl3, va)), node);
            }
            PtLevel::Pl4 => {
                self.pl4
                    .insert(0, (asid, Self::tag(PtLevel::Pl4, va)), node);
            }
            PtLevel::Pl1 | PtLevel::Pl5 => {}
        }
    }

    /// PWC access latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Total lookups performed.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits that resolved at the given level's cache.
    #[must_use]
    pub fn hits_at(&self, level: PtLevel) -> u64 {
        match level {
            PtLevel::Pl2 => self.hits_per_level[0],
            PtLevel::Pl3 => self.hits_per_level[1],
            PtLevel::Pl4 => self.hits_per_level[2],
            _ => 0,
        }
    }

    /// Drops all entries for `asid`.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.pl2.retain(|(a, _), _| *a != asid);
        self.pl3.retain(|(a, _), _| *a != asid);
        self.pl4.retain(|(a, _), _| *a != asid);
    }

    /// Drops everything.
    pub fn flush(&mut self) {
        self.pl2.flush();
        self.pl3.flush();
        self.pl4.flush();
    }

    /// Resets counters (post-warmup).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.hits_per_level = [0; 3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pwc() -> PageWalkCaches {
        PageWalkCaches::new(PwcConfig::split_default(), 0)
    }

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new(raw).unwrap()
    }

    #[test]
    fn deepest_hit_wins() {
        let mut p = pwc();
        let a = va(0x7f00_1234_5000);
        p.fill(Asid(0), a, PtLevel::Pl4, PhysFrameNum::new(3));
        p.fill(Asid(0), a, PtLevel::Pl3, PhysFrameNum::new(2));
        p.fill(Asid(0), a, PtLevel::Pl2, PhysFrameNum::new(1));
        let hit = p.lookup(Asid(0), a).unwrap();
        assert_eq!(hit.hit_level, PtLevel::Pl2);
        assert_eq!(hit.node, PhysFrameNum::new(1));
    }

    #[test]
    fn pl3_hit_when_pl2_misses() {
        let mut p = pwc();
        let a = va(0x7f00_1234_5000);
        p.fill(Asid(0), a, PtLevel::Pl3, PhysFrameNum::new(2));
        // A different 2MiB region under the same 1GiB region: PL2 tag
        // differs, PL3 tag matches.
        let b = va(0x7f00_1254_5000);
        let hit = p.lookup(Asid(0), b).unwrap();
        assert_eq!(hit.hit_level, PtLevel::Pl3);
        assert_eq!(hit.next_level, PtLevel::Pl2);
    }

    #[test]
    fn pl1_fills_are_ignored() {
        let mut p = pwc();
        let a = va(0x1000);
        p.fill(Asid(0), a, PtLevel::Pl1, PhysFrameNum::new(9));
        assert!(p.lookup(Asid(0), a).is_none());
    }

    #[test]
    fn pl4_capacity_is_two() {
        let mut p = pwc();
        // Three distinct 512GiB regions: only two PL4 entries survive.
        let regions = [0u64, 1, 2].map(|i| va(i << 39));
        for (i, r) in regions.iter().enumerate() {
            p.fill(Asid(0), *r, PtLevel::Pl4, PhysFrameNum::new(i as u64));
        }
        let hits = regions
            .iter()
            .filter(|r| p.lookup(Asid(0), **r).is_some())
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn asid_tagging_isolates() {
        let mut p = pwc();
        let a = va(0x4000_0000);
        p.fill(Asid(1), a, PtLevel::Pl2, PhysFrameNum::new(7));
        assert!(p.lookup(Asid(2), a).is_none());
        p.flush_asid(Asid(1));
        assert!(p.lookup(Asid(1), a).is_none());
    }

    #[test]
    fn stats_track_hit_levels() {
        let mut p = pwc();
        let a = va(0x4000_0000);
        p.fill(Asid(0), a, PtLevel::Pl2, PhysFrameNum::new(7));
        let _ = p.lookup(Asid(0), a);
        let _ = p.lookup(Asid(0), va(0x5000_0000)); // miss
        assert_eq!(p.lookups(), 2);
        assert_eq!(p.hits_at(PtLevel::Pl2), 1);
        assert_eq!(p.hits_at(PtLevel::Pl3), 0);
        p.reset_stats();
        assert_eq!(p.lookups(), 0);
    }

    #[test]
    fn five_level_prefixes_do_not_alias() {
        let mut p = pwc();
        // Two VAs identical in bits 0..48 but different at bit 50: their
        // PL4/PL3/PL2 tags must differ (tags keep the full upper VA).
        let a = va(0x1234_5000);
        let b = va((1 << 50) | 0x1234_5000);
        p.fill(Asid(0), a, PtLevel::Pl2, PhysFrameNum::new(1));
        assert!(p.lookup(Asid(0), b).is_none());
    }
}
