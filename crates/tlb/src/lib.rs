//! TLBs and page-walk caches for the ASAP reproduction.
//!
//! Models the full ensemble of translation-caching hardware the paper's
//! baseline relies on (§2.1, Table 5):
//!
//! * [`Tlb`] / [`TlbHierarchy`] — the per-core L1 D-TLB (64 entries, 8-way)
//!   and L2 S-TLB (1536 entries, 6-way), with multi-page-size lookup;
//! * [`PageWalkCaches`] — the split, per-level paging-structure caches
//!   (PL4: 2 entries fully-assoc., PL3: 4 entries fully-assoc., PL2: 32
//!   entries 4-way, 2-cycle access), with longest-prefix skip semantics:
//!   a PL2-entry hit lets the walker go straight to the PL1 node;
//! * [`ClusteredTlb`] — the coalescing TLB of Pham et al. (up to 8 PTEs per
//!   entry) that §5.4.1 evaluates as complementary to ASAP.
//!
//! # Examples
//!
//! ```
//! use asap_tlb::{Tlb, TlbConfig, TlbEntry};
//! use asap_types::{Asid, PageSize, PhysFrameNum, VirtPageNum};
//!
//! let mut tlb = Tlb::new(TlbConfig::l1_dtlb(), 0);
//! let asid = Asid(1);
//! let vpn = VirtPageNum::new(0x1234);
//! assert!(tlb.lookup(asid, vpn).is_none());
//! tlb.insert(asid, vpn, TlbEntry::new(PhysFrameNum::new(7), PageSize::Size4K));
//! assert_eq!(tlb.lookup(asid, vpn).unwrap().frame, PhysFrameNum::new(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustered;
mod config;
mod hierarchy;
mod pwc;
mod stats;
mod tlb;

pub use clustered::{ClusteredTlb, ClusteredTlbConfig, CLUSTER_PAGES};
pub use config::{PwcConfig, TlbConfig};
pub use hierarchy::{TlbHierarchy, TlbLevel, TlbLookup};
pub use pwc::{PageWalkCaches, PwcHit};
pub use stats::TlbStats;
pub use tlb::{Tlb, TlbEntry};
