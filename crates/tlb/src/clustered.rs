//! Clustered TLB (Pham et al., HPCA 2014), evaluated against ASAP in §5.4.1.
//!
//! A clustered TLB coalesces up to [`CLUSTER_PAGES`] translations into one
//! entry when the virtual cluster maps to a *physical cluster*:
//! `pfn(vpn) = pfn_base + (vpn mod 8)` for each covered sub-page. The walker
//! already fetches the PTE cache line — 8 PTEs, exactly one cluster — so the
//! fill logic can compute the conforming sub-page bitmap for free. The paper
//! reproduces Pham's observation that effectiveness tracks the physical
//! contiguity the allocator happens to produce (Table 7), and shows the
//! technique is complementary to ASAP (Fig. 11): clustering removes *short*
//! walks, ASAP shortens the *long* ones.

use crate::TlbStats;
use asap_cache::{ReplacementKind, SetAssoc};
use asap_types::{Asid, PhysFrameNum, VirtPageNum};

/// Pages per cluster (Pham et al.'s "up to 8 PTEs into 1 TLB entry").
pub const CLUSTER_PAGES: u64 = 8;

/// Geometry of the clustered TLB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteredTlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl ClusteredTlbConfig {
    /// The evaluated configuration: 512 entries, 4-way — giving the same
    /// nominal reach as a 4096-entry conventional TLB when fully clustered.
    #[must_use]
    pub fn default_eval() -> Self {
        Self {
            entries: 512,
            ways: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClusterEntry {
    /// Frame of sub-page 0, i.e. `pfn(vpn) = base_frame + (vpn & 7)` for
    /// valid sub-pages.
    base_frame: u64,
    /// Bit *i* set = sub-page *i* conforms and is covered.
    valid: u8,
}

/// The clustered TLB structure.
///
/// # Examples
///
/// ```
/// use asap_tlb::{ClusteredTlb, ClusteredTlbConfig, CLUSTER_PAGES};
/// use asap_types::{Asid, PhysFrameNum, VirtPageNum};
///
/// let mut ct = ClusteredTlb::new(ClusteredTlbConfig::default_eval(), 0);
/// // A fully contiguous cluster: vpn 8..16 -> pfn 100..108.
/// let pfns: Vec<Option<PhysFrameNum>> =
///     (0..CLUSTER_PAGES).map(|i| Some(PhysFrameNum::new(100 + i))).collect();
/// ct.fill_cluster(Asid(0), VirtPageNum::new(8), &pfns);
/// // One entry now serves all eight pages.
/// assert_eq!(ct.lookup(Asid(0), VirtPageNum::new(13)),
///            Some(PhysFrameNum::new(105)));
/// ```
#[derive(Debug, Clone)]
pub struct ClusteredTlb {
    array: SetAssoc<(Asid, u64), ClusterEntry>,
    num_sets: usize,
    stats: TlbStats,
    coalesced_fills: u64,
}

impl ClusteredTlb {
    /// Creates an empty clustered TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    #[must_use]
    pub fn new(config: ClusteredTlbConfig, seed: u64) -> Self {
        let num_sets = config.entries / config.ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            array: SetAssoc::new(num_sets, config.ways, ReplacementKind::Lru, seed),
            num_sets,
            stats: TlbStats::default(),
            coalesced_fills: 0,
        }
    }

    fn cluster_of(vpn: VirtPageNum) -> u64 {
        vpn.raw() / CLUSTER_PAGES
    }

    fn set_for(&self, cluster: u64) -> usize {
        (cluster as usize) & (self.num_sets - 1)
    }

    /// Looks up the translation for `vpn`.
    pub fn lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let cluster = Self::cluster_of(vpn);
        let set = self.set_for(cluster);
        let sub = (vpn.raw() % CLUSTER_PAGES) as u8;
        let hit = self
            .array
            .lookup(set, &(asid, cluster))
            .filter(|e| e.valid & (1 << sub) != 0)
            .map(|e| PhysFrameNum::new(e.base_frame + u64::from(sub)));
        if hit.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Fills from a walk of the page containing `vpn`.
    ///
    /// `cluster_pfns` holds the 8 translations of the aligned cluster
    /// containing `vpn` (index = sub-page number), `None` for unmapped
    /// pages — exactly the contents of the PTE cache line the walker just
    /// fetched. Sub-pages conforming to the anchor's cluster pattern are
    /// coalesced into the entry; at minimum the anchor page itself is
    /// covered.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_pfns.len() != 8` or the anchor sub-page is `None`.
    pub fn fill_cluster(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
        cluster_pfns: &[Option<PhysFrameNum>],
    ) {
        assert_eq!(
            cluster_pfns.len(),
            CLUSTER_PAGES as usize,
            "cluster fill needs exactly 8 sub-page translations"
        );
        let sub = (vpn.raw() % CLUSTER_PAGES) as usize;
        let anchor_pfn = cluster_pfns[sub].expect("anchor page must be mapped");
        // base such that pfn(sub) = base + sub.
        let Some(base) = anchor_pfn.raw().checked_sub(sub as u64) else {
            // Anchor maps below its own sub-index: the cluster pattern is
            // unrepresentable. The conventional TLB (which always receives
            // the translation too) covers this page; install nothing here.
            return;
        };
        let mut valid = 0u8;
        let mut covered = 0u32;
        for (i, pfn) in cluster_pfns.iter().enumerate() {
            if let Some(p) = pfn {
                if p.raw() == base + i as u64 {
                    valid |= 1 << i;
                    covered += 1;
                }
            }
        }
        debug_assert!(valid & (1 << sub) != 0);
        if covered > 1 {
            self.coalesced_fills += 1;
        }
        self.insert_entry(
            asid,
            Self::cluster_of(vpn),
            ClusterEntry {
                base_frame: base,
                valid,
            },
            sub as u8,
        );
    }

    fn insert_entry(&mut self, asid: Asid, cluster: u64, entry: ClusterEntry, _anchor: u8) {
        let set = self.set_for(cluster);
        self.stats.fills += 1;
        if self.array.insert(set, (asid, cluster), entry).is_some() {
            self.stats.evictions += 1;
        }
    }

    /// Statistics (hits/misses/fills).
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Fills that coalesced more than one sub-page.
    #[must_use]
    pub fn coalesced_fills(&self) -> u64 {
        self.coalesced_fills
    }

    /// Resets counters (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
        self.coalesced_fills = 0;
    }

    /// Drops everything.
    pub fn flush(&mut self) {
        self.array.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ct() -> ClusteredTlb {
        ClusteredTlb::new(ClusteredTlbConfig::default_eval(), 0)
    }

    fn contiguous_cluster(base: u64) -> Vec<Option<PhysFrameNum>> {
        (0..CLUSTER_PAGES)
            .map(|i| Some(PhysFrameNum::new(base + i)))
            .collect()
    }

    #[test]
    fn contiguous_cluster_covers_all_eight() {
        let mut t = ct();
        t.fill_cluster(Asid(0), VirtPageNum::new(16), &contiguous_cluster(200));
        for i in 0..CLUSTER_PAGES {
            assert_eq!(
                t.lookup(Asid(0), VirtPageNum::new(16 + i)),
                Some(PhysFrameNum::new(200 + i)),
                "sub-page {i}"
            );
        }
        assert_eq!(t.coalesced_fills(), 1);
    }

    #[test]
    fn scattered_cluster_covers_only_anchor() {
        let mut t = ct();
        // Random PFNs: only the anchor (sub 3) conforms to its own pattern.
        let pfns: Vec<Option<PhysFrameNum>> = [900u64, 17, 5000, 203, 44, 8, 77, 123]
            .iter()
            .map(|&p| Some(PhysFrameNum::new(p)))
            .collect();
        t.fill_cluster(Asid(0), VirtPageNum::new(8 + 3), &pfns);
        assert_eq!(
            t.lookup(Asid(0), VirtPageNum::new(8 + 3)),
            Some(PhysFrameNum::new(203))
        );
        // Neighbour in the same cluster: miss (its PFN does not conform).
        assert_eq!(t.lookup(Asid(0), VirtPageNum::new(8 + 4)), None);
    }

    #[test]
    fn partially_contiguous_cluster() {
        let mut t = ct();
        // Sub-pages 0..4 contiguous from 100; 4..8 from somewhere else.
        let mut pfns = contiguous_cluster(100);
        for (i, p) in pfns.iter_mut().enumerate().skip(4) {
            *p = Some(PhysFrameNum::new(7000 + 2 * i as u64));
        }
        t.fill_cluster(Asid(0), VirtPageNum::new(0), &pfns);
        for i in 0..4u64 {
            assert!(t.lookup(Asid(0), VirtPageNum::new(i)).is_some());
        }
        for i in 4..8u64 {
            assert!(t.lookup(Asid(0), VirtPageNum::new(i)).is_none());
        }
    }

    #[test]
    fn unmapped_neighbours_are_not_covered() {
        let mut t = ct();
        let mut pfns = contiguous_cluster(300);
        pfns[2] = None;
        pfns[7] = None;
        t.fill_cluster(Asid(0), VirtPageNum::new(40), &pfns);
        assert!(t.lookup(Asid(0), VirtPageNum::new(42)).is_none());
        assert!(t.lookup(Asid(0), VirtPageNum::new(47)).is_none());
        assert!(t.lookup(Asid(0), VirtPageNum::new(41)).is_some());
    }

    #[test]
    fn unrepresentable_anchor_installs_nothing() {
        let mut t = ct();
        // Anchor sub 5 maps to PFN 2 (< 5): cluster pattern impossible, so
        // no entry may be installed (a wrong base would corrupt neighbours).
        let mut pfns: Vec<Option<PhysFrameNum>> = vec![None; 8];
        pfns[5] = Some(PhysFrameNum::new(2));
        t.fill_cluster(Asid(0), VirtPageNum::new(5), &pfns);
        assert_eq!(t.lookup(Asid(0), VirtPageNum::new(5)), None);
        assert_eq!(t.stats().fills, 0);
    }

    #[test]
    fn refill_updates_entry() {
        let mut t = ct();
        t.fill_cluster(Asid(0), VirtPageNum::new(0), &contiguous_cluster(100));
        // Remap: a later walk observes different PFNs for the same cluster.
        t.fill_cluster(Asid(0), VirtPageNum::new(0), &contiguous_cluster(500));
        assert_eq!(
            t.lookup(Asid(0), VirtPageNum::new(3)),
            Some(PhysFrameNum::new(503))
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut t = ct();
        let _ = t.lookup(Asid(0), VirtPageNum::new(1)); // miss
        t.fill_cluster(Asid(0), VirtPageNum::new(0), &contiguous_cluster(100));
        let _ = t.lookup(Asid(0), VirtPageNum::new(1)); // hit
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
        assert_eq!(t.stats().fills, 1);
    }
}
