//! TLB statistics.

use asap_telemetry::{Collect, MetricSet};

/// Hit/miss/fill counters for one TLB structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries installed.
    pub fills: u64,
    /// Entries evicted by fills.
    pub evictions: u64,
}

impl TlbStats {
    /// Total lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; zero with no accesses.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Misses per kilo-instruction given an instruction count.
    #[must_use]
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }
}

impl Collect for TlbStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        out.counter(format!("{prefix}hits_total"), "lookups that hit", self.hits);
        out.counter(
            format!("{prefix}misses_total"),
            "lookups that missed",
            self.misses,
        );
        out.counter(
            format!("{prefix}fills_total"),
            "entries installed",
            self.fills,
        );
        out.counter(
            format!("{prefix}evictions_total"),
            "entries evicted by fills",
            self.evictions,
        );
        out.gauge(
            format!("{prefix}miss_ratio"),
            "miss ratio",
            self.miss_ratio(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_mpki() {
        let s = TlbStats {
            hits: 900,
            misses: 100,
            fills: 100,
            evictions: 36,
        };
        assert_eq!(s.accesses(), 1000);
        assert!((s.miss_ratio() - 0.1).abs() < 1e-12);
        assert!((s.mpki(10_000) - 10.0).abs() < 1e-12);
        assert_eq!(TlbStats::default().miss_ratio(), 0.0);
        assert_eq!(TlbStats::default().mpki(0), 0.0);
    }
}
