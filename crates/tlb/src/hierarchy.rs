//! The two-level TLB hierarchy (L1 D-TLB backed by the L2 S-TLB).

use crate::{Tlb, TlbConfig, TlbEntry, TlbStats};
use asap_types::{Asid, VirtPageNum};

/// Which TLB level served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// Hit in the L1 D-TLB.
    L1,
    /// Hit in the L2 S-TLB (entry promoted to L1).
    L2,
}

/// Result of a hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLookup {
    /// The translation was cached.
    Hit {
        /// The cached translation.
        entry: TlbEntry,
        /// The level that provided it.
        level: TlbLevel,
    },
    /// Both levels missed: a page walk is required. This is the event that
    /// triggers both the hardware walker and the ASAP prefetcher (Fig. 6).
    Miss,
}

impl TlbLookup {
    /// The entry if this is a hit.
    #[must_use]
    pub fn entry(&self) -> Option<TlbEntry> {
        match self {
            TlbLookup::Hit { entry, .. } => Some(*entry),
            TlbLookup::Miss => None,
        }
    }

    /// Whether this is a miss.
    #[must_use]
    pub fn is_miss(&self) -> bool {
        matches!(self, TlbLookup::Miss)
    }
}

/// L1 + L2 TLBs with inclusive fill and L2-to-L1 promotion.
///
/// # Examples
///
/// ```
/// use asap_tlb::{TlbEntry, TlbHierarchy, TlbLevel, TlbLookup};
/// use asap_types::{Asid, PageSize, PhysFrameNum, VirtPageNum};
///
/// let mut tlbs = TlbHierarchy::with_table5_defaults(0);
/// let (asid, vpn) = (Asid(0), VirtPageNum::new(42));
/// assert!(tlbs.lookup(asid, vpn).is_miss());
/// tlbs.fill(asid, vpn, TlbEntry::new(PhysFrameNum::new(7), PageSize::Size4K));
/// match tlbs.lookup(asid, vpn) {
///     TlbLookup::Hit { level: TlbLevel::L1, .. } => {}
///     other => panic!("expected L1 hit, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
}

impl TlbHierarchy {
    /// Builds the hierarchy from explicit configs.
    #[must_use]
    pub fn new(l1: TlbConfig, l2: TlbConfig, seed: u64) -> Self {
        Self {
            l1: Tlb::new(l1, seed ^ 0x11),
            l2: Tlb::new(l2, seed ^ 0x22),
        }
    }

    /// The paper's Table 5 configuration: 64-entry/8-way L1, 1536-entry/
    /// 6-way L2.
    #[must_use]
    pub fn with_table5_defaults(seed: u64) -> Self {
        Self::new(TlbConfig::l1_dtlb(), TlbConfig::l2_stlb(), seed)
    }

    /// Looks up `vpn`, promoting L2 hits into L1.
    pub fn lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> TlbLookup {
        if let Some(entry) = self.l1.lookup(asid, vpn) {
            return TlbLookup::Hit {
                entry,
                level: TlbLevel::L1,
            };
        }
        if let Some(entry) = self.l2.lookup(asid, vpn) {
            self.l1.insert(asid, vpn, entry);
            return TlbLookup::Hit {
                entry,
                level: TlbLevel::L2,
            };
        }
        TlbLookup::Miss
    }

    /// Installs a walked translation into both levels.
    pub fn fill(&mut self, asid: Asid, vpn: VirtPageNum, entry: TlbEntry) {
        self.l1.insert(asid, vpn, entry);
        self.l2.insert(asid, vpn, entry);
    }

    /// Installs a walked translation into both levels, returning the entry
    /// the L2 S-TLB displaced (if any) — the capture point for backends
    /// that give evicted translations a second life (Victima-style
    /// TLB blocks in the data cache).
    pub fn fill_with_victim(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
        entry: TlbEntry,
    ) -> Option<(Asid, VirtPageNum, TlbEntry)> {
        self.l1.insert(asid, vpn, entry);
        self.l2.insert_with_victim(asid, vpn, entry)
    }

    /// Invalidates one page everywhere.
    pub fn invalidate(&mut self, asid: Asid, vpn: VirtPageNum) {
        self.l1.invalidate(asid, vpn);
        self.l2.invalidate(asid, vpn);
    }

    /// Per-ASID shootdown.
    pub fn flush_asid(&mut self, asid: Asid) {
        self.l1.flush_asid(asid);
        self.l2.flush_asid(asid);
    }

    /// Full flush.
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> &TlbStats {
        self.l1.stats()
    }

    /// L2 statistics. The paper's "L2 TLB miss ratio" (§4) and the MPKI of
    /// Table 7 are computed from these.
    #[must_use]
    pub fn l2_stats(&self) -> &TlbStats {
        self.l2.stats()
    }

    /// Resets both levels' statistics (post-warmup).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_types::{PageSize, PhysFrameNum};

    fn entry(n: u64) -> TlbEntry {
        TlbEntry::new(PhysFrameNum::new(n), PageSize::Size4K)
    }

    #[test]
    fn l2_hit_promotes_to_l1() {
        let mut h = TlbHierarchy::with_table5_defaults(0);
        let (asid, vpn) = (Asid(0), VirtPageNum::new(7));
        h.fill(asid, vpn, entry(1));
        // Evict from L1 only: flood its set with conflicting 4K pages.
        // L1 has 8 sets; VPNs congruent mod 8 conflict.
        for i in 1..=8u64 {
            h.l1.insert(asid, VirtPageNum::new(7 + i * 8), entry(100 + i));
        }
        assert!(h.l1.probe(asid, vpn).is_none(), "evicted from L1");
        match h.lookup(asid, vpn) {
            TlbLookup::Hit {
                level: TlbLevel::L2,
                ..
            } => {}
            other => panic!("expected L2 hit, got {other:?}"),
        }
        // Promotion: next lookup is an L1 hit.
        match h.lookup(asid, vpn) {
            TlbLookup::Hit {
                level: TlbLevel::L1,
                ..
            } => {}
            other => panic!("expected L1 hit after promotion, got {other:?}"),
        }
    }

    #[test]
    fn miss_counts_both_levels() {
        let mut h = TlbHierarchy::with_table5_defaults(0);
        assert!(h.lookup(Asid(0), VirtPageNum::new(1)).is_miss());
        assert_eq!(h.l1_stats().misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
    }

    #[test]
    fn invalidate_hits_both_levels() {
        let mut h = TlbHierarchy::with_table5_defaults(0);
        let (asid, vpn) = (Asid(3), VirtPageNum::new(55));
        h.fill(asid, vpn, entry(9));
        h.invalidate(asid, vpn);
        assert!(h.lookup(asid, vpn).is_miss());
    }

    #[test]
    fn flush_asid_leaves_others() {
        let mut h = TlbHierarchy::with_table5_defaults(0);
        h.fill(Asid(1), VirtPageNum::new(1), entry(1));
        h.fill(Asid(2), VirtPageNum::new(2), entry(2));
        h.flush_asid(Asid(1));
        assert!(h.lookup(Asid(1), VirtPageNum::new(1)).is_miss());
        assert!(!h.lookup(Asid(2), VirtPageNum::new(2)).is_miss());
    }

    #[test]
    fn lookup_entry_accessor() {
        let mut h = TlbHierarchy::with_table5_defaults(0);
        assert_eq!(h.lookup(Asid(0), VirtPageNum::new(9)).entry(), None);
        h.fill(Asid(0), VirtPageNum::new(9), entry(4));
        assert_eq!(
            h.lookup(Asid(0), VirtPageNum::new(9)).entry(),
            Some(entry(4))
        );
    }
}
