//! A single TLB structure with multi-page-size support.

use crate::{TlbConfig, TlbStats};
use asap_cache::SetAssoc;
use asap_types::{Asid, PageSize, PhysFrameNum, VirtAddr, VirtPageNum};

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Base frame of the mapped page (aligned to `size`).
    pub frame: PhysFrameNum,
    /// Page size of the mapping.
    pub size: PageSize,
}

impl TlbEntry {
    /// Creates an entry.
    #[must_use]
    pub fn new(frame: PhysFrameNum, size: PageSize) -> Self {
        Self { frame, size }
    }

    /// The physical address for `va` under this entry.
    #[must_use]
    pub fn phys_addr(&self, va: VirtAddr) -> asap_types::PhysAddr {
        let mask = self.size.bytes() - 1;
        asap_types::PhysAddr::new(self.frame.base_addr().raw() | (va.raw() & mask))
    }
}

/// A set-associative TLB tagged by `(Asid, page-base VPN)`.
///
/// Mappings of every size share the structure; a lookup probes the 4 KiB,
/// 2 MiB and 1 GiB tags in turn (the paper notes this very cost in §2.5:
/// "because the size of the page ... is unknown before a TLB look-up, all
/// of the TLB structures need to be checked").
#[derive(Debug, Clone)]
pub struct Tlb {
    array: SetAssoc<(Asid, u64), TlbEntry>,
    num_sets: usize,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    #[must_use]
    pub fn new(config: TlbConfig, seed: u64) -> Self {
        let num_sets = config.num_sets();
        Self {
            array: SetAssoc::new(num_sets, config.ways, config.replacement, seed),
            num_sets,
            stats: TlbStats::default(),
        }
    }

    /// The tag for a page of `size` containing `vpn`: the page-base VPN with
    /// the size encoded in the low bits' alignment.
    fn tag_for(vpn: VirtPageNum, size: PageSize) -> u64 {
        let span = size.base_pages();
        vpn.raw() & !(span - 1)
    }

    /// Set index: large pages are indexed by their size-class page number,
    /// not the raw (alignment-padded) tag — otherwise every 2 MiB page would
    /// land in set 0.
    fn set_for(&self, tag: u64, size: PageSize) -> usize {
        let idx = tag >> (size.shift() - PageSize::Size4K.shift());
        (idx as usize) & (self.num_sets - 1)
    }

    /// Looks up the translation covering `vpn`, probing each page size.
    pub fn lookup(&mut self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            let tag = Self::tag_for(vpn, size);
            let set = self.set_for(tag, size);
            if let Some(e) = self.array.lookup(set, &(asid, tag)) {
                if e.size == size {
                    let hit = *e;
                    self.stats.hits += 1;
                    return Some(hit);
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Probes without updating recency or stats.
    #[must_use]
    pub fn probe(&self, asid: Asid, vpn: VirtPageNum) -> Option<TlbEntry> {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            let tag = Self::tag_for(vpn, size);
            let set = self.set_for(tag, size);
            if let Some(e) = self.array.probe(set, &(asid, tag)) {
                if e.size == size {
                    return Some(*e);
                }
            }
        }
        None
    }

    /// Installs a translation for the page containing `vpn`.
    pub fn insert(&mut self, asid: Asid, vpn: VirtPageNum, entry: TlbEntry) {
        let _ = self.insert_with_victim(asid, vpn, entry);
    }

    /// Installs a translation and returns the entry it displaced, if any —
    /// the hook a victim-caching backend (e.g. a Victima-style TLB-block
    /// store) uses to capture evictions. The victim's page-base VPN is
    /// reconstructed from its tag.
    pub fn insert_with_victim(
        &mut self,
        asid: Asid,
        vpn: VirtPageNum,
        entry: TlbEntry,
    ) -> Option<(Asid, VirtPageNum, TlbEntry)> {
        let tag = Self::tag_for(vpn, entry.size);
        let set = self.set_for(tag, entry.size);
        self.stats.fills += 1;
        let evicted = self.array.insert(set, (asid, tag), entry);
        evicted.map(|ev| {
            self.stats.evictions += 1;
            let (victim_asid, victim_tag) = ev.key;
            (victim_asid, VirtPageNum::new(victim_tag), ev.value)
        })
    }

    /// Invalidates the entry covering `vpn` (any page size).
    pub fn invalidate(&mut self, asid: Asid, vpn: VirtPageNum) {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            let tag = Self::tag_for(vpn, size);
            let set = self.set_for(tag, size);
            self.array.invalidate(set, &(asid, tag));
        }
    }

    /// Drops every entry belonging to `asid` (full per-process shootdown).
    pub fn flush_asid(&mut self, asid: Asid) {
        self.array.retain(|(a, _), _| *a != asid);
    }

    /// Drops everything.
    pub fn flush(&mut self) {
        self.array.flush();
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Resets statistics without touching contents (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Number of valid entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the TLB holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::l1_dtlb(), 0)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        let vpn = VirtPageNum::new(100);
        assert!(t.lookup(Asid(0), vpn).is_none());
        t.insert(
            Asid(0),
            vpn,
            TlbEntry::new(PhysFrameNum::new(5), PageSize::Size4K),
        );
        assert_eq!(t.lookup(Asid(0), vpn).unwrap().frame, PhysFrameNum::new(5));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn asids_are_isolated() {
        let mut t = tlb();
        let vpn = VirtPageNum::new(100);
        t.insert(
            Asid(0),
            vpn,
            TlbEntry::new(PhysFrameNum::new(5), PageSize::Size4K),
        );
        assert!(t.lookup(Asid(1), vpn).is_none());
        t.flush_asid(Asid(0));
        assert!(t.lookup(Asid(0), vpn).is_none());
    }

    #[test]
    fn large_page_entry_covers_whole_page() {
        let mut t = tlb();
        // A 2 MiB page at VPN 0x400 (2MiB-aligned).
        let base = VirtPageNum::new(0x400);
        t.insert(
            Asid(0),
            base,
            TlbEntry::new(PhysFrameNum::new(0x200), PageSize::Size2M),
        );
        // Any of the 512 constituent 4 KiB VPNs hits.
        for off in [0u64, 1, 255, 511] {
            let e = t
                .lookup(Asid(0), base.add(off))
                .expect("covered by 2MiB entry");
            assert_eq!(e.size, PageSize::Size2M);
        }
        assert!(t.lookup(Asid(0), base.add(512)).is_none());
    }

    #[test]
    fn phys_addr_through_large_entry() {
        let e = TlbEntry::new(PhysFrameNum::new(0x200), PageSize::Size2M);
        let va = VirtAddr::new((0x400 << 12) + 0x12_3456).unwrap();
        assert_eq!(e.phys_addr(va).raw(), (0x200 << 12) + 0x12_3456);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = tlb(); // 64 entries
        for i in 0..65u64 {
            t.insert(
                Asid(0),
                VirtPageNum::new(i),
                TlbEntry::new(PhysFrameNum::new(i), PageSize::Size4K),
            );
        }
        assert_eq!(t.len(), 64);
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn invalidate_single_page() {
        let mut t = tlb();
        let vpn = VirtPageNum::new(9);
        t.insert(
            Asid(0),
            vpn,
            TlbEntry::new(PhysFrameNum::new(1), PageSize::Size4K),
        );
        t.invalidate(Asid(0), vpn);
        assert!(t.probe(Asid(0), vpn).is_none());
    }

    #[test]
    fn probe_leaves_stats_alone() {
        let mut t = tlb();
        let vpn = VirtPageNum::new(3);
        t.insert(
            Asid(0),
            vpn,
            TlbEntry::new(PhysFrameNum::new(1), PageSize::Size4K),
        );
        let _ = t.probe(Asid(0), vpn);
        let _ = t.probe(Asid(0), VirtPageNum::new(4));
        assert_eq!(t.stats().hits + t.stats().misses, 0);
    }
}
