//! TLB and page-walk-cache configurations (paper Table 5).

use asap_cache::ReplacementKind;

/// Geometry of one TLB structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfig {
    /// Name used in reports.
    pub name: &'static str,
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl TlbConfig {
    /// The paper's L1 D-TLB: 64 entries, 8-way (Table 5).
    #[must_use]
    pub fn l1_dtlb() -> Self {
        Self {
            name: "L1 D-TLB",
            entries: 64,
            ways: 8,
            replacement: ReplacementKind::Lru,
        }
    }

    /// The paper's L2 S-TLB: 1536 entries, 6-way (Table 5).
    #[must_use]
    pub fn l2_stlb() -> Self {
        Self {
            name: "L2 S-TLB",
            entries: 1536,
            ways: 6,
            replacement: ReplacementKind::Lru,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if entries is not divisible by ways or sets is not a power of
    /// two (required by the index function).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let sets = self.entries / self.ways;
        assert_eq!(
            sets * self.ways,
            self.entries,
            "{}: entries/ways mismatch",
            self.name
        );
        assert!(
            sets.is_power_of_two(),
            "{}: set count must be a power of two",
            self.name
        );
        sets
    }
}

/// Geometry of the split page-walk caches (Table 5: "3-level Split PWC:
/// 2 cycles, PL4 - 2 entries, fully assoc.; PL3 - 4 entries, fully assoc.;
/// PL2 - 32 entries, 4-way assoc.").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PwcConfig {
    /// Entries in the PL4 (PML4E) cache, fully associative.
    pub pl4_entries: usize,
    /// Entries in the PL3 (PDPTE) cache, fully associative.
    pub pl3_entries: usize,
    /// Entries in the PL2 (PDE) cache.
    pub pl2_entries: usize,
    /// Associativity of the PL2 cache.
    pub pl2_ways: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl PwcConfig {
    /// The paper's default split PWC.
    #[must_use]
    pub fn split_default() -> Self {
        Self {
            pl4_entries: 2,
            pl3_entries: 4,
            pl2_entries: 32,
            pl2_ways: 4,
            latency: 2,
        }
    }

    /// The doubled-capacity variant used for the §5.1.1 sensitivity claim
    /// ("doubling the capacity of each PWC ... provides a negligible page
    /// walk latency reduction").
    #[must_use]
    pub fn split_doubled() -> Self {
        Self {
            pl4_entries: 4,
            pl3_entries: 8,
            pl2_entries: 64,
            pl2_ways: 4,
            latency: 2,
        }
    }
}

impl Default for PwcConfig {
    fn default() -> Self {
        Self::split_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_geometries() {
        let l1 = TlbConfig::l1_dtlb();
        assert_eq!((l1.entries, l1.ways, l1.num_sets()), (64, 8, 8));
        let l2 = TlbConfig::l2_stlb();
        assert_eq!((l2.entries, l2.ways, l2.num_sets()), (1536, 6, 256));
        let pwc = PwcConfig::split_default();
        assert_eq!(pwc.pl4_entries, 2);
        assert_eq!(pwc.pl3_entries, 4);
        assert_eq!(pwc.pl2_entries, 32);
        assert_eq!(pwc.latency, 2);
    }

    #[test]
    fn doubled_pwc_doubles() {
        let a = PwcConfig::split_default();
        let b = PwcConfig::split_doubled();
        assert_eq!(b.pl4_entries, 2 * a.pl4_entries);
        assert_eq!(b.pl3_entries, 2 * a.pl3_entries);
        assert_eq!(b.pl2_entries, 2 * a.pl2_entries);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let c = TlbConfig {
            name: "bad",
            entries: 96,
            ways: 8, // 12 sets: not a power of two
            replacement: ReplacementKind::Lru,
        };
        let _ = c.num_sets();
    }
}
