//! Virtual memory areas and the per-process VMA tree.

use crate::OsError;
use asap_types::{ByteSize, VirtAddr, PAGE_SIZE};
use std::collections::BTreeMap;

/// Identifier of a VMA within one process (stable across tree mutations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmaId(pub u32);

/// The role a VMA plays in the process — mirrors the segments the paper
/// discusses (§3.2): big heap/mmap data regions versus small, hot stack and
/// library mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Program text.
    Text,
    /// A dynamically-linked library mapping.
    Library,
    /// The heap (grows upward via `brk`).
    Heap,
    /// An anonymous or file-backed `mmap` region (dataset storage).
    Mmap,
    /// The stack.
    Stack,
}

impl core::fmt::Display for VmaKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmaKind::Text => f.write_str("text"),
            VmaKind::Library => f.write_str("lib"),
            VmaKind::Heap => f.write_str("heap"),
            VmaKind::Mmap => f.write_str("mmap"),
            VmaKind::Stack => f.write_str("stack"),
        }
    }
}

/// One contiguous virtual address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    id: VmaId,
    start: VirtAddr,
    end: VirtAddr,
    kind: VmaKind,
}

impl Vma {
    /// The VMA's id.
    #[must_use]
    pub fn id(&self) -> VmaId {
        self.id
    }

    /// First address of the range.
    #[must_use]
    pub fn start(&self) -> VirtAddr {
        self.start
    }

    /// One past the last address of the range.
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.end
    }

    /// The VMA's role.
    #[must_use]
    pub fn kind(&self) -> VmaKind {
        self.kind
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `va` falls inside the range.
    #[must_use]
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }

    /// Number of 4 KiB pages covered.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.len() / PAGE_SIZE
    }
}

impl core::fmt::Display for Vma {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "vma{}[{}..{}, {}, {}]",
            self.id.0,
            self.start,
            self.end,
            self.kind,
            ByteSize(self.len())
        )
    }
}

/// The process' set of non-overlapping VMAs, keyed by start address — the
/// role Linux's VMA tree plays (§3.2).
#[derive(Debug, Clone, Default)]
pub struct VmaTree {
    by_start: BTreeMap<u64, Vma>,
    next_id: u32,
}

impl VmaTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `[start, end)` of `kind`, rejecting overlap and misalignment.
    ///
    /// # Errors
    ///
    /// [`OsError::Overlap`] if the range intersects an existing VMA;
    /// [`OsError::Misaligned`] if either bound is not page-aligned;
    /// [`OsError::EmptyRange`] if `start >= end`.
    pub fn insert(
        &mut self,
        start: VirtAddr,
        end: VirtAddr,
        kind: VmaKind,
    ) -> Result<VmaId, OsError> {
        if start >= end {
            return Err(OsError::EmptyRange);
        }
        if !start.is_aligned(PAGE_SIZE) || !end.is_aligned(PAGE_SIZE) {
            return Err(OsError::Misaligned);
        }
        if self.overlaps(start, end) {
            return Err(OsError::Overlap);
        }
        let id = VmaId(self.next_id);
        self.next_id += 1;
        self.by_start.insert(
            start.raw(),
            Vma {
                id,
                start,
                end,
                kind,
            },
        );
        Ok(id)
    }

    fn overlaps(&self, start: VirtAddr, end: VirtAddr) -> bool {
        // A candidate overlaps if the VMA at-or-before `end` ends after
        // `start`.
        self.by_start
            .range(..end.raw())
            .next_back()
            .is_some_and(|(_, vma)| vma.end > start)
    }

    /// The VMA containing `va`, if any.
    #[must_use]
    pub fn find(&self, va: VirtAddr) -> Option<&Vma> {
        self.by_start
            .range(..=va.raw())
            .next_back()
            .map(|(_, vma)| vma)
            .filter(|vma| vma.contains(va))
    }

    /// The VMA with the given id.
    #[must_use]
    pub fn get(&self, id: VmaId) -> Option<&Vma> {
        self.iter().find(|vma| vma.id() == id)
    }

    /// Removes the VMA containing `va`, returning it.
    pub fn remove(&mut self, va: VirtAddr) -> Option<Vma> {
        let start = self.find(va)?.start.raw();
        self.by_start.remove(&start)
    }

    /// Grows the VMA with id `id` to `new_end` (heap growth via `brk`,
    /// §3.7.2: segments grow "in a pre-determined direction").
    ///
    /// # Errors
    ///
    /// [`OsError::UnknownVma`] if `id` is absent; [`OsError::Overlap`] if
    /// growth would collide with the next VMA; [`OsError::Misaligned`] /
    /// [`OsError::EmptyRange`] for bad bounds.
    pub fn grow(&mut self, id: VmaId, new_end: VirtAddr) -> Result<(), OsError> {
        if !new_end.is_aligned(PAGE_SIZE) {
            return Err(OsError::Misaligned);
        }
        let start = self
            .iter()
            .find(|vma| vma.id() == id)
            .map(|vma| vma.start.raw())
            .ok_or(OsError::UnknownVma)?;
        let vma = self.by_start[&start];
        if new_end <= vma.end {
            return Err(OsError::EmptyRange);
        }
        // Collision with the next VMA?
        if let Some((_, next)) = self.by_start.range(start + 1..).next() {
            if next.start < new_end {
                return Err(OsError::Overlap);
            }
        }
        self.by_start.get_mut(&start).expect("present").end = new_end;
        Ok(())
    }

    /// Iterates VMAs in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.by_start.values()
    }

    /// Number of VMAs (Table 2, "Total VMAs").
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Total bytes covered by all VMAs.
    #[must_use]
    pub fn footprint(&self) -> ByteSize {
        ByteSize(self.iter().map(Vma::len).sum())
    }

    /// The smallest number of VMAs whose combined size reaches `fraction`
    /// of the footprint (Table 2, "VMAs for 99% footprint coverage").
    #[must_use]
    pub fn vmas_covering(&self, fraction: f64) -> usize {
        let total = self.footprint().bytes();
        if total == 0 {
            return 0;
        }
        let mut sizes: Vec<u64> = self.iter().map(Vma::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let target = (total as f64 * fraction).ceil() as u64;
        let mut acc = 0u64;
        for (i, s) in sizes.iter().enumerate() {
            acc += s;
            if acc >= target {
                return i + 1;
            }
        }
        sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new(raw).unwrap()
    }

    #[test]
    fn insert_find() {
        let mut t = VmaTree::new();
        let id = t.insert(va(0x10000), va(0x20000), VmaKind::Heap).unwrap();
        assert_eq!(t.find(va(0x10000)).unwrap().id(), id);
        assert_eq!(t.find(va(0x1ffff)).unwrap().id(), id);
        assert!(t.find(va(0x20000)).is_none());
        assert!(t.find(va(0xffff)).is_none());
        assert_eq!(t.get(id).unwrap().kind(), VmaKind::Heap);
    }

    #[test]
    fn overlap_rejected() {
        let mut t = VmaTree::new();
        t.insert(va(0x10000), va(0x20000), VmaKind::Heap).unwrap();
        assert_eq!(
            t.insert(va(0x18000), va(0x28000), VmaKind::Mmap),
            Err(OsError::Overlap)
        );
        assert_eq!(
            t.insert(va(0x0), va(0x11000), VmaKind::Mmap),
            Err(OsError::Overlap)
        );
        // Adjacent is fine.
        assert!(t.insert(va(0x20000), va(0x30000), VmaKind::Mmap).is_ok());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn alignment_and_empty_checks() {
        let mut t = VmaTree::new();
        assert_eq!(
            t.insert(va(0x1001), va(0x3000), VmaKind::Heap),
            Err(OsError::Misaligned)
        );
        assert_eq!(
            t.insert(va(0x3000), va(0x3000), VmaKind::Heap),
            Err(OsError::EmptyRange)
        );
    }

    #[test]
    fn grow_heap() {
        let mut t = VmaTree::new();
        let heap = t.insert(va(0x10000), va(0x20000), VmaKind::Heap).unwrap();
        t.insert(va(0x40000), va(0x50000), VmaKind::Mmap).unwrap();
        t.grow(heap, va(0x30000)).unwrap();
        assert_eq!(t.find(va(0x2ffff)).unwrap().id(), heap);
        // Growing into the next VMA fails.
        assert_eq!(t.grow(heap, va(0x48000)), Err(OsError::Overlap));
        // Shrink is not growth.
        assert_eq!(t.grow(heap, va(0x20000)), Err(OsError::EmptyRange));
        assert_eq!(t.grow(VmaId(99), va(0x31000)), Err(OsError::UnknownVma));
    }

    #[test]
    fn coverage_statistic() {
        let mut t = VmaTree::new();
        // One 98-page VMA and two 1-page VMAs.
        t.insert(va(0x100000), va(0x100000 + 98 * 0x1000), VmaKind::Heap)
            .unwrap();
        t.insert(va(0x400000), va(0x401000), VmaKind::Library)
            .unwrap();
        t.insert(va(0x500000), va(0x501000), VmaKind::Stack)
            .unwrap();
        assert_eq!(t.footprint().bytes(), 100 * 0x1000);
        assert_eq!(t.vmas_covering(0.98), 1);
        assert_eq!(t.vmas_covering(0.99), 2);
        assert_eq!(t.vmas_covering(1.0), 3);
        assert_eq!(VmaTree::new().vmas_covering(0.99), 0);
    }

    #[test]
    fn remove_vma() {
        let mut t = VmaTree::new();
        t.insert(va(0x10000), va(0x20000), VmaKind::Mmap).unwrap();
        let removed = t.remove(va(0x15000)).unwrap();
        assert_eq!(removed.start(), va(0x10000));
        assert!(t.is_empty());
        assert!(t.remove(va(0x15000)).is_none());
    }

    #[test]
    fn display_forms() {
        let mut t = VmaTree::new();
        let id = t.insert(va(0x1000), va(0x3000), VmaKind::Stack).unwrap();
        let vma = *t.get(id).unwrap();
        let s = vma.to_string();
        assert!(s.contains("stack") && s.contains("8.0KiB"), "{s}");
    }
}
