//! OS-model errors.

use asap_types::VirtAddr;

/// Errors from address-space and paging operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsError {
    /// The requested range overlaps an existing VMA.
    Overlap,
    /// A range bound is not page-aligned.
    Misaligned,
    /// The range is empty or would shrink.
    EmptyRange,
    /// No VMA with the given id.
    UnknownVma,
    /// The address lies outside every VMA (a true segmentation fault).
    Segfault(VirtAddr),
    /// Physical memory was exhausted.
    OutOfMemory,
}

impl core::fmt::Display for OsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OsError::Overlap => f.write_str("range overlaps an existing VMA"),
            OsError::Misaligned => f.write_str("range is not page-aligned"),
            OsError::EmptyRange => f.write_str("range is empty or shrinking"),
            OsError::UnknownVma => f.write_str("no such VMA"),
            OsError::Segfault(va) => write!(f, "access to unmapped address {va}"),
            OsError::OutOfMemory => f.write_str("physical memory exhausted"),
        }
    }
}

impl std::error::Error for OsError {}

impl From<asap_alloc::AllocError> for OsError {
    fn from(_: asap_alloc::AllocError) -> Self {
        OsError::OutOfMemory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(OsError::Overlap.to_string().contains("overlaps"));
        let va = VirtAddr::new(0x1234000).unwrap();
        assert!(OsError::Segfault(va).to_string().contains("unmapped"));
    }

    #[test]
    fn alloc_error_converts() {
        let e: OsError = asap_alloc::AllocError::OutOfMemory { order: 0 }.into();
        assert_eq!(e, OsError::OutOfMemory);
    }
}
