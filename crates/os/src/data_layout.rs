//! Deterministic, collision-free placement of data pages.
//!
//! Data pages never need backing storage in the simulator, but their
//! *physical frame numbers* matter twice: they drive cache-set contention,
//! and their VPN→PFN contiguity is what the clustered TLB (§5.4.1) exploits.
//! Rather than replaying an allocator, [`DataPageLayout`] computes a frame
//! for every virtual page as a pure function:
//!
//! * the VPN space is split into aligned 8-page *cluster groups* (the
//!   clustered TLB's coalescing unit);
//! * a per-group hash decides — with the configured probability — whether
//!   the group is **clusterable** (its 8 pages land on 8 consecutive
//!   frames) or **scattered** (each page lands independently);
//! * positions come from [Feistel permutations](feistel_permute), so the
//!   mapping is bijective: no two virtual pages ever share a frame, with no
//!   bookkeeping and no host memory.
//!
//! The clusterable probability is the per-workload contiguity knob
//! calibrated against Table 7 (e.g. mcf's allocator happens to produce lots
//! of contiguity, memcached-400GB's almost none).

use crate::PhysMap;
use asap_types::{PhysFrameNum, VirtPageNum};

/// Number of Feistel rounds (4 is the classic minimum for good mixing).
const ROUNDS: u32 = 4;

/// A keyed Feistel permutation over `bits`-wide integers (`bits` even,
/// ≤ 62). Bijective for every key: the round function is arbitrary, the
/// network structure guarantees invertibility.
///
/// # Examples
///
/// ```
/// use asap_os::feistel_permute;
/// // Distinct inputs map to distinct outputs within the domain.
/// let a = feistel_permute(1, 0xfeed, 28);
/// let b = feistel_permute(2, 0xfeed, 28);
/// assert_ne!(a, b);
/// assert!(a < (1 << 28) && b < (1 << 28));
/// ```
///
/// # Panics
///
/// Panics if `bits` is odd, zero, or greater than 62, or if `x` is outside
/// the domain.
#[must_use]
pub fn feistel_permute(x: u64, key: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits <= 62 && bits % 2 == 0, "bad domain width");
    assert!(x >> bits == 0, "input outside domain");
    let half = bits / 2;
    let mask = (1u64 << half) - 1;
    let mut left = x >> half;
    let mut right = x & mask;
    for round in 0..ROUNDS {
        // splitmix64-style round function keyed by (key, round).
        let mut f = right
            .wrapping_add(key)
            .wrapping_add(u64::from(round).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        f = (f ^ (f >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        f = (f ^ (f >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        f ^= f >> 31;
        let new_right = (left ^ f) & mask;
        left = right;
        right = new_right;
    }
    (left << half) | right
}

/// Pure-function placement of data pages for one process.
#[derive(Debug, Clone, Copy)]
pub struct DataPageLayout {
    phys: PhysMap,
    /// Probability (0..=1) that an aligned 8-page group is clusterable.
    cluster_fraction: f64,
    key: u64,
}

/// Cluster-group domain width (groups live in a 2^28 superset domain so the
/// permuted slot, shifted by the 8-page cluster, fits the 2^31-frame window).
const GROUP_BITS: u32 = 28;
/// Scattered-page domain width; also bounds the supported page index space:
/// 2^30 pages = 4 TiB of dataset per process.
const PAGE_BITS: u32 = 30;

impl DataPageLayout {
    /// Creates a layout drawing frames from `phys`' data windows.
    ///
    /// # Panics
    ///
    /// Panics if `cluster_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(phys: PhysMap, cluster_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cluster_fraction),
            "cluster fraction must be a probability"
        );
        Self {
            phys,
            cluster_fraction,
            key: seed,
        }
    }

    /// The configured clusterable fraction.
    #[must_use]
    pub fn cluster_fraction(&self) -> f64 {
        self.cluster_fraction
    }

    fn group_is_clustered(&self, group: u64) -> bool {
        // A keyed hash in [0,1) compared against the fraction.
        let h = feistel_permute(
            group & ((1 << GROUP_BITS) - 1),
            self.key ^ 0xC1u64,
            GROUP_BITS,
        );
        (h as f64) / ((1u64 << GROUP_BITS) as f64) < self.cluster_fraction
    }

    /// The physical frame for data-page index `vpn`.
    ///
    /// The index is process-relative (the OS assigns each VMA a dense,
    /// 8-aligned index window), keeping the domain compact. Deterministic
    /// and injective over the supported domain.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 2^30-page (4 TiB) domain.
    #[must_use]
    pub fn frame_for(&self, vpn: VirtPageNum) -> PhysFrameNum {
        let raw = vpn.raw();
        assert!(
            raw < (1 << PAGE_BITS),
            "page index {raw:#x} outside the data-layout domain"
        );
        if self.group_is_clustered(raw >> 3) {
            self.clustered_frame_for(raw)
        } else {
            let slot = feistel_permute(raw, self.key ^ 0x5C, PAGE_BITS);
            self.phys.data_scattered_base().add(slot)
        }
    }

    /// The frame the *clustered* placement path would assign to data-page
    /// index `vpn`, computed unconditionally — the hash a Revelator-style
    /// speculative translator evaluates in hardware. It equals
    /// [`DataPageLayout::frame_for`] exactly when the page's 8-page group
    /// is clusterable (the OS could honour the hash placement), and
    /// mispredicts when fragmentation forced the group onto the scattered
    /// path — so speculation accuracy tracks physical contiguity, as in the
    /// real system.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 2^30-page (4 TiB) domain.
    #[must_use]
    pub fn speculative_frame_for(&self, vpn: VirtPageNum) -> PhysFrameNum {
        let raw = vpn.raw();
        assert!(
            raw < (1 << PAGE_BITS),
            "page index {raw:#x} outside the data-layout domain"
        );
        self.clustered_frame_for(raw)
    }

    /// The clustered-path frame for raw page index `raw` (shared by the
    /// real placement and the speculative hash).
    fn clustered_frame_for(&self, raw: u64) -> PhysFrameNum {
        let group = raw >> 3;
        let sub = raw & 7;
        let slot = feistel_permute(group, self.key, GROUP_BITS);
        self.phys.data_clustered_base().add((slot << 3) | sub)
    }

    /// The frames of the whole aligned 8-page group containing `vpn`,
    /// `None` for pages the caller knows are unmapped. This mirrors what a
    /// walker sees in one PTE cache line and feeds the clustered TLB fill.
    #[must_use]
    pub fn cluster_frames(&self, vpn: VirtPageNum) -> [PhysFrameNum; 8] {
        let base = vpn.raw() & !7;
        core::array::from_fn(|i| self.frame_for(VirtPageNum::new(base + i as u64)))
    }

    /// Measured fraction of groups that are clusterable over the first `n`
    /// groups (diagnostic; converges on `cluster_fraction`).
    #[must_use]
    pub fn measured_cluster_fraction(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let hits = (0..n).filter(|&g| self.group_is_clustered(g)).count();
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_types::Asid;
    use std::collections::HashSet;

    #[test]
    fn feistel_is_bijective_on_small_domain() {
        let mut seen = HashSet::new();
        for x in 0..(1u64 << 12) {
            let y = feistel_permute(x, 0xabcd, 12);
            assert!(y < 1 << 12);
            assert!(seen.insert(y), "collision at {x}");
        }
        assert_eq!(seen.len(), 1 << 12);
    }

    #[test]
    fn feistel_key_changes_mapping() {
        let a: Vec<u64> = (0..64).map(|x| feistel_permute(x, 1, 16)).collect();
        let b: Vec<u64> = (0..64).map(|x| feistel_permute(x, 2, 16)).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "bad domain")]
    fn feistel_rejects_odd_width() {
        let _ = feistel_permute(0, 0, 13);
    }

    #[test]
    fn frames_are_unique_across_modes() {
        let layout = DataPageLayout::new(PhysMap::new(Asid(2)), 0.5, 42);
        let mut seen = HashSet::new();
        for vpn in 0..20_000u64 {
            let f = layout.frame_for(VirtPageNum::new(vpn)).raw();
            assert!(seen.insert(f), "frame collision for vpn {vpn}");
        }
    }

    #[test]
    fn clustered_groups_are_physically_consecutive() {
        let layout = DataPageLayout::new(PhysMap::new(Asid(0)), 1.0, 7);
        for group in 0..100u64 {
            let frames = layout.cluster_frames(VirtPageNum::new(group * 8));
            for (i, f) in frames.iter().enumerate() {
                assert_eq!(f.raw(), frames[0].raw() + i as u64, "group {group}");
            }
        }
    }

    #[test]
    fn scattered_groups_are_not_consecutive() {
        let layout = DataPageLayout::new(PhysMap::new(Asid(0)), 0.0, 7);
        let mut consecutive = 0;
        for group in 0..200u64 {
            let frames = layout.cluster_frames(VirtPageNum::new(group * 8));
            if (1..8).all(|i| frames[i].raw() == frames[0].raw() + i as u64) {
                consecutive += 1;
            }
        }
        assert_eq!(consecutive, 0, "no group should be consecutive at p=0");
    }

    #[test]
    fn measured_fraction_tracks_config() {
        for p in [0.0f64, 0.25, 0.6, 1.0] {
            let layout = DataPageLayout::new(PhysMap::new(Asid(1)), p, 99);
            let measured = layout.measured_cluster_fraction(20_000);
            assert!((measured - p).abs() < 0.02, "p={p}, measured={measured}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DataPageLayout::new(PhysMap::new(Asid(1)), 0.5, 11);
        let b = DataPageLayout::new(PhysMap::new(Asid(1)), 0.5, 11);
        let c = DataPageLayout::new(PhysMap::new(Asid(1)), 0.5, 12);
        let vpn = VirtPageNum::new(777);
        assert_eq!(a.frame_for(vpn), b.frame_for(vpn));
        assert_ne!(a.frame_for(vpn), c.frame_for(vpn));
    }

    #[test]
    fn frames_stay_inside_windows() {
        let layout = DataPageLayout::new(PhysMap::new(Asid(3)), 0.5, 5);
        let m = PhysMap::new(Asid(3));
        for vpn in (0..100_000u64).step_by(97) {
            let f = layout.frame_for(VirtPageNum::new(vpn)).raw();
            let in_clustered = (m.data_clustered_base().raw()
                ..m.data_clustered_base().raw() + PhysMap::DATA_WINDOW_FRAMES)
                .contains(&f);
            let in_scattered = (m.data_scattered_base().raw()
                ..m.data_scattered_base().raw() + PhysMap::DATA_WINDOW_FRAMES)
                .contains(&f);
            assert!(in_clustered || in_scattered);
        }
    }
}
