//! The simulator's physical address map.
//!
//! Real machines interleave page-table pages, data pages and kernel memory
//! throughout physical memory. Set-associative caches, however, only see the
//! low line-address bits, so *absolute* placement is irrelevant to the
//! simulation — only the contiguity structure **within** each class of
//! allocation matters (scattered vs. contiguous PT pages is the entire
//! ASAP effect). This module therefore carves the physical space into
//! disjoint per-class windows, which makes collisions impossible by
//! construction and keeps every placement decision deterministic. DESIGN.md
//! documents this as a simulator substitution.
//!
//! Two flavours exist:
//!
//! * [`PhysMap::new`] — the **sparse host** map: per-ASID windows spread
//!   over the full 2^40-frame space, used by natively-running processes;
//! * [`PhysMap::compact_guest`] — the **compact guest** map: one tenant,
//!   windows packed low so that every guest-physical address stays well
//!   below the 2^48-byte span a 4-level nested page table can translate.

use asap_types::{Asid, PhysFrameNum};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    SparseHost,
    CompactGuest,
}

/// Disjoint physical windows for one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysMap {
    asid: Asid,
    mode: Mode,
}

impl PhysMap {
    /// Maximum ASIDs supported by the sparse-host window arithmetic: at
    /// 128, the last scattered-data window ends exactly at the co-runner
    /// window's base (`3 << 38`), and every window still fits the 40-bit
    /// PFN field — headroom for a 64-core machine plus the kernel ASID.
    pub const MAX_ASIDS: u16 = 128;

    /// Frames available for scattered page-table pages, per process.
    pub const PT_WINDOW_FRAMES: u64 = 1 << 22; // 16 GiB of PT space

    /// Frames reserved for ASAP contiguous PT regions, per process.
    pub const RESERVATION_WINDOW_FRAMES: u64 = 1 << 26;

    /// Width of each data window in frames: a 28-bit cluster-group
    /// permutation shifted by the 8-page cluster (2^31 frames = 8 TiB of
    /// address space per process — ample for a 400 GB dataset).
    pub const DATA_WINDOW_FRAMES: u64 = 1 << 31;

    /// Creates the sparse host map for `asid`.
    ///
    /// # Panics
    ///
    /// Panics if `asid` exceeds [`PhysMap::MAX_ASIDS`].
    #[must_use]
    pub fn new(asid: Asid) -> Self {
        assert!(
            asid.0 < Self::MAX_ASIDS,
            "asid {} exceeds the physical map's window budget",
            asid.0
        );
        Self {
            asid,
            mode: Mode::SparseHost,
        }
    }

    /// Creates the compact guest map (single tenant per guest-physical
    /// space): every window fits below 2^33 frames ≈ 2^45 bytes, leaving a
    /// 4-level nested page table plenty of headroom.
    #[must_use]
    pub fn compact_guest(asid: Asid) -> Self {
        Self {
            asid,
            mode: Mode::CompactGuest,
        }
    }

    /// Whether this is the compact guest flavour.
    #[must_use]
    pub fn is_compact(&self) -> bool {
        self.mode == Mode::CompactGuest
    }

    /// Largest frame number any window of this map can produce (exclusive).
    #[must_use]
    pub fn span_end(&self) -> PhysFrameNum {
        match self.mode {
            Mode::SparseHost => PhysFrameNum::new(1 << 40),
            Mode::CompactGuest => PhysFrameNum::new((1 << 32) + (1 << 30)),
        }
    }

    /// Base of the window for scattered (baseline) page-table pages.
    #[must_use]
    pub fn pt_scatter_base(&self) -> PhysFrameNum {
        match self.mode {
            Mode::SparseHost => PhysFrameNum::new((1 << 30) + u64::from(self.asid.0) * (1 << 23)),
            Mode::CompactGuest => PhysFrameNum::new(1 << 22),
        }
    }

    /// Base of the window for ASAP contiguous PT reservations.
    #[must_use]
    pub fn reservation_base(&self) -> PhysFrameNum {
        match self.mode {
            Mode::SparseHost => PhysFrameNum::new((1 << 34) + u64::from(self.asid.0) * (1 << 26)),
            Mode::CompactGuest => PhysFrameNum::new(1 << 23),
        }
    }

    /// Base of the window for clusterable data pages.
    #[must_use]
    pub fn data_clustered_base(&self) -> PhysFrameNum {
        match self.mode {
            Mode::SparseHost => {
                PhysFrameNum::new((1 << 38) + u64::from(self.asid.0) * Self::DATA_WINDOW_FRAMES)
            }
            Mode::CompactGuest => PhysFrameNum::new(1 << 27),
        }
    }

    /// Base of the window for non-clusterable (scattered) data pages.
    #[must_use]
    pub fn data_scattered_base(&self) -> PhysFrameNum {
        match self.mode {
            Mode::SparseHost => {
                PhysFrameNum::new((1 << 39) + u64::from(self.asid.0) * Self::DATA_WINDOW_FRAMES)
            }
            Mode::CompactGuest => PhysFrameNum::new(1 << 32),
        }
    }

    /// Base of the window used by the SMT co-runner's random traffic
    /// (always host-physical).
    #[must_use]
    pub fn corunner_base() -> PhysFrameNum {
        PhysFrameNum::new(3 << 38)
    }

    /// Every window of this map as `(base, frames)`, in a fixed order:
    /// scattered PT, ASAP reservations, clustered data, scattered data.
    /// This is the enumeration the NUMA fabric assembly registers home
    /// nodes for — all physical frames a process can touch live in one of
    /// these four ranges.
    #[must_use]
    pub fn windows(&self) -> [(PhysFrameNum, u64); 4] {
        [
            (self.pt_scatter_base(), Self::PT_WINDOW_FRAMES),
            (self.reservation_base(), Self::RESERVATION_WINDOW_FRAMES),
            (self.data_clustered_base(), Self::DATA_WINDOW_FRAMES),
            (
                self.data_scattered_base(),
                if self.is_compact() {
                    1 << 30
                } else {
                    Self::DATA_WINDOW_FRAMES
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_windows() -> Vec<(u64, u64, String)> {
        let mut windows: Vec<(u64, u64, String)> = Vec::new();
        for a in [0u16, 1, 7, 63, 127] {
            let m = PhysMap::new(Asid(a));
            windows.push((
                m.pt_scatter_base().raw(),
                PhysMap::PT_WINDOW_FRAMES,
                format!("pt/{a}"),
            ));
            windows.push((
                m.reservation_base().raw(),
                PhysMap::RESERVATION_WINDOW_FRAMES,
                format!("res/{a}"),
            ));
            windows.push((
                m.data_clustered_base().raw(),
                PhysMap::DATA_WINDOW_FRAMES,
                format!("datc/{a}"),
            ));
            windows.push((
                m.data_scattered_base().raw(),
                PhysMap::DATA_WINDOW_FRAMES,
                format!("dats/{a}"),
            ));
        }
        windows.push((
            PhysMap::corunner_base().raw(),
            PhysMap::DATA_WINDOW_FRAMES,
            "corunner".into(),
        ));
        windows
    }

    fn compact_windows() -> Vec<(u64, u64, String)> {
        let m = PhysMap::compact_guest(Asid(0));
        vec![
            (
                m.pt_scatter_base().raw(),
                PhysMap::PT_WINDOW_FRAMES,
                "pt".into(),
            ),
            (
                m.reservation_base().raw(),
                PhysMap::RESERVATION_WINDOW_FRAMES,
                "res".into(),
            ),
            (
                m.data_clustered_base().raw(),
                PhysMap::DATA_WINDOW_FRAMES,
                "datc".into(),
            ),
            (m.data_scattered_base().raw(), 1 << 30, "dats".into()),
        ]
    }

    fn assert_disjoint(windows: &[(u64, u64, String)]) {
        for (i, (b1, s1, n1)) in windows.iter().enumerate() {
            for (b2, s2, n2) in windows.iter().skip(i + 1) {
                let disjoint = b1 + s1 <= *b2 || b2 + s2 <= *b1;
                assert!(disjoint, "windows {n1} and {n2} overlap");
            }
        }
    }

    #[test]
    fn sparse_windows_are_disjoint() {
        assert_disjoint(&sparse_windows());
    }

    #[test]
    fn compact_windows_are_disjoint() {
        assert_disjoint(&compact_windows());
    }

    #[test]
    fn sparse_frames_fit_pte_field() {
        for (base, span, name) in sparse_windows() {
            assert!(base + span <= 1 << 40, "window {name} exceeds PFN field");
        }
    }

    #[test]
    fn compact_frames_fit_four_level_ept() {
        // Guest-physical addresses (frames << 12) must be canonical for a
        // 4-level nested table: frame < 2^36.
        let m = PhysMap::compact_guest(Asid(0));
        assert!(m.span_end().raw() < 1 << 36);
        for (base, span, name) in compact_windows() {
            assert!(
                base + span <= m.span_end().raw(),
                "window {name} exceeds the compact span"
            );
        }
    }

    #[test]
    #[should_panic(expected = "window budget")]
    fn oversized_asid_rejected() {
        let _ = PhysMap::new(Asid(PhysMap::MAX_ASIDS));
    }

    #[test]
    fn windows_accessor_matches_the_bases() {
        let m = PhysMap::new(Asid(5));
        let w = m.windows();
        assert_eq!(w[0], (m.pt_scatter_base(), PhysMap::PT_WINDOW_FRAMES));
        assert_eq!(
            w[1],
            (m.reservation_base(), PhysMap::RESERVATION_WINDOW_FRAMES)
        );
        assert_eq!(w[2], (m.data_clustered_base(), PhysMap::DATA_WINDOW_FRAMES));
        assert_eq!(w[3], (m.data_scattered_base(), PhysMap::DATA_WINDOW_FRAMES));
        // The 64-core machine's highest ASID still fits the PFN field.
        let top = PhysMap::new(Asid(PhysMap::MAX_ASIDS - 1));
        for (base, frames) in top.windows() {
            assert!(base.raw() + frames <= 1 << 40);
        }
    }
}
