//! A simulated process: address space, demand paging, ASAP descriptors.

use crate::placement::NodePlacer;
use crate::{
    AsapOsConfig, DataPageLayout, OsError, PhysMap, ProcessLayout, ReservationSet, Vma,
    VmaDescriptor, VmaId, VmaKind, VmaTree,
};
use asap_alloc::{ScatterAllocator, ScatterConfig};
use asap_pt::Translation;
use asap_pt::{
    FixedWalk, FlatMirror, PageTable, PtCensus, PteFlags, SimPhysMem, WalkSource, WalkTrace,
};
use asap_types::{Asid, ByteSize, PageSize, PagingMode, PhysFrameNum, VirtAddr, VirtPageNum};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`Process`].
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// Address-space identifier (also selects physical windows).
    pub asid: Asid,
    /// The VMA layout; defaults to a server-like shape with no big regions.
    pub layout: ProcessLayout,
    /// OS-side ASAP configuration (disabled by default).
    pub asap: AsapOsConfig,
    /// Mean physical run length of scattered PT pages (Table 2 calibration).
    pub pt_scatter_run: f64,
    /// Fraction of 8-page data groups that are physically clusterable
    /// (Table 7 calibration).
    pub data_cluster_fraction: f64,
    /// Paging mode (4-level unless exercising the §3.5 extension).
    pub paging_mode: PagingMode,
    /// Use the compact guest-physical map (required when this process runs
    /// inside a virtual machine; see `PhysMap::compact_guest`).
    pub compact_phys: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl ProcessConfig {
    /// A minimal config: server-like layout with a tiny heap.
    #[must_use]
    pub fn new(asid: Asid) -> Self {
        Self {
            asid,
            layout: ProcessLayout::server_like(ByteSize::mib(16), &[]),
            asap: AsapOsConfig::disabled(),
            pt_scatter_run: 16.0,
            data_cluster_fraction: 0.3,
            paging_mode: PagingMode::FourLevel,
            compact_phys: false,
            seed: 0,
        }
    }

    /// Replaces the layout with a server-like one with the given heap size.
    #[must_use]
    pub fn with_heap(mut self, heap: ByteSize) -> Self {
        self.layout = ProcessLayout::server_like(heap, &[]);
        self
    }

    /// Uses an explicit layout.
    #[must_use]
    pub fn with_layout(mut self, layout: ProcessLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables ASAP with the given OS config.
    #[must_use]
    pub fn with_asap(mut self, asap: AsapOsConfig) -> Self {
        self.asap = asap;
        self
    }

    /// Sets the PT scatter run length.
    #[must_use]
    pub fn with_pt_scatter_run(mut self, run: f64) -> Self {
        self.pt_scatter_run = run;
        self
    }

    /// Sets the data clusterable fraction.
    #[must_use]
    pub fn with_data_cluster_fraction(mut self, fraction: f64) -> Self {
        self.data_cluster_fraction = fraction;
        self
    }

    /// Sets the paging mode.
    #[must_use]
    pub fn with_paging_mode(mut self, mode: PagingMode) -> Self {
        self.paging_mode = mode;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to the compact guest-physical map (for use inside a VM).
    #[must_use]
    pub fn with_compact_phys(mut self) -> Self {
        self.compact_phys = true;
        self
    }

    /// The physical map this config implies.
    #[must_use]
    pub fn phys_map(&self) -> PhysMap {
        if self.compact_phys {
            PhysMap::compact_guest(self.asid)
        } else {
            PhysMap::new(self.asid)
        }
    }
}

/// Result of touching a virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The page was already mapped.
    AlreadyMapped,
    /// A demand fault mapped the page.
    Faulted,
}

/// A simulated process: VMAs, page table, demand paging, and the ASAP
/// descriptors the OS exposes to hardware.
#[derive(Debug)]
pub struct Process {
    asid: Asid,
    phys: PhysMap,
    mem: SimPhysMem,
    vmas: VmaTree,
    pt: PageTable,
    /// Derived flat index over `pt` (re-synced after every map); the radix
    /// table in `mem` stays the ground truth.
    flat: FlatMirror,
    reservations: ReservationSet,
    scatter: ScatterAllocator,
    data_layout: DataPageLayout,
    asap: AsapOsConfig,
    /// Per-VMA base into the process-relative data-page index space.
    data_index_base: Vec<(VmaId, u64)>,
    next_data_index: u64,
    descriptors: Vec<VmaDescriptor>,
    faults: u64,
    rng: SmallRng,
}

impl Process {
    /// Creates the process: builds VMAs, the empty page table, and — when
    /// ASAP is enabled — the per-VMA contiguous PT reservations and the
    /// hardware VMA descriptors.
    ///
    /// # Panics
    ///
    /// Panics if the layout produces overlapping VMAs (a configuration bug).
    #[must_use]
    pub fn new(config: ProcessConfig) -> Self {
        let phys = config.phys_map();
        let mut vmas = VmaTree::new();
        let ids = config
            .layout
            .build(&mut vmas)
            .expect("process layout must be self-consistent");
        let mut scatter = ScatterAllocator::new(ScatterConfig {
            mean_run_len: config.pt_scatter_run,
            phys_frames: PhysMap::PT_WINDOW_FRAMES,
            seed: config.seed ^ 0x57A7,
        });
        // The scatter window is process-relative; rebase its frames.
        let pt_base = phys.pt_scatter_base();
        let mut rebased = RebasedScatter {
            inner: &mut scatter,
            base: pt_base,
        };
        let mut mem = SimPhysMem::new();
        let pt = PageTable::new(config.paging_mode, &mut mem, &mut rebased);
        let flat = FlatMirror::new(&pt);

        let mut reservations = ReservationSet::new(phys);
        let mut data_index_base = Vec::with_capacity(ids.len());
        let mut next_data_index = 0u64;
        for id in &ids {
            let vma = *vmas.get(*id).expect("freshly inserted");
            data_index_base.push((*id, next_data_index));
            next_data_index = (next_data_index + vma.pages() + 7) & !7;
            if config.asap.is_enabled() {
                for &level in &config.asap.levels {
                    reservations.reserve(*id, level, vma.start(), vma.end());
                }
            }
        }

        let mut process = Self {
            asid: config.asid,
            phys,
            mem,
            vmas,
            pt,
            flat,
            reservations,
            scatter,
            data_layout: DataPageLayout::new(
                phys,
                config.data_cluster_fraction,
                config.seed ^ 0xDA7A ^ (u64::from(config.asid.0) << 32),
            ),
            asap: config.asap,
            data_index_base,
            next_data_index,
            descriptors: Vec::new(),
            faults: 0,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x05),
        };
        process.rebuild_descriptors();
        process
    }

    /// Recomputes the VMA descriptors: the largest VMAs, up to the range
    /// register budget (§3.4).
    fn rebuild_descriptors(&mut self) {
        use asap_types::PtLevel;
        self.descriptors.clear();
        if !self.asap.is_enabled() {
            return;
        }
        let mut by_size: Vec<Vma> = self.vmas.iter().copied().collect();
        by_size.sort_unstable_by_key(|v| core::cmp::Reverse(v.len()));
        for vma in by_size.into_iter().take(self.asap.max_descriptors) {
            let pl1_base = self
                .reservations
                .base(vma.id(), PtLevel::Pl1)
                .map(PhysFrameNum::base_addr);
            let pl2_base = self
                .reservations
                .base(vma.id(), PtLevel::Pl2)
                .map(PhysFrameNum::base_addr);
            self.descriptors.push(VmaDescriptor {
                start: vma.start(),
                end: vma.end(),
                pl1_base: self.asap.covers(PtLevel::Pl1).then_some(pl1_base).flatten(),
                pl2_base: self.asap.covers(PtLevel::Pl2).then_some(pl2_base).flatten(),
            });
        }
    }

    /// The process-relative data-page index for `va` (dense across VMAs).
    fn data_index(&self, vma: &Vma, va: VirtAddr) -> u64 {
        let base = self
            .data_index_base
            .iter()
            .find(|(id, _)| *id == vma.id())
            .map(|(_, b)| *b)
            .expect("every VMA has an index window");
        base + (va.raw() - vma.start().raw()) / asap_types::PAGE_SIZE
    }

    /// Touches `va`: demand-faults the page in if needed.
    ///
    /// # Errors
    ///
    /// [`OsError::Segfault`] if `va` lies outside every VMA.
    pub fn touch(&mut self, va: VirtAddr) -> Result<TouchOutcome, OsError> {
        if self.flat.is_mapped(va) {
            return Ok(TouchOutcome::AlreadyMapped);
        }
        let vma = *self.vmas.find(va).ok_or(OsError::Segfault(va))?;
        let frame = self
            .data_layout
            .frame_for(VirtPageNum::new(self.data_index(&vma, va)));
        let phys = self.phys;
        let mut rebased = RebasedScatter {
            inner: &mut self.scatter,
            base: phys.pt_scatter_base(),
        };
        let mut placer = NodePlacer {
            vma: Some((vma.id(), vma.start())),
            reservations: &mut self.reservations,
            scatter: &mut rebased,
            asap_levels: &self.asap.levels,
        };
        self.pt
            .map(
                &mut self.mem,
                &mut placer,
                va.page_base(),
                frame,
                PageSize::Size4K,
                PteFlags::user_data(),
            )
            .expect("fault on unmapped page cannot double-map");
        self.flat.sync_va(&self.mem, &self.pt, va.page_base());
        self.faults += 1;
        Ok(TouchOutcome::Faulted)
    }

    /// Translates `va` if mapped (no side effects).
    #[must_use]
    pub fn translate(&self, va: VirtAddr) -> Option<Translation> {
        self.flat.translate(va)
    }

    /// Performs a full software page walk, returning the node trace.
    #[must_use]
    pub fn walk(&self, va: VirtAddr) -> WalkTrace {
        self.flat.walk_fixed(va).to_trace()
    }

    /// [`Process::walk`] without the heap allocation (the hot-path form).
    #[must_use]
    pub fn walk_fixed(&self, va: VirtAddr) -> FixedWalk {
        self.flat.walk_fixed(va)
    }

    /// The flat walk index mirroring this process' page table.
    #[must_use]
    pub fn flat_mirror(&self) -> &FlatMirror {
        &self.flat
    }

    /// Grows the heap VMA to `new_end` (`brk`), extending reservations; a
    /// configured fraction of extensions fails, creating holes (§3.7.2).
    ///
    /// # Errors
    ///
    /// Propagates VMA-tree errors (overlap with the next VMA etc.).
    pub fn grow_heap(&mut self, new_end: VirtAddr) -> Result<(), OsError> {
        let heap = *self
            .vmas
            .iter()
            .find(|v| v.kind() == VmaKind::Heap)
            .ok_or(OsError::UnknownVma)?;
        self.vmas.grow(heap.id(), new_end)?;
        let levels = self.asap.levels.clone();
        for level in levels {
            let success = self.rng.gen::<f64>() >= self.asap.extension_failure_rate;
            self.reservations
                .extend(heap.id(), level, heap.start(), new_end, success);
        }
        self.rebuild_descriptors();
        Ok(())
    }

    /// The translations of the aligned 8-page cluster containing `va`
    /// (`None` for unmapped neighbours) — the PTE cache line the walker
    /// fetches, used to fill the clustered TLB (§5.4.1).
    #[must_use]
    pub fn cluster_translations(&self, va: VirtAddr) -> [Option<PhysFrameNum>; 8] {
        let base_vpn = va.page_number().raw() & !7;
        core::array::from_fn(|i| {
            let nva = VirtAddr::new_unchecked((base_vpn + i as u64) << 12);
            self.flat.translate(nva).map(|t| t.frame)
        })
    }

    /// The speculation hint the OS publishes for hash-based speculative
    /// translation (Revelator-style contenders): per-VMA data-page index
    /// windows plus the placement-hash parameters. Pure hint — consumers
    /// must verify every guess against the page table before use.
    #[must_use]
    pub fn speculation_hint(&self) -> crate::SpeculationHint {
        let pairs: Vec<(Vma, u64)> = self
            .data_index_base
            .iter()
            .filter_map(|(id, base)| self.vmas.get(*id).map(|vma| (*vma, *base)))
            .collect();
        crate::SpeculationHint::new(crate::speculation::windows_for(&pairs), self.data_layout)
    }

    /// The first VMA of `kind`, if any.
    #[must_use]
    pub fn vma_of_kind(&self, kind: VmaKind) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.kind() == kind)
    }

    /// The OS-maintained hardware VMA descriptors (loaded into the range
    /// registers on context switch).
    #[must_use]
    pub fn vma_descriptors(&self) -> &[VmaDescriptor] {
        &self.descriptors
    }

    /// The process' ASID.
    #[must_use]
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// The VMA tree.
    #[must_use]
    pub fn vmas(&self) -> &VmaTree {
        &self.vmas
    }

    /// The page table.
    #[must_use]
    pub fn page_table(&self) -> &PageTable {
        &self.pt
    }

    /// The simulated physical memory holding the PT.
    #[must_use]
    pub fn mem(&self) -> &SimPhysMem {
        &self.mem
    }

    /// Demand faults taken so far.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Data-page index space consumed so far (diagnostic; grows as VMAs are
    /// added).
    #[must_use]
    pub fn data_pages_indexed(&self) -> u64 {
        self.next_data_index
    }

    /// Holes punched in reservations so far (§3.7.2 diagnostics).
    #[must_use]
    pub fn hole_count(&self) -> u64 {
        self.reservations.holes_punched()
    }

    /// Collects the PT census (Table 2 inputs).
    #[must_use]
    pub fn census(&self) -> PtCensus {
        PtCensus::collect(&self.mem, &self.pt)
    }
}

/// Adapts the window-relative scatter allocator to absolute frames.
struct RebasedScatter<'a> {
    inner: &'a mut ScatterAllocator,
    base: PhysFrameNum,
}

impl asap_alloc::FrameAllocator for RebasedScatter<'_> {
    fn alloc_frame(&mut self) -> Result<PhysFrameNum, asap_alloc::AllocError> {
        let f = asap_alloc::FrameAllocator::alloc_frame(self.inner)?;
        Ok(self.base.add(f.raw()))
    }
}

impl asap_pt::PtNodeAllocator for RebasedScatter<'_> {
    fn alloc_node(&mut self, _level: asap_types::PtLevel, _va: VirtAddr) -> PhysFrameNum {
        asap_alloc::FrameAllocator::alloc_frame(self).expect("PT scatter window exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_types::PtLevel;

    fn small_process(asap: AsapOsConfig) -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(64))
                .with_asap(asap)
                .with_seed(7),
        )
    }

    #[test]
    fn touch_faults_then_is_mapped() {
        let mut p = small_process(AsapOsConfig::disabled());
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        assert_eq!(p.touch(heap).unwrap(), TouchOutcome::Faulted);
        assert_eq!(p.touch(heap).unwrap(), TouchOutcome::AlreadyMapped);
        assert_eq!(p.fault_count(), 1);
        assert!(p.translate(heap).is_some());
    }

    #[test]
    fn segfault_outside_vmas() {
        let mut p = small_process(AsapOsConfig::disabled());
        let wild = VirtAddr::new(0x1234_5678_0000).unwrap();
        assert_eq!(p.touch(wild), Err(OsError::Segfault(wild)));
    }

    #[test]
    fn asap_pl1_nodes_are_sorted_and_contiguous() {
        let mut p = small_process(AsapOsConfig::pl1_and_pl2());
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        // Touch pages across several 2 MiB regions, out of order.
        for region in [5u64, 1, 3, 0, 7] {
            let va = VirtAddr::new(heap.start().raw() + region * (2 << 20)).unwrap();
            p.touch(va).unwrap();
        }
        // The PL1 node for region k must be at pl1_base + k.
        let pl1_base = p
            .vma_descriptors()
            .iter()
            .find(|d| d.covers(heap.start()))
            .and_then(|d| d.pl1_base)
            .expect("heap descriptor with PL1 base");
        for region in [0u64, 1, 3, 5, 7] {
            let va = VirtAddr::new(heap.start().raw() + region * (2 << 20)).unwrap();
            let trace = p.walk(va);
            let pl1_step = trace.step_at(PtLevel::Pl1).expect("walk reaches PL1");
            let node_frame = pl1_step.entry_addr.frame_number();
            assert_eq!(
                node_frame.raw(),
                pl1_base.frame_number().raw() + region,
                "PL1 node for region {region} must sit at base+{region}"
            );
        }
    }

    #[test]
    fn baseline_pl1_nodes_are_scattered() {
        // Fully random PT placement (mean run 1) — the paper's own host-side
        // baseline methodology (§4).
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(64))
                .with_pt_scatter_run(1.0)
                .with_seed(7),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let mut frames = Vec::new();
        for region in 0..8u64 {
            let va = VirtAddr::new(heap.start().raw() + region * (2 << 20)).unwrap();
            p.touch(va).unwrap();
            let trace = p.walk(va);
            frames.push(
                trace
                    .step_at(PtLevel::Pl1)
                    .unwrap()
                    .entry_addr
                    .frame_number()
                    .raw(),
            );
        }
        // Not in sorted ascending order with stride 1 (overwhelmingly likely
        // under scattering).
        let sorted_contig = frames.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(
            !sorted_contig,
            "scattered PT pages must not be contiguous: {frames:?}"
        );
        assert!(p.vma_descriptors().is_empty());
    }

    #[test]
    fn descriptors_respect_register_budget() {
        let mut layout = ProcessLayout::server_like(ByteSize::mib(32), &[]);
        for _ in 0..30 {
            layout.push(crate::VmaSpec::new(VmaKind::Mmap, ByteSize::mib(4)));
        }
        let p = Process::new(
            ProcessConfig::new(Asid(2))
                .with_layout(layout)
                .with_asap(AsapOsConfig::pl1_and_pl2()),
        );
        assert!(p.vma_descriptors().len() <= 16);
        // The biggest VMA (the heap) must be covered.
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap();
        assert!(p.vma_descriptors().iter().any(|d| d.covers(heap.start())));
    }

    #[test]
    fn heap_growth_with_guaranteed_failure_creates_holes() {
        let mut asap = AsapOsConfig::pl1_only();
        asap.extension_failure_rate = 1.0;
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(4)) // 2 PL1 nodes, capacity 16
                .with_asap(asap)
                .with_seed(3),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let new_end = VirtAddr::new(heap.start().raw() + (64 << 20)).unwrap();
        p.grow_heap(new_end).unwrap();
        // Touch a page in the grown area: its PL1 node becomes a hole.
        let va = VirtAddr::new(heap.start().raw() + (32 << 20)).unwrap();
        p.touch(va).unwrap();
        assert_eq!(p.hole_count(), 1);
        // The walk still succeeds (correctness preserved).
        assert!(!p.walk(va).is_fault());
    }

    #[test]
    fn heap_growth_success_extends_inline() {
        let mut p = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(4))
                .with_asap(AsapOsConfig::pl1_only())
                .with_seed(3),
        );
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let new_end = VirtAddr::new(heap.start().raw() + (16 << 20)).unwrap();
        p.grow_heap(new_end).unwrap();
        let va = VirtAddr::new(heap.start().raw() + (10 << 20)).unwrap();
        p.touch(va).unwrap();
        assert_eq!(p.hole_count(), 0);
    }

    #[test]
    fn cluster_translations_reflect_mapped_neighbours() {
        let mut p = small_process(AsapOsConfig::disabled());
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        // Map pages 0 and 2 of the first cluster.
        p.touch(heap).unwrap();
        p.touch(VirtAddr::new(heap.raw() + 2 * 4096).unwrap())
            .unwrap();
        let cluster = p.cluster_translations(heap);
        assert!(cluster[0].is_some());
        assert!(cluster[1].is_none());
        assert!(cluster[2].is_some());
    }

    #[test]
    fn census_reflects_touched_pages() {
        let mut p = small_process(AsapOsConfig::disabled());
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        for i in 0..10u64 {
            p.touch(VirtAddr::new(heap.raw() + i * 4096).unwrap())
                .unwrap();
        }
        let census = p.census();
        assert_eq!(census.entries_at(PtLevel::Pl1), 10);
        assert_eq!(census.pages_at(PtLevel::Pl1), 1);
    }

    #[test]
    fn different_vmas_get_disjoint_data_frames() {
        let mut layout = ProcessLayout::server_like(ByteSize::mib(8), &[ByteSize::mib(8)]);
        layout.push(crate::VmaSpec::new(VmaKind::Mmap, ByteSize::mib(8)));
        let mut p = Process::new(ProcessConfig::new(Asid(1)).with_layout(layout));
        let mut frames = std::collections::HashSet::new();
        let vmas: Vec<Vma> = p.vmas().iter().copied().collect();
        for vma in vmas {
            for i in 0..16u64 {
                let va = VirtAddr::new(vma.start().raw() + i * 4096).unwrap();
                p.touch(va).unwrap();
                let t = p.translate(va).unwrap();
                assert!(frames.insert(t.frame.raw()), "duplicate data frame");
            }
        }
    }
}
