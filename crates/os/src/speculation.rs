//! The system-software-published speculation hint for hash-based
//! speculative translation (a Revelator-style contender mechanism).
//!
//! Revelator's premise: the OS allocates data frames with a hash-guided
//! policy and *publishes the hash parameters to hardware*, so that on a TLB
//! miss the core can compute a speculative physical address in a few cycles
//! and fetch data from it while the conventional radix walk verifies the
//! guess. In this simulator the OS's data placement is already a pure
//! function ([`DataPageLayout`]): the clustered path is the hash-friendly
//! placement the OS *prefers*, and the scattered path is the
//! fragmentation-forced fallback the hardware hash cannot predict.
//!
//! [`SpeculationHint`] is the architectural register state the OS loads on
//! context switch: per-VMA index windows plus the layout parameters. It is
//! intentionally *hint-only* — a consumer must never commit a speculative
//! translation without verifying it against the page table.

use crate::{DataPageLayout, Process, Vma};
use asap_types::{PhysAddr, VirtAddr, VirtPageNum, PAGE_SIZE};

/// One published VMA window: the dense data-page index base the OS assigned
/// to the VMA, plus its virtual bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationWindow {
    /// First virtual address covered.
    pub start: VirtAddr,
    /// One past the last virtual address covered.
    pub end: VirtAddr,
    /// Process-relative data-page index of `start` (8-aligned).
    pub index_base: u64,
}

impl SpeculationWindow {
    /// Whether `va` falls inside this window.
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }
}

/// The hash parameters and VMA index windows hardware needs to compute a
/// speculative VA → PA mapping — loaded from [`Process::speculation_hint`]
/// on context switch.
#[derive(Debug, Clone)]
pub struct SpeculationHint {
    windows: Vec<SpeculationWindow>,
    layout: DataPageLayout,
}

impl SpeculationHint {
    /// Builds a hint from explicit windows and layout parameters.
    #[must_use]
    pub fn new(windows: Vec<SpeculationWindow>, layout: DataPageLayout) -> Self {
        Self { windows, layout }
    }

    /// An empty hint (speculation always declines).
    #[must_use]
    pub fn empty(layout: DataPageLayout) -> Self {
        Self {
            windows: Vec::new(),
            layout,
        }
    }

    /// The published windows.
    #[must_use]
    pub fn windows(&self) -> &[SpeculationWindow] {
        &self.windows
    }

    /// The speculative physical address for `va`: the hash-placement frame
    /// of its data-page index, or `None` when `va` lies outside every
    /// published window. The guess is correct exactly when the page's
    /// 8-page group took the clustered placement path; callers must verify
    /// before any architectural use.
    #[must_use]
    pub fn predict(&self, va: VirtAddr) -> Option<PhysAddr> {
        let w = self.windows.iter().find(|w| w.covers(va))?;
        let index = w.index_base + (va.raw() - w.start.raw()) / PAGE_SIZE;
        let frame = self.layout.speculative_frame_for(VirtPageNum::new(index));
        Some(PhysAddr::new(
            frame.base_addr().raw() | (va.raw() & (PAGE_SIZE - 1)),
        ))
    }
}

/// Builds the window list for a set of `(vma, index_base)` pairs.
pub(crate) fn windows_for(vmas: &[(Vma, u64)]) -> Vec<SpeculationWindow> {
    vmas.iter()
        .map(|(vma, base)| SpeculationWindow {
            start: vma.start(),
            end: vma.end(),
            index_base: *base,
        })
        .collect()
}

/// Convenience: whether the hint's guess for `va` matches the process'
/// actual mapping (diagnostic; hardware learns this only from the
/// verifying walk).
#[must_use]
pub fn prediction_correct(hint: &SpeculationHint, process: &Process, va: VirtAddr) -> bool {
    match (hint.predict(va), process.translate(va)) {
        (Some(guess), Some(t)) => guess == t.phys_addr(va),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    fn process(cluster_fraction: f64) -> Process {
        Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(64))
                .with_data_cluster_fraction(cluster_fraction)
                .with_seed(11),
        )
    }

    #[test]
    fn fully_clustered_process_predicts_every_page() {
        let mut p = process(1.0);
        let hint = p.speculation_hint();
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        for i in 0..64u64 {
            let va = VirtAddr::new(heap.start().raw() + i * 4096 + 0x123).unwrap();
            p.touch(va).unwrap();
            let t = p.translate(va).unwrap();
            assert_eq!(hint.predict(va), Some(t.phys_addr(va)), "page {i}");
        }
    }

    #[test]
    fn fully_scattered_process_never_predicts_correctly() {
        let mut p = process(0.0);
        let hint = p.speculation_hint();
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        for i in 0..64u64 {
            let va = VirtAddr::new(heap.start().raw() + i * 4096).unwrap();
            p.touch(va).unwrap();
            assert!(!prediction_correct(&hint, &p, va), "page {i}");
        }
    }

    #[test]
    fn intermediate_fraction_tracks_accuracy() {
        let mut p = process(0.5);
        let hint = p.speculation_hint();
        let heap = *p.vma_of_kind(VmaKind::Heap).unwrap();
        let n = 512u64;
        let mut correct = 0u64;
        for i in 0..n {
            let va = VirtAddr::new(heap.start().raw() + i * 4096).unwrap();
            p.touch(va).unwrap();
            if prediction_correct(&hint, &p, va) {
                correct += 1;
            }
        }
        let rate = correct as f64 / n as f64;
        assert!(
            (rate - 0.5).abs() < 0.15,
            "accuracy {rate} should track the 0.5 cluster fraction"
        );
    }

    #[test]
    fn addresses_outside_windows_decline() {
        let p = process(1.0);
        let hint = p.speculation_hint();
        let wild = VirtAddr::new(0x1234_5678_0000).unwrap();
        assert_eq!(hint.predict(wild), None);
    }

    #[test]
    fn prediction_preserves_page_offset() {
        let p = process(1.0);
        let hint = p.speculation_hint();
        let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start();
        let va = VirtAddr::new(heap.raw() + 0xABC).unwrap();
        let pa = hint.predict(va).unwrap();
        assert_eq!(pa.raw() & 0xFFF, 0xABC);
    }
}
