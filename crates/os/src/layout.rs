//! Linux-like process address-space layout.

use crate::{OsError, VmaId, VmaKind, VmaTree};
use asap_types::{ByteSize, VirtAddr, PAGE_SIZE};

/// One requested VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaSpec {
    /// The VMA's role (decides its placement in the address space).
    pub kind: VmaKind,
    /// Requested size (rounded up to a page).
    pub size: ByteSize,
}

impl VmaSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(kind: VmaKind, size: ByteSize) -> Self {
        Self { kind, size }
    }
}

/// Builds a process' VMA tree with a Linux-x86-64-like layout:
/// text low, heap in the middle of the canonical lower half, `mmap` regions
/// descending from below the library area, libraries high, stack at the top.
///
/// # Examples
///
/// ```
/// use asap_os::{ProcessLayout, VmaKind, VmaTree};
/// use asap_types::ByteSize;
///
/// let layout = ProcessLayout::server_like(ByteSize::gib(1), &[ByteSize::mib(256)]);
/// let mut tree = VmaTree::new();
/// layout.build(&mut tree).unwrap();
/// assert!(tree.iter().any(|v| v.kind() == VmaKind::Heap));
/// assert!(tree.len() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProcessLayout {
    specs: Vec<VmaSpec>,
}

/// Address-space anchors (canonical lower-half, 4-level friendly).
impl ProcessLayout {
    /// Base of program text.
    pub const TEXT_BASE: u64 = 0x0000_0000_0040_0000;
    /// Base of the heap.
    pub const HEAP_BASE: u64 = 0x0000_5600_0000_0000;
    /// Top of the descending mmap area.
    pub const MMAP_TOP: u64 = 0x0000_7e00_0000_0000;
    /// Base of the library area.
    pub const LIB_BASE: u64 = 0x0000_7f00_0000_0000;
    /// Top of the stack.
    pub const STACK_TOP: u64 = 0x0000_7ffd_0000_0000;

    /// An empty layout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a VMA request.
    pub fn push(&mut self, spec: VmaSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// The canonical server-process shape the paper's Table 2 reflects: one
    /// text segment, a handful of libraries, a stack, a large heap, and zero
    /// or more large mmap'd dataset regions.
    #[must_use]
    pub fn server_like(heap: ByteSize, mmaps: &[ByteSize]) -> Self {
        let mut l = Self::new();
        l.push(VmaSpec::new(VmaKind::Text, ByteSize::mib(2)));
        for _ in 0..6 {
            l.push(VmaSpec::new(VmaKind::Library, ByteSize::mib(2)));
        }
        l.push(VmaSpec::new(VmaKind::Stack, ByteSize::mib(8)));
        l.push(VmaSpec::new(VmaKind::Heap, heap));
        for &m in mmaps {
            l.push(VmaSpec::new(VmaKind::Mmap, m));
        }
        l
    }

    /// The requested specs.
    #[must_use]
    pub fn specs(&self) -> &[VmaSpec] {
        &self.specs
    }

    /// Materializes the layout into `tree`, returning the created ids in
    /// spec order.
    ///
    /// # Errors
    ///
    /// Propagates [`OsError`] from VMA insertion (e.g. if the requested
    /// regions are so large they collide).
    pub fn build(&self, tree: &mut VmaTree) -> Result<Vec<VmaId>, OsError> {
        let mut ids = Vec::with_capacity(self.specs.len());
        let mut text_cursor = Self::TEXT_BASE;
        let mut lib_cursor = Self::LIB_BASE;
        let mut heap_cursor = Self::HEAP_BASE;
        let mut mmap_cursor = Self::MMAP_TOP;
        let mut stack_cursor = Self::STACK_TOP;
        for spec in &self.specs {
            let size = round_up(spec.size.bytes().max(PAGE_SIZE), PAGE_SIZE);
            let (start, end) = match spec.kind {
                VmaKind::Text => {
                    let s = text_cursor;
                    text_cursor += size + PAGE_SIZE; // guard page
                    (s, s + size)
                }
                VmaKind::Library => {
                    let s = lib_cursor;
                    lib_cursor += size + PAGE_SIZE;
                    (s, s + size)
                }
                VmaKind::Heap => {
                    let s = heap_cursor;
                    heap_cursor += size + PAGE_SIZE;
                    (s, s + size)
                }
                VmaKind::Mmap => {
                    mmap_cursor -= size + PAGE_SIZE;
                    (mmap_cursor, mmap_cursor + size)
                }
                VmaKind::Stack => {
                    stack_cursor -= size + PAGE_SIZE;
                    (stack_cursor, stack_cursor + size)
                }
            };
            let id = tree.insert(
                VirtAddr::new(start).map_err(|_| OsError::Misaligned)?,
                VirtAddr::new(end).map_err(|_| OsError::Misaligned)?,
                spec.kind,
            )?;
            ids.push(id);
        }
        Ok(ids)
    }
}

fn round_up(x: u64, align: u64) -> u64 {
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_layout_builds() {
        let layout = ProcessLayout::server_like(ByteSize::gib(4), &[ByteSize::gib(1)]);
        let mut tree = VmaTree::new();
        let ids = layout.build(&mut tree).unwrap();
        assert_eq!(ids.len(), layout.specs().len());
        assert_eq!(tree.len(), ids.len());
        // Heap dominates the footprint: one VMA covers 75%.
        assert_eq!(tree.vmas_covering(0.75), 1);
        // Table 2 shape: a *few* VMAs cover 99%.
        assert!(tree.vmas_covering(0.99) <= 2);
    }

    #[test]
    fn kinds_land_in_their_areas() {
        let layout = ProcessLayout::server_like(ByteSize::mib(64), &[ByteSize::mib(32)]);
        let mut tree = VmaTree::new();
        layout.build(&mut tree).unwrap();
        for vma in tree.iter() {
            let s = vma.start().raw();
            match vma.kind() {
                VmaKind::Text => {
                    assert!((ProcessLayout::TEXT_BASE..ProcessLayout::HEAP_BASE).contains(&s));
                }
                VmaKind::Heap => {
                    assert!((ProcessLayout::HEAP_BASE..ProcessLayout::MMAP_TOP).contains(&s));
                }
                VmaKind::Mmap => {
                    assert!((ProcessLayout::HEAP_BASE..ProcessLayout::MMAP_TOP).contains(&s));
                }
                VmaKind::Library => assert!(s >= ProcessLayout::LIB_BASE),
                VmaKind::Stack => {
                    assert!((ProcessLayout::LIB_BASE..ProcessLayout::STACK_TOP).contains(&s));
                }
            }
        }
    }

    #[test]
    fn multiple_mmaps_descend_without_overlap() {
        let layout = ProcessLayout::server_like(
            ByteSize::mib(1),
            &[ByteSize::gib(2), ByteSize::gib(2), ByteSize::gib(2)],
        );
        let mut tree = VmaTree::new();
        layout.build(&mut tree).unwrap(); // insert() would error on overlap
        let mmaps: Vec<_> = tree.iter().filter(|v| v.kind() == VmaKind::Mmap).collect();
        assert_eq!(mmaps.len(), 3);
    }

    #[test]
    fn sizes_round_up_to_pages() {
        let mut layout = ProcessLayout::new();
        layout.push(VmaSpec::new(VmaKind::Heap, ByteSize(100)));
        let mut tree = VmaTree::new();
        layout.build(&mut tree).unwrap();
        assert_eq!(tree.iter().next().unwrap().len(), PAGE_SIZE);
    }
}
