//! ASAP VMA descriptors — the OS-managed architectural state (Fig. 6).

use asap_types::{PhysAddr, VirtAddr};

/// One VMA descriptor as exposed to the hardware range registers: the VMA's
/// bounds plus the base physical address of the contiguous region holding
/// each prefetchable PT level.
///
/// Descriptors are "part of the architectural state of the hardware thread
/// and are managed by the OS in the presence of ... context switch or
/// interrupt handling" (§3.4); `asap-core`'s range-register file stores and
/// matches them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaDescriptor {
    /// First virtual address covered.
    pub start: VirtAddr,
    /// One past the last virtual address covered.
    pub end: VirtAddr,
    /// Base of the contiguous PL1 region, when PL1 prefetching is enabled
    /// for this VMA.
    pub pl1_base: Option<PhysAddr>,
    /// Base of the contiguous PL2 region, when PL2 prefetching is enabled.
    pub pl2_base: Option<PhysAddr>,
}

impl VmaDescriptor {
    /// Whether `va` falls inside the descriptor's range.
    #[must_use]
    pub fn covers(&self, va: VirtAddr) -> bool {
        self.start <= va && va < self.end
    }

    /// Bytes covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl core::fmt::Display for VmaDescriptor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "desc[{}..{}, pl1={}, pl2={}]",
            self.start,
            self.end,
            self.pl1_base.map_or("-".to_string(), |p| p.to_string()),
            self.pl2_base.map_or("-".to_string(), |p| p.to_string()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_and_len() {
        let d = VmaDescriptor {
            start: VirtAddr::new(0x1000).unwrap(),
            end: VirtAddr::new(0x3000).unwrap(),
            pl1_base: Some(PhysAddr::new(0x10_0000)),
            pl2_base: None,
        };
        assert!(d.covers(VirtAddr::new(0x1000).unwrap()));
        assert!(d.covers(VirtAddr::new(0x2fff).unwrap()));
        assert!(!d.covers(VirtAddr::new(0x3000).unwrap()));
        assert_eq!(d.len(), 0x2000);
        assert!(!d.is_empty());
        assert!(d.to_string().contains("pl2=-"));
    }
}
