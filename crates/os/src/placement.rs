//! Page-table node placement: scattered baseline vs. ASAP reserved regions.

use crate::{PhysMap, VmaId};
use asap_alloc::{ContiguousReservation, FrameAllocator};
use asap_pt::PtNodeAllocator;
use asap_types::{FastMap, PhysFrameNum, PtLevel, VirtAddr, INDEX_BITS};

/// OS-side ASAP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AsapOsConfig {
    /// PT levels placed in reserved, sorted regions (the prefetch targets).
    /// The paper evaluates `[PL1]` and `[PL1, PL2]`.
    pub levels: Vec<PtLevel>,
    /// Hardware range registers available (§3.4: "tracking 8–16 VMAs is
    /// enough to cover 99% of the memory footprint").
    pub max_descriptors: usize,
    /// Probability that an asynchronous region extension fails and the new
    /// PT pages become out-of-line "holes" (§3.7.2).
    pub extension_failure_rate: f64,
}

impl AsapOsConfig {
    /// ASAP disabled: everything scattered (the baseline).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            levels: Vec::new(),
            max_descriptors: 0,
            extension_failure_rate: 0.0,
        }
    }

    /// Reserve and sort PL1 only (the paper's `P1` configuration).
    #[must_use]
    pub fn pl1_only() -> Self {
        Self {
            levels: vec![PtLevel::Pl1],
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    }

    /// Reserve and sort PL1 and PL2 (the paper's `P1 + P2` configuration).
    #[must_use]
    pub fn pl1_and_pl2() -> Self {
        Self {
            levels: vec![PtLevel::Pl1, PtLevel::Pl2],
            max_descriptors: 16,
            extension_failure_rate: 0.0,
        }
    }

    /// Whether any level is reserved.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.levels.is_empty()
    }

    /// Whether `level` is a reserved (prefetchable) level.
    #[must_use]
    pub fn covers(&self, level: PtLevel) -> bool {
        self.levels.contains(&level)
    }
}

/// Which placement policy a process uses for its page-table nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtPlacement {
    /// Buddy-like scattering for every node (the baseline).
    Scattered,
    /// ASAP: reserved contiguous sorted regions for the configured levels,
    /// scattering for the rest (PL3/PL4 nodes, holes).
    AsapReserved,
}

/// The i-th table page at `level` covering `va` within a VMA starting at
/// `vma_start` — the sorted-region index of the paper's base-plus-offset
/// arithmetic.
#[must_use]
pub fn node_index(vma_start: VirtAddr, level: PtLevel, va: VirtAddr) -> u64 {
    let shift = level.index_shift() + INDEX_BITS; // one table page's coverage
    (va.raw() >> shift) - (vma_start.raw() >> shift)
}

/// Number of table pages at `level` needed to cover `[start, end)`.
#[must_use]
pub fn nodes_needed(start: VirtAddr, end: VirtAddr, level: PtLevel) -> u64 {
    if start >= end {
        return 0;
    }
    let shift = level.index_shift() + INDEX_BITS;
    ((end.raw() - 1) >> shift) - (start.raw() >> shift) + 1
}

/// All contiguous reservations of one process, with the bump allocator that
/// carves them out of the process' reservation window.
#[derive(Debug, Clone)]
pub struct ReservationSet {
    map: FastMap<(VmaId, PtLevel), ContiguousReservation>,
    /// Physical frames set aside for each region (in-place growth headroom).
    capacity: FastMap<(VmaId, PtLevel), u64>,
    /// Indices at or beyond this value are holes (failed extension), per
    /// region.
    failed_beyond: FastMap<(VmaId, PtLevel), u64>,
    next_frame: u64,
    limit: u64,
    holes_punched: u64,
}

impl ReservationSet {
    /// Creates an empty set drawing from the map's reservation window.
    #[must_use]
    pub fn new(phys: PhysMap) -> Self {
        let base = phys.reservation_base().raw();
        Self {
            map: FastMap::default(),
            capacity: FastMap::default(),
            failed_beyond: FastMap::default(),
            next_frame: base,
            limit: base + PhysMap::RESERVATION_WINDOW_FRAMES,
            holes_punched: 0,
        }
    }

    /// Reserves the region for (`vma`, `level`) covering `[start, end)`.
    ///
    /// Reserving twice for the same key is a no-op (idempotent setup).
    ///
    /// # Panics
    ///
    /// Panics if the reservation window is exhausted (a configuration bug:
    /// the window fits the PT of multi-terabyte datasets).
    pub fn reserve(&mut self, vma: VmaId, level: PtLevel, start: VirtAddr, end: VirtAddr) {
        if self.map.contains_key(&(vma, level)) {
            return;
        }
        let len = nodes_needed(start, end, level);
        // Reserve with headroom so moderate VMA growth can stay in line —
        // the OS "reserves ... ahead of the eventual demand allocation"
        // (§3.3). Growth beyond the headroom behaves like a failed
        // extension (§3.7.2).
        let cap = (len.next_power_of_two() * 2).max(16);
        assert!(
            self.next_frame + cap <= self.limit,
            "reservation window exhausted"
        );
        let base = PhysFrameNum::new(self.next_frame);
        self.next_frame += cap;
        self.capacity.insert((vma, level), cap);
        self.map
            .insert((vma, level), ContiguousReservation::new(base, len));
    }

    /// The reservation for (`vma`, `level`).
    #[must_use]
    pub fn get(&self, vma: VmaId, level: PtLevel) -> Option<&ContiguousReservation> {
        self.map.get(&(vma, level))
    }

    /// Region base — the value the OS writes into the VMA descriptor.
    #[must_use]
    pub fn base(&self, vma: VmaId, level: PtLevel) -> Option<PhysFrameNum> {
        self.map.get(&(vma, level)).map(ContiguousReservation::base)
    }

    /// Handles a VMA extension: on success the regions simply grow; on
    /// failure new indices become holes (§3.7.2).
    pub fn extend(
        &mut self,
        vma: VmaId,
        level: PtLevel,
        new_start: VirtAddr,
        new_end: VirtAddr,
        success: bool,
    ) {
        let Some(res) = self.map.get_mut(&(vma, level)) else {
            return;
        };
        let new_len = nodes_needed(new_start, new_end, level);
        if new_len <= res.len() {
            return;
        }
        let cap = self.capacity.get(&(vma, level)).copied().unwrap_or(0);
        if success && new_len <= cap {
            res.extend(new_len);
        } else {
            // Adjacent physical memory is unavailable (pinned pages, or the
            // headroom ran out): new node indices go out of line (§3.7.2).
            let old = res.len();
            self.failed_beyond.entry((vma, level)).or_insert(old);
        }
    }

    /// Resolves the frame for node `index` of (`vma`, `level`), allocating
    /// a hole frame from `fallback` when the index lies beyond a failed
    /// extension. Returns `None` when no reservation exists for the key.
    pub fn place(
        &mut self,
        vma: VmaId,
        level: PtLevel,
        index: u64,
        fallback: &mut dyn FrameAllocator,
    ) -> Option<PhysFrameNum> {
        let failed_at = self.failed_beyond.get(&(vma, level)).copied();
        let res = self.map.get_mut(&(vma, level))?;
        if let Some(limit) = failed_at {
            if index >= limit {
                if let Some(f) = res.frame_for_index(index) {
                    // Hole already materialized.
                    if !res.is_prefetchable(index) {
                        return Some(f);
                    }
                }
                let frame = fallback
                    .alloc_frame()
                    .expect("fallback allocator exhausted");
                res.punch_hole(index, frame);
                self.holes_punched += 1;
                return Some(frame);
            }
        }
        res.frame_for_index(index)
    }

    /// Total holes punched (diagnostic).
    #[must_use]
    pub fn holes_punched(&self) -> u64 {
        self.holes_punched
    }
}

/// The per-fault `PtNodeAllocator`: consults the reservations for ASAP
/// levels inside a known VMA, falls back to buddy-like scattering otherwise
/// (PL3/PL4 nodes, non-ASAP processes, addresses outside any reserved VMA).
pub struct NodePlacer<'a> {
    /// The VMA the faulting address belongs to, if any.
    pub vma: Option<(VmaId, VirtAddr)>,
    /// The process' reservations.
    pub reservations: &'a mut ReservationSet,
    /// Scattered fallback (the baseline path).
    pub scatter: &'a mut dyn FrameAllocator,
    /// Levels with reserved regions.
    pub asap_levels: &'a [PtLevel],
}

impl PtNodeAllocator for NodePlacer<'_> {
    fn alloc_node(&mut self, level: PtLevel, va: VirtAddr) -> PhysFrameNum {
        if let Some((vma_id, vma_start)) = self.vma {
            if self.asap_levels.contains(&level) {
                let index = node_index(vma_start, level, va);
                if let Some(frame) = self.reservations.place(vma_id, level, index, self.scatter) {
                    return frame;
                }
            }
        }
        self.scatter
            .alloc_frame()
            .expect("PT scatter window exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_alloc::{ScatterAllocator, ScatterConfig};

    fn va(raw: u64) -> VirtAddr {
        VirtAddr::new(raw).unwrap()
    }

    #[test]
    fn node_index_arithmetic() {
        let start = va(0x5600_0000_0000);
        // PL1: one table page covers 2 MiB.
        assert_eq!(node_index(start, PtLevel::Pl1, start), 0);
        assert_eq!(
            node_index(start, PtLevel::Pl1, va(start.raw() + (2 << 20))),
            1
        );
        assert_eq!(
            node_index(start, PtLevel::Pl1, va(start.raw() + (2 << 20) - 1)),
            0
        );
        // PL2: one table page covers 1 GiB.
        assert_eq!(
            node_index(start, PtLevel::Pl2, va(start.raw() + (1 << 30))),
            1
        );
        // Unaligned VMA start still indexes correctly (floor semantics).
        let odd = va(0x5600_0010_0000); // 1 MiB into a 2 MiB region
        assert_eq!(node_index(odd, PtLevel::Pl1, odd), 0);
        assert_eq!(node_index(odd, PtLevel::Pl1, va(odd.raw() + (1 << 20))), 1);
    }

    #[test]
    fn nodes_needed_counts_straddling() {
        let start = va(0x5600_0010_0000); // mid-2MiB
        let end = va(0x5600_0030_0000); // 2 MiB later, also mid-region
                                        // Straddles two PL1 table pages.
        assert_eq!(nodes_needed(start, end, PtLevel::Pl1), 2);
        assert_eq!(nodes_needed(start, start, PtLevel::Pl1), 0);
        // A 4 GiB aligned VMA needs 2048 PL1 pages and 4 PL2 pages.
        let s = va(0x7000_0000_0000);
        let e = va(0x7000_0000_0000 + (4u64 << 30));
        assert_eq!(nodes_needed(s, e, PtLevel::Pl1), 2048);
        assert_eq!(nodes_needed(s, e, PtLevel::Pl2), 4);
    }

    fn scatter() -> ScatterAllocator {
        ScatterAllocator::new(ScatterConfig {
            mean_run_len: 1.0,
            phys_frames: 1 << 16,
            seed: 0,
        })
    }

    #[test]
    fn reservation_roundtrip_and_sortedness() {
        let mut set = ReservationSet::new(PhysMap::new(asap_types::Asid(1)));
        let vma = VmaId(0);
        let (s, e) = (va(0x5600_0000_0000), va(0x5600_4000_0000)); // 1 GiB
        set.reserve(vma, PtLevel::Pl1, s, e);
        let mut fallback = scatter();
        // Node frames are base + index: physically sorted by VA.
        let f0 = set.place(vma, PtLevel::Pl1, 0, &mut fallback).unwrap();
        let f7 = set.place(vma, PtLevel::Pl1, 7, &mut fallback).unwrap();
        assert_eq!(f7.raw(), f0.raw() + 7);
        assert_eq!(set.base(vma, PtLevel::Pl1).unwrap(), f0);
        // Unreserved key yields None.
        assert!(set.place(vma, PtLevel::Pl2, 0, &mut fallback).is_none());
    }

    #[test]
    fn reserve_is_idempotent() {
        let mut set = ReservationSet::new(PhysMap::new(asap_types::Asid(1)));
        let vma = VmaId(3);
        let (s, e) = (va(0x1000_0000), va(0x2000_0000));
        set.reserve(vma, PtLevel::Pl1, s, e);
        let base = set.base(vma, PtLevel::Pl1).unwrap();
        set.reserve(vma, PtLevel::Pl1, s, e);
        assert_eq!(set.base(vma, PtLevel::Pl1).unwrap(), base);
    }

    #[test]
    fn successful_extension_stays_in_line() {
        let mut set = ReservationSet::new(PhysMap::new(asap_types::Asid(1)));
        let vma = VmaId(0);
        let s = va(0x5600_0000_0000);
        set.reserve(vma, PtLevel::Pl1, s, va(s.raw() + (4 << 20))); // 2 nodes
        set.extend(vma, PtLevel::Pl1, s, va(s.raw() + (8 << 20)), true); // 4 nodes
        let mut fallback = scatter();
        let f0 = set.place(vma, PtLevel::Pl1, 0, &mut fallback).unwrap();
        let f3 = set.place(vma, PtLevel::Pl1, 3, &mut fallback).unwrap();
        assert_eq!(f3.raw(), f0.raw() + 3);
        assert_eq!(set.holes_punched(), 0);
    }

    #[test]
    fn failed_extension_creates_holes() {
        let mut set = ReservationSet::new(PhysMap::new(asap_types::Asid(1)));
        let vma = VmaId(0);
        let s = va(0x5600_0000_0000);
        set.reserve(vma, PtLevel::Pl1, s, va(s.raw() + (4 << 20))); // 2 nodes
        set.extend(vma, PtLevel::Pl1, s, va(s.raw() + (8 << 20)), false);
        let mut fallback = scatter();
        let f0 = set.place(vma, PtLevel::Pl1, 0, &mut fallback).unwrap();
        let f2 = set.place(vma, PtLevel::Pl1, 2, &mut fallback).unwrap();
        // Index 2 is a hole: out of line.
        assert_ne!(f2.raw(), f0.raw() + 2);
        assert_eq!(set.holes_punched(), 1);
        // The hole is stable across repeated placement.
        assert_eq!(set.place(vma, PtLevel::Pl1, 2, &mut fallback).unwrap(), f2);
        assert_eq!(set.holes_punched(), 1);
        // In-line indices before the failure point still work.
        assert!(set.get(vma, PtLevel::Pl1).unwrap().is_prefetchable(1));
        assert!(!set.get(vma, PtLevel::Pl1).unwrap().is_prefetchable(2));
    }

    #[test]
    fn node_placer_uses_reservations_for_asap_levels() {
        let mut set = ReservationSet::new(PhysMap::new(asap_types::Asid(1)));
        let vma = VmaId(0);
        let (s, e) = (va(0x5600_0000_0000), va(0x5600_4000_0000));
        set.reserve(vma, PtLevel::Pl1, s, e);
        set.reserve(vma, PtLevel::Pl2, s, e);
        let res_base = set.base(vma, PtLevel::Pl1).unwrap();
        let mut sc = scatter();
        let levels = [PtLevel::Pl1, PtLevel::Pl2];
        let mut placer = NodePlacer {
            vma: Some((vma, s)),
            reservations: &mut set,
            scatter: &mut sc,
            asap_levels: &levels,
        };
        // PL1 node for the VMA start: in-line at the reservation base.
        assert_eq!(placer.alloc_node(PtLevel::Pl1, s), res_base);
        // PL3 is not an ASAP level: scattered.
        let f = placer.alloc_node(PtLevel::Pl3, s);
        assert!(f.raw() < (1 << 16), "scatter window frame expected");
        // Outside any VMA: scattered too.
        let mut placer2 = NodePlacer {
            vma: None,
            reservations: &mut set,
            scatter: &mut sc,
            asap_levels: &levels,
        };
        let f2 = placer2.alloc_node(PtLevel::Pl1, va(0x9999_0000));
        assert!(f2.raw() < (1 << 16));
    }

    #[test]
    fn config_presets() {
        assert!(!AsapOsConfig::disabled().is_enabled());
        assert!(AsapOsConfig::pl1_only().covers(PtLevel::Pl1));
        assert!(!AsapOsConfig::pl1_only().covers(PtLevel::Pl2));
        assert!(AsapOsConfig::pl1_and_pl2().covers(PtLevel::Pl2));
    }
}
