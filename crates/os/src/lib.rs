//! The operating-system model for the ASAP reproduction.
//!
//! ASAP's software half is an OS policy (paper §3.3): reserve, per VMA and
//! per prefetched page-table level, a contiguous physical region, and keep
//! the PT pages inside it sorted by the virtual addresses they map. This
//! crate implements that policy next to a faithful baseline:
//!
//! * [`Vma`]/[`VmaTree`] — non-overlapping virtual ranges with the coverage
//!   statistics of Table 2 (total VMAs, VMAs covering 99% of footprint);
//! * [`ProcessLayout`] — a Linux-like address-space layout (text, libraries,
//!   heap, mmap area, stack);
//! * [`DataPageLayout`] — deterministic, collision-free placement of *data*
//!   pages via Feistel permutations, with a tunable clusterable fraction
//!   (the physical-contiguity knob behind the clustered-TLB comparison,
//!   §5.4.1/Table 7);
//! * [`PtPlacement`] — the node-placement policies: `Scattered` reproduces
//!   buddy-allocator dispersion (Table 2's region counts), `AsapReserved`
//!   implements the paper's contiguous sorted regions with §3.7.2 hole
//!   handling on failed extensions;
//! * [`Process`] — demand paging tying it all together, and the
//!   [`VmaDescriptor`]s the OS exposes to the hardware range registers
//!   (Fig. 6).
//!
//! # Examples
//!
//! ```
//! use asap_os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
//! use asap_types::{Asid, ByteSize};
//!
//! let mut process = Process::new(ProcessConfig::new(Asid(1))
//!     .with_heap(ByteSize::mib(64))
//!     .with_asap(AsapOsConfig::pl1_and_pl2()));
//! let heap = process.vma_of_kind(VmaKind::Heap).unwrap();
//! let va = heap.start();
//! process.touch(va).unwrap();                  // demand fault
//! assert!(process.translate(va).is_some());    // now mapped
//! let descs = process.vma_descriptors();
//! assert!(!descs.is_empty());                  // range registers loaded
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data_layout;
mod descriptor;
mod error;
mod layout;
mod phys_map;
mod placement;
mod process;
pub(crate) mod speculation;
mod vma;

pub use data_layout::{feistel_permute, DataPageLayout};
pub use descriptor::VmaDescriptor;
pub use error::OsError;
pub use layout::{ProcessLayout, VmaSpec};
pub use phys_map::PhysMap;
pub use placement::{AsapOsConfig, PtPlacement, ReservationSet};
pub use process::{Process, ProcessConfig, TouchOutcome};
pub use speculation::{prediction_correct, SpeculationHint, SpeculationWindow};
pub use vma::{Vma, VmaId, VmaKind, VmaTree};
