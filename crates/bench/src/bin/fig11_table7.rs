//! Regenerates one experiment of the paper's evaluation via the scenario
//! registry; see ARCHITECTURE.md.

fn main() {
    asap_bench::print_experiment("fig11_table7");
}
