//! Regenerates one experiment of the paper's evaluation via the scenario
//! registry; see ARCHITECTURE.md.

fn main() {
    asap_bench::print_experiment("ablation_pwc");
}
