//! Regenerates every table and figure of the paper's evaluation by
//! iterating the scenario registry (one flattened parallel fan-out).
//!
//! Markdown goes to stdout; redirect it into a file to snapshot a full
//! reproduction run. Machine-readable results are also written to
//! `BENCH_results_full.json` (override the path with the first argument)
//! so successive commits have a perf trajectory to diff against. The
//! default path deliberately differs from the committed smoke-tier
//! `BENCH_results.json`: the two tiers use different windows and must
//! never overwrite each other.

fn main() {
    let start = std::time::Instant::now();
    let json_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_results_full.json".into());
    println!("# ASAP reproduction: all experiments\n");
    let reports = asap_bench::run_all_experiments(asap_bench::sim_config());
    let mut failed = false;
    for report in &reports {
        for e in &report.results.errors {
            eprintln!("{}/{}/{}: {}", report.name, e.workload, e.variant, e.error);
            failed = true;
        }
        for t in &report.tables {
            println!("{}", t.render());
        }
    }
    if failed {
        eprintln!("one or more runs reported driver errors");
        std::process::exit(1);
    }
    let results: Vec<_> = reports.into_iter().map(|r| r.results).collect();
    match asap_bench::write_results_json(&json_path, &results, asap_bench::tier()) {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("total wall time: {:?}", start.elapsed());
}
