//! Regenerates every table and figure of the paper's evaluation.
//!
//! Output is markdown; redirect it into a file to snapshot a full
//! reproduction run (EXPERIMENTS.md embeds one such snapshot).

fn main() {
    let start = std::time::Instant::now();
    println!("# ASAP reproduction: all experiments\n");
    println!("{}", asap_bench::table1().render());
    println!("{}", asap_bench::fig2().render());
    println!("{}", asap_bench::fig3().render());
    println!("{}", asap_bench::table2().render());
    let (a, b) = asap_bench::fig8();
    println!("{}", a.render());
    println!("{}", b.render());
    println!("{}", asap_bench::fig9().render());
    let (a, b) = asap_bench::fig10();
    println!("{}", a.render());
    println!("{}", b.render());
    println!("{}", asap_bench::table6().render());
    let (fig11, table7) = asap_bench::fig11_table7();
    println!("{}", table7.render());
    println!("{}", fig11.render());
    println!("{}", asap_bench::fig12().render());
    println!("{}", asap_bench::ablation_pwc().render());
    println!("{}", asap_bench::ablation_scatter().render());
    println!("{}", asap_bench::ablation_5level().render());
    eprintln!("total wall time: {:?}", start.elapsed());
}
