//! CI smoke runner: executes the registry's smoke scenarios end-to-end at
//! miniature scale — the whole engine matrix through the real driver loop,
//! catching driver regressions unit tests miss.
//!
//! Writes `BENCH_results.json` (tier "smoke"; override the path with the
//! first argument). The simulation is fully deterministic, so the file is
//! byte-stable across hosts: `ci.sh` regenerates it and fails on a git
//! diff — that diff IS the behaviour/perf-trajectory check.

use asap_sim::scenarios::{run_scenarios, smoke_set};
use asap_sim::SimConfig;

fn main() {
    let start = std::time::Instant::now();
    let json_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_results.json".into());
    let set = smoke_set();
    let results = run_scenarios(&set, SimConfig::smoke_test());
    for r in &results {
        for e in &r.errors {
            eprintln!("{}/{}/{}: {}", r.name, e.workload, e.variant, e.error);
        }
        assert!(r.is_complete(), "scenario {} had driver errors", r.name);
        for t in asap_bench::render(r.name, r) {
            println!("{}", t.render());
        }
        for run in &r.runs {
            assert_eq!(run.result.faults, 0, "{}/{} faulted", r.name, run.variant);
        }
    }
    match asap_bench::write_results_json(&json_path, &results, "smoke") {
        Ok(()) => eprintln!("wrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    eprintln!("smoke wall time: {:?}", start.elapsed());
}
