//! Regenerates one experiment of the paper's evaluation; see DESIGN.md.

fn main() {
    let (a, b) = asap_bench::fig8();
    println!("{}", a.render());
    println!("{}", b.render());
}
