//! Regenerates one experiment of the paper's evaluation; see DESIGN.md.

fn main() {
    println!("{}", asap_bench::ablation_scatter().render());
}
