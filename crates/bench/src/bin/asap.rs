//! `asap` — the ONE experiment CLI for the reproduction.
//!
//! Replaces the old per-figure binaries: every experiment is a scenario in
//! the registry, rendered by its metadata-selected renderer.
//!
//! ```text
//! asap list                    # what's in the registry
//! asap run fig3 fig8           # run named scenarios, print their tables
//! asap smoke                   # CI smoke set -> committed BENCH_results.json
//! asap all                     # every paper scenario -> BENCH_results_full.json
//!
//! options:
//!   --json <path>              # override the results JSON path
//!   --quick                    # reduced windows (tier "quick"; ASAP_QUICK=1 also works)
//!   --filter <substr>          # keep only scenarios whose name contains <substr>
//!   --cores <n>                # run every spec at n cores (run command only)
//!   --numa <n>                 # run every spec across n NUMA nodes (run command only)
//! ```
//!
//! Exit status: 0 on success, 1 when any run reported a driver error (the
//! errors are printed to stderr — a failed run in a fan-out never hides
//! behind a green exit), 2 on usage errors.

use asap_bench::{
    execute_scenarios_cached, paper_scenarios, render, report_errors, results_tier, sim_config,
    write_results_json,
};
use asap_core::NestedAsapConfig;
use asap_sim::scenarios::{find, registry, smoke_set, Scenario, ScenarioResults};
use asap_sim::{CacheHandle, CacheStats, EngineSelect, RunSpec, SimConfig, Table, TelemetryConfig};
use asap_telemetry::{chrome, ChromeEvent, Collect as _, MetricSet, PhaseProfile};
use asap_workloads::WorkloadSpec;
use std::process::ExitCode;

const USAGE: &str = "\
asap — drive the ASAP-reproduction experiment registry

USAGE:
    asap <COMMAND> [OPTIONS]

COMMANDS:
    list                 list registered scenarios
    run <scenario>...    run the named scenarios and print their tables
    smoke                run the CI smoke set and write BENCH_results.json
    all                  run every paper scenario and write BENCH_results_full.json
    trace-check <path>   validate a --trace file: parse + byte-identical re-emit
    metrics-manifest [path]
                         regenerate the committed metric-name manifest
                         (default METRICS.json) from live runs of every
                         backend; --check verifies instead of writing

OPTIONS:
    --json <path>        override the results JSON path
                         (run: none unless given; smoke: BENCH_results.json;
                          all: BENCH_results_full.json)
    --quick              reduced simulation windows (tier \"quick\")
    --filter <substr>    keep only scenarios whose name contains <substr>
    --cores <n>          force every spec of a `run` command to n cores
                         sharing the memory fabric (1..=64; smoke/all keep
                         their registered core counts so committed
                         baselines stay comparable)
    --numa <n>           force every spec of a `run` command across n NUMA
                         nodes (1..=8, native multi-core runs only;
                         smoke/all keep their registered topology)
    --trace <path>       record per-access events and write a Chrome
                         trace-event JSON (open at ui.perfetto.dev; `run`
                         only — the committed smoke baseline must stay
                         telemetry-free)
    --metrics <path>     write a metrics snapshot covering every run's
                         engine/hierarchy/NUMA counters (`run` only)
    --profile            print the simulator self-profile phase table
                         (`run` only)
    --check              with metrics-manifest: fail (exit 1) if the
                         committed manifest differs from a regeneration
                         instead of rewriting it
    --cache-dir <path>   content-addressed result cache directory
                         (default target/asap-cache, git-ignored); a warm
                         re-run decodes stored results instead of
                         simulating
    --no-cache           simulate every run fresh, never read or write
                         the result cache
    --cache-stats        print the cache hit/miss/bytes summary line
                         after the fan-out
    -h, --help           print this help
";

struct Cli {
    command: String,
    names: Vec<String>,
    json: Option<String>,
    quick: bool,
    filter: Option<String>,
    cores: Option<usize>,
    numa: Option<usize>,
    trace: Option<String>,
    metrics: Option<String>,
    profile: bool,
    check: bool,
    cache_dir: Option<String>,
    no_cache: bool,
    cache_stats: bool,
}

impl Cli {
    fn telemetry(&self) -> TelemetryConfig {
        TelemetryConfig {
            trace: self.trace.is_some(),
            metrics: self.metrics.is_some(),
            profile: self.profile,
        }
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("asap: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        command: String::new(),
        names: Vec::new(),
        json: None,
        quick: false,
        filter: None,
        cores: None,
        numa: None,
        trace: None,
        metrics: None,
        profile: false,
        check: false,
        cache_dir: None,
        no_cache: false,
        cache_stats: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                cli.json = Some(
                    it.next()
                        .ok_or_else(|| "--json needs a path".to_string())?
                        .clone(),
                );
            }
            "--quick" => cli.quick = true,
            "--cores" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--cores needs a count".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--cores needs a number, got {n:?}"))?;
                if n == 0 || n > asap_sim::MAX_CORES {
                    return Err(format!(
                        "--cores must be 1..={}, got {n}",
                        asap_sim::MAX_CORES
                    ));
                }
                cli.cores = Some(n);
            }
            "--numa" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--numa needs a count".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--numa needs a number, got {n:?}"))?;
                if n == 0 || n > asap_sim::MAX_NUMA_NODES {
                    return Err(format!(
                        "--numa must be 1..={}, got {n}",
                        asap_sim::MAX_NUMA_NODES
                    ));
                }
                cli.numa = Some(n);
            }
            "--trace" => {
                cli.trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace needs a path".to_string())?
                        .clone(),
                );
            }
            "--metrics" => {
                cli.metrics = Some(
                    it.next()
                        .ok_or_else(|| "--metrics needs a path".to_string())?
                        .clone(),
                );
            }
            "--profile" => cli.profile = true,
            "--check" => cli.check = true,
            "--cache-dir" => {
                cli.cache_dir = Some(
                    it.next()
                        .ok_or_else(|| "--cache-dir needs a path".to_string())?
                        .clone(),
                );
            }
            "--no-cache" => cli.no_cache = true,
            "--cache-stats" => cli.cache_stats = true,
            "--filter" => {
                cli.filter = Some(
                    it.next()
                        .ok_or_else(|| "--filter needs a substring".to_string())?
                        .clone(),
                );
            }
            "-h" | "--help" | "help" => {
                cli.command = "help".into();
                return Ok(cli);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option {flag}"));
            }
            positional => {
                if cli.command.is_empty() {
                    cli.command = positional.into();
                } else {
                    cli.names.push(positional.into());
                }
            }
        }
    }
    if cli.command.is_empty() {
        return Err("a command is required".into());
    }
    Ok(cli)
}

fn apply_filter(set: Vec<Scenario>, filter: Option<&str>) -> Vec<Scenario> {
    match filter {
        Some(f) => set.into_iter().filter(|s| s.name.contains(f)).collect(),
        None => set,
    }
}

/// Summarizes a scenario's run axes as `cores × numa-nodes × engines`
/// (e.g. `1c 1n 5e`, or `1-8c` when a sweep spans several core counts).
fn axis_summary(runs: &[asap_sim::scenarios::ScenarioRun]) -> String {
    if runs.is_empty() {
        return "analytic".into();
    }
    let span = |values: Vec<usize>| {
        let lo = values.iter().copied().min().unwrap_or(1);
        let hi = values.iter().copied().max().unwrap_or(1);
        if lo == hi {
            hi.to_string()
        } else {
            format!("{lo}-{hi}")
        }
    };
    let cores = span(runs.iter().map(|r| r.spec.cores).collect());
    let numa = span(runs.iter().map(|r| r.spec.numa_nodes).collect());
    let mut engines: Vec<String> = Vec::new();
    for r in runs {
        let e = format!("{:?}", r.spec.engine);
        if !engines.contains(&e) {
            engines.push(e);
        }
    }
    format!("{cores}c {numa}n {}e", engines.len())
}

fn cmd_list(cli: &Cli) -> ExitCode {
    let set = apply_filter(registry(), cli.filter.as_deref());
    if set.is_empty() {
        eprintln!("asap: no scenario matches the filter");
        return ExitCode::from(1);
    }
    for s in &set {
        let runs = s.runs(s.windows_or(sim_config(cli.quick)));
        let tag = if s.smoke { "smoke" } else { "     " };
        println!(
            "{:<18} {:>3} runs  [{:>9}]  {}  {}",
            s.name,
            runs.len(),
            axis_summary(&runs),
            tag,
            s.title
        );
    }
    ExitCode::SUCCESS
}

/// Flattens every traced run into Chrome trace events: one process per
/// run (named `scenario/workload/variant`), tid 0 the scheduler
/// arbitration track, tid `core + 1` each simulated core's timeline.
fn chrome_events(results: &[ScenarioResults]) -> Vec<ChromeEvent> {
    let mut out = Vec::new();
    let mut pid = 0u32;
    for res in results {
        for run in &res.runs {
            let Some(t) = &run.telemetry else { continue };
            if t.cores.is_empty() && t.sched.is_empty() {
                continue;
            }
            pid += 1;
            out.push(ChromeEvent::process_name(
                pid,
                &format!("{}/{}/{}", res.name, run.workload, run.variant),
            ));
            if !t.sched.is_empty() {
                out.push(ChromeEvent::thread_name(pid, 0, "scheduler"));
                for e in &t.sched {
                    out.push(ChromeEvent::from_trace(pid, 0, e));
                }
            }
            for core in &t.cores {
                let tid = core.core + 1;
                out.push(ChromeEvent::thread_name(pid, tid, &core.label));
                if core.dropped > 0 {
                    eprintln!(
                        "trace: {}/{}/{} core {} dropped {} events (ring full)",
                        res.name, run.workload, run.variant, core.core, core.dropped
                    );
                }
                for e in &core.events {
                    out.push(ChromeEvent::from_trace(pid, tid, e));
                }
            }
        }
    }
    out
}

/// Renders every collected metrics snapshot as one JSON document:
/// `{"runs": [{"scenario", "workload", "variant", "metrics": [...]}]}`.
fn metrics_json(results: &[ScenarioResults]) -> String {
    use asap_telemetry::metrics::escape;
    use std::fmt::Write as _;
    let mut entries = Vec::new();
    for res in results {
        for run in &res.runs {
            let Some(t) = &run.telemetry else { continue };
            if t.metrics.is_empty() {
                continue;
            }
            let mut s = String::new();
            let _ = write!(
                s,
                "    {{\"scenario\": \"{}\", \"workload\": \"{}\", \"variant\": \"{}\", \
                 \"metrics\": {}}}",
                escape(res.name),
                escape(run.workload),
                escape(&run.variant),
                t.metrics.to_json(4)
            );
            entries.push(s);
        }
    }
    format!("{{\n  \"runs\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// The `--profile` phase table: wall-clock split per run plus a totals
/// row, with the measure-window simulation rate (accesses/s).
fn profile_table(results: &[ScenarioResults]) -> Table {
    let ms = |d: std::time::Duration| format!("{:.1}ms", d.as_secs_f64() * 1e3);
    let mut t = Table::new(
        "Simulator self-profile (wall clock per phase)",
        vec!["run", "setup", "warmup", "measure", "flush", "accesses/s"],
    );
    let mut total = PhaseProfile::default();
    for res in results {
        for run in &res.runs {
            let Some(p) = run.telemetry.as_ref().and_then(|t| t.profile) else {
                continue;
            };
            total.merge(&p);
            t.row(vec![
                format!("{}/{}/{}", res.name, run.workload, run.variant),
                ms(p.setup),
                ms(p.warmup),
                ms(p.measure),
                ms(p.flush),
                format!("{:.0}", p.accesses_per_sec()),
            ]);
        }
    }
    t.row(vec![
        "TOTAL".into(),
        ms(total.setup),
        ms(total.warmup),
        ms(total.measure),
        ms(total.flush),
        format!("{:.0}", total.accesses_per_sec()),
    ]);
    t
}

/// Writes the telemetry artifacts the CLI flags asked for. Only `run`
/// accepts the flags, so this is a no-op for `smoke`/`all`.
fn emit_telemetry(cli: &Cli, results: &[ScenarioResults]) -> Result<(), String> {
    if let Some(path) = cli.trace.as_deref() {
        let json = chrome::to_json(&chrome_events(results));
        std::fs::write(path, &json).map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path} (open at ui.perfetto.dev)");
    }
    if let Some(path) = cli.metrics.as_deref() {
        std::fs::write(path, metrics_json(results))
            .map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if cli.profile {
        println!("{}", profile_table(results).render());
    }
    Ok(())
}

/// The default result-cache location: under `target/`, so it is already
/// git-ignored and a `cargo clean` clears it along with everything else.
const DEFAULT_CACHE_DIR: &str = "target/asap-cache";

/// Opens the content-addressed result cache the CLI flags select, or
/// `None` when `--no-cache` is set. An unopenable directory degrades to
/// an uncached run with a warning — caching is an accelerator, never a
/// prerequisite.
fn open_cache(cli: &Cli) -> Option<CacheHandle> {
    if cli.no_cache {
        return None;
    }
    let dir = cli.cache_dir.as_deref().unwrap_or(DEFAULT_CACHE_DIR);
    match CacheHandle::open(dir) {
        Ok(handle) => Some(handle),
        Err(e) => {
            eprintln!("asap: result cache disabled ({dir}: {e})");
            None
        }
    }
}

/// The `--cache-stats` summary line (stdout, so CI can grep it).
fn print_cache_stats(cache: Option<&CacheHandle>) {
    let Some(cache) = cache else {
        println!("cache: disabled");
        return;
    };
    let stats = cache.stats();
    let (hits, misses) = (stats.hits(), stats.misses());
    let pct = (hits * 100).checked_div(stats.lookups()).unwrap_or(0);
    println!(
        "cache: {hits} hits, {misses} misses ({pct}% hit rate), {} bytes stored",
        stats.stored_bytes()
    );
}

/// Runs a scenario set, prints every rendered table, reports errors, and
/// optionally writes the results JSON. The shared tail of `run`, `smoke`
/// and `all`. The JSON tier follows the windows the set actually ran at
/// ([`results_tier`]), and nothing is written when any run failed — a
/// partial document must never overwrite a results baseline.
fn execute_and_report(set: &[Scenario], cli: &Cli, default_json: Option<&str>) -> ExitCode {
    if set.is_empty() {
        eprintln!("asap: no scenario matches the filter");
        return ExitCode::from(2);
    }
    let start = std::time::Instant::now();
    let cache = open_cache(cli);
    let results = execute_scenarios_cached(set, sim_config(cli.quick), cache.as_ref());
    for (scenario, result) in set.iter().zip(&results) {
        for t in render(scenario, result) {
            println!("{}", t.render());
        }
    }
    let mut failures = report_errors(results.iter());
    for r in &results {
        for run in &r.runs {
            if run.result.faults > 0 {
                eprintln!(
                    "{}/{}/{}: {} translation faults",
                    r.name, run.workload, run.variant, run.result.faults
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} run(s) failed; results JSON not written");
        return ExitCode::from(1);
    }
    if let Err(message) = emit_telemetry(cli, &results) {
        eprintln!("{message}");
        return ExitCode::from(1);
    }
    if cli.cache_stats {
        print_cache_stats(cache.as_ref());
    }
    if let Some(path) = cli.json.as_deref().or(default_json) {
        match write_results_json(path, &results, results_tier(set, cli.quick)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    eprintln!("wall time: {:?}", start.elapsed());
    ExitCode::SUCCESS
}

fn cmd_run(cli: &Cli) -> ExitCode {
    if cli.names.is_empty() {
        return usage_error("`run` needs at least one scenario name");
    }
    let mut set = Vec::new();
    for name in &cli.names {
        match find(name) {
            Some(s) => set.push(s),
            None => {
                eprintln!("asap: unknown scenario {name:?}; try `asap list`");
                return ExitCode::from(2);
            }
        }
    }
    let mut set = apply_filter(set, cli.filter.as_deref());
    if let Some(n) = cli.cores {
        set = set.into_iter().map(|s| s.with_forced_cores(n)).collect();
    }
    if let Some(n) = cli.numa {
        set = set.into_iter().map(|s| s.with_forced_numa(n)).collect();
    }
    let telemetry = cli.telemetry();
    if telemetry.any() {
        set = set
            .into_iter()
            .map(|s| s.with_telemetry(telemetry))
            .collect();
    }
    execute_and_report(&set, cli, None)
}

/// `asap trace-check <path>`: the CI round-trip gate. A valid trace file
/// parses under the canonical Chrome-trace grammar and re-emits
/// byte-identically.
fn cmd_trace_check(cli: &Cli) -> ExitCode {
    let [path] = cli.names.as_slice() else {
        return usage_error("`trace-check` needs exactly one path");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("asap: failed to read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let events = match chrome::parse(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("asap: {path} is not canonical Chrome trace JSON: {e}");
            return ExitCode::from(1);
        }
    };
    if chrome::to_json(&events) != text {
        eprintln!("asap: {path} parsed but did not re-emit byte-identically");
        return ExitCode::from(1);
    }
    println!(
        "{path}: {} events, round-trips byte-identically",
        events.len()
    );
    ExitCode::SUCCESS
}

fn cmd_smoke(cli: &Cli) -> ExitCode {
    // The smoke scenarios pin their own miniature windows, so the emitted
    // file is byte-stable across hosts (and across `--quick`): `ci.sh`
    // regenerates it and fails on a git diff — that diff IS the
    // behaviour/perf-trajectory check. A filtered subset must never
    // overwrite the committed full-set baseline, so `--filter` drops the
    // default path (pass `--json` explicitly to keep a partial file).
    if cli.cores.is_some() || cli.numa.is_some() {
        return usage_error(
            "--cores/--numa apply to `run` only (smoke baselines pin their topology)",
        );
    }
    if cli.telemetry().any() {
        return usage_error(
            "--trace/--metrics/--profile apply to `run` only (the committed smoke \
             baseline is produced with telemetry off)",
        );
    }
    let set = apply_filter(smoke_set(), cli.filter.as_deref());
    let default_json = if cli.filter.is_none() {
        Some("BENCH_results.json")
    } else {
        None
    };
    execute_and_report(&set, cli, default_json)
}

fn cmd_all(cli: &Cli) -> ExitCode {
    if cli.cores.is_some() || cli.numa.is_some() {
        return usage_error(
            "--cores/--numa apply to `run` only (paper scenarios pin their topology)",
        );
    }
    if cli.telemetry().any() {
        return usage_error("--trace/--metrics/--profile apply to `run` only");
    }
    println!("# ASAP reproduction: all experiments\n");
    let set = apply_filter(paper_scenarios(), cli.filter.as_deref());
    // The default path deliberately differs from the committed smoke-tier
    // BENCH_results.json: the two tiers use different windows and must
    // never overwrite each other. A filtered subset keeps the default
    // (the full-tier file is git-ignored scratch, not a CI baseline).
    execute_and_report(&set, cli, Some("BENCH_results_full.json"))
}

/// The covering spec matrix for the metric-name manifest: every backend
/// and machine shape that composes a distinct metric namespace. Windows
/// are tiny — metric *names* do not depend on how long the run was, only
/// on which collectors the machine assembly wires up.
fn manifest_specs() -> Vec<RunSpec> {
    let metrics_on = TelemetryConfig {
        trace: false,
        metrics: true,
        profile: false,
    };
    let spec = |engine| {
        RunSpec::new(WorkloadSpec::mcf())
            .with_engine(engine)
            .with_sim(SimConfig::smoke_test())
            .with_telemetry(metrics_on)
    };
    vec![
        // Native baseline: the core engine/walk/TLB/hierarchy namespaces.
        spec(EngineSelect::Baseline),
        // Native ASAP: adds the served-by-prefetch-depth breakdown.
        spec(EngineSelect::asap_p1_p2()),
        // Five-level paging: extends that breakdown to `served_pl5_*`.
        spec(EngineSelect::asap_p1_p2()).five_level(),
        // Virtualized 2D walks: the `host_*` namespace.
        spec(EngineSelect::NestedAsap(NestedAsapConfig::all())).virt(),
        // Contenders: `victima_*` / `revelator_*`.
        spec(EngineSelect::Victima),
        spec(EngineSelect::Revelator),
        // Multi-core over two NUMA nodes: `core{i}_*` and `numa_*`.
        spec(EngineSelect::Baseline)
            .with_cores(2)
            .with_numa_nodes(2),
    ]
}

/// `asap metrics-manifest [path] [--check]`: regenerate (or verify) the
/// committed manifest of every metric name the backends can emit — the
/// ground truth the `metric-names` rule of `asap-lint` diffs the code
/// against.
fn cmd_metrics_manifest(cli: &Cli) -> ExitCode {
    let path = match cli.names.as_slice() {
        [] => "METRICS.json",
        [path] => path.as_str(),
        _ => return usage_error("`metrics-manifest` takes at most one path"),
    };
    let mut names: Vec<String> = Vec::new();
    for spec in manifest_specs() {
        let output = match spec.run_split() {
            Ok(output) => output,
            Err(e) => {
                eprintln!("asap: manifest spec {} failed: {e}", spec.label());
                return ExitCode::from(1);
            }
        };
        let Some(telemetry) = output.telemetry else {
            eprintln!("asap: manifest spec {} produced no telemetry", spec.label());
            return ExitCode::from(1);
        };
        names.extend(telemetry.metrics.iter().map(|m| m.name.clone()));
    }
    // The result cache's counters live outside any run's telemetry (the
    // store is process-wide, and cached specs are telemetry-free by
    // construction), so collect them from a fresh stats block under the
    // prefix the CLI composes.
    let mut cache_metrics = MetricSet::new();
    CacheStats::default().collect("cache_", &mut cache_metrics);
    names.extend(cache_metrics.iter().map(|m| m.name.clone()));
    names.sort();
    names.dedup();
    let mut rendered = String::from("[\n");
    for (i, name) in names.iter().enumerate() {
        rendered.push_str("  \"");
        rendered.push_str(name);
        rendered.push('"');
        if i + 1 != names.len() {
            rendered.push(',');
        }
        rendered.push('\n');
    }
    rendered.push_str("]\n");
    if cli.check {
        match std::fs::read_to_string(path) {
            Ok(committed) if committed == rendered => {
                println!("{path}: {} metric names, matches live runs", names.len());
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "asap: {path} differs from a live regeneration — \
                     run `asap metrics-manifest` and commit the result"
                );
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("asap: failed to read {path}: {e}");
                ExitCode::from(1)
            }
        }
    } else {
        match std::fs::write(path, &rendered) {
            Ok(()) => {
                eprintln!("wrote {path} ({} metric names)", names.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("asap: failed to write {path}: {e}");
                ExitCode::from(1)
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(message) => return usage_error(&message),
    };
    match cli.command.as_str() {
        "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => cmd_list(&cli),
        "run" => cmd_run(&cli),
        "smoke" => cmd_smoke(&cli),
        "all" => cmd_all(&cli),
        "trace-check" => cmd_trace_check(&cli),
        "metrics-manifest" => cmd_metrics_manifest(&cli),
        other => usage_error(&format!("unknown command {other:?}")),
    }
}
