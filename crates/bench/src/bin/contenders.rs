//! Head-to-head comparison of translation mechanisms: baseline vs ASAP vs
//! Victima-style cache-resident TLB blocks vs Revelator-style hash
//! speculation, across three workloads with contrasting reuse and
//! physical-contiguity profiles; see ARCHITECTURE.md.

fn main() {
    asap_bench::print_experiment("contenders");
}
