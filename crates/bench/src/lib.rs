//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5) from the simulator.
//!
//! Each `pub fn` corresponds to one table/figure and returns rendered
//! [`Table`]s; the `src/bin/*` binaries are thin wrappers. Run everything
//! with:
//!
//! ```text
//! cargo run --release -p asap-bench --bin all_experiments
//! ```
//!
//! Set `ASAP_QUICK=1` for a fast smoke pass (smaller measurement windows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_sim::{
    fmt_cycles, fmt_pct, fmt_ratio, parallel_map, run_native, run_virt, NativeRunSpec, RunResult,
    SimConfig, Table, VirtRunSpec,
};
use asap_tlb::PwcConfig;
use asap_types::{ByteSize, PtLevel};
use asap_workloads::WorkloadSpec;

/// The shared window configuration: honours `ASAP_QUICK=1` for smoke runs.
#[must_use]
pub fn sim_config() -> SimConfig {
    if std::env::var("ASAP_QUICK").is_ok_and(|v| v == "1") {
        SimConfig {
            warmup_accesses: 5_000,
            measure_accesses: 20_000,
            seed: 42,
        }
    } else {
        SimConfig::default()
    }
}

/// Table 1: memcached walk-latency growth under dataset scaling, SMT
/// colocation and virtualization, normalized to native mc80 in isolation.
#[must_use]
pub fn table1() -> Table {
    let sim = sim_config();
    enum Spec {
        N(NativeRunSpec),
        V(VirtRunSpec),
    }
    let specs = vec![
        (
            "native mc80 (reference)",
            Spec::N(NativeRunSpec::baseline(WorkloadSpec::mc80()).with_sim(sim)),
        ),
        (
            "5x larger dataset (mc400)",
            Spec::N(NativeRunSpec::baseline(WorkloadSpec::mc400()).with_sim(sim)),
        ),
        (
            "SMT colocation",
            Spec::N(
                NativeRunSpec::baseline(WorkloadSpec::mc80())
                    .colocated()
                    .with_sim(sim),
            ),
        ),
        (
            "Virtualization",
            Spec::V(VirtRunSpec::baseline(WorkloadSpec::mc80()).with_sim(sim)),
        ),
        (
            "Virtualization + SMT colocation",
            Spec::V(
                VirtRunSpec::baseline(WorkloadSpec::mc80())
                    .colocated()
                    .with_sim(sim),
            ),
        ),
    ];
    let results = parallel_map(specs, |(name, spec)| {
        let r = match spec {
            Spec::N(s) => run_native(&s),
            Spec::V(s) => run_virt(&s),
        };
        (name, r)
    });
    let reference = results[0].1.avg_walk_latency();
    let mut t = Table::new(
        "Table 1: memcached page-walk latency growth (normalized to native mc80 isolation)",
        vec![
            "scenario",
            "avg walk latency (cycles)",
            "vs reference",
            "paper",
        ],
    );
    let paper = ["1.0x", "1.2x", "2.7x", "5.3x", "12.0x"];
    for ((name, r), paper_ratio) in results.iter().zip(paper) {
        t.row(vec![
            (*name).into(),
            fmt_cycles(r.avg_walk_latency()),
            fmt_ratio(r.avg_walk_latency() / reference),
            paper_ratio.into(),
        ]);
    }
    t
}

/// Fig. 2: fraction of execution time spent in page walks, four scenarios.
#[must_use]
pub fn fig2() -> Table {
    let sim = sim_config();
    let suite = WorkloadSpec::paper_suite_no_mc400();
    let mut t = Table::new(
        "Figure 2: fraction of execution time spent in page walks",
        vec![
            "workload",
            "native",
            "native+coloc",
            "virtualized",
            "virt+coloc",
        ],
    );
    let rows = parallel_map(suite, |w| {
        let native = run_native(&NativeRunSpec::baseline(w.clone()).with_sim(sim));
        let ncol = run_native(&NativeRunSpec::baseline(w.clone()).colocated().with_sim(sim));
        let virt = run_virt(&VirtRunSpec::baseline(w.clone()).with_sim(sim));
        let vcol = run_virt(&VirtRunSpec::baseline(w.clone()).colocated().with_sim(sim));
        (w.name, [native, ncol, virt, vcol])
    });
    let mut sums = [0.0f64; 4];
    for (name, rs) in &rows {
        t.row(vec![
            (*name).into(),
            fmt_pct(rs[0].walk_fraction()),
            fmt_pct(rs[1].walk_fraction()),
            fmt_pct(rs[2].walk_fraction()),
            fmt_pct(rs[3].walk_fraction()),
        ]);
        for (s, r) in sums.iter_mut().zip(rs.iter()) {
            *s += r.walk_fraction();
        }
    }
    let n = rows.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_pct(sums[0] / n),
        fmt_pct(sums[1] / n),
        fmt_pct(sums[2] / n),
        fmt_pct(sums[3] / n),
    ]);
    t
}

/// Fig. 3: average page-walk latency across the four scenarios.
#[must_use]
pub fn fig3() -> Table {
    let sim = sim_config();
    let suite = WorkloadSpec::paper_suite();
    let mut t = Table::new(
        "Figure 3: average page-walk latency (cycles)",
        vec![
            "workload",
            "native",
            "native+coloc",
            "virtualized",
            "virt+coloc",
        ],
    );
    let rows = parallel_map(suite, |w| {
        let native = run_native(&NativeRunSpec::baseline(w.clone()).with_sim(sim));
        let ncol = run_native(&NativeRunSpec::baseline(w.clone()).colocated().with_sim(sim));
        let virt = run_virt(&VirtRunSpec::baseline(w.clone()).with_sim(sim));
        let vcol = run_virt(&VirtRunSpec::baseline(w.clone()).colocated().with_sim(sim));
        (w.name, [native, ncol, virt, vcol])
    });
    let mut sums = [0.0f64; 4];
    for (name, rs) in &rows {
        t.row(vec![
            (*name).into(),
            fmt_cycles(rs[0].avg_walk_latency()),
            fmt_cycles(rs[1].avg_walk_latency()),
            fmt_cycles(rs[2].avg_walk_latency()),
            fmt_cycles(rs[3].avg_walk_latency()),
        ]);
        for (s, r) in sums.iter_mut().zip(rs.iter()) {
            *s += r.avg_walk_latency();
        }
    }
    let n = rows.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(sums[0] / n),
        fmt_cycles(sums[1] / n),
        fmt_cycles(sums[2] / n),
        fmt_cycles(sums[3] / n),
    ]);
    t
}

/// Table 2: VMA counts, PT page counts and physical contiguity.
#[must_use]
pub fn table2() -> Table {
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_workloads::AccessStream;
    let mut t = Table::new(
        "Table 2: VMAs, PT pages and contiguous physical regions",
        vec![
            "workload",
            "total VMAs",
            "VMAs for 99%",
            "contig regions (touched)",
            "PT pages (touched)",
            "PT pages (full dataset)",
            "mean run (frames)",
        ],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let mut p = w.build_process(Asid(1), AsapOsConfig::disabled(), 7);
        let mut stream = w.build_stream(&p, 9);
        // Touch enough of the dataset that the PT's statistical layout is
        // representative.
        for _ in 0..150_000 {
            let va = stream.next_va();
            let _ = p.touch(va);
        }
        let census = p.census();
        let contig = census.contiguity_total();
        // Analytic full-dataset PT size: one PL1 page per 2 MiB, one PL2
        // per 1 GiB, one PL3 per 512 GiB, plus the root.
        let bytes = w.footprint.bytes();
        let analytic =
            bytes.div_ceil(2 << 20) + bytes.div_ceil(1 << 30) + bytes.div_ceil(1 << 39) + 1;
        (
            w.name,
            p.vmas().len(),
            p.vmas().vmas_covering(0.99),
            contig.regions,
            census.total_pages(),
            analytic,
            contig.mean_run(),
        )
    });
    for (name, vmas, cover, regions, touched, analytic, run) in rows {
        t.row(vec![
            name.into(),
            vmas.to_string(),
            cover.to_string(),
            regions.to_string(),
            touched.to_string(),
            analytic.to_string(),
            format!("{run:.1}"),
        ]);
    }
    t
}

fn fig8_scenario(colocated: bool) -> Table {
    let sim = sim_config();
    let title = if colocated {
        "Figure 8b: native walk latency under SMT colocation (cycles)"
    } else {
        "Figure 8a: native walk latency in isolation (cycles)"
    };
    let mut t = Table::new(
        title,
        vec![
            "workload",
            "Baseline",
            "P1",
            "P1+P2",
            "P1 red.",
            "P1+P2 red.",
        ],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let mk = |asap: AsapHwConfig| {
            let mut s = NativeRunSpec::baseline(w.clone())
                .with_asap(asap)
                .with_sim(sim);
            if colocated {
                s = s.colocated();
            }
            run_native(&s)
        };
        (
            w.name,
            [
                mk(AsapHwConfig::off()),
                mk(AsapHwConfig::p1()),
                mk(AsapHwConfig::p1_p2()),
            ],
        )
    });
    let mut acc = [0.0f64; 3];
    for (name, [base, p1, p12]) in &rows {
        t.row(vec![
            (*name).into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(p1.avg_walk_latency()),
            fmt_cycles(p12.avg_walk_latency()),
            fmt_pct(p1.reduction_vs(base)),
            fmt_pct(p12.reduction_vs(base)),
        ]);
        acc[0] += base.avg_walk_latency();
        acc[1] += p1.avg_walk_latency();
        acc[2] += p12.avg_walk_latency();
    }
    let n = rows.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[2] / acc[0]),
    ]);
    t
}

/// Fig. 8: native walk latency, Baseline vs P1 vs P1+P2 (isolation and
/// colocation).
#[must_use]
pub fn fig8() -> (Table, Table) {
    (fig8_scenario(false), fig8_scenario(true))
}

/// Fig. 9: fraction of walk requests served per hierarchy level, per PT
/// level, for mcf and redis (isolation and colocation).
#[must_use]
pub fn fig9() -> Table {
    let sim = sim_config();
    let mut t = Table::new(
        "Figure 9: walk requests served by each level (baseline, native)",
        vec![
            "workload", "scenario", "PT level", "PWC", "L1", "L2", "LLC", "Mem",
        ],
    );
    let specs: Vec<(WorkloadSpec, bool)> = vec![
        (WorkloadSpec::mcf(), false),
        (WorkloadSpec::redis(), false),
        (WorkloadSpec::mcf(), true),
        (WorkloadSpec::redis(), true),
    ];
    let rows = parallel_map(specs, |(w, coloc)| {
        let mut s = NativeRunSpec::baseline(w.clone()).with_sim(sim);
        if coloc {
            s = s.colocated();
        }
        (w.name, coloc, run_native(&s))
    });
    for (name, coloc, r) in rows {
        for level in [PtLevel::Pl4, PtLevel::Pl3, PtLevel::Pl2, PtLevel::Pl1] {
            let f = r.served.fractions(level);
            t.row(vec![
                name.into(),
                if coloc { "coloc" } else { "isolation" }.into(),
                level.to_string(),
                fmt_pct(f[0]),
                fmt_pct(f[1]),
                fmt_pct(f[2]),
                fmt_pct(f[3]),
                fmt_pct(f[4]),
            ]);
        }
    }
    t
}

fn fig10_scenario(colocated: bool) -> Table {
    let sim = sim_config();
    let title = if colocated {
        "Figure 10b: virtualized walk latency under SMT colocation (cycles)"
    } else {
        "Figure 10a: virtualized walk latency in isolation (cycles)"
    };
    let configs: [(&str, NestedAsapConfig); 5] = [
        ("Baseline", NestedAsapConfig::off()),
        ("P1g", NestedAsapConfig::p1g()),
        ("P1g+P2g", NestedAsapConfig::p1g_p2g()),
        ("P1g+P1h", NestedAsapConfig::p1g_p1h()),
        ("All", NestedAsapConfig::all()),
    ];
    let mut t = Table::new(
        title,
        vec![
            "workload", "Baseline", "P1g", "P1g+P2g", "P1g+P1h", "All", "All red.",
        ],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let results: Vec<RunResult> = configs
            .iter()
            .map(|(_, asap)| {
                let mut s = VirtRunSpec::baseline(w.clone())
                    .with_asap(asap.clone())
                    .with_sim(sim);
                if colocated {
                    s = s.colocated();
                }
                run_virt(&s)
            })
            .collect();
        (w.name, results)
    });
    let mut acc = [0.0f64; 5];
    for (name, rs) in &rows {
        let mut cells = vec![(*name).to_string()];
        for (i, r) in rs.iter().enumerate() {
            cells.push(fmt_cycles(r.avg_walk_latency()));
            acc[i] += r.avg_walk_latency();
        }
        cells.push(fmt_pct(rs[4].reduction_vs(&rs[0])));
        t.row(cells);
    }
    let n = rows.len() as f64;
    let mut cells = vec!["Average".to_string()];
    for a in acc {
        cells.push(fmt_cycles(a / n));
    }
    cells.push(fmt_pct(1.0 - acc[4] / acc[0]));
    t.row(cells);
    t
}

/// Fig. 10: virtualized walk latency across per-dimension ASAP configs.
#[must_use]
pub fn fig10() -> (Table, Table) {
    (fig10_scenario(false), fig10_scenario(true))
}

/// Table 6: conservative performance projection — critical-path walk
/// fraction × ASAP's walk-latency reduction (virtualized, isolation).
#[must_use]
pub fn table6() -> Table {
    let sim = sim_config();
    let workloads: Vec<WorkloadSpec> = WorkloadSpec::paper_suite()
        .into_iter()
        .filter(|w| !w.name.starts_with("mc"))
        .collect();
    let mut t = Table::new(
        "Table 6: conservative projection of ASAP's performance improvement",
        vec![
            "workload",
            "walk cycles on critical path",
            "ASAP walk-latency reduction (virt)",
            "estimated speedup",
        ],
    );
    let rows = parallel_map(workloads, |w| {
        let normal = run_native(&NativeRunSpec::baseline(w.clone()).with_sim(sim));
        let perfect = run_native(
            &NativeRunSpec::baseline(w.clone())
                .perfect_tlb()
                .with_sim(sim),
        );
        let fraction = 1.0 - perfect.cycles as f64 / normal.cycles as f64;
        let vbase = run_virt(&VirtRunSpec::baseline(w.clone()).with_sim(sim));
        let vasap = run_virt(
            &VirtRunSpec::baseline(w.clone())
                .with_asap(NestedAsapConfig::all())
                .with_sim(sim),
        );
        let reduction = vasap.reduction_vs(&vbase);
        (w.name, fraction, reduction)
    });
    let mut est_sum = 0.0;
    for (name, fraction, reduction) in &rows {
        let est = fraction * reduction;
        est_sum += est;
        t.row(vec![
            (*name).into(),
            fmt_pct(*fraction),
            fmt_pct(*reduction),
            fmt_pct(est),
        ]);
    }
    t.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        fmt_pct(est_sum / rows.len() as f64),
    ]);
    t
}

/// Fig. 11 + Table 7: clustered TLB vs ASAP vs both (native isolation).
#[must_use]
pub fn fig11_table7() -> (Table, Table) {
    let sim = sim_config();
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let base = run_native(&NativeRunSpec::baseline(w.clone()).with_sim(sim));
        let clustered = run_native(
            &NativeRunSpec::baseline(w.clone())
                .with_clustered_tlb()
                .with_sim(sim),
        );
        let asap = run_native(
            &NativeRunSpec::baseline(w.clone())
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        );
        let both = run_native(
            &NativeRunSpec::baseline(w.clone())
                .with_asap(AsapHwConfig::p1_p2())
                .with_clustered_tlb()
                .with_sim(sim),
        );
        (w.name, base, clustered, asap, both)
    });
    let mut t7 = Table::new(
        "Table 7: TLB MPKI reduction with the clustered TLB",
        vec![
            "workload",
            "baseline MPKI",
            "clustered MPKI",
            "reduction",
            "paper",
        ],
    );
    let paper7 = ["58%", "48%", "10%", "16%", "4%", "9%", "12%"];
    let mut t11 = Table::new(
        "Figure 11: reduction in page-walk cycles (native isolation)",
        vec!["workload", "Clustered TLB", "ASAP", "Clustered + ASAP"],
    );
    let mut acc = [0.0f64; 3];
    for ((name, base, clustered, asap, both), paper) in rows.iter().zip(paper7) {
        // Clustered-TLB hits eliminate walks; MPKI here counts *walks
        // performed* per kilo-instruction so the coalescing effect shows.
        let base_mpki = base.walks.count() as f64 * 1000.0 / base.instructions as f64;
        let cl_mpki = clustered.walks.count() as f64 * 1000.0 / clustered.instructions as f64;
        t7.row(vec![
            (*name).into(),
            format!("{base_mpki:.2}"),
            format!("{cl_mpki:.2}"),
            fmt_pct(1.0 - cl_mpki / base_mpki),
            paper.into(),
        ]);
        let reductions = [
            clustered.walk_cycles_reduction_vs(base),
            asap.walk_cycles_reduction_vs(base),
            both.walk_cycles_reduction_vs(base),
        ];
        for (a, r) in acc.iter_mut().zip(reductions.iter()) {
            *a += r;
        }
        t11.row(vec![
            (*name).into(),
            fmt_pct(reductions[0]),
            fmt_pct(reductions[1]),
            fmt_pct(reductions[2]),
        ]);
    }
    let n = rows.len() as f64;
    t11.row(vec![
        "Average".into(),
        fmt_pct(acc[0] / n),
        fmt_pct(acc[1] / n),
        fmt_pct(acc[2] / n),
    ]);
    (t11, t7)
}

/// Fig. 12: virtualization with 2 MiB host pages — baseline vs ASAP
/// (P1g+P2g+P2h), isolation and colocation.
#[must_use]
pub fn fig12() -> Table {
    let sim = sim_config();
    let mut t = Table::new(
        "Figure 12: virtualized walk latency with 2 MiB host pages (cycles)",
        vec![
            "workload",
            "Baseline",
            "ASAP",
            "Baseline+coloc",
            "ASAP+coloc",
            "red. iso",
            "red. coloc",
        ],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let mk = |asap: bool, coloc: bool| {
            let mut s = VirtRunSpec::baseline(w.clone())
                .host_2m_pages()
                .with_sim(sim);
            if asap {
                s = s.with_asap(NestedAsapConfig::host_2m());
            }
            if coloc {
                s = s.colocated();
            }
            run_virt(&s)
        };
        (
            w.name,
            [
                mk(false, false),
                mk(true, false),
                mk(false, true),
                mk(true, true),
            ],
        )
    });
    let mut acc = [0.0f64; 4];
    for (name, rs) in &rows {
        t.row(vec![
            (*name).into(),
            fmt_cycles(rs[0].avg_walk_latency()),
            fmt_cycles(rs[1].avg_walk_latency()),
            fmt_cycles(rs[2].avg_walk_latency()),
            fmt_cycles(rs[3].avg_walk_latency()),
            fmt_pct(rs[1].reduction_vs(&rs[0])),
            fmt_pct(rs[3].reduction_vs(&rs[2])),
        ]);
        for (a, r) in acc.iter_mut().zip(rs.iter()) {
            *a += r.avg_walk_latency();
        }
    }
    let n = rows.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_cycles(acc[3] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[3] / acc[2]),
    ]);
    t
}

/// §5.1.1 ablation: doubling PWC capacity barely moves walk latency.
#[must_use]
pub fn ablation_pwc() -> Table {
    let sim = sim_config();
    let mut t = Table::new(
        "Ablation (§5.1.1): PWC capacity doubling (native isolation)",
        vec!["workload", "default PWC", "doubled PWC", "reduction"],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let base = run_native(&NativeRunSpec::baseline(w.clone()).with_sim(sim));
        let doubled = run_native(
            &NativeRunSpec::baseline(w.clone())
                .with_pwc(PwcConfig::split_doubled())
                .with_sim(sim),
        );
        (w.name, base, doubled)
    });
    let (mut b, mut d) = (0.0f64, 0.0f64);
    for (name, base, doubled) in &rows {
        t.row(vec![
            (*name).into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(doubled.avg_walk_latency()),
            fmt_pct(doubled.reduction_vs(base)),
        ]);
        b += base.avg_walk_latency();
        d += doubled.avg_walk_latency();
    }
    t.row(vec![
        "Average".into(),
        fmt_cycles(b / rows.len() as f64),
        fmt_cycles(d / rows.len() as f64),
        fmt_pct(1.0 - d / b),
    ]);
    t
}

/// Ablation: baseline walk latency vs PT-page scatter (mean run length).
#[must_use]
pub fn ablation_scatter() -> Table {
    let sim = sim_config();
    let mut t = Table::new(
        "Ablation: baseline sensitivity to PT physical layout (mc80, native isolation)",
        vec!["PT scatter mean run (frames)", "avg walk latency (cycles)"],
    );
    let runs = parallel_map(vec![1.0f64, 4.0, 23.2, 256.0], |run| {
        let r = run_native(
            &NativeRunSpec::baseline(WorkloadSpec::mc80())
                .with_pt_scatter_run(run)
                .with_sim(sim),
        );
        (run, r)
    });
    for (run, r) in runs {
        t.row(vec![format!("{run:.1}"), fmt_cycles(r.avg_walk_latency())]);
    }
    t
}

/// §3.5 extension: five-level paging, with and without ASAP.
#[must_use]
pub fn ablation_5level() -> Table {
    let sim = sim_config();
    let mut t = Table::new(
        "Extension (§3.5): five-level page table (mc400, native isolation)",
        vec!["config", "avg walk latency (cycles)", "vs 4-level baseline"],
    );
    let specs = vec![
        (
            "4-level baseline",
            NativeRunSpec::baseline(WorkloadSpec::mc400()).with_sim(sim),
        ),
        (
            "5-level baseline",
            NativeRunSpec::baseline(WorkloadSpec::mc400())
                .five_level()
                .with_sim(sim),
        ),
        (
            "5-level + ASAP P1+P2",
            NativeRunSpec::baseline(WorkloadSpec::mc400())
                .five_level()
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(sim),
        ),
    ];
    let results = parallel_map(specs, |(name, s)| (name, run_native(&s)));
    let base = results[0].1.avg_walk_latency();
    for (name, r) in results {
        t.row(vec![
            name.into(),
            fmt_cycles(r.avg_walk_latency()),
            fmt_ratio(r.avg_walk_latency() / base),
        ]);
    }
    t
}

/// A small subset of workloads for quick experiment smoke tests.
#[must_use]
pub fn smoke_workload() -> WorkloadSpec {
    WorkloadSpec {
        footprint: ByteSize::mib(256),
        ..WorkloadSpec::mc80()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sim_config_honours_quick_env() {
        // Not setting the env: default windows.
        let c = super::sim_config();
        assert!(c.measure_accesses >= 20_000);
    }
}
