//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5) from the simulator.
//!
//! Every experiment's runs are resolved through the scenario registry
//! ([`asap_sim::scenarios`]); this crate only owns the *rendering* — how a
//! scenario's [`RunResult`]s become the paper's tables. The `src/bin/*`
//! binaries are registry lookups ([`print_experiment`]); run everything
//! with:
//!
//! ```text
//! cargo run --release -p asap-bench --bin all_experiments
//! ```
//!
//! which also writes machine-readable results to `BENCH_results_full.json`
//! (the CI `smoke` binary owns the committed smoke-tier
//! `BENCH_results.json`). Set `ASAP_QUICK=1` for a fast smoke pass
//! (smaller measurement windows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asap_sim::scenarios::{find, registry, run_scenarios, Scenario, ScenarioResults};
use asap_sim::{fmt_cycles, fmt_pct, fmt_ratio, parallel_map, RunResult, SimConfig, Table};
use asap_types::PtLevel;
use asap_workloads::WorkloadSpec;

/// The shared window configuration: honours `ASAP_QUICK=1` for smoke runs.
#[must_use]
pub fn sim_config() -> SimConfig {
    if quick_mode() {
        SimConfig {
            warmup_accesses: 5_000,
            measure_accesses: 20_000,
            seed: 42,
        }
    } else {
        SimConfig::default()
    }
}

/// Whether `ASAP_QUICK=1` is set.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("ASAP_QUICK").is_ok_and(|v| v == "1")
}

/// The tier tag stamped into `BENCH_results.json` for the current windows.
#[must_use]
pub fn tier() -> &'static str {
    if quick_mode() {
        "quick"
    } else {
        "full"
    }
}

/// The registry minus the CI-only smoke scenario, in paper order — the
/// set `all_experiments` regenerates.
fn paper_scenarios() -> Vec<Scenario> {
    registry().into_iter().filter(|s| !s.smoke).collect()
}

/// The experiments `all_experiments` regenerates, in paper order.
#[must_use]
pub fn experiment_names() -> Vec<&'static str> {
    paper_scenarios().into_iter().map(|s| s.name).collect()
}

/// One experiment's rendered tables plus the raw results they were built
/// from (for JSON emission).
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The scenario's registry key.
    pub name: &'static str,
    /// The rendered tables, in print order.
    pub tables: Vec<Table>,
    /// The raw per-run measurements.
    pub results: ScenarioResults,
}

/// Runs one experiment by registry name and renders its tables. A
/// scenario with driver errors renders no tables — the errors ride along
/// in `results.errors` for the caller to report, instead of the renderer
/// panicking on the missing runs.
///
/// # Panics
///
/// Panics when `name` is not in the registry.
#[must_use]
pub fn run_experiment(name: &str, sim: SimConfig) -> ExperimentReport {
    let scenario = find(name).unwrap_or_else(|| panic!("unknown scenario {name}"));
    let results = scenario.run(sim);
    ExperimentReport {
        name: scenario.name,
        tables: if results.is_complete() {
            render(scenario.name, &results)
        } else {
            Vec::new()
        },
        results,
    }
}

/// Runs every paper experiment as one flattened parallel fan-out and
/// renders each, in registry order.
#[must_use]
pub fn run_all_experiments(sim: SimConfig) -> Vec<ExperimentReport> {
    let scenarios = paper_scenarios();
    let all = run_scenarios(&scenarios, sim);
    all.into_iter()
        .map(|results| ExperimentReport {
            name: results.name,
            tables: if results.is_complete() {
                render(results.name, &results)
            } else {
                Vec::new()
            },
            results,
        })
        .collect()
}

/// Writes results as `BENCH_results.json`-schema JSON to `path`.
///
/// # Errors
///
/// Propagates the I/O error; callers (the experiment binaries) must treat
/// it as fatal — a missing results file would silently skip the CI
/// perf-trajectory check.
pub fn write_results_json(
    path: &str,
    results: &[ScenarioResults],
    tier: &str,
) -> std::io::Result<()> {
    std::fs::write(path, asap_sim::results_to_json(results, tier))
}

/// Runs one experiment with the shared window configuration and prints its
/// tables — the whole body of each `src/bin` wrapper. Driver errors are
/// printed to stderr and exit the process non-zero.
///
/// # Panics
///
/// Panics when `name` is not in the registry.
pub fn print_experiment(name: &str) {
    let report = run_experiment(name, sim_config());
    for e in &report.results.errors {
        eprintln!("{}/{}/{}: {}", report.name, e.workload, e.variant, e.error);
    }
    if !report.results.is_complete() {
        eprintln!("{}: one or more runs reported driver errors", report.name);
        std::process::exit(1);
    }
    for t in report.tables {
        println!("{}", t.render());
    }
}

/// Renders a scenario's results into the paper's tables.
///
/// # Panics
///
/// Panics when `name` has no renderer (every registry entry has one).
#[must_use]
pub fn render(name: &str, results: &ScenarioResults) -> Vec<Table> {
    match name {
        "table1" => vec![render_table1(results)],
        "fig2" => vec![render_fig2(results)],
        "fig3" => vec![render_fig3(results)],
        "table2" => vec![render_table2()],
        "fig8" => render_fig8(results),
        "fig9" => vec![render_fig9(results)],
        "fig10" => render_fig10(results),
        "table6" => vec![render_table6(results)],
        "fig11_table7" => render_fig11_table7(results),
        "fig12" => vec![render_fig12(results)],
        "ablation_pwc" => vec![render_ablation_pwc(results)],
        "ablation_scatter" => vec![render_ablation_scatter(results)],
        "ablation_5level" => vec![render_ablation_5level(results)],
        "contenders" => render_contenders(results, "Head-to-head"),
        "smoke" => vec![render_smoke(results)],
        "contenders_smoke" => render_contenders(results, "CI smoke head-to-head"),
        other => panic!("no renderer for scenario {other}"),
    }
}

fn render_table1(r: &ScenarioResults) -> Table {
    let rows: [(&str, &RunResult); 5] = [
        ("native mc80 (reference)", r.get("mc80", "native")),
        ("5x larger dataset (mc400)", r.get("mc400", "native")),
        ("SMT colocation", r.get("mc80", "native+coloc")),
        ("Virtualization", r.get("mc80", "virt")),
        (
            "Virtualization + SMT colocation",
            r.get("mc80", "virt+coloc"),
        ),
    ];
    let reference = rows[0].1.avg_walk_latency();
    let mut t = Table::new(
        "Table 1: memcached page-walk latency growth (normalized to native mc80 isolation)",
        vec![
            "scenario",
            "avg walk latency (cycles)",
            "vs reference",
            "paper",
        ],
    );
    let paper = ["1.0x", "1.2x", "2.7x", "5.3x", "12.0x"];
    for ((name, run), paper_ratio) in rows.iter().zip(paper) {
        t.row(vec![
            (*name).into(),
            fmt_cycles(run.avg_walk_latency()),
            fmt_ratio(run.avg_walk_latency() / reference),
            paper_ratio.into(),
        ]);
    }
    t
}

/// Shared renderer for the Figs. 2/3 four-scenario layout.
fn render_four_scenarios(
    r: &ScenarioResults,
    suite: &[WorkloadSpec],
    title: &str,
    metric: fn(&RunResult) -> f64,
    fmt: fn(f64) -> String,
) -> Table {
    let mut t = Table::new(
        title,
        vec![
            "workload",
            "native",
            "native+coloc",
            "virtualized",
            "virt+coloc",
        ],
    );
    let variants = ["native", "native+coloc", "virt", "virt+coloc"];
    let mut sums = [0.0f64; 4];
    for w in suite {
        let mut cells = vec![w.name.to_string()];
        for (s, v) in sums.iter_mut().zip(variants.iter()) {
            let x = metric(r.get(w.name, v));
            cells.push(fmt(x));
            *s += x;
        }
        t.row(cells);
    }
    let n = suite.len() as f64;
    let mut cells = vec!["Average".to_string()];
    for s in sums {
        cells.push(fmt(s / n));
    }
    t.row(cells);
    t
}

fn render_fig2(r: &ScenarioResults) -> Table {
    render_four_scenarios(
        r,
        &WorkloadSpec::paper_suite_no_mc400(),
        "Figure 2: fraction of execution time spent in page walks",
        RunResult::walk_fraction,
        fmt_pct,
    )
}

fn render_fig3(r: &ScenarioResults) -> Table {
    render_four_scenarios(
        r,
        &WorkloadSpec::paper_suite(),
        "Figure 3: average page-walk latency (cycles)",
        RunResult::avg_walk_latency,
        fmt_cycles,
    )
}

/// Table 2 is analytic (a page-table census, no simulation runs), so its
/// renderer builds the processes itself.
fn render_table2() -> Table {
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_workloads::AccessStream;
    let mut t = Table::new(
        "Table 2: VMAs, PT pages and contiguous physical regions",
        vec![
            "workload",
            "total VMAs",
            "VMAs for 99%",
            "contig regions (touched)",
            "PT pages (touched)",
            "PT pages (full dataset)",
            "mean run (frames)",
        ],
    );
    let rows = parallel_map(WorkloadSpec::paper_suite(), |w| {
        let mut p = w.build_process(Asid(1), AsapOsConfig::disabled(), 7);
        let mut stream = w.build_stream(&p, 9);
        // Touch enough of the dataset that the PT's statistical layout is
        // representative.
        for _ in 0..150_000 {
            let va = stream.next_va();
            let _ = p.touch(va);
        }
        let census = p.census();
        let contig = census.contiguity_total();
        // Analytic full-dataset PT size: one PL1 page per 2 MiB, one PL2
        // per 1 GiB, one PL3 per 512 GiB, plus the root.
        let bytes = w.footprint.bytes();
        let analytic =
            bytes.div_ceil(2 << 20) + bytes.div_ceil(1 << 30) + bytes.div_ceil(1 << 39) + 1;
        (
            w.name,
            p.vmas().len(),
            p.vmas().vmas_covering(0.99),
            contig.regions,
            census.total_pages(),
            analytic,
            contig.mean_run(),
        )
    });
    for (name, vmas, cover, regions, touched, analytic, run) in rows {
        t.row(vec![
            name.into(),
            vmas.to_string(),
            cover.to_string(),
            regions.to_string(),
            touched.to_string(),
            analytic.to_string(),
            format!("{run:.1}"),
        ]);
    }
    t
}

fn fig8_table(r: &ScenarioResults, colocated: bool) -> Table {
    let title = if colocated {
        "Figure 8b: native walk latency under SMT colocation (cycles)"
    } else {
        "Figure 8a: native walk latency in isolation (cycles)"
    };
    let mut t = Table::new(
        title,
        vec![
            "workload",
            "Baseline",
            "P1",
            "P1+P2",
            "P1 red.",
            "P1+P2 red.",
        ],
    );
    let key = |base: &str| {
        if colocated {
            format!("{base}+coloc")
        } else {
            base.to_string()
        }
    };
    let suite = WorkloadSpec::paper_suite();
    let mut acc = [0.0f64; 3];
    for w in &suite {
        let base = r.get(w.name, &key("Baseline"));
        let p1 = r.get(w.name, &key("P1"));
        let p12 = r.get(w.name, &key("P1+P2"));
        t.row(vec![
            w.name.into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(p1.avg_walk_latency()),
            fmt_cycles(p12.avg_walk_latency()),
            fmt_pct(p1.reduction_vs(base)),
            fmt_pct(p12.reduction_vs(base)),
        ]);
        acc[0] += base.avg_walk_latency();
        acc[1] += p1.avg_walk_latency();
        acc[2] += p12.avg_walk_latency();
    }
    let n = suite.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[2] / acc[0]),
    ]);
    t
}

fn render_fig8(r: &ScenarioResults) -> Vec<Table> {
    vec![fig8_table(r, false), fig8_table(r, true)]
}

fn render_fig9(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Figure 9: walk requests served by each level (baseline, native)",
        vec![
            "workload", "scenario", "PT level", "PWC", "L1", "L2", "LLC", "Mem",
        ],
    );
    for (name, variant) in [
        ("mcf", "isolation"),
        ("redis", "isolation"),
        ("mcf", "coloc"),
        ("redis", "coloc"),
    ] {
        let run = r.get(name, variant);
        for level in [PtLevel::Pl4, PtLevel::Pl3, PtLevel::Pl2, PtLevel::Pl1] {
            let f = run.served.fractions(level);
            t.row(vec![
                name.into(),
                variant.into(),
                level.to_string(),
                fmt_pct(f[0]),
                fmt_pct(f[1]),
                fmt_pct(f[2]),
                fmt_pct(f[3]),
                fmt_pct(f[4]),
            ]);
        }
    }
    t
}

fn fig10_table(r: &ScenarioResults, colocated: bool) -> Table {
    let title = if colocated {
        "Figure 10b: virtualized walk latency under SMT colocation (cycles)"
    } else {
        "Figure 10a: virtualized walk latency in isolation (cycles)"
    };
    let configs = ["Baseline", "P1g", "P1g+P2g", "P1g+P1h", "All"];
    let mut t = Table::new(
        title,
        vec![
            "workload", "Baseline", "P1g", "P1g+P2g", "P1g+P1h", "All", "All red.",
        ],
    );
    let key = |base: &str| {
        if colocated {
            format!("{base}+coloc")
        } else {
            base.to_string()
        }
    };
    let suite = WorkloadSpec::paper_suite();
    let mut acc = [0.0f64; 5];
    for w in &suite {
        let rs: Vec<&RunResult> = configs.iter().map(|c| r.get(w.name, &key(c))).collect();
        let mut cells = vec![w.name.to_string()];
        for (i, run) in rs.iter().enumerate() {
            cells.push(fmt_cycles(run.avg_walk_latency()));
            acc[i] += run.avg_walk_latency();
        }
        cells.push(fmt_pct(rs[4].reduction_vs(rs[0])));
        t.row(cells);
    }
    let n = suite.len() as f64;
    let mut cells = vec!["Average".to_string()];
    for a in acc {
        cells.push(fmt_cycles(a / n));
    }
    cells.push(fmt_pct(1.0 - acc[4] / acc[0]));
    t.row(cells);
    t
}

fn render_fig10(r: &ScenarioResults) -> Vec<Table> {
    vec![fig10_table(r, false), fig10_table(r, true)]
}

fn render_table6(r: &ScenarioResults) -> Table {
    let workloads: Vec<WorkloadSpec> = WorkloadSpec::paper_suite()
        .into_iter()
        .filter(|w| !w.name.starts_with("mc"))
        .collect();
    let mut t = Table::new(
        "Table 6: conservative projection of ASAP's performance improvement",
        vec![
            "workload",
            "walk cycles on critical path",
            "ASAP walk-latency reduction (virt)",
            "estimated speedup",
        ],
    );
    let mut est_sum = 0.0;
    for w in &workloads {
        let normal = r.get(w.name, "native");
        let perfect = r.get(w.name, "native-perfect");
        let fraction = 1.0 - perfect.cycles as f64 / normal.cycles as f64;
        let vbase = r.get(w.name, "virt");
        let vasap = r.get(w.name, "virt+asap");
        let reduction = vasap.reduction_vs(vbase);
        let est = fraction * reduction;
        est_sum += est;
        t.row(vec![
            w.name.into(),
            fmt_pct(fraction),
            fmt_pct(reduction),
            fmt_pct(est),
        ]);
    }
    t.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        fmt_pct(est_sum / workloads.len() as f64),
    ]);
    t
}

fn render_fig11_table7(r: &ScenarioResults) -> Vec<Table> {
    let suite = WorkloadSpec::paper_suite();
    let mut t7 = Table::new(
        "Table 7: TLB MPKI reduction with the clustered TLB",
        vec![
            "workload",
            "baseline MPKI",
            "clustered MPKI",
            "reduction",
            "paper",
        ],
    );
    let paper7 = ["58%", "48%", "10%", "16%", "4%", "9%", "12%"];
    let mut t11 = Table::new(
        "Figure 11: reduction in page-walk cycles (native isolation)",
        vec!["workload", "Clustered TLB", "ASAP", "Clustered + ASAP"],
    );
    let mut acc = [0.0f64; 3];
    for (w, paper) in suite.iter().zip(paper7) {
        let base = r.get(w.name, "Baseline");
        let clustered = r.get(w.name, "Clustered");
        let asap = r.get(w.name, "ASAP");
        let both = r.get(w.name, "Clustered+ASAP");
        // Clustered-TLB hits eliminate walks; MPKI here counts *walks
        // performed* per kilo-instruction so the coalescing effect shows.
        let base_mpki = base.walks.count() as f64 * 1000.0 / base.instructions as f64;
        let cl_mpki = clustered.walks.count() as f64 * 1000.0 / clustered.instructions as f64;
        t7.row(vec![
            w.name.into(),
            format!("{base_mpki:.2}"),
            format!("{cl_mpki:.2}"),
            fmt_pct(1.0 - cl_mpki / base_mpki),
            paper.into(),
        ]);
        let reductions = [
            clustered.walk_cycles_reduction_vs(base),
            asap.walk_cycles_reduction_vs(base),
            both.walk_cycles_reduction_vs(base),
        ];
        for (a, red) in acc.iter_mut().zip(reductions.iter()) {
            *a += red;
        }
        t11.row(vec![
            w.name.into(),
            fmt_pct(reductions[0]),
            fmt_pct(reductions[1]),
            fmt_pct(reductions[2]),
        ]);
    }
    let n = suite.len() as f64;
    t11.row(vec![
        "Average".into(),
        fmt_pct(acc[0] / n),
        fmt_pct(acc[1] / n),
        fmt_pct(acc[2] / n),
    ]);
    vec![t11, t7]
}

fn render_fig12(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Figure 12: virtualized walk latency with 2 MiB host pages (cycles)",
        vec![
            "workload",
            "Baseline",
            "ASAP",
            "Baseline+coloc",
            "ASAP+coloc",
            "red. iso",
            "red. coloc",
        ],
    );
    let suite = WorkloadSpec::paper_suite();
    let variants = ["Baseline", "ASAP", "Baseline+coloc", "ASAP+coloc"];
    let mut acc = [0.0f64; 4];
    for w in &suite {
        let rs: Vec<&RunResult> = variants.iter().map(|v| r.get(w.name, v)).collect();
        t.row(vec![
            w.name.into(),
            fmt_cycles(rs[0].avg_walk_latency()),
            fmt_cycles(rs[1].avg_walk_latency()),
            fmt_cycles(rs[2].avg_walk_latency()),
            fmt_cycles(rs[3].avg_walk_latency()),
            fmt_pct(rs[1].reduction_vs(rs[0])),
            fmt_pct(rs[3].reduction_vs(rs[2])),
        ]);
        for (a, run) in acc.iter_mut().zip(rs.iter()) {
            *a += run.avg_walk_latency();
        }
    }
    let n = suite.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_cycles(acc[3] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[3] / acc[2]),
    ]);
    t
}

fn render_ablation_pwc(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Ablation (§5.1.1): PWC capacity doubling (native isolation)",
        vec!["workload", "default PWC", "doubled PWC", "reduction"],
    );
    let suite = WorkloadSpec::paper_suite();
    let (mut b, mut d) = (0.0f64, 0.0f64);
    for w in &suite {
        let base = r.get(w.name, "default");
        let doubled = r.get(w.name, "doubled");
        t.row(vec![
            w.name.into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(doubled.avg_walk_latency()),
            fmt_pct(doubled.reduction_vs(base)),
        ]);
        b += base.avg_walk_latency();
        d += doubled.avg_walk_latency();
    }
    t.row(vec![
        "Average".into(),
        fmt_cycles(b / suite.len() as f64),
        fmt_cycles(d / suite.len() as f64),
        fmt_pct(1.0 - d / b),
    ]);
    t
}

fn render_ablation_scatter(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Ablation: baseline sensitivity to PT physical layout (mc80, native isolation)",
        vec!["PT scatter mean run (frames)", "avg walk latency (cycles)"],
    );
    for run in [1.0f64, 4.0, 23.2, 256.0] {
        let result = r.get("mc80", &format!("run={run:.1}"));
        t.row(vec![
            format!("{run:.1}"),
            fmt_cycles(result.avg_walk_latency()),
        ]);
    }
    t
}

fn render_ablation_5level(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Extension (§3.5): five-level page table (mc400, native isolation)",
        vec!["config", "avg walk latency (cycles)", "vs 4-level baseline"],
    );
    let rows = [
        ("4-level baseline", "4-level"),
        ("5-level baseline", "5-level"),
        ("5-level + ASAP P1+P2", "5-level+ASAP"),
    ];
    let base = r.get("mc400", "4-level").avg_walk_latency();
    for (name, variant) in rows {
        let run = r.get("mc400", variant);
        t.row(vec![
            name.into(),
            fmt_cycles(run.avg_walk_latency()),
            fmt_ratio(run.avg_walk_latency() / base),
        ]);
    }
    t
}

/// The contender comparison: walk latency, walks performed, and total
/// execution cycles for baseline vs ASAP vs Victima vs Revelator. Victima
/// wins by *eliminating* walks (cache-resident TLB blocks), Revelator by
/// *overlapping* the data fetch with the walk — so neither shows up fully
/// in walk latency alone, and the cycles table is the decisive one.
fn render_contenders(r: &ScenarioResults, title: &str) -> Vec<Table> {
    let backends = ["Baseline", "ASAP", "Victima", "Revelator"];
    let mut workloads: Vec<&str> = Vec::new();
    for run in &r.runs {
        if !workloads.contains(&run.workload) {
            workloads.push(run.workload);
        }
    }
    let mut lat = Table::new(
        format!("{title}: average page-walk latency (cycles; walks in parentheses)"),
        vec!["workload", "Baseline", "ASAP", "Victima", "Revelator"],
    );
    let mut cyc = Table::new(
        format!("{title}: execution cycles (speedup vs baseline)"),
        vec!["workload", "Baseline", "ASAP", "Victima", "Revelator"],
    );
    for w in &workloads {
        let runs: Vec<&RunResult> = backends.iter().map(|b| r.get(w, b)).collect();
        let mut lat_cells = vec![(*w).to_string()];
        let mut cyc_cells = vec![(*w).to_string()];
        for (i, run) in runs.iter().enumerate() {
            lat_cells.push(format!(
                "{} ({})",
                fmt_cycles(run.avg_walk_latency()),
                run.walks.count()
            ));
            if i == 0 {
                cyc_cells.push(run.cycles.to_string());
            } else {
                cyc_cells.push(format!(
                    "{} ({:.2}x)",
                    run.cycles,
                    runs[0].cycles as f64 / run.cycles as f64
                ));
            }
        }
        lat.row(lat_cells);
        cyc.row(cyc_cells);
    }
    vec![lat, cyc]
}

/// The CI smoke report: one row per engine-matrix run.
fn render_smoke(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "CI smoke: engine matrix at miniature scale",
        vec![
            "variant",
            "walks",
            "avg walk latency (cycles)",
            "cycles",
            "prefetches",
            "faults",
        ],
    );
    for run in &r.runs {
        t.row(vec![
            run.variant.clone(),
            run.result.walks.count().to_string(),
            fmt_cycles(run.result.avg_walk_latency()),
            run.result.cycles.to_string(),
            run.result.prefetches_issued.to_string(),
            run.result.faults.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_config_honours_quick_env() {
        // Not setting the env: default windows.
        let c = super::sim_config();
        assert!(c.measure_accesses >= 20_000);
    }

    #[test]
    fn experiment_names_cover_the_paper_and_exclude_ci_smoke() {
        let names = experiment_names();
        assert!(names.contains(&"fig3"));
        assert!(!names.contains(&"smoke"), "smoke is CI-only");
    }

    #[test]
    fn every_registry_entry_runs_and_renders() {
        // Micro windows: enough to drive every scenario builder AND every
        // renderer arm end-to-end, so a registry entry without a renderer
        // (or a renderer/registry variant-key mismatch) fails here instead
        // of at `all_experiments` runtime.
        let sim = SimConfig {
            warmup_accesses: 100,
            measure_accesses: 300,
            seed: 42,
        };
        let scenarios = registry();
        let all = run_scenarios(&scenarios, sim);
        for results in &all {
            let tables = render(results.name, results);
            assert!(!tables.is_empty(), "{} rendered nothing", results.name);
            for t in &tables {
                assert!(!t.render().is_empty());
            }
        }
    }

    #[test]
    fn smoke_experiment_renders_a_table_per_run() {
        let report = run_experiment("smoke", SimConfig::smoke_test());
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].len(), report.results.runs.len());
    }
}
