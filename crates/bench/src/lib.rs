//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§5) from the simulator.
//!
//! Every experiment's runs are resolved through the scenario registry
//! ([`asap_sim::scenarios`]); this crate only owns the *rendering* — how a
//! scenario's [`RunResult`]s become the paper's tables. Which renderer a
//! scenario gets is selected by its [`RendererKind`] metadata, so a new
//! registry entry needs no harness change (the default renderer prints one
//! row per run). The single `asap` CLI (`src/bin/asap.rs`) fronts it all:
//!
//! ```text
//! cargo run --release -p asap-bench --bin asap -- list
//! cargo run --release -p asap-bench --bin asap -- run fig3 fig8
//! cargo run --release -p asap-bench --bin asap -- smoke   # committed BENCH_results.json
//! cargo run --release -p asap-bench --bin asap -- all     # BENCH_results_full.json
//! ```
//!
//! `--quick` (or `ASAP_QUICK=1`) shrinks the measurement windows for a
//! fast pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asap_sim::scenarios::{
    registry, run_scenarios_cached, RendererKind, Scenario, ScenarioResults,
};
use asap_sim::{
    fmt_cycles, fmt_pct, fmt_ratio, parallel_map, CacheHandle, RunResult, SimConfig, Table,
};
use asap_types::PtLevel;
use asap_workloads::WorkloadSpec;

/// The shared window configuration: `quick` (the CLI flag) or
/// `ASAP_QUICK=1` selects reduced windows.
#[must_use]
pub fn sim_config(quick: bool) -> SimConfig {
    if quick || quick_mode() {
        SimConfig {
            warmup_accesses: 5_000,
            measure_accesses: 20_000,
            seed: 42,
            ..SimConfig::default()
        }
    } else {
        SimConfig::default()
    }
}

/// Whether `ASAP_QUICK=1` is set.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("ASAP_QUICK").is_ok_and(|v| v == "1")
}

/// The tier tag stamped into results JSON for the current windows.
#[must_use]
pub fn tier(quick: bool) -> &'static str {
    if quick || quick_mode() {
        "quick"
    } else {
        "full"
    }
}

/// The tier tag for a concrete scenario set: scenarios with pinned
/// windows run at those windows regardless of `quick`, so the tag must
/// follow the windows the numbers were actually produced at. All-pinned
/// smoke windows → `"smoke"`; no pinned windows → [`tier`]; anything
/// else → `"mixed"` (never comparable to a committed baseline).
#[must_use]
pub fn results_tier(set: &[Scenario], quick: bool) -> &'static str {
    let smoke_windows = SimConfig::smoke_test();
    let pinned = set.iter().filter(|s| s.default_windows().is_some()).count();
    if pinned == 0 {
        tier(quick)
    } else if pinned == set.len()
        && set
            .iter()
            .all(|s| s.default_windows() == Some(smoke_windows))
    {
        "smoke"
    } else {
        "mixed"
    }
}

/// The registry minus the CI-only smoke scenarios, in paper order — the
/// set `asap all` regenerates.
#[must_use]
pub fn paper_scenarios() -> Vec<Scenario> {
    registry().into_iter().filter(|s| !s.smoke).collect()
}

/// The experiments `asap all` regenerates, in paper order.
#[must_use]
pub fn experiment_names() -> Vec<&'static str> {
    paper_scenarios().into_iter().map(|s| s.name).collect()
}

/// Executes a scenario set, honouring each scenario's own declared
/// windows ([`Scenario::default_windows`]) and falling back to `fallback`
/// for the rest. Scenarios sharing windows run as one flattened parallel
/// fan-out; results come back in the input order.
#[must_use]
pub fn execute_scenarios(set: &[Scenario], fallback: SimConfig) -> Vec<ScenarioResults> {
    execute_scenarios_cached(set, fallback, None)
}

/// [`execute_scenarios`] with an optional content-addressed result cache:
/// when `cache` is `Some`, each run is looked up by its
/// [`asap_sim::RunSpec`] cache key before simulating (hits decode the
/// stored result byte-identically), and the fan-out is scheduled
/// longest-expected-first from the cache's cost profile. `None` is the
/// plain uncached fan-out.
#[must_use]
pub fn execute_scenarios_cached(
    set: &[Scenario],
    fallback: SimConfig,
    cache: Option<&CacheHandle>,
) -> Vec<ScenarioResults> {
    let mut groups: Vec<(SimConfig, Vec<usize>)> = Vec::new();
    for (i, s) in set.iter().enumerate() {
        let sim = s.windows_or(fallback);
        match groups.iter_mut().find(|(g, _)| *g == sim) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((sim, vec![i])),
        }
    }
    let mut out: Vec<Option<ScenarioResults>> = set.iter().map(|_| None).collect();
    for (sim, idxs) in groups {
        let subset: Vec<Scenario> = idxs.iter().map(|&i| set[i].clone()).collect();
        for (results, &i) in run_scenarios_cached(&subset, sim, cache)
            .into_iter()
            .zip(&idxs)
        {
            out[i] = Some(results);
        }
    }
    out.into_iter()
        .map(|r| r.expect("every scenario lands in exactly one group"))
        .collect()
}

/// Prints every collected driver error to stderr and returns how many
/// there were — the CLI exits non-zero when this is not 0, so a failed
/// run in a fan-out can never hide behind a green exit.
///
/// Diagnostics are lint-style — `file:line: error: …` — where the anchor
/// is the source line that raised the [`DriverError`] (captured with
/// `#[track_caller]`), so a violation in a terminal or CI log is clickable
/// straight into the driver/spec code that rejected the run.
pub fn report_errors<'a>(all: impl IntoIterator<Item = &'a ScenarioResults>) -> usize {
    let mut count = 0;
    for results in all {
        for e in &results.errors {
            eprintln!(
                "{}: error: {}/{}/{}: {}",
                e.error.anchor(),
                results.name,
                e.workload,
                e.variant,
                e.error
            );
            count += 1;
        }
    }
    count
}

/// Writes results as `BENCH_results.json`-schema JSON to `path`.
///
/// # Errors
///
/// Propagates the I/O error; callers (the CLI) must treat it as fatal — a
/// missing results file would silently skip the CI perf-trajectory check.
pub fn write_results_json(
    path: &str,
    results: &[ScenarioResults],
    tier: &str,
) -> std::io::Result<()> {
    std::fs::write(path, asap_sim::results_to_json(results, tier))
}

/// Renders a scenario's results into the paper's tables, selected by the
/// scenario's [`RendererKind`] metadata. A scenario with driver errors
/// renders nothing — the errors ride along in `results.errors` for
/// [`report_errors`] instead of the renderer panicking on missing runs.
#[must_use]
pub fn render(scenario: &Scenario, results: &ScenarioResults) -> Vec<Table> {
    if !results.is_complete() {
        return Vec::new();
    }
    let suite = scenario.workload_specs();
    match scenario.renderer {
        RendererKind::RunMatrix => vec![render_run_matrix(scenario, results)],
        RendererKind::Table1 => vec![render_table1(results)],
        RendererKind::WalkFractionGrid => vec![render_four_scenarios(
            results,
            suite,
            "Figure 2: fraction of execution time spent in page walks",
            RunResult::walk_fraction,
            fmt_pct,
        )],
        RendererKind::WalkLatencyGrid => vec![render_four_scenarios(
            results,
            suite,
            "Figure 3: average page-walk latency (cycles)",
            RunResult::avg_walk_latency,
            fmt_cycles,
        )],
        RendererKind::PtCensus => vec![render_pt_census(suite)],
        RendererKind::AsapSweep => vec![
            asap_sweep_table(results, suite, false),
            asap_sweep_table(results, suite, true),
        ],
        RendererKind::ServedBy => vec![render_served_by(results)],
        RendererKind::NestedAsapSweep => vec![
            nested_sweep_table(results, suite, false),
            nested_sweep_table(results, suite, true),
        ],
        RendererKind::Projection => vec![render_projection(results, suite)],
        RendererKind::ClusteredSynergy => render_clustered_synergy(results, suite),
        RendererKind::HostHugePages => vec![render_host_huge_pages(results, suite)],
        RendererKind::PwcAblation => vec![render_pwc_ablation(results, suite)],
        RendererKind::ScatterAblation => vec![render_scatter_ablation(results)],
        RendererKind::FiveLevelAblation => vec![render_five_level(results)],
        RendererKind::HeadToHead => render_head_to_head(results),
        RendererKind::SmpScaling => vec![render_smp_scaling(scenario, results)],
    }
}

/// SMP scaling: every run contributes its per-core rows ("mc80@core0",
/// ...) followed by its whole-machine aggregate row, so both per-core
/// skew and the scaling trend across core counts are visible in one
/// table.
fn render_smp_scaling(scenario: &Scenario, r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        scenario.title,
        vec![
            "workload",
            "variant",
            "walks",
            "avg walk latency (cycles)",
            "cycles",
            "walk frac",
        ],
    );
    let mut row = |workload: String, variant: &str, result: &RunResult, frac: f64| {
        t.row(vec![
            workload,
            variant.into(),
            result.walks.count().to_string(),
            fmt_cycles(result.avg_walk_latency()),
            result.cycles.to_string(),
            fmt_pct(frac),
        ]);
    };
    for run in &r.runs {
        for core in &run.per_core {
            row(
                core.workload.clone(),
                &run.variant,
                core,
                core.walk_fraction(),
            );
        }
        if run.per_core.is_empty() {
            let result = &run.result;
            row(
                run.workload.to_string(),
                &run.variant,
                result,
                result.walk_fraction(),
            );
        } else {
            // Aggregate fraction per *core*-cycle (summed walk cycles over
            // summed per-core windows), not per wall cycle — the wall-clock
            // ratio exceeds 1 as soon as several walkers run concurrently.
            let core_cycles: u64 = run.per_core.iter().map(|c| c.cycles).sum();
            let frac = if core_cycles == 0 {
                0.0
            } else {
                run.result.walk_cycles as f64 / core_cycles as f64
            };
            row(
                format!("{} (all cores)", run.result.workload),
                &run.variant,
                &run.result,
                frac,
            );
        }
    }
    t
}

/// The default renderer: one row per run, engine-matrix style.
fn render_run_matrix(scenario: &Scenario, r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        scenario.title,
        vec![
            "workload",
            "variant",
            "walks",
            "avg walk latency (cycles)",
            "cycles",
            "prefetches",
            "faults",
        ],
    );
    for run in &r.runs {
        t.row(vec![
            run.workload.into(),
            run.variant.clone(),
            run.result.walks.count().to_string(),
            fmt_cycles(run.result.avg_walk_latency()),
            run.result.cycles.to_string(),
            run.result.prefetches_issued.to_string(),
            run.result.faults.to_string(),
        ]);
    }
    t
}

fn render_table1(r: &ScenarioResults) -> Table {
    let rows: [(&str, &RunResult); 5] = [
        ("native mc80 (reference)", r.get("mc80", "native")),
        ("5x larger dataset (mc400)", r.get("mc400", "native")),
        ("SMT colocation", r.get("mc80", "native+coloc")),
        ("Virtualization", r.get("mc80", "virt")),
        (
            "Virtualization + SMT colocation",
            r.get("mc80", "virt+coloc"),
        ),
    ];
    let reference = rows[0].1.avg_walk_latency();
    let mut t = Table::new(
        "Table 1: memcached page-walk latency growth (normalized to native mc80 isolation)",
        vec![
            "scenario",
            "avg walk latency (cycles)",
            "vs reference",
            "paper",
        ],
    );
    let paper = ["1.0x", "1.2x", "2.7x", "5.3x", "12.0x"];
    for ((name, run), paper_ratio) in rows.iter().zip(paper) {
        t.row(vec![
            (*name).into(),
            fmt_cycles(run.avg_walk_latency()),
            fmt_ratio(run.avg_walk_latency() / reference),
            paper_ratio.into(),
        ]);
    }
    t
}

/// Shared renderer for the Figs. 2/3 four-scenario layout.
fn render_four_scenarios(
    r: &ScenarioResults,
    suite: &[WorkloadSpec],
    title: &str,
    metric: fn(&RunResult) -> f64,
    fmt: fn(f64) -> String,
) -> Table {
    let mut t = Table::new(
        title,
        vec![
            "workload",
            "native",
            "native+coloc",
            "virtualized",
            "virt+coloc",
        ],
    );
    let variants = ["native", "native+coloc", "virt", "virt+coloc"];
    let mut sums = [0.0f64; 4];
    for w in suite {
        let mut cells = vec![w.name.to_string()];
        for (s, v) in sums.iter_mut().zip(variants.iter()) {
            let x = metric(r.get(w.name, v));
            cells.push(fmt(x));
            *s += x;
        }
        t.row(cells);
    }
    let n = suite.len() as f64;
    let mut cells = vec!["Average".to_string()];
    for s in sums {
        cells.push(fmt(s / n));
    }
    t.row(cells);
    t
}

/// Table 2 is analytic (a page-table census, no simulation runs), so its
/// renderer builds the processes itself from the scenario's workloads.
fn render_pt_census(suite: &[WorkloadSpec]) -> Table {
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_workloads::AccessStream;
    let mut t = Table::new(
        "Table 2: VMAs, PT pages and contiguous physical regions",
        vec![
            "workload",
            "total VMAs",
            "VMAs for 99%",
            "contig regions (touched)",
            "PT pages (touched)",
            "PT pages (full dataset)",
            "mean run (frames)",
        ],
    );
    let rows = parallel_map(suite.to_vec(), |w| {
        let mut p = w.build_process(Asid(1), AsapOsConfig::disabled(), 7);
        let mut stream = w.build_stream(&p, 9);
        // Touch enough of the dataset that the PT's statistical layout is
        // representative.
        for _ in 0..150_000 {
            let va = stream.next_va();
            let _ = p.touch(va);
        }
        let census = p.census();
        let contig = census.contiguity_total();
        // Analytic full-dataset PT size: one PL1 page per 2 MiB, one PL2
        // per 1 GiB, one PL3 per 512 GiB, plus the root.
        let bytes = w.footprint.bytes();
        let analytic =
            bytes.div_ceil(2 << 20) + bytes.div_ceil(1 << 30) + bytes.div_ceil(1 << 39) + 1;
        (
            w.name,
            p.vmas().len(),
            p.vmas().vmas_covering(0.99),
            contig.regions,
            census.total_pages(),
            analytic,
            contig.mean_run(),
        )
    });
    for (name, vmas, cover, regions, touched, analytic, run) in rows {
        t.row(vec![
            name.into(),
            vmas.to_string(),
            cover.to_string(),
            regions.to_string(),
            touched.to_string(),
            analytic.to_string(),
            format!("{run:.1}"),
        ]);
    }
    t
}

fn asap_sweep_table(r: &ScenarioResults, suite: &[WorkloadSpec], colocated: bool) -> Table {
    let title = if colocated {
        "Figure 8b: native walk latency under SMT colocation (cycles)"
    } else {
        "Figure 8a: native walk latency in isolation (cycles)"
    };
    let mut t = Table::new(
        title,
        vec![
            "workload",
            "Baseline",
            "P1",
            "P1+P2",
            "P1 red.",
            "P1+P2 red.",
        ],
    );
    let key = |base: &str| {
        if colocated {
            format!("{base}+coloc")
        } else {
            base.to_string()
        }
    };
    let mut acc = [0.0f64; 3];
    for w in suite {
        let base = r.get(w.name, &key("Baseline"));
        let p1 = r.get(w.name, &key("P1"));
        let p12 = r.get(w.name, &key("P1+P2"));
        t.row(vec![
            w.name.into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(p1.avg_walk_latency()),
            fmt_cycles(p12.avg_walk_latency()),
            fmt_pct(p1.reduction_vs(base)),
            fmt_pct(p12.reduction_vs(base)),
        ]);
        acc[0] += base.avg_walk_latency();
        acc[1] += p1.avg_walk_latency();
        acc[2] += p12.avg_walk_latency();
    }
    let n = suite.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[2] / acc[0]),
    ]);
    t
}

fn render_served_by(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Figure 9: walk requests served by each level (baseline, native)",
        vec![
            "workload", "scenario", "PT level", "PWC", "L1", "L2", "LLC", "Mem",
        ],
    );
    for run in &r.runs {
        for level in [PtLevel::Pl4, PtLevel::Pl3, PtLevel::Pl2, PtLevel::Pl1] {
            let f = run.result.served.fractions(level);
            t.row(vec![
                run.workload.into(),
                run.variant.clone(),
                level.to_string(),
                fmt_pct(f[0]),
                fmt_pct(f[1]),
                fmt_pct(f[2]),
                fmt_pct(f[3]),
                fmt_pct(f[4]),
            ]);
        }
    }
    t
}

fn nested_sweep_table(r: &ScenarioResults, suite: &[WorkloadSpec], colocated: bool) -> Table {
    let title = if colocated {
        "Figure 10b: virtualized walk latency under SMT colocation (cycles)"
    } else {
        "Figure 10a: virtualized walk latency in isolation (cycles)"
    };
    let configs = ["Baseline", "P1g", "P1g+P2g", "P1g+P1h", "All"];
    let mut t = Table::new(
        title,
        vec![
            "workload", "Baseline", "P1g", "P1g+P2g", "P1g+P1h", "All", "All red.",
        ],
    );
    let key = |base: &str| {
        if colocated {
            format!("{base}+coloc")
        } else {
            base.to_string()
        }
    };
    let mut acc = [0.0f64; 5];
    for w in suite {
        let rs: Vec<&RunResult> = configs.iter().map(|c| r.get(w.name, &key(c))).collect();
        let mut cells = vec![w.name.to_string()];
        for (i, run) in rs.iter().enumerate() {
            cells.push(fmt_cycles(run.avg_walk_latency()));
            acc[i] += run.avg_walk_latency();
        }
        cells.push(fmt_pct(rs[4].reduction_vs(rs[0])));
        t.row(cells);
    }
    let n = suite.len() as f64;
    let mut cells = vec!["Average".to_string()];
    for a in acc {
        cells.push(fmt_cycles(a / n));
    }
    cells.push(fmt_pct(1.0 - acc[4] / acc[0]));
    t.row(cells);
    t
}

fn render_projection(r: &ScenarioResults, suite: &[WorkloadSpec]) -> Table {
    let mut t = Table::new(
        "Table 6: conservative projection of ASAP's performance improvement",
        vec![
            "workload",
            "walk cycles on critical path",
            "ASAP walk-latency reduction (virt)",
            "estimated speedup",
        ],
    );
    let mut est_sum = 0.0;
    for w in suite {
        let normal = r.get(w.name, "native");
        let perfect = r.get(w.name, "native-perfect");
        let fraction = 1.0 - perfect.cycles as f64 / normal.cycles as f64;
        let vbase = r.get(w.name, "virt");
        let vasap = r.get(w.name, "virt+asap");
        let reduction = vasap.reduction_vs(vbase);
        let est = fraction * reduction;
        est_sum += est;
        t.row(vec![
            w.name.into(),
            fmt_pct(fraction),
            fmt_pct(reduction),
            fmt_pct(est),
        ]);
    }
    t.row(vec![
        "Average".into(),
        String::new(),
        String::new(),
        fmt_pct(est_sum / suite.len() as f64),
    ]);
    t
}

fn render_clustered_synergy(r: &ScenarioResults, suite: &[WorkloadSpec]) -> Vec<Table> {
    let mut t7 = Table::new(
        "Table 7: TLB MPKI reduction with the clustered TLB",
        vec![
            "workload",
            "baseline MPKI",
            "clustered MPKI",
            "reduction",
            "paper",
        ],
    );
    let paper7 = ["58%", "48%", "10%", "16%", "4%", "9%", "12%"];
    let mut t11 = Table::new(
        "Figure 11: reduction in page-walk cycles (native isolation)",
        vec!["workload", "Clustered TLB", "ASAP", "Clustered + ASAP"],
    );
    let mut acc = [0.0f64; 3];
    for (w, paper) in suite.iter().zip(paper7) {
        let base = r.get(w.name, "Baseline");
        let clustered = r.get(w.name, "Clustered");
        let asap = r.get(w.name, "ASAP");
        let both = r.get(w.name, "Clustered+ASAP");
        // Clustered-TLB hits eliminate walks; MPKI here counts *walks
        // performed* per kilo-instruction so the coalescing effect shows.
        let base_mpki = base.walks.count() as f64 * 1000.0 / base.instructions as f64;
        let cl_mpki = clustered.walks.count() as f64 * 1000.0 / clustered.instructions as f64;
        t7.row(vec![
            w.name.into(),
            format!("{base_mpki:.2}"),
            format!("{cl_mpki:.2}"),
            fmt_pct(1.0 - cl_mpki / base_mpki),
            paper.into(),
        ]);
        let reductions = [
            clustered.walk_cycles_reduction_vs(base),
            asap.walk_cycles_reduction_vs(base),
            both.walk_cycles_reduction_vs(base),
        ];
        for (a, red) in acc.iter_mut().zip(reductions.iter()) {
            *a += red;
        }
        t11.row(vec![
            w.name.into(),
            fmt_pct(reductions[0]),
            fmt_pct(reductions[1]),
            fmt_pct(reductions[2]),
        ]);
    }
    let n = suite.len() as f64;
    t11.row(vec![
        "Average".into(),
        fmt_pct(acc[0] / n),
        fmt_pct(acc[1] / n),
        fmt_pct(acc[2] / n),
    ]);
    vec![t11, t7]
}

fn render_host_huge_pages(r: &ScenarioResults, suite: &[WorkloadSpec]) -> Table {
    let mut t = Table::new(
        "Figure 12: virtualized walk latency with 2 MiB host pages (cycles)",
        vec![
            "workload",
            "Baseline",
            "ASAP",
            "Baseline+coloc",
            "ASAP+coloc",
            "red. iso",
            "red. coloc",
        ],
    );
    let variants = ["Baseline", "ASAP", "Baseline+coloc", "ASAP+coloc"];
    let mut acc = [0.0f64; 4];
    for w in suite {
        let rs: Vec<&RunResult> = variants.iter().map(|v| r.get(w.name, v)).collect();
        t.row(vec![
            w.name.into(),
            fmt_cycles(rs[0].avg_walk_latency()),
            fmt_cycles(rs[1].avg_walk_latency()),
            fmt_cycles(rs[2].avg_walk_latency()),
            fmt_cycles(rs[3].avg_walk_latency()),
            fmt_pct(rs[1].reduction_vs(rs[0])),
            fmt_pct(rs[3].reduction_vs(rs[2])),
        ]);
        for (a, run) in acc.iter_mut().zip(rs.iter()) {
            *a += run.avg_walk_latency();
        }
    }
    let n = suite.len() as f64;
    t.row(vec![
        "Average".into(),
        fmt_cycles(acc[0] / n),
        fmt_cycles(acc[1] / n),
        fmt_cycles(acc[2] / n),
        fmt_cycles(acc[3] / n),
        fmt_pct(1.0 - acc[1] / acc[0]),
        fmt_pct(1.0 - acc[3] / acc[2]),
    ]);
    t
}

fn render_pwc_ablation(r: &ScenarioResults, suite: &[WorkloadSpec]) -> Table {
    let mut t = Table::new(
        "Ablation (§5.1.1): PWC capacity doubling (native isolation)",
        vec!["workload", "default PWC", "doubled PWC", "reduction"],
    );
    let (mut b, mut d) = (0.0f64, 0.0f64);
    for w in suite {
        let base = r.get(w.name, "default");
        let doubled = r.get(w.name, "doubled");
        t.row(vec![
            w.name.into(),
            fmt_cycles(base.avg_walk_latency()),
            fmt_cycles(doubled.avg_walk_latency()),
            fmt_pct(doubled.reduction_vs(base)),
        ]);
        b += base.avg_walk_latency();
        d += doubled.avg_walk_latency();
    }
    t.row(vec![
        "Average".into(),
        fmt_cycles(b / suite.len() as f64),
        fmt_cycles(d / suite.len() as f64),
        fmt_pct(1.0 - d / b),
    ]);
    t
}

fn render_scatter_ablation(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Ablation: baseline sensitivity to PT physical layout (mc80, native isolation)",
        vec!["PT scatter mean run (frames)", "avg walk latency (cycles)"],
    );
    for run in &r.runs {
        t.row(vec![
            run.variant
                .strip_prefix("run=")
                .unwrap_or(&run.variant)
                .to_string(),
            fmt_cycles(run.result.avg_walk_latency()),
        ]);
    }
    t
}

fn render_five_level(r: &ScenarioResults) -> Table {
    let mut t = Table::new(
        "Extension (§3.5): five-level page table (mc400, native isolation)",
        vec!["config", "avg walk latency (cycles)", "vs 4-level baseline"],
    );
    let base = r.runs.first().map_or(0.0, |r| r.result.avg_walk_latency());
    for run in &r.runs {
        t.row(vec![
            run.variant.clone(),
            fmt_cycles(run.result.avg_walk_latency()),
            fmt_ratio(run.result.avg_walk_latency() / base),
        ]);
    }
    t
}

/// The contender comparison: walk latency, walks performed, and total
/// execution cycles for baseline vs ASAP vs Victima vs Revelator. Victima
/// wins by *eliminating* walks (cache-resident TLB blocks), Revelator by
/// *overlapping* the data fetch with the walk — so neither shows up fully
/// in walk latency alone, and the cycles table is the decisive one.
fn render_head_to_head(r: &ScenarioResults) -> Vec<Table> {
    let backends = ["Baseline", "ASAP", "Victima", "Revelator"];
    let mut workloads: Vec<&str> = Vec::new();
    for run in &r.runs {
        if !workloads.contains(&run.workload) {
            workloads.push(run.workload);
        }
    }
    let mut lat = Table::new(
        "Head-to-head: average page-walk latency (cycles; walks in parentheses)",
        vec!["workload", "Baseline", "ASAP", "Victima", "Revelator"],
    );
    let mut cyc = Table::new(
        "Head-to-head: execution cycles (speedup vs baseline)",
        vec!["workload", "Baseline", "ASAP", "Victima", "Revelator"],
    );
    for w in &workloads {
        let runs: Vec<&RunResult> = backends.iter().map(|b| r.get(w, b)).collect();
        let mut lat_cells = vec![(*w).to_string()];
        let mut cyc_cells = vec![(*w).to_string()];
        for (i, run) in runs.iter().enumerate() {
            lat_cells.push(format!(
                "{} ({})",
                fmt_cycles(run.avg_walk_latency()),
                run.walks.count()
            ));
            if i == 0 {
                cyc_cells.push(run.cycles.to_string());
            } else {
                cyc_cells.push(format!(
                    "{} ({:.2}x)",
                    run.cycles,
                    runs[0].cycles as f64 / run.cycles as f64
                ));
            }
        }
        lat.row(lat_cells);
        cyc.row(cyc_cells);
    }
    vec![lat, cyc]
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_sim::scenarios::{find, run_scenarios};

    #[test]
    fn sim_config_honours_quick_flag() {
        assert!(sim_config(false).measure_accesses >= 20_000);
        assert_eq!(sim_config(true).measure_accesses, 20_000);
        assert_eq!(tier(true), "quick");
    }

    #[test]
    fn results_tier_follows_the_actual_windows() {
        let smoke: Vec<Scenario> = registry().into_iter().filter(|s| s.smoke).collect();
        let paper = paper_scenarios();
        let mixed: Vec<Scenario> = registry()
            .into_iter()
            .filter(|s| s.name == "smoke" || s.name == "fig3")
            .collect();
        assert_eq!(results_tier(&smoke, false), "smoke");
        assert_eq!(
            results_tier(&smoke, true),
            "smoke",
            "--quick can't change pinned windows"
        );
        assert_eq!(results_tier(&paper, false), "full");
        assert_eq!(results_tier(&paper, true), "quick");
        assert_eq!(results_tier(&mixed, false), "mixed");
    }

    #[test]
    fn experiment_names_cover_the_paper_and_exclude_ci_smoke() {
        let names = experiment_names();
        assert!(names.contains(&"fig3"));
        assert!(!names.contains(&"smoke"), "smoke is CI-only");
    }

    #[test]
    fn every_registry_entry_runs_and_renders() {
        // Micro windows: enough to drive every scenario builder AND every
        // renderer arm end-to-end, so a renderer/registry variant-key
        // mismatch fails here instead of at `asap all` runtime.
        let sim = SimConfig {
            warmup_accesses: 100,
            measure_accesses: 300,
            seed: 42,
            ..SimConfig::default()
        };
        let scenarios = registry();
        let all = run_scenarios(&scenarios, sim);
        for (scenario, results) in scenarios.iter().zip(&all) {
            assert!(results.is_complete(), "{} had errors", scenario.name);
            let tables = render(scenario, results);
            assert!(!tables.is_empty(), "{} rendered nothing", scenario.name);
            for t in &tables {
                assert!(!t.render().is_empty());
            }
        }
    }

    #[test]
    fn smoke_scenario_renders_a_table_per_run() {
        let scenario = find("smoke").unwrap();
        let results = scenario.run(SimConfig::smoke_test());
        let tables = render(&scenario, &results);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), results.runs.len());
    }

    #[test]
    fn execute_scenarios_honours_declared_windows() {
        // smoke declares miniature windows; table2 enumerates no runs. The
        // grouped execution must keep input order and use the declared
        // windows (the committed smoke numbers pin the window size).
        let set: Vec<Scenario> = registry()
            .into_iter()
            .filter(|s| s.name == "table2" || s.name == "smoke")
            .collect();
        let results = execute_scenarios(&set, SimConfig::default());
        assert_eq!(results[0].name, "table2");
        assert_eq!(results[1].name, "smoke");
        let direct = find("smoke").unwrap().run(SimConfig::smoke_test());
        for (a, b) in results[1].runs.iter().zip(direct.runs.iter()) {
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.result.cycles, b.result.cycles);
        }
    }

    #[test]
    fn render_skips_incomplete_results_and_reports_their_errors() {
        use asap_sim::scenarios::{ScenarioResults, ScenarioRunError};
        use asap_sim::DriverError;
        let scenario = find("smoke").unwrap();
        let complete = ScenarioResults {
            name: "smoke",
            runs: Vec::new(),
            errors: Vec::new(),
        };
        // Complete-but-empty renders an (empty) matrix…
        assert_eq!(render(&scenario, &complete).len(), 1);
        // …but a scenario with driver errors renders nothing, and the
        // errors are countable for the CLI's non-zero exit.
        let failed = ScenarioResults {
            errors: vec![ScenarioRunError {
                workload: "mc80",
                variant: "native/baseline".into(),
                error: DriverError::incompatible_spec("test error"),
            }],
            ..complete
        };
        assert!(render(&scenario, &failed).is_empty());
        assert_eq!(report_errors([&failed]), 1);
    }
}
