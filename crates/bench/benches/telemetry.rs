//! Observer-effect benchmarks: proves the telemetry layer's disabled
//! path costs nothing measurable.
//!
//! The `disabled/` rows repeat the `components/cache/hierarchy_access`
//! and `components/driver/batched_epoch` bodies verbatim on a build that
//! carries the telemetry hooks — if the hooks were not compiling to
//! never-taken branches, these rows would drift from their `components/`
//! twins. The `enabled/` rows are the contrast: the same epoch with a
//! tracer installed, showing what turning the layer ON costs.

use asap_cache::{CacheHierarchy, HierarchyConfig};
use asap_core::{Mmu, MmuConfig, TranslationEngine};
use asap_os::AsapOsConfig;
use asap_sim::{run_scenario, run_scenario_observed, RunMeta, SimConfig};
use asap_telemetry::TraceSink;
use asap_types::{Asid, ByteSize, CacheLineAddr};
use asap_workloads::WorkloadSpec;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn disabled_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/disabled");

    // Twin of components/cache/hierarchy_access: the fabric hot path has
    // no telemetry branch at all — this row pins that it stays that way.
    let mut hier = CacheHierarchy::new(HierarchyConfig::broadwell_like());
    let mut i = 0u64;
    g.bench_function("hierarchy_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            hier.access(CacheLineAddr::new(i % (1 << 20)))
        })
    });

    // Twin of components/driver/batched_epoch: every per-access tracer
    // hook in the engine evaluates `None` here.
    g.sample_size(10);
    let w = WorkloadSpec {
        footprint: ByteSize::mib(64),
        ..WorkloadSpec::mc80()
    };
    let sim = SimConfig::smoke_test();
    let mut process = w.build_process(Asid(9), AsapOsConfig::disabled(), sim.seed);
    let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
    TranslationEngine::load_context(&mut mmu, &process);
    let meta = RunMeta {
        workload: "bench".into(),
        label: "bench".into(),
        sim,
        colocated: false,
        perfect_tlb: false,
    };
    g.bench_function("batched_epoch", |b| {
        b.iter(|| {
            let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
            run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta).unwrap()
        })
    });
    g.finish();
}

fn enabled_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/enabled");
    g.sample_size(10);
    let w = WorkloadSpec {
        footprint: ByteSize::mib(64),
        ..WorkloadSpec::mc80()
    };
    let sim = SimConfig::smoke_test();
    let mut process = w.build_process(Asid(9), AsapOsConfig::disabled(), sim.seed);
    let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
    TranslationEngine::load_context(&mut mmu, &process);
    let meta = RunMeta {
        workload: "bench".into(),
        label: "bench".into(),
        sim,
        colocated: false,
        perfect_tlb: false,
    };
    // One epoch with a live ring buffer: the honest price of `--trace`.
    g.bench_function("batched_epoch_traced", |b| {
        b.iter(|| {
            mmu.set_tracer(TraceSink::default());
            let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
            let r = run_scenario_observed(&mut mmu, &mut process, stream.as_mut(), &meta, None)
                .unwrap();
            black_box(mmu.take_tracer());
            r
        })
    });
    g.finish();
}

criterion_group!(telemetry, disabled_path, enabled_path);
criterion_main!(telemetry);
