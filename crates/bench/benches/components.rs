//! Component microbenchmarks: the hot structures of the simulator.

use asap_alloc::{BuddyAllocator, FrameAllocator, ScatterAllocator, ScatterConfig};
use asap_cache::{CacheHierarchy, HierarchyConfig};
use asap_os::feistel_permute;
use asap_pt::{BumpNodeAllocator, PageTable, PteFlags, SimPhysMem, Walker};
use asap_tlb::{PageWalkCaches, PwcConfig, Tlb, TlbConfig, TlbEntry};
use asap_types::{Asid, CacheLineAddr, PageSize, PagingMode, PhysFrameNum, VirtAddr, VirtPageNum};
use asap_workloads::{AccessStream, UniformStream};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn cache_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cache");
    let mut hier = CacheHierarchy::new(HierarchyConfig::broadwell_like());
    let mut i = 0u64;
    g.bench_function("hierarchy_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            hier.access(CacheLineAddr::new(i % (1 << 20)))
        })
    });

    // The SMP driver's inner step: min-clock core arbitration plus one
    // explicitly-timed access through the shared fabric handle — the hot
    // path every multi-core cycle goes through.
    let fabric = asap_cache::SharedFabric::new(HierarchyConfig::broadwell_like());
    let mut clocks = [0u64; 4];
    let mut j = 0u64;
    g.bench_function("fabric_arbitration", |b| {
        b.iter(|| {
            let port = clocks
                .iter()
                .enumerate()
                .min_by_key(|(i, t)| (**t, *i))
                .map(|(i, _)| i)
                .expect("four ports");
            j = j.wrapping_add(0x9e37_79b9);
            let r = fabric.access_at(
                CacheLineAddr::new((j % (1 << 20)) | (port as u64) << 40),
                clocks[port],
            );
            clocks[port] += r.latency + 3;
            black_box(r)
        })
    });
    g.finish();
}

fn arbitration_scaling(c: &mut Criterion) {
    use asap_sim::sched::{linear_scan, EventQueue};

    // The scheduler's per-epoch cost as the core count grows: one
    // arbitration round = pick the minimum-clock core, advance it by a
    // pseudo-random burst, reinsert. The heap rows should stay near-flat
    // (O(log n)); the linear_scan rows are the O(n) contrast — the cost
    // the old driver paid at every epoch.
    let mut g = c.benchmark_group("components/arbitration");
    let burst = |clock: u64, i: usize| clock + 40 + ((clock >> 3) ^ i as u64) % 191;
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut queue = EventQueue::with_capacity(n);
        for i in 0..n {
            queue.push((i as u64, i));
        }
        g.bench_function(format!("event_queue/{n}"), |b| {
            b.iter(|| {
                let (clock, i) = queue.pop().expect("queue stays full");
                queue.push((burst(clock, i), i));
                black_box(queue.peek())
            })
        });

        let mut clocks: Vec<u64> = (0..n as u64).collect();
        g.bench_function(format!("linear_scan/{n}"), |b| {
            b.iter(|| {
                let (best, _) = linear_scan(clocks.iter().enumerate().map(|(i, t)| (*t, i)));
                let (clock, i) = best.expect("at least one core");
                clocks[i] = burst(clock, i);
                black_box(clocks[i])
            })
        });
    }
    g.finish();
}

fn tlb_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/tlb");
    let mut tlb = Tlb::new(TlbConfig::l2_stlb(), 0);
    for i in 0..1536u64 {
        tlb.insert(
            Asid(0),
            VirtPageNum::new(i),
            TlbEntry::new(PhysFrameNum::new(i), PageSize::Size4K),
        );
    }
    let mut i = 0u64;
    g.bench_function("l2_stlb_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(7);
            tlb.lookup(Asid(0), VirtPageNum::new(i % 2048))
        })
    });
    let mut pwc = PageWalkCaches::new(PwcConfig::split_default(), 0);
    pwc.fill(
        Asid(0),
        VirtAddr::new(0x1000).unwrap(),
        asap_types::PtLevel::Pl2,
        PhysFrameNum::new(1),
    );
    g.bench_function("pwc_lookup", |b| {
        b.iter(|| pwc.lookup(Asid(0), VirtAddr::new(black_box(0x1000)).unwrap()))
    });
    g.finish();
}

fn page_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/walk");
    let mut mem = SimPhysMem::new();
    let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x1000));
    let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
    for i in 0..4096u64 {
        pt.map(
            &mut mem,
            &mut alloc,
            VirtAddr::new(i << 12).unwrap(),
            PhysFrameNum::new(i + 10),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
    }
    let mut i = 0u64;
    g.bench_function("software_walk", |b| {
        b.iter(|| {
            i = (i + 97) % 4096;
            Walker::walk(&mem, &pt, VirtAddr::new(i << 12).unwrap())
        })
    });

    // The same table through the flat arena mirror — the descent the hot
    // loop actually runs. Same stride as `software_walk`, so the two rows
    // are directly comparable.
    let mut mirror = asap_pt::FlatMirror::new(&pt);
    mirror.rebuild(&mem, &pt);
    let mut k = 0u64;
    g.bench_function("flat_translate", |b| {
        b.iter(|| {
            k = (k + 97) % 4096;
            mirror.translate(VirtAddr::new(k << 12).unwrap())
        })
    });
    g.finish();
}

fn driver_loop(c: &mut Criterion) {
    use asap_core::{Mmu, MmuConfig, TranslationEngine};
    use asap_os::AsapOsConfig;
    use asap_sim::{run_scenario, RunMeta, SimConfig};
    use asap_types::ByteSize;
    use asap_workloads::WorkloadSpec;

    let mut g = c.benchmark_group("components/driver");
    g.sample_size(10);

    // One full batched smoke-window epoch (warmup + measure) through the
    // single-core driver: the end-to-end per-access cost of the inner loop.
    let w = WorkloadSpec {
        footprint: ByteSize::mib(64),
        ..WorkloadSpec::mc80()
    };
    let sim = SimConfig::smoke_test();
    let mut process = w.build_process(Asid(9), AsapOsConfig::disabled(), sim.seed);
    let mut mmu = Mmu::new(MmuConfig::default().with_seed(sim.seed));
    TranslationEngine::load_context(&mut mmu, &process);
    let meta = RunMeta {
        workload: "bench".into(),
        label: "bench".into(),
        sim,
        colocated: false,
        perfect_tlb: false,
    };
    g.bench_function("batched_epoch", |b| {
        b.iter(|| {
            let mut stream = w.build_stream(&process, sim.seed ^ 0x11);
            run_scenario(&mut mmu, &mut process, stream.as_mut(), &meta).unwrap()
        })
    });

    // Snapshot-and-reset of the engine's plain-counter statistics — the
    // bulk "flush" the driver performs once per measurement window.
    g.bench_function("stats_flush", |b| {
        b.iter(|| {
            let snap = mmu.stats_snapshot();
            mmu.reset_stats();
            black_box(snap)
        })
    });
    g.finish();
}

fn allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/alloc");
    g.bench_function("buddy_alloc_free", |b| {
        let mut buddy = BuddyAllocator::new(PhysFrameNum::new(0), 1 << 16);
        b.iter(|| {
            let f = buddy.alloc(0).unwrap();
            buddy.free(f, 0);
        })
    });
    g.bench_function("scatter_alloc", |b| {
        let mut sc = ScatterAllocator::new(ScatterConfig {
            mean_run_len: 8.0,
            phys_frames: 1 << 24,
            seed: 1,
        });
        b.iter(|| sc.alloc_frame().unwrap())
    });
    g.bench_function("feistel_permute", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & ((1 << 28) - 1);
            feistel_permute(x, 0xfeed, 28)
        })
    });
    g.finish();
}

fn contender_hot_paths(c: &mut Criterion) {
    use asap_contenders::{PtwCostPredictor, PtwCostPredictorConfig, VictimaConfig, VictimaMmu};
    use asap_core::TranslationEngine;
    use asap_os::{Process, ProcessConfig, VmaKind};
    use asap_types::ByteSize;

    let mut g = c.benchmark_group("components/contenders");

    // Revelator's hash unit: the speculative VA -> PA computation.
    let p = Process::new(
        ProcessConfig::new(Asid(3))
            .with_heap(ByteSize::mib(64))
            .with_data_cluster_fraction(1.0),
    );
    let hint = p.speculation_hint();
    let heap = p.vma_of_kind(VmaKind::Heap).unwrap().start().raw();
    let mut i = 0u64;
    g.bench_function("speculative_hash", |b| {
        b.iter(|| {
            i = (i + 97) % 16_384;
            hint.predict(VirtAddr::new(black_box(heap + i * 4096)).unwrap())
        })
    });

    // Victima's TLB-block lookup: L2 probe + shadow payload, warmed by a
    // pass whose tiny S-TLB evicts every fill straight into blocks.
    let mut process = Process::new(
        ProcessConfig::new(Asid(4))
            .with_heap(ByteSize::mib(256))
            .with_seed(5),
    );
    let heap = process.vma_of_kind(VmaKind::Heap).unwrap().start().raw();
    // 128 pages, one per 2 MiB region, staying inside the 256 MiB heap.
    let vas: Vec<VirtAddr> = (0..128u64)
        .map(|i| VirtAddr::new(heap + i * 513 * 4096).unwrap())
        .collect();
    for va in &vas {
        process.touch(*va).unwrap();
    }
    let mut mmu = VictimaMmu::new(VictimaConfig {
        l2_tlb: asap_tlb::TlbConfig {
            name: "tiny S-TLB",
            entries: 8,
            ways: 2,
            replacement: asap_cache::ReplacementKind::Lru,
        },
        ..VictimaConfig::default()
    });
    TranslationEngine::load_context(&mut mmu, &process);
    for va in &vas {
        let _ = mmu.translate(&process, *va);
    }
    let mut i = 0usize;
    g.bench_function("tlb_block_lookup", |b| {
        b.iter(|| {
            i = (i + 31) % vas.len();
            mmu.translate(&process, vas[i])
        })
    });

    // The PTW cost predictor's record/predict pair.
    let mut predictor = PtwCostPredictor::new(PtwCostPredictorConfig::default(), 9);
    let mut j = 0u64;
    g.bench_function("ptw_cost_predict", |b| {
        b.iter(|| {
            j = (j + 511) % (1 << 20);
            predictor.record(Asid(1), VirtPageNum::new(j), 100 + (j & 0xFF));
            predictor.predicts_costly(Asid(1), VirtPageNum::new(j))
        })
    });
    g.finish();
}

fn workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/workloads");
    let ranges = asap_workloads::WorkloadSpec::mcf();
    let p = ranges.build_process(Asid(1), asap_os::AsapOsConfig::disabled(), 3);
    let mut stream = ranges.build_stream(&p, 3);
    g.bench_function("pointer_chase_next", |b| b.iter(|| stream.next_va()));
    let r = asap_workloads::WorkloadSpec::mc80();
    let p2 = r.build_process(Asid(2), asap_os::AsapOsConfig::disabled(), 3);
    let mut uniform = UniformStream::new(r.dataset_ranges(&p2), 1.0, 4, 9);
    g.bench_function("uniform_next", |b| b.iter(|| uniform.next_va()));
    g.finish();
}

criterion_group!(
    components,
    cache_hierarchy,
    arbitration_scaling,
    tlb_lookup,
    page_walk,
    driver_loop,
    allocators,
    contender_hot_paths,
    workload_gen
);
criterion_main!(components);
