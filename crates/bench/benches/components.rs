//! Component microbenchmarks: the hot structures of the simulator.

use asap_alloc::{BuddyAllocator, FrameAllocator, ScatterAllocator, ScatterConfig};
use asap_cache::{CacheHierarchy, HierarchyConfig};
use asap_os::feistel_permute;
use asap_pt::{BumpNodeAllocator, PageTable, PteFlags, SimPhysMem, Walker};
use asap_tlb::{PageWalkCaches, PwcConfig, Tlb, TlbConfig, TlbEntry};
use asap_types::{Asid, CacheLineAddr, PageSize, PagingMode, PhysFrameNum, VirtAddr, VirtPageNum};
use asap_workloads::{AccessStream, UniformStream};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn cache_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cache");
    let mut hier = CacheHierarchy::new(HierarchyConfig::broadwell_like());
    let mut i = 0u64;
    g.bench_function("hierarchy_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            hier.access(CacheLineAddr::new(i % (1 << 20)))
        })
    });
    g.finish();
}

fn tlb_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/tlb");
    let mut tlb = Tlb::new(TlbConfig::l2_stlb(), 0);
    for i in 0..1536u64 {
        tlb.insert(
            Asid(0),
            VirtPageNum::new(i),
            TlbEntry::new(PhysFrameNum::new(i), PageSize::Size4K),
        );
    }
    let mut i = 0u64;
    g.bench_function("l2_stlb_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(7);
            tlb.lookup(Asid(0), VirtPageNum::new(i % 2048))
        })
    });
    let mut pwc = PageWalkCaches::new(PwcConfig::split_default(), 0);
    pwc.fill(
        Asid(0),
        VirtAddr::new(0x1000).unwrap(),
        asap_types::PtLevel::Pl2,
        PhysFrameNum::new(1),
    );
    g.bench_function("pwc_lookup", |b| {
        b.iter(|| pwc.lookup(Asid(0), VirtAddr::new(black_box(0x1000)).unwrap()))
    });
    g.finish();
}

fn page_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/walk");
    let mut mem = SimPhysMem::new();
    let mut alloc = BumpNodeAllocator::new(PhysFrameNum::new(0x1000));
    let mut pt = PageTable::new(PagingMode::FourLevel, &mut mem, &mut alloc);
    for i in 0..4096u64 {
        pt.map(
            &mut mem,
            &mut alloc,
            VirtAddr::new(i << 12).unwrap(),
            PhysFrameNum::new(i + 10),
            PageSize::Size4K,
            PteFlags::user_data(),
        )
        .unwrap();
    }
    let mut i = 0u64;
    g.bench_function("software_walk", |b| {
        b.iter(|| {
            i = (i + 97) % 4096;
            Walker::walk(&mem, &pt, VirtAddr::new(i << 12).unwrap())
        })
    });
    g.finish();
}

fn allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/alloc");
    g.bench_function("buddy_alloc_free", |b| {
        let mut buddy = BuddyAllocator::new(PhysFrameNum::new(0), 1 << 16);
        b.iter(|| {
            let f = buddy.alloc(0).unwrap();
            buddy.free(f, 0);
        })
    });
    g.bench_function("scatter_alloc", |b| {
        let mut sc = ScatterAllocator::new(ScatterConfig {
            mean_run_len: 8.0,
            phys_frames: 1 << 24,
            seed: 1,
        });
        b.iter(|| sc.alloc_frame().unwrap())
    });
    g.bench_function("feistel_permute", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) & ((1 << 28) - 1);
            feistel_permute(x, 0xfeed, 28)
        })
    });
    g.finish();
}

fn workload_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/workloads");
    let ranges = asap_workloads::WorkloadSpec::mcf();
    let p = ranges.build_process(Asid(1), asap_os::AsapOsConfig::disabled(), 3);
    let mut stream = ranges.build_stream(&p, 3);
    g.bench_function("pointer_chase_next", |b| b.iter(|| stream.next_va()));
    let r = asap_workloads::WorkloadSpec::mc80();
    let p2 = r.build_process(Asid(2), asap_os::AsapOsConfig::disabled(), 3);
    let mut uniform = UniformStream::new(r.dataset_ranges(&p2), 1.0, 4, 9);
    g.bench_function("uniform_next", |b| b.iter(|| uniform.next_va()));
    g.finish();
}

criterion_group!(
    components,
    cache_hierarchy,
    tlb_lookup,
    page_walk,
    allocators,
    workload_gen
);
criterion_main!(components);
