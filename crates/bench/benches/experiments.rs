//! Criterion benches, one group per paper table/figure: each measures the
//! simulation kernel that regenerates the experiment, at reduced scale
//! (the `asap` CLI produces the full tables).

use asap_core::{AsapHwConfig, NestedAsapConfig};
use asap_sim::{RunSpec, SimConfig};
use asap_types::ByteSize;
use asap_workloads::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sim() -> SimConfig {
    SimConfig {
        warmup_accesses: 2_000,
        measure_accesses: 6_000,
        seed: 42,
        ..SimConfig::default()
    }
}

fn small(w: WorkloadSpec) -> WorkloadSpec {
    WorkloadSpec {
        footprint: ByteSize::mib(64 * w.big_vmas as u64),
        ..w
    }
}

fn table1_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("native_mc80_baseline", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mc80()))
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.bench_function("virt_mc80_baseline", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mc80()))
                .virt()
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.finish();
}

fn fig2_fig3_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_fig3");
    g.sample_size(10);
    for w in [WorkloadSpec::mcf(), WorkloadSpec::redis()] {
        g.bench_function(format!("native_{}", w.name), |b| {
            let w = small(w.clone());
            b.iter(|| RunSpec::new(w.clone()).with_sim(bench_sim()).run().unwrap())
        });
    }
    g.finish();
}

fn fig8_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (name, asap) in [
        ("baseline", AsapHwConfig::off()),
        ("p1", AsapHwConfig::p1()),
        ("p1_p2", AsapHwConfig::p1_p2()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                RunSpec::new(small(WorkloadSpec::mc80()))
                    .with_asap(asap.clone())
                    .with_sim(bench_sim())
                    .run()
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn fig9_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("served_matrix_mcf", |b| {
        b.iter(|| {
            let r = RunSpec::new(small(WorkloadSpec::mcf()))
                .with_sim(bench_sim())
                .run()
                .unwrap();
            r.served.fractions(asap_types::PtLevel::Pl1)
        })
    });
    g.finish();
}

fn fig10_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (name, asap) in [
        ("baseline", NestedAsapConfig::off()),
        ("p1g", NestedAsapConfig::p1g()),
        ("all", NestedAsapConfig::all()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                RunSpec::new(small(WorkloadSpec::mc80()))
                    .virt()
                    .with_nested_asap(asap.clone())
                    .with_sim(bench_sim())
                    .run()
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn table6_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("perfect_tlb", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mcf()))
                .perfect_tlb()
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.finish();
}

fn fig11_table7_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_table7");
    g.sample_size(10);
    g.bench_function("clustered_tlb", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mcf()))
                .with_clustered_tlb()
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.bench_function("clustered_plus_asap", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mcf()))
                .with_clustered_tlb()
                .with_asap(AsapHwConfig::p1_p2())
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.finish();
}

fn fig12_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("host_2m_baseline", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mc80()))
                .host_2m_pages()
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.bench_function("host_2m_asap", |b| {
        b.iter(|| {
            RunSpec::new(small(WorkloadSpec::mc80()))
                .host_2m_pages()
                .with_nested_asap(NestedAsapConfig::host_2m())
                .with_sim(bench_sim())
                .run()
                .unwrap()
        })
    });
    g.finish();
}

fn table2_kernel(c: &mut Criterion) {
    use asap_os::AsapOsConfig;
    use asap_types::Asid;
    use asap_workloads::AccessStream;
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("census", |b| {
        b.iter(|| {
            let w = small(WorkloadSpec::mc80());
            let mut p = w.build_process(Asid(1), AsapOsConfig::disabled(), 7);
            let mut s = w.build_stream(&p, 9);
            for _ in 0..4000 {
                let va = s.next_va();
                let _ = p.touch(va);
            }
            p.census().contiguity_total()
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    table1_kernel,
    fig2_fig3_kernel,
    table2_kernel,
    fig8_kernel,
    fig9_kernel,
    fig10_kernel,
    table6_kernel,
    fig11_table7_kernel,
    fig12_kernel,
);
criterion_main!(experiments);
