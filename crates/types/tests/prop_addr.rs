//! Property-based tests for address arithmetic invariants.

use asap_types::{
    CacheLineAddr, PagingMode, PhysAddr, PhysFrameNum, PtLevel, VirtAddr, VirtPageNum,
    ENTRIES_PER_TABLE, PAGE_SIZE,
};
use proptest::prelude::*;

fn arb_va() -> impl Strategy<Value = VirtAddr> {
    (0u64..(1 << 57)).prop_map(|raw| VirtAddr::new(raw).expect("canonical by range"))
}

fn arb_va48() -> impl Strategy<Value = VirtAddr> {
    (0u64..(1 << 48)).prop_map(|raw| VirtAddr::new(raw).expect("canonical by range"))
}

proptest! {
    #[test]
    fn va_decompose_recompose(va in arb_va()) {
        let back = va.page_number().base_addr().raw() + va.page_offset();
        prop_assert_eq!(back, va.raw());
    }

    #[test]
    fn pa_decompose_recompose(raw in 0u64..(1 << 52)) {
        let pa = PhysAddr::new(raw);
        let back = pa.frame_number().base_addr().raw() + pa.frame_offset();
        prop_assert_eq!(back, raw);
    }

    #[test]
    fn indices_recompose_va48(va in arb_va48()) {
        let rebuilt = (PtLevel::Pl4.index_of(va) << PtLevel::Pl4.index_shift())
            | (PtLevel::Pl3.index_of(va) << PtLevel::Pl3.index_shift())
            | (PtLevel::Pl2.index_of(va) << PtLevel::Pl2.index_shift())
            | (PtLevel::Pl1.index_of(va) << PtLevel::Pl1.index_shift())
            | va.page_offset();
        prop_assert_eq!(rebuilt, va.raw());
    }

    #[test]
    fn indices_recompose_va57(va in arb_va()) {
        let rebuilt = PagingMode::FiveLevel
            .levels()
            .map(|l| l.index_of(va) << l.index_shift())
            .fold(va.page_offset(), |acc, part| acc | part);
        prop_assert_eq!(rebuilt, va.raw());
    }

    #[test]
    fn index_always_in_table_range(va in arb_va(), depth in 1u32..=5) {
        let level = PtLevel::from_depth(depth).unwrap();
        prop_assert!(level.index_of(va) < ENTRIES_PER_TABLE);
    }

    #[test]
    fn sorted_vas_have_sorted_node_indices(a in arb_va48(), b in arb_va48()) {
        // The paper's key invariant (§1, footnote 1): if virtual page X comes
        // before virtual page Y, the radix-tree *entry index* for X at any
        // level (global, i.e. offset from VA zero) is <= that of Y. This is
        // what makes base-plus-offset indexing sound once the OS sorts the
        // PT pages physically.
        let (lo, hi) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        for level in PagingMode::FourLevel.levels() {
            let lo_global = lo.raw() >> level.index_shift();
            let hi_global = hi.raw() >> level.index_shift();
            prop_assert!(lo_global <= hi_global);
        }
    }

    #[test]
    fn line_covers_exactly_64_bytes(raw in 0u64..(1 << 52)) {
        let pa = PhysAddr::new(raw);
        let line = CacheLineAddr::containing(pa);
        prop_assert!(pa.raw() >= line.base_addr().raw());
        prop_assert!(pa.raw() < line.base_addr().raw() + 64);
    }

    #[test]
    fn vpn_pfn_arithmetic(vpn_raw in 0u64..(1 << 40), delta in 0u64..1024) {
        let vpn = VirtPageNum::new(vpn_raw);
        prop_assert_eq!(vpn.add(delta).index_from(vpn), delta);
        let pfn = PhysFrameNum::new(vpn_raw);
        prop_assert_eq!(pfn.add(delta).base_addr().raw(),
                        pfn.base_addr().raw() + delta * PAGE_SIZE);
    }

    #[test]
    fn entry_coverage_is_consistent(depth in 1u32..=5) {
        let level = PtLevel::from_depth(depth).unwrap();
        prop_assert_eq!(level.table_coverage(), level.entry_coverage() * ENTRIES_PER_TABLE);
        if let Some(child) = level.child() {
            prop_assert_eq!(level.entry_coverage(), child.table_coverage());
        }
    }
}
