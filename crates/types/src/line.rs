//! Cache-line addressing.

use crate::{PhysAddr, CACHE_LINE_SHIFT};

/// The index of a 64-byte cache line in physical memory.
///
/// Both the data caches and the page-walk timing model operate on cache
/// lines: a page-table node access and an ASAP prefetch to the same PTE
/// target the same `CacheLineAddr`, which is what makes the prefetch useful.
///
/// # Examples
///
/// ```
/// use asap_types::{CacheLineAddr, PhysAddr};
/// let line = CacheLineAddr::containing(PhysAddr::new(0x1040));
/// assert_eq!(line.raw(), 0x41);
/// assert_eq!(line.base_addr(), PhysAddr::new(0x1040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CacheLineAddr(u64);

impl CacheLineAddr {
    /// Creates a line address from its raw line number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The line containing a physical address.
    #[must_use]
    pub const fn containing(pa: PhysAddr) -> Self {
        pa.cache_line()
    }

    /// The raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first physical address of the line.
    #[must_use]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 << CACHE_LINE_SHIFT)
    }
}

impl core::fmt::Display for CacheLineAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        for raw in [0u64, 1, 63, 64, 0x4141] {
            let line = CacheLineAddr::new(raw);
            assert_eq!(CacheLineAddr::containing(line.base_addr()), line);
        }
    }

    #[test]
    fn adjacent_ptes_share_lines() {
        // Eight 8-byte PTEs fit in one 64-byte line: PTE k and PTE k+7 within
        // an aligned group map to the same line, PTE k+8 to the next.
        let table = PhysAddr::new(0x20_0000);
        let l0 = CacheLineAddr::containing(table);
        let l7 = CacheLineAddr::containing(table.add(7 * 8));
        let l8 = CacheLineAddr::containing(table.add(8 * 8));
        assert_eq!(l0, l7);
        assert_eq!(l8.raw(), l0.raw() + 1);
    }
}
