//! Virtual page numbers and physical frame numbers.

use crate::{PhysAddr, VirtAddr, PAGE_SHIFT};

/// A virtual page number (virtual address divided by 4 KiB).
///
/// # Examples
///
/// ```
/// use asap_types::{VirtAddr, VirtPageNum};
/// let vpn = VirtPageNum::new(0x1234);
/// assert_eq!(vpn.base_addr(), VirtAddr::new(0x1234 << 12).unwrap());
/// assert_eq!(VirtPageNum::containing(VirtAddr::new(0x1234fff).unwrap()).raw(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtPageNum(u64);

impl VirtPageNum {
    /// Creates a virtual page number from its raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The page number containing a virtual address.
    #[must_use]
    pub const fn containing(va: VirtAddr) -> Self {
        va.page_number()
    }

    /// The raw page number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first virtual address of this page.
    #[must_use]
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr::new_unchecked(self.0 << PAGE_SHIFT)
    }

    /// The page number `delta` pages after this one.
    #[must_use]
    pub const fn add(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }

    /// Number of pages from `base` (inclusive) to `self` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self < base`.
    #[must_use]
    pub fn index_from(self, base: Self) -> u64 {
        debug_assert!(self.0 >= base.0);
        self.0 - base.0
    }
}

impl core::fmt::Display for VirtPageNum {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical frame number (physical address divided by 4 KiB).
///
/// # Examples
///
/// ```
/// use asap_types::{PhysAddr, PhysFrameNum};
/// let pfn = PhysFrameNum::new(7);
/// assert_eq!(pfn.base_addr(), PhysAddr::new(7 << 12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysFrameNum(u64);

impl PhysFrameNum {
    /// Creates a physical frame number from its raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The frame number containing a physical address.
    #[must_use]
    pub const fn containing(pa: PhysAddr) -> Self {
        pa.frame_number()
    }

    /// The raw frame number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first physical address of this frame.
    #[must_use]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }

    /// The frame number `delta` frames after this one.
    #[must_use]
    pub const fn add(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }
}

impl core::fmt::Display for PhysFrameNum {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_roundtrip() {
        for raw in [0u64, 1, 0xffff, 1 << 30] {
            let vpn = VirtPageNum::new(raw);
            assert_eq!(VirtPageNum::containing(vpn.base_addr()), vpn);
        }
    }

    #[test]
    fn pfn_roundtrip() {
        for raw in [0u64, 5, 0xabcd, 1 << 35] {
            let pfn = PhysFrameNum::new(raw);
            assert_eq!(PhysFrameNum::containing(pfn.base_addr()), pfn);
        }
    }

    #[test]
    fn arithmetic() {
        let vpn = VirtPageNum::new(100);
        assert_eq!(vpn.add(5).raw(), 105);
        assert_eq!(vpn.add(5).index_from(vpn), 5);
        assert_eq!(PhysFrameNum::new(8).add(8).raw(), 16);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(VirtPageNum::new(1) < VirtPageNum::new(2));
        assert!(PhysFrameNum::new(9) > PhysFrameNum::new(3));
    }
}
