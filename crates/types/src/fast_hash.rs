//! A fast, deterministic hasher for the simulator's integer-keyed maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup, which is pure overhead for a single-process simulator hashing
//! its own frame numbers. This multiply-xor hasher (the Fx/fxhash scheme) is
//! a handful of instructions and — unlike the randomly-keyed default — fully
//! deterministic across runs, which the reproducibility story relies on
//! anyway. Only map *lookup cost* changes; nothing in the simulator depends
//! on map iteration order.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier from the golden ratio, as used by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher specialized for small integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] — drop-in `S` parameter for `HashMap`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
///
/// Unlike the `RandomState` default, lookup *and iteration order* are
/// identical across runs and across processes — the property the
/// workspace-wide determinism lint (`asap-lint`) enforces by banning the
/// std default in simulation crates.
// asap-lint: allow(determinism-map) — this IS the deterministic wrapper
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher — the companion
/// to [`FastMap`] for membership-only state.
// asap-lint: allow(determinism-map) — this IS the deterministic wrapper
pub type FastSet<T> = std::collections::HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastMap::default();
        let mut b = FastMap::default();
        for k in 0u64..100 {
            a.insert(k, k * 2);
            b.insert(k, k * 2);
        }
        for k in 0u64..100 {
            assert_eq!(a.get(&k), Some(&(k * 2)));
            assert_eq!(a.get(&k), b.get(&k));
        }
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let h1 = bh.hash_one(0x1000u64);
        let h2 = bh.hash_one(0x2000u64);
        assert_ne!(h1, h2);
    }
}
