//! Virtual and physical address newtypes.

use crate::{AddrError, CACHE_LINE_SHIFT, PAGE_SHIFT, VA_BITS_5LEVEL};

/// A virtual address in a simulated process address space.
///
/// Virtual addresses are validated to be *canonical* for 5-level paging
/// (i.e. they fit in 57 bits; user addresses in this simulator always have
/// bit 56 clear, so sign-extension concerns do not arise). Addresses valid
/// under 4-level paging are a subset of these.
///
/// # Examples
///
/// ```
/// use asap_types::VirtAddr;
/// let va = VirtAddr::new(0x7000_1234).unwrap();
/// assert_eq!(va.page_offset(), 0x234);
/// assert_eq!(va.page_number().raw(), 0x7000_1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address, validating canonicality.
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::NonCanonical`] if any bit at or above position 57
    /// is set.
    pub fn new(raw: u64) -> Result<Self, AddrError> {
        if raw >> VA_BITS_5LEVEL != 0 {
            Err(AddrError::NonCanonical(raw))
        } else {
            Ok(Self(raw))
        }
    }

    /// Creates a virtual address without canonicality validation.
    ///
    /// Useful for constants known to be in range; out-of-range bits would be
    /// caught later by index extraction in debug builds.
    #[must_use]
    pub const fn new_unchecked(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Offset of this address within its 4 KiB page.
    #[must_use]
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// The virtual page number containing this address.
    #[must_use]
    pub const fn page_number(self) -> super::VirtPageNum {
        super::VirtPageNum::new(self.0 >> PAGE_SHIFT)
    }

    /// Rounds down to the containing page boundary.
    #[must_use]
    pub const fn page_base(self) -> Self {
        Self(self.0 & !((1 << PAGE_SHIFT) - 1))
    }

    /// Byte offset of this address relative to `base`.
    ///
    /// This is the `offset` operand of the paper's base-plus-offset prefetch
    /// computation (Fig. 6): the triggering virtual address minus the start
    /// of its VMA.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self < base`.
    #[must_use]
    pub fn offset_from(self, base: Self) -> u64 {
        debug_assert!(self.0 >= base.0, "offset_from underflow");
        self.0 - base.0
    }

    /// Checked addition of a byte delta.
    #[must_use]
    pub fn checked_add(self, delta: u64) -> Option<Self> {
        let raw = self.0.checked_add(delta)?;
        Self::new(raw).ok()
    }

    /// Whether the address is aligned to `align` bytes (power of two).
    #[must_use]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }
}

impl core::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v:{:#014x}", self.0)
    }
}

impl core::fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<VirtAddr> for u64 {
    fn from(v: VirtAddr) -> u64 {
        v.0
    }
}

/// A physical (machine) address.
///
/// In the virtualized configurations of the simulator, *guest-physical*
/// addresses are also carried as `PhysAddr` but are only meaningful inside
/// the guest dimension; the nested walker converts them to host-physical
/// addresses before they reach the cache hierarchy.
///
/// # Examples
///
/// ```
/// use asap_types::PhysAddr;
/// let pa = PhysAddr::new(0x1_0000_0040);
/// assert_eq!(pa.cache_line().raw(), 0x1_0000_0040 >> 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from its raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw 64-bit value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame number containing this address.
    #[must_use]
    pub const fn frame_number(self) -> super::PhysFrameNum {
        super::PhysFrameNum::new(self.0 >> PAGE_SHIFT)
    }

    /// Offset of this address within its 4 KiB frame.
    #[must_use]
    pub const fn frame_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// The 64-byte cache line containing this address.
    #[must_use]
    pub const fn cache_line(self) -> super::CacheLineAddr {
        super::CacheLineAddr::new(self.0 >> CACHE_LINE_SHIFT)
    }

    /// Adds a byte delta.
    ///
    /// # Panics
    ///
    /// Panics on overflow in debug builds.
    #[must_use]
    pub const fn add(self, delta: u64) -> Self {
        Self(self.0 + delta)
    }

    /// Whether the address is aligned to `align` bytes (power of two).
    #[must_use]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }
}

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p:{:#014x}", self.0)
    }
}

impl core::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<PhysAddr> for u64 {
    fn from(p: PhysAddr) -> u64 {
        p.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_validation() {
        assert!(VirtAddr::new(0).is_ok());
        assert!(VirtAddr::new((1 << 57) - 1).is_ok());
        assert!(matches!(
            VirtAddr::new(1 << 57),
            Err(AddrError::NonCanonical(_))
        ));
    }

    #[test]
    fn page_decomposition() {
        let va = VirtAddr::new(0xdead_beef).unwrap();
        assert_eq!(va.page_offset(), 0xeef);
        assert_eq!(va.page_base().raw(), 0xdead_b000);
        assert_eq!(
            va.page_number().base_addr().raw() + va.page_offset(),
            va.raw()
        );
    }

    #[test]
    fn offset_from_base() {
        let base = VirtAddr::new(0x10_0000).unwrap();
        let va = VirtAddr::new(0x10_4242).unwrap();
        assert_eq!(va.offset_from(base), 0x4242);
    }

    #[test]
    fn phys_cache_line() {
        let pa = PhysAddr::new(0x1000 + 64 * 3 + 17);
        assert_eq!(pa.cache_line().raw(), (0x1000 + 64 * 3) / 64);
        assert_eq!(pa.frame_number().raw(), 1);
        assert_eq!(pa.frame_offset(), 64 * 3 + 17);
    }

    #[test]
    fn alignment() {
        assert!(PhysAddr::new(0x2000).is_aligned(0x1000));
        assert!(!PhysAddr::new(0x2040).is_aligned(0x1000));
        assert!(VirtAddr::new(0x40).unwrap().is_aligned(64));
    }

    #[test]
    fn checked_add_rejects_non_canonical() {
        let va = VirtAddr::new((1 << 57) - 4).unwrap();
        assert!(va.checked_add(8).is_none());
        assert_eq!(va.checked_add(3).unwrap().raw(), (1 << 57) - 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            VirtAddr::new(0x1000).unwrap().to_string(),
            "v:0x000000001000"
        );
        assert_eq!(PhysAddr::new(0x1000).to_string(), "p:0x000000001000");
        assert_eq!(format!("{:x}", PhysAddr::new(0xff)), "ff");
    }
}
