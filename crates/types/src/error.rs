//! Address validation errors.

/// Errors produced when constructing validated address types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrError {
    /// The raw value has bits set above the canonical virtual-address width.
    NonCanonical(u64),
}

impl core::fmt::Display for AddrError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AddrError::NonCanonical(raw) => {
                write!(f, "non-canonical virtual address {raw:#x}")
            }
        }
    }
}

impl std::error::Error for AddrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = AddrError::NonCanonical(1 << 60);
        assert_eq!(
            e.to_string(),
            "non-canonical virtual address 0x1000000000000000"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<AddrError>();
    }
}
