//! Page sizes and human-readable byte formatting.

use crate::PtLevel;

/// Supported translation granularities.
///
/// Large pages terminate the page walk one (`Size2M`) or two (`Size1G`)
/// levels above the PL1 leaf (paper §3.5): a 2 MiB page is described by a
/// single PL2 entry, a 1 GiB page by a single PL3 entry.
///
/// # Examples
///
/// ```
/// use asap_types::{PageSize, PtLevel};
/// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
/// assert_eq!(PageSize::Size2M.leaf_level(), PtLevel::Pl2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum PageSize {
    /// Base 4 KiB pages.
    #[default]
    Size4K,
    /// 2 MiB large pages (PTE at PL2).
    Size2M,
    /// 1 GiB large pages (PTE at PL3).
    Size1G,
}

impl PageSize {
    /// The page size in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// log2 of the page size.
    #[must_use]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// The page-table level whose entry maps a page of this size.
    #[must_use]
    pub const fn leaf_level(self) -> PtLevel {
        match self {
            PageSize::Size4K => PtLevel::Pl1,
            PageSize::Size2M => PtLevel::Pl2,
            PageSize::Size1G => PtLevel::Pl3,
        }
    }

    /// The page size mapped by a leaf entry at `level`, if any.
    #[must_use]
    pub const fn from_leaf_level(level: PtLevel) -> Option<Self> {
        match level {
            PtLevel::Pl1 => Some(PageSize::Size4K),
            PtLevel::Pl2 => Some(PageSize::Size2M),
            PtLevel::Pl3 => Some(PageSize::Size1G),
            _ => None,
        }
    }

    /// Number of base (4 KiB) pages this size replaces.
    #[must_use]
    pub const fn base_pages(self) -> u64 {
        self.bytes() >> PageSize::Size4K.shift()
    }
}

impl core::fmt::Display for PageSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageSize::Size4K => f.write_str("4KiB"),
            PageSize::Size2M => f.write_str("2MiB"),
            PageSize::Size1G => f.write_str("1GiB"),
        }
    }
}

/// A byte count with human-readable `Display` (used by reports and the PT
/// census that reproduces the paper's footprint arithmetic: "for a 100GB
/// dataset, the footprint of the PT levels is 8B, 800B, 400KB and 200MB").
///
/// # Examples
///
/// ```
/// use asap_types::ByteSize;
/// assert_eq!(ByteSize(200 * 1024 * 1024).to_string(), "200.0MiB");
/// assert_eq!(ByteSize(8).to_string(), "8B");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Constructs from a GiB count.
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        Self(n << 30)
    }

    /// Constructs from a MiB count.
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        Self(n << 20)
    }

    /// Constructs from a KiB count.
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        Self(n << 10)
    }

    /// The raw byte count.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for ByteSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("TiB", 1 << 40),
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                return write!(f, "{:.1}{}", self.0 as f64 / scale as f64, name);
            }
        }
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 1 << 21);
        assert_eq!(PageSize::Size1G.bytes(), 1 << 30);
        assert_eq!(PageSize::Size2M.base_pages(), 512);
        assert_eq!(PageSize::Size1G.base_pages(), 512 * 512);
    }

    #[test]
    fn leaf_levels() {
        assert_eq!(PageSize::Size4K.leaf_level(), PtLevel::Pl1);
        assert_eq!(PageSize::Size2M.leaf_level(), PtLevel::Pl2);
        assert_eq!(PageSize::Size1G.leaf_level(), PtLevel::Pl3);
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            assert_eq!(PageSize::from_leaf_level(size.leaf_level()), Some(size));
        }
        assert_eq!(PageSize::from_leaf_level(PtLevel::Pl4), None);
    }

    #[test]
    fn level_coverage_matches_page_size() {
        // One PL2 entry covers exactly one 2MiB page, etc.
        assert_eq!(PtLevel::Pl2.entry_coverage(), PageSize::Size2M.bytes());
        assert_eq!(PtLevel::Pl3.entry_coverage(), PageSize::Size1G.bytes());
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize(0).to_string(), "0B");
        assert_eq!(ByteSize(800).to_string(), "800B");
        assert_eq!(ByteSize::kib(400).to_string(), "400.0KiB");
        assert_eq!(ByteSize::gib(100).to_string(), "100.0GiB");
        assert_eq!(ByteSize(1 << 40).to_string(), "1.0TiB");
    }

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::gib(1).bytes(), 1 << 30);
        assert_eq!(ByteSize::mib(1).bytes(), 1 << 20);
        assert_eq!(ByteSize::kib(1).bytes(), 1 << 10);
    }
}
