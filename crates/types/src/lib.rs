//! Foundation types for the ASAP (Prefetched Address Translation) reproduction.
//!
//! This crate defines the address arithmetic shared by every other crate in
//! the workspace: virtual and physical addresses, page and frame numbers,
//! page-table levels with their virtual-address index extraction (for both
//! the classic 4-level x86-64 format and the 5-level extension the paper
//! anticipates in §3.5), page sizes, and cache-line addressing.
//!
//! All quantities are newtypes over `u64` so that a virtual address can never
//! be confused with a physical one — the exact bug class a page-table
//! simulator must rule out statically.
//!
//! # Examples
//!
//! ```
//! use asap_types::{VirtAddr, PtLevel, PagingMode};
//!
//! let va = VirtAddr::new(0x7f12_3456_7000).unwrap();
//! // Index of the PL1 (leaf) entry covering this address:
//! assert_eq!(PtLevel::Pl1.index_of(va), (0x7f12_3456_7000u64 >> 12) & 0x1ff);
//! assert_eq!(PagingMode::FourLevel.levels().count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod fast_hash;
mod level;
mod line;
mod page;
mod size;

pub use addr::{PhysAddr, VirtAddr};
pub use error::AddrError;
pub use fast_hash::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use level::{PagingMode, PtLevel};
pub use line::CacheLineAddr;
pub use page::{PhysFrameNum, VirtPageNum};
pub use size::{ByteSize, PageSize};

/// Base-2 logarithm of the base page size (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Number of page-table entries per 4 KiB table page (512 on x86-64).
pub const ENTRIES_PER_TABLE: u64 = 512;
/// Bits of virtual address consumed by one radix-tree level (log2 of 512).
pub const INDEX_BITS: u32 = 9;
/// Size of one page-table entry in bytes.
pub const PTE_SIZE: u64 = 8;
/// Base-2 logarithm of the cache-line size (64-byte lines).
pub const CACHE_LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes.
pub const CACHE_LINE_SIZE: u64 = 1 << CACHE_LINE_SHIFT;
/// Number of virtual-address bits in 4-level paging.
pub const VA_BITS_4LEVEL: u32 = 48;
/// Number of virtual-address bits in 5-level paging.
pub const VA_BITS_5LEVEL: u32 = 57;

/// An address-space identifier (one per simulated process or guest).
///
/// TLB and page-walk-cache entries are tagged with the `Asid` so that context
/// switches do not require flushes, mirroring PCID on real x86-64 hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Asid(pub u16);

impl core::fmt::Display for Asid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(ENTRIES_PER_TABLE * PTE_SIZE, PAGE_SIZE);
        assert_eq!(1u64 << INDEX_BITS, ENTRIES_PER_TABLE);
        assert_eq!(CACHE_LINE_SIZE, 64);
        // 4-level paging: 12 offset bits + 4 * 9 index bits = 48.
        assert_eq!(PAGE_SHIFT + 4 * INDEX_BITS, VA_BITS_4LEVEL);
        assert_eq!(PAGE_SHIFT + 5 * INDEX_BITS, VA_BITS_5LEVEL);
    }

    #[test]
    fn asid_display() {
        assert_eq!(Asid(3).to_string(), "asid3");
    }
}
