//! Page-table levels and virtual-address index extraction.

use crate::{VirtAddr, INDEX_BITS, PAGE_SHIFT};

/// One level of the radix-tree page table, named as in the paper (Fig. 1):
/// `PL1` is the leaf level holding PTEs, `PL4` is the root of the classic
/// x86-64 four-level table, and `PL5` is the additional root level of the
/// five-level format (§3.5).
///
/// # Examples
///
/// ```
/// use asap_types::{PtLevel, VirtAddr};
/// let va = VirtAddr::new(0x0000_7fff_ffff_f000).unwrap();
/// assert_eq!(PtLevel::Pl4.index_of(va), 0xff);
/// assert_eq!(PtLevel::Pl1.index_of(va), 0x1ff);
/// assert_eq!(PtLevel::Pl2.child(), Some(PtLevel::Pl1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PtLevel {
    /// Leaf level; entries are PTEs mapping 4 KiB pages.
    Pl1,
    /// Second level; entries point to PL1 tables or map 2 MiB pages.
    Pl2,
    /// Third level; entries point to PL2 tables or map 1 GiB pages.
    Pl3,
    /// Fourth level; the root under 4-level paging.
    Pl4,
    /// Fifth level; the root under 5-level paging.
    Pl5,
}

impl PtLevel {
    /// All levels, leaf first.
    pub const ALL: [PtLevel; 5] = [
        PtLevel::Pl1,
        PtLevel::Pl2,
        PtLevel::Pl3,
        PtLevel::Pl4,
        PtLevel::Pl5,
    ];

    /// The level's depth number: 1 for PL1 (leaf) through 5 for PL5.
    #[must_use]
    pub const fn depth(self) -> u32 {
        match self {
            PtLevel::Pl1 => 1,
            PtLevel::Pl2 => 2,
            PtLevel::Pl3 => 3,
            PtLevel::Pl4 => 4,
            PtLevel::Pl5 => 5,
        }
    }

    /// Builds a level from its depth number (1..=5).
    #[must_use]
    pub const fn from_depth(depth: u32) -> Option<Self> {
        match depth {
            1 => Some(PtLevel::Pl1),
            2 => Some(PtLevel::Pl2),
            3 => Some(PtLevel::Pl3),
            4 => Some(PtLevel::Pl4),
            5 => Some(PtLevel::Pl5),
            _ => None,
        }
    }

    /// Lowest virtual-address bit of this level's index field.
    ///
    /// PL1 indexes bits 12..21, PL2 bits 21..30, PL3 bits 30..39,
    /// PL4 bits 39..48, PL5 bits 48..57.
    #[must_use]
    pub const fn index_shift(self) -> u32 {
        PAGE_SHIFT + (self.depth() - 1) * INDEX_BITS
    }

    /// Extracts this level's 9-bit table index from a virtual address.
    #[must_use]
    pub const fn index_of(self, va: VirtAddr) -> u64 {
        (va.raw() >> self.index_shift()) & ((1 << INDEX_BITS) - 1)
    }

    /// Bytes of virtual address space covered by **one entry** at this level.
    ///
    /// 4 KiB for PL1 entries, 2 MiB for PL2, 1 GiB for PL3, 512 GiB for PL4,
    /// 256 TiB for PL5.
    #[must_use]
    pub const fn entry_coverage(self) -> u64 {
        1 << self.index_shift()
    }

    /// Bytes of virtual address space covered by one **table page** (512
    /// entries) at this level.
    #[must_use]
    pub const fn table_coverage(self) -> u64 {
        self.entry_coverage() << INDEX_BITS
    }

    /// The next level toward the leaves, or `None` for PL1.
    #[must_use]
    pub const fn child(self) -> Option<Self> {
        match self {
            PtLevel::Pl1 => None,
            PtLevel::Pl2 => Some(PtLevel::Pl1),
            PtLevel::Pl3 => Some(PtLevel::Pl2),
            PtLevel::Pl4 => Some(PtLevel::Pl3),
            PtLevel::Pl5 => Some(PtLevel::Pl4),
        }
    }

    /// The next level toward the root, or `None` for PL5.
    #[must_use]
    pub const fn parent(self) -> Option<Self> {
        match self {
            PtLevel::Pl1 => Some(PtLevel::Pl2),
            PtLevel::Pl2 => Some(PtLevel::Pl3),
            PtLevel::Pl3 => Some(PtLevel::Pl4),
            PtLevel::Pl4 => Some(PtLevel::Pl5),
            PtLevel::Pl5 => None,
        }
    }

    /// The amount by which the paper's prefetcher shifts the VMA byte offset
    /// to obtain the byte offset of the target node *within the reserved,
    /// sorted region* for this level (the `s1`/`s2` labels of Fig. 6).
    ///
    /// One table page at level L holds 512 entries, each covering
    /// `entry_coverage(L)` bytes; a node (one 8-byte entry's worth of
    /// resolution at the *table-page* granularity) for a VA offset `off`
    /// lives at `(off >> table_coverage.log2()) * 4096 +
    /// ((off >> entry_coverage.log2()) % 512) * 8`. Because the region is
    /// contiguous and sorted, this simplifies to
    /// `(off >> entry_coverage.log2()) * 8` — i.e. shift right by
    /// `index_shift()`, multiply by the PTE size. `prefetch_shift` returns
    /// the right-shift amount.
    #[must_use]
    pub const fn prefetch_shift(self) -> u32 {
        self.index_shift()
    }
}

impl core::fmt::Display for PtLevel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PL{}", self.depth())
    }
}

/// Paging format: the classic four-level x86-64 radix tree, or the
/// five-level extension ("la57") the paper's §3.5 anticipates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PagingMode {
    /// 48-bit virtual addresses, PL4 root (default).
    #[default]
    FourLevel,
    /// 57-bit virtual addresses, PL5 root.
    FiveLevel,
}

impl PagingMode {
    /// The root level of the radix tree under this mode.
    #[must_use]
    pub const fn root_level(self) -> PtLevel {
        match self {
            PagingMode::FourLevel => PtLevel::Pl4,
            PagingMode::FiveLevel => PtLevel::Pl5,
        }
    }

    /// Number of radix-tree levels.
    #[must_use]
    pub const fn depth(self) -> u32 {
        self.root_level().depth()
    }

    /// Number of valid virtual-address bits.
    #[must_use]
    pub const fn va_bits(self) -> u32 {
        match self {
            PagingMode::FourLevel => crate::VA_BITS_4LEVEL,
            PagingMode::FiveLevel => crate::VA_BITS_5LEVEL,
        }
    }

    /// Whether `va` is representable under this mode.
    #[must_use]
    pub const fn contains(self, va: VirtAddr) -> bool {
        va.raw() >> self.va_bits() == 0
    }

    /// Iterates the levels of a walk in traversal order (root to leaf).
    pub fn levels(self) -> impl DoubleEndedIterator<Item = PtLevel> + Clone {
        let root = self.root_level().depth();
        (1..=root)
            .rev()
            .map(|d| PtLevel::from_depth(d).expect("depth in range"))
    }
}

impl core::fmt::Display for PagingMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PagingMode::FourLevel => f.write_str("4-level"),
            PagingMode::FiveLevel => f.write_str("5-level"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_shift_values() {
        assert_eq!(PtLevel::Pl1.index_shift(), 12);
        assert_eq!(PtLevel::Pl2.index_shift(), 21);
        assert_eq!(PtLevel::Pl3.index_shift(), 30);
        assert_eq!(PtLevel::Pl4.index_shift(), 39);
        assert_eq!(PtLevel::Pl5.index_shift(), 48);
    }

    #[test]
    fn coverage_values() {
        assert_eq!(PtLevel::Pl1.entry_coverage(), 4096);
        assert_eq!(PtLevel::Pl2.entry_coverage(), 2 << 20);
        assert_eq!(PtLevel::Pl3.entry_coverage(), 1 << 30);
        assert_eq!(PtLevel::Pl1.table_coverage(), 2 << 20);
        assert_eq!(PtLevel::Pl2.table_coverage(), 1 << 30);
    }

    #[test]
    fn index_extraction_composes_va() {
        let va = VirtAddr::new(0x0000_5a5a_5a5a_5a5a & ((1 << 48) - 1)).unwrap();
        let reconstructed = (PtLevel::Pl4.index_of(va) << 39)
            | (PtLevel::Pl3.index_of(va) << 30)
            | (PtLevel::Pl2.index_of(va) << 21)
            | (PtLevel::Pl1.index_of(va) << 12)
            | va.page_offset();
        assert_eq!(reconstructed, va.raw());
    }

    #[test]
    fn child_parent_chain() {
        assert_eq!(PtLevel::Pl5.child(), Some(PtLevel::Pl4));
        assert_eq!(PtLevel::Pl1.child(), None);
        assert_eq!(PtLevel::Pl1.parent(), Some(PtLevel::Pl2));
        assert_eq!(PtLevel::Pl5.parent(), None);
        // depth/from_depth roundtrip
        for l in PtLevel::ALL {
            assert_eq!(PtLevel::from_depth(l.depth()), Some(l));
        }
        assert_eq!(PtLevel::from_depth(0), None);
        assert_eq!(PtLevel::from_depth(6), None);
    }

    #[test]
    fn mode_walk_order() {
        let four: Vec<_> = PagingMode::FourLevel.levels().collect();
        assert_eq!(
            four,
            [PtLevel::Pl4, PtLevel::Pl3, PtLevel::Pl2, PtLevel::Pl1]
        );
        let five: Vec<_> = PagingMode::FiveLevel.levels().collect();
        assert_eq!(five.len(), 5);
        assert_eq!(five[0], PtLevel::Pl5);
        assert_eq!(*five.last().unwrap(), PtLevel::Pl1);
    }

    #[test]
    fn mode_va_limits() {
        let hi48 = VirtAddr::new((1 << 48) - 1).unwrap();
        let over48 = VirtAddr::new(1 << 48).unwrap();
        assert!(PagingMode::FourLevel.contains(hi48));
        assert!(!PagingMode::FourLevel.contains(over48));
        assert!(PagingMode::FiveLevel.contains(over48));
    }

    #[test]
    fn display() {
        assert_eq!(PtLevel::Pl2.to_string(), "PL2");
        assert_eq!(PagingMode::FiveLevel.to_string(), "5-level");
    }
}
