//! Property tests: buddy-allocator and scatter invariants.

use asap_alloc::{
    BuddyAllocator, ContiguousReservation, FrameAllocator, ScatterAllocator, ScatterConfig,
    MAX_ORDER,
};
use asap_types::PhysFrameNum;
use proptest::prelude::*;
use std::collections::HashSet;

/// A randomized alloc/free script against the buddy allocator.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u32),
    FreeNth(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..=6).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No two live buddy allocations ever overlap, all are aligned, and the
    /// free-frame accounting is exact.
    #[test]
    fn buddy_no_overlap_and_exact_accounting(ops in arb_ops()) {
        let total = 4096u64;
        let mut buddy = BuddyAllocator::new(PhysFrameNum::new(0), total);
        let mut live: Vec<(PhysFrameNum, u32)> = Vec::new();
        let mut live_frames = 0u64;
        for op in ops {
            match op {
                Op::Alloc(order) => {
                    if let Ok(f) = buddy.alloc(order) {
                        prop_assert_eq!(f.raw() % (1 << order), 0, "alignment");
                        live.push((f, order));
                        live_frames += 1 << order;
                    }
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (f, order) = live.swap_remove(n % live.len());
                        buddy.free(f, order);
                        live_frames -= 1 << order;
                    }
                }
            }
            prop_assert_eq!(buddy.free_frames(), total - live_frames);
            // Overlap check over live blocks.
            let mut covered = HashSet::new();
            for (f, order) in &live {
                for off in 0..(1u64 << order) {
                    prop_assert!(covered.insert(f.raw() + off),
                                 "overlap at frame {}", f.raw() + off);
                }
            }
        }
        // Tear down: everything frees and coalesces back to a pristine heap.
        for (f, order) in live {
            buddy.free(f, order);
        }
        prop_assert_eq!(buddy.free_frames(), total);
        prop_assert_eq!(buddy.largest_free_order(), Some(MAX_ORDER));
    }

    /// The scatterer never hands out the same frame twice and stays within
    /// the configured physical space.
    #[test]
    fn scatter_unique_and_bounded(seed in 0u64..1000, mean in 1.0f64..32.0) {
        let space = 1u64 << 18;
        let mut alloc = ScatterAllocator::new(ScatterConfig {
            mean_run_len: mean,
            phys_frames: space,
            seed,
        });
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let f = alloc.alloc_frame().unwrap().raw();
            prop_assert!(f < space);
            prop_assert!(seen.insert(f), "duplicate frame {f}");
        }
    }

    /// Reservation indexing: in-line indices are base-plus-offset; holes
    /// resolve to their fallback frames; prefetchability is exactly
    /// "in-line".
    #[test]
    fn reservation_resolution(len in 1u64..256,
                              holes in proptest::collection::btree_set(0u64..256, 0..10)) {
        let base = PhysFrameNum::new(0x4_0000);
        let mut r = ContiguousReservation::new(base, len);
        for (i, &h) in holes.iter().enumerate() {
            r.punch_hole(h, PhysFrameNum::new(0x9_0000 + i as u64));
        }
        for idx in 0..r.len() {
            match r.frame_for_index(idx) {
                Some(f) if holes.contains(&idx) => {
                    prop_assert!(f.raw() >= 0x9_0000);
                    prop_assert!(!r.is_prefetchable(idx));
                }
                Some(f) => {
                    prop_assert_eq!(f.raw(), base.raw() + idx);
                    prop_assert!(r.is_prefetchable(idx));
                }
                None => prop_assert!(false, "index {idx} inside len must resolve"),
            }
        }
    }
}
