//! Physical-memory allocation substrates for the ASAP reproduction.
//!
//! The paper's mechanism hinges on *where* page-table pages land in physical
//! memory:
//!
//! * Baseline Linux scatters PT pages via the buddy allocator, leaving "a
//!   complete lack of correspondence between the order of virtual pages
//!   within a VMA and the physical pages containing PT nodes" (§3.3).
//!   [`BuddyAllocator`] is a faithful binary-buddy implementation (orders
//!   0..=10, split and coalesce, lowest-address-first like Linux), and
//!   [`ScatterAllocator`] reproduces the *statistical* layout the paper
//!   measured (Table 2's contiguous-region counts) and itself adopted for
//!   its host-side methodology ("mimicking the Linux buddy allocator's
//!   behavior by randomly scattering the PT pages", §4).
//! * ASAP requires each prefetched PT level of a VMA to live in one
//!   contiguous, virtually-sorted region. [`ContiguousReservation`] models
//!   that reservation, including §3.7.2's "holes": when a region cannot be
//!   extended, individual nodes are placed out-of-line and simply lose
//!   acceleration — never correctness.
//!
//! # Examples
//!
//! ```
//! use asap_alloc::{BuddyAllocator, FrameAllocator};
//! use asap_types::PhysFrameNum;
//!
//! let mut buddy = BuddyAllocator::new(PhysFrameNum::new(0), 1 << 20);
//! let a = buddy.alloc(0).unwrap();
//! let b = buddy.alloc(0).unwrap();
//! assert_ne!(a, b);
//! buddy.free(a, 0);
//! buddy.free(b, 0);
//! assert_eq!(buddy.free_frames(), 1 << 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod error;
mod frame_alloc;
mod region;
mod scatter;

pub use buddy::{BuddyAllocator, MAX_ORDER};
pub use error::AllocError;
pub use frame_alloc::{BumpFrameAllocator, FrameAllocator};
pub use region::{ContiguousReservation, RegionExtendOutcome};
pub use scatter::{ScatterAllocator, ScatterConfig};
