//! A binary buddy allocator in the style of Linux's page allocator.

use crate::AllocError;
use asap_types::{FastMap, PhysFrameNum};
use std::collections::BTreeSet;

/// Largest supported order: an order-10 block is 1024 frames = 4 MiB, the
/// Linux `MAX_ORDER` for most configurations of the era the paper targets.
pub const MAX_ORDER: u32 = 10;

/// A binary buddy allocator over a contiguous physical frame range.
///
/// Free blocks are kept per order in address-sorted sets; allocation takes
/// the lowest-addressed block of the smallest sufficient order and splits it
/// down, and frees eagerly coalesce with their buddies — the behaviour that
/// produces the partial contiguity (short runs, many regions) of the paper's
/// Table 2.
///
/// # Examples
///
/// ```
/// use asap_alloc::BuddyAllocator;
/// use asap_types::PhysFrameNum;
///
/// let mut buddy = BuddyAllocator::new(PhysFrameNum::new(0), 1024);
/// // First-fit is lowest-address: two single frames come out adjacent.
/// let a = buddy.alloc(0).unwrap();
/// let b = buddy.alloc(0).unwrap();
/// assert_eq!(b.raw(), a.raw() + 1);
/// // An order-4 block (16 frames) is 16-frame aligned.
/// let big = buddy.alloc(4).unwrap();
/// assert_eq!(big.raw() % 16, 0);
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: u64,
    num_frames: u64,
    /// Free block start offsets (relative to `base`), per order.
    free_lists: Vec<BTreeSet<u64>>,
    /// Currently allocated blocks: start offset -> order.
    allocated: FastMap<u64, u32>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `num_frames` frames starting at `base`.
    ///
    /// The range is seeded with the maximal aligned blocks that tile it, so
    /// non-power-of-two ranges are supported.
    ///
    /// # Panics
    ///
    /// Panics if `num_frames` is zero.
    #[must_use]
    pub fn new(base: PhysFrameNum, num_frames: u64) -> Self {
        assert!(num_frames > 0, "cannot manage an empty range");
        let mut a = Self {
            base: base.raw(),
            num_frames,
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            allocated: FastMap::default(),
            free_frames: num_frames,
        };
        // Tile the range greedily with the largest aligned blocks.
        let mut off = 0u64;
        while off < num_frames {
            let align_order = if off == 0 {
                MAX_ORDER
            } else {
                off.trailing_zeros().min(MAX_ORDER)
            };
            let mut order = align_order;
            while (1u64 << order) > num_frames - off {
                order -= 1;
            }
            a.free_lists[order as usize].insert(off);
            off += 1 << order;
        }
        a
    }

    /// Number of frames in one block of `order`.
    #[must_use]
    pub const fn block_frames(order: u32) -> u64 {
        1 << order
    }

    /// Allocates a block of `2^order` frames.
    ///
    /// # Errors
    ///
    /// [`AllocError::OrderTooLarge`] if `order > MAX_ORDER`;
    /// [`AllocError::OutOfMemory`] if no block of sufficient size is free.
    pub fn alloc(&mut self, order: u32) -> Result<PhysFrameNum, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::OrderTooLarge { order });
        }
        // Find the smallest order with a free block.
        let mut found = None;
        for o in order..=MAX_ORDER {
            if let Some(&off) = self.free_lists[o as usize].iter().next() {
                found = Some((o, off));
                break;
            }
        }
        let (mut o, off) = found.ok_or(AllocError::OutOfMemory { order })?;
        self.free_lists[o as usize].remove(&off);
        // Split down to the requested order, freeing the upper halves.
        while o > order {
            o -= 1;
            let buddy = off + (1 << o);
            self.free_lists[o as usize].insert(buddy);
        }
        self.allocated.insert(off, order);
        self.free_frames -= 1 << order;
        Ok(PhysFrameNum::new(self.base + off))
    }

    /// Frees a block previously returned by [`BuddyAllocator::alloc`].
    ///
    /// Coalesces with free buddies up to `MAX_ORDER`.
    ///
    /// # Panics
    ///
    /// Panics on double free or order mismatch — these are simulator bugs.
    pub fn free(&mut self, frame: PhysFrameNum, order: u32) {
        let off = frame.raw() - self.base;
        match self.allocated.remove(&off) {
            Some(recorded) => assert_eq!(
                recorded, order,
                "free with wrong order: allocated {recorded}, freed {order}"
            ),
            None => panic!("double free or wild free at {frame}"),
        }
        self.free_frames += 1 << order;
        let mut off = off;
        let mut o = order;
        while o < MAX_ORDER {
            let buddy = off ^ (1 << o);
            // Coalescing is only possible if the buddy lies inside the range
            // and is currently free at exactly this order.
            if buddy + (1 << o) <= self.num_frames && self.free_lists[o as usize].remove(&buddy) {
                off = off.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free_lists[o as usize].insert(off);
    }

    /// Total free frames.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Total frames under management.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.num_frames
    }

    /// Currently outstanding allocations.
    #[must_use]
    pub fn allocated_blocks(&self) -> usize {
        self.allocated.len()
    }

    /// Number of free blocks at each order — the classic buddy fragmentation
    /// picture.
    #[must_use]
    pub fn free_blocks_per_order(&self) -> [usize; (MAX_ORDER + 1) as usize] {
        let mut out = [0usize; (MAX_ORDER + 1) as usize];
        for (o, list) in self.free_lists.iter().enumerate() {
            out[o] = list.len();
        }
        out
    }

    /// The largest order that currently has a free block, if any.
    #[must_use]
    pub fn largest_free_order(&self) -> Option<u32> {
        (0..=MAX_ORDER)
            .rev()
            .find(|&o| !self.free_lists[o as usize].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_starts_free() {
        let b = BuddyAllocator::new(PhysFrameNum::new(100), 2048);
        assert_eq!(b.free_frames(), 2048);
        assert_eq!(b.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn non_power_of_two_range_tiles() {
        let b = BuddyAllocator::new(PhysFrameNum::new(0), 1000);
        assert_eq!(b.free_frames(), 1000);
        let blocks = b.free_blocks_per_order();
        let total: u64 = blocks
            .iter()
            .enumerate()
            .map(|(o, n)| (*n as u64) << o)
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn alloc_respects_alignment() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 4096);
        for order in 0..=MAX_ORDER {
            let f = b.alloc(order).unwrap();
            assert_eq!(f.raw() % (1 << order), 0, "order {order} misaligned");
        }
    }

    #[test]
    fn alloc_is_lowest_address_first() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 1024);
        let a = b.alloc(0).unwrap();
        let c = b.alloc(0).unwrap();
        let d = b.alloc(0).unwrap();
        assert_eq!((a.raw(), c.raw(), d.raw()), (0, 1, 2));
    }

    #[test]
    fn free_coalesces_back_to_max() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 1024);
        let mut frames = Vec::new();
        for _ in 0..1024 {
            frames.push(b.alloc(0).unwrap());
        }
        assert_eq!(b.free_frames(), 0);
        assert!(b.alloc(0).is_err());
        for f in frames {
            b.free(f, 0);
        }
        assert_eq!(b.free_frames(), 1024);
        assert_eq!(b.largest_free_order(), Some(MAX_ORDER));
        assert_eq!(b.free_blocks_per_order()[MAX_ORDER as usize], 1);
    }

    #[test]
    fn interleaved_frees_leave_fragmentation() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 64);
        let frames: Vec<_> = (0..64).map(|_| b.alloc(0).unwrap()).collect();
        // Free every other frame: nothing can coalesce.
        for f in frames.iter().step_by(2) {
            b.free(*f, 0);
        }
        assert_eq!(b.free_frames(), 32);
        assert_eq!(b.largest_free_order(), Some(0));
        // An order-1 request must fail despite 32 free frames.
        assert_eq!(b.alloc(1), Err(AllocError::OutOfMemory { order: 1 }));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 64);
        let f = b.alloc(0).unwrap();
        b.free(f, 0);
        b.free(f, 0);
    }

    #[test]
    #[should_panic(expected = "wrong order")]
    fn mismatched_order_free_panics() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 64);
        let f = b.alloc(2).unwrap();
        b.free(f, 1);
    }

    #[test]
    fn order_too_large_rejected() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 64);
        assert_eq!(
            b.alloc(MAX_ORDER + 1),
            Err(AllocError::OrderTooLarge {
                order: MAX_ORDER + 1
            })
        );
    }

    #[test]
    fn base_offset_is_applied() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(5000), 64);
        let f = b.alloc(0).unwrap();
        assert_eq!(f.raw(), 5000);
        b.free(f, 0);
        assert_eq!(b.free_frames(), 64);
    }
}
