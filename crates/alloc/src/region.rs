//! Contiguous physical reservations for ASAP page-table levels.
//!
//! The paper's OS extension (§3.3) reserves, per VMA and per prefetched PT
//! level, a contiguous physical region whose pages are kept in virtual-sort
//! order. §3.7.2 covers growth: extensions happen asynchronously next to the
//! region's end, and when the adjacent memory cannot be cleared (e.g. pinned
//! pages) the OS places individual PT pages *out of line* — a "hole" in the
//! reserved region. Walks through holes are correct but see no acceleration.

use asap_types::{FastMap, PhysFrameNum};

/// Result of attempting to extend a reservation (§3.7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionExtendOutcome {
    /// The adjacent physical memory was free (or freeable in background);
    /// the region simply grew.
    Extended,
    /// The adjacent memory was occupied and unfreeable; subsequent node
    /// indices beyond the old length become holes served out-of-line.
    HolesCreated,
}

/// One reserved, contiguous, virtually-sorted region of page-table pages.
///
/// Node index *i* (the i-th table page at this level within the VMA, in
/// virtual order) normally lives at `base + i`; indices registered as holes
/// live wherever the fallback allocator put them.
///
/// # Examples
///
/// ```
/// use asap_alloc::ContiguousReservation;
/// use asap_types::PhysFrameNum;
///
/// let mut r = ContiguousReservation::new(PhysFrameNum::new(0x1000), 16);
/// assert_eq!(r.frame_for_index(3), Some(PhysFrameNum::new(0x1003)));
/// assert!(r.is_prefetchable(3));
///
/// r.punch_hole(5, PhysFrameNum::new(0x9999));
/// assert_eq!(r.frame_for_index(5), Some(PhysFrameNum::new(0x9999)));
/// assert!(!r.is_prefetchable(5)); // correct walk, no acceleration
/// ```
#[derive(Debug, Clone)]
pub struct ContiguousReservation {
    base: PhysFrameNum,
    len: u64,
    holes: FastMap<u64, PhysFrameNum>,
}

impl ContiguousReservation {
    /// Reserves `len` frames starting at `base`.
    #[must_use]
    pub fn new(base: PhysFrameNum, len: u64) -> Self {
        Self {
            base,
            len,
            holes: FastMap::default(),
        }
    }

    /// The region's first frame — the `PL{1,2}_base` loaded into the range
    /// registers (Fig. 6).
    #[must_use]
    pub fn base(&self) -> PhysFrameNum {
        self.base
    }

    /// Current length in frames.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the reservation is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of out-of-line nodes.
    #[must_use]
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// The physical frame holding node index `index`, or `None` if the index
    /// is beyond the reservation.
    #[must_use]
    pub fn frame_for_index(&self, index: u64) -> Option<PhysFrameNum> {
        if let Some(&f) = self.holes.get(&index) {
            return Some(f);
        }
        (index < self.len).then(|| self.base.add(index))
    }

    /// Whether a *prefetch* to node index `index` would hit the real node:
    /// true only for in-line (non-hole) indices. This is the condition under
    /// which the paper's base-plus-offset arithmetic points at the right
    /// physical address.
    #[must_use]
    pub fn is_prefetchable(&self, index: u64) -> bool {
        index < self.len && !self.holes.contains_key(&index)
    }

    /// Grows the reservation to `new_len` frames contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `new_len < len` — reservations never shrink in this model
    /// (VMAs grow in a pre-determined direction, §3.7.2).
    pub fn extend(&mut self, new_len: u64) {
        assert!(new_len >= self.len, "reservations do not shrink");
        self.len = new_len;
    }

    /// Registers node `index` as living out-of-line at `frame` (§3.7.2).
    ///
    /// Holes may be punched inside the current length (pinned page in the
    /// middle of an extension area) or beyond it (extension failed
    /// entirely); in the latter case the logical length grows to cover the
    /// index so that later in-line indices remain addressable.
    pub fn punch_hole(&mut self, index: u64, frame: PhysFrameNum) {
        if index >= self.len {
            self.len = index + 1;
        }
        self.holes.insert(index, frame);
    }

    /// Fraction of indices that are prefetchable (diagnostic for reports).
    #[must_use]
    pub fn prefetchable_fraction(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        1.0 - self.holes.len() as f64 / self.len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_line_indices_resolve() {
        let r = ContiguousReservation::new(PhysFrameNum::new(100), 4);
        assert_eq!(r.frame_for_index(0), Some(PhysFrameNum::new(100)));
        assert_eq!(r.frame_for_index(3), Some(PhysFrameNum::new(103)));
        assert_eq!(r.frame_for_index(4), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn extend_grows_in_line() {
        let mut r = ContiguousReservation::new(PhysFrameNum::new(100), 2);
        r.extend(6);
        assert_eq!(r.frame_for_index(5), Some(PhysFrameNum::new(105)));
        assert!(r.is_prefetchable(5));
    }

    #[test]
    #[should_panic(expected = "do not shrink")]
    fn shrink_rejected() {
        let mut r = ContiguousReservation::new(PhysFrameNum::new(0), 5);
        r.extend(3);
    }

    #[test]
    fn holes_resolve_but_are_not_prefetchable() {
        let mut r = ContiguousReservation::new(PhysFrameNum::new(100), 8);
        r.punch_hole(2, PhysFrameNum::new(7777));
        assert_eq!(r.frame_for_index(2), Some(PhysFrameNum::new(7777)));
        assert!(!r.is_prefetchable(2));
        assert!(r.is_prefetchable(1));
        assert_eq!(r.hole_count(), 1);
        assert!((r.prefetchable_fraction() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn hole_beyond_length_extends_logical_length() {
        let mut r = ContiguousReservation::new(PhysFrameNum::new(100), 2);
        r.punch_hole(5, PhysFrameNum::new(9000));
        assert_eq!(r.len(), 6);
        assert_eq!(r.frame_for_index(5), Some(PhysFrameNum::new(9000)));
        // Indices 2..5 are now in-line addressable (region logically grew).
        assert_eq!(r.frame_for_index(3), Some(PhysFrameNum::new(103)));
    }

    #[test]
    fn empty_reservation() {
        let r = ContiguousReservation::new(PhysFrameNum::new(0), 0);
        assert!(r.is_empty());
        assert_eq!(r.frame_for_index(0), None);
        assert_eq!(r.prefetchable_fraction(), 1.0);
    }
}
