//! Allocator errors.

/// Errors from physical-memory allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No block of the requested order (or larger) is free.
    OutOfMemory {
        /// The order that was requested.
        order: u32,
    },
    /// A free was attempted on a block that is not currently allocated
    /// (double free or wild pointer).
    NotAllocated,
    /// The request exceeds the allocator's maximum supported order.
    OrderTooLarge {
        /// The order that was requested.
        order: u32,
    },
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory { order } => {
                write!(f, "out of memory for order-{order} allocation")
            }
            AllocError::NotAllocated => f.write_str("block is not currently allocated"),
            AllocError::OrderTooLarge { order } => {
                write!(f, "order {order} exceeds the allocator maximum")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AllocError::OutOfMemory { order: 3 }
            .to_string()
            .contains("order-3"));
        assert!(AllocError::NotAllocated
            .to_string()
            .contains("not currently"));
        assert!(AllocError::OrderTooLarge { order: 20 }
            .to_string()
            .contains("20"));
    }
}
