//! Run-length scattering: a statistical model of buddy-allocator layout.
//!
//! Table 2 of the paper shows that the PT pages of real applications occupy
//! *hundreds to thousands* of contiguous physical regions — neither fully
//! contiguous nor fully random. The ratio `PT pages / regions` gives a mean
//! run length per workload (e.g. memcached-80GB: 45878 pages in 1976
//! regions ≈ 23 pages/run). [`ScatterAllocator`] reproduces exactly that
//! statistic: allocations come out in runs of geometrically-distributed
//! length placed at random positions, which is also the paper's own
//! methodology for the host PT ("randomly scattering the PT pages across
//! the host physical memory", §4).
//!
//! The same model supplies *data-page* contiguity, which is what the
//! clustered-TLB comparison (§5.4.1, Table 7) keys on.

use crate::{AllocError, FrameAllocator};
use asap_types::FastSet;
use asap_types::PhysFrameNum;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`ScatterAllocator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterConfig {
    /// Mean contiguous run length in frames (≥ 1.0). `1.0` degenerates to
    /// fully random placement; `f64::INFINITY` is not supported — use
    /// [`crate::BumpFrameAllocator`] for fully contiguous layouts.
    pub mean_run_len: f64,
    /// Size of the physical space runs are scattered over, in frames.
    pub phys_frames: u64,
    /// RNG seed (simulations are deterministic per seed).
    pub seed: u64,
}

impl ScatterConfig {
    /// A scatter profile matching a Table 2 row: `pt_pages` pages in
    /// `regions` regions over `phys_frames` of physical memory.
    #[must_use]
    pub fn from_table2(pt_pages: u64, regions: u64, phys_frames: u64, seed: u64) -> Self {
        let mean = if regions == 0 {
            1.0
        } else {
            (pt_pages as f64 / regions as f64).max(1.0)
        };
        Self {
            mean_run_len: mean,
            phys_frames,
            seed,
        }
    }
}

/// A frame allocator producing runs of consecutive frames with
/// geometrically-distributed length at uniformly random positions.
///
/// # Examples
///
/// ```
/// use asap_alloc::{FrameAllocator, ScatterAllocator, ScatterConfig};
///
/// let mut alloc = ScatterAllocator::new(ScatterConfig {
///     mean_run_len: 8.0,
///     phys_frames: 1 << 24,
///     seed: 1,
/// });
/// let frames: Vec<_> = (0..100).map(|_| alloc.alloc_frame().unwrap()).collect();
/// // All frames are distinct.
/// let set: std::collections::HashSet<_> = frames.iter().collect();
/// assert_eq!(set.len(), frames.len());
/// ```
#[derive(Debug, Clone)]
pub struct ScatterAllocator {
    config: ScatterConfig,
    rng: SmallRng,
    used: FastSet<u64>,
    run_next: u64,
    run_remaining: u64,
    allocated: u64,
}

impl ScatterAllocator {
    /// Creates an allocator from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_run_len < 1.0` or `phys_frames == 0`.
    #[must_use]
    pub fn new(config: ScatterConfig) -> Self {
        assert!(config.mean_run_len >= 1.0, "mean run length must be >= 1");
        assert!(config.phys_frames > 0, "physical space must be non-empty");
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            used: FastSet::default(),
            run_next: 0,
            run_remaining: 0,
            allocated: 0,
        }
    }

    /// Frames allocated so far.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    fn sample_run_len(&mut self) -> u64 {
        // Geometric distribution with mean `m`: P(continue) = 1 - 1/m.
        let m = self.config.mean_run_len;
        if m <= 1.0 {
            return 1;
        }
        let p_stop = 1.0 / m;
        let mut len = 1u64;
        // Cap runs at 4 MiB (the Linux MAX_ORDER block) — the buddy
        // allocator cannot produce longer physically-contiguous runs.
        while len < 1024 && self.rng.gen::<f64>() > p_stop {
            len += 1;
        }
        len
    }

    fn start_new_run(&mut self) -> Result<(), AllocError> {
        if self.allocated >= self.config.phys_frames {
            return Err(AllocError::OutOfMemory { order: 0 });
        }
        let len = self.sample_run_len();
        // Rejection-sample a start position whose first frame is unused.
        for _ in 0..64 {
            let start = self.rng.gen_range(0..self.config.phys_frames);
            if !self.used.contains(&start) {
                self.run_next = start;
                self.run_remaining = len;
                return Ok(());
            }
        }
        // Space is nearly full: fall back to a linear probe.
        for start in 0..self.config.phys_frames {
            if !self.used.contains(&start) {
                self.run_next = start;
                self.run_remaining = 1;
                return Ok(());
            }
        }
        Err(AllocError::OutOfMemory { order: 0 })
    }
}

impl FrameAllocator for ScatterAllocator {
    fn alloc_frame(&mut self) -> Result<PhysFrameNum, AllocError> {
        // A run also terminates early if it collides with an existing
        // allocation or the end of physical space — just as a buddy run
        // ends at an occupied neighbour.
        if self.run_remaining == 0
            || self.run_next >= self.config.phys_frames
            || self.used.contains(&self.run_next)
        {
            self.start_new_run()?;
        }
        let frame = self.run_next;
        self.used.insert(frame);
        self.run_next += 1;
        self.run_remaining -= 1;
        self.allocated += 1;
        Ok(PhysFrameNum::new(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pt_test_util::contiguity;
    use std::collections::HashSet;

    fn draw(config: ScatterConfig, n: usize) -> Vec<u64> {
        let mut a = ScatterAllocator::new(config);
        (0..n).map(|_| a.alloc_frame().unwrap().raw()).collect()
    }

    #[test]
    fn frames_are_unique() {
        let frames = draw(
            ScatterConfig {
                mean_run_len: 4.0,
                phys_frames: 1 << 22,
                seed: 3,
            },
            10_000,
        );
        let set: HashSet<_> = frames.iter().collect();
        assert_eq!(set.len(), frames.len());
    }

    #[test]
    fn mean_run_length_tracks_config() {
        for target in [1.0f64, 8.0, 23.0, 40.0] {
            let frames = draw(
                ScatterConfig {
                    mean_run_len: target,
                    phys_frames: 1 << 26,
                    seed: 9,
                },
                20_000,
            );
            let (_, mean) = contiguity(&frames);
            // Within 25% of target (runs merge by chance, collisions split).
            assert!(
                (mean - target).abs() / target < 0.25,
                "target {target}, measured {mean}"
            );
        }
    }

    #[test]
    fn random_mode_is_fully_scattered() {
        let frames = draw(
            ScatterConfig {
                mean_run_len: 1.0,
                phys_frames: 1 << 26,
                seed: 11,
            },
            5_000,
        );
        let (regions, mean) = contiguity(&frames);
        // Nearly every frame is its own region in a sparse space.
        assert!(regions > 4_800, "regions = {regions}");
        assert!(mean < 1.1);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = ScatterConfig {
            mean_run_len: 6.0,
            phys_frames: 1 << 20,
            seed: 77,
        };
        assert_eq!(draw(c, 1000), draw(c, 1000));
        let c2 = ScatterConfig { seed: 78, ..c };
        assert_ne!(draw(c, 1000), draw(c2, 1000));
    }

    #[test]
    fn exhausts_cleanly() {
        let mut a = ScatterAllocator::new(ScatterConfig {
            mean_run_len: 2.0,
            phys_frames: 64,
            seed: 5,
        });
        let mut got = HashSet::new();
        for _ in 0..64 {
            got.insert(a.alloc_frame().unwrap().raw());
        }
        assert_eq!(got.len(), 64);
        assert_eq!(a.alloc_frame(), Err(AllocError::OutOfMemory { order: 0 }));
    }

    #[test]
    fn from_table2_derives_mean() {
        // memcached-80GB row: 45878 PT pages, 1976 regions.
        let c = ScatterConfig::from_table2(45878, 1976, 1 << 25, 0);
        assert!((c.mean_run_len - 23.2).abs() < 0.1);
        // Degenerate rows fall back sanely.
        assert_eq!(
            ScatterConfig::from_table2(10, 0, 1 << 20, 0).mean_run_len,
            1.0
        );
    }
}
