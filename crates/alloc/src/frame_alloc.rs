//! The frame-allocator interface shared by OS-level consumers.

use crate::{AllocError, BuddyAllocator};
use asap_types::PhysFrameNum;

/// A source of single 4 KiB physical frames (data pages, baseline PT pages).
pub trait FrameAllocator {
    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when exhausted.
    fn alloc_frame(&mut self) -> Result<PhysFrameNum, AllocError>;

    /// Returns a frame to the allocator. The default implementation leaks,
    /// which suits short-lived simulations.
    fn free_frame(&mut self, frame: PhysFrameNum) {
        let _ = frame;
    }
}

impl FrameAllocator for BuddyAllocator {
    fn alloc_frame(&mut self) -> Result<PhysFrameNum, AllocError> {
        self.alloc(0)
    }

    fn free_frame(&mut self, frame: PhysFrameNum) {
        self.free(frame, 0);
    }
}

/// A monotone bump allocator: maximally contiguous, never frees.
///
/// Useful as the "fully contiguous" end of the scatter-policy ablation and
/// in unit tests.
#[derive(Debug, Clone)]
pub struct BumpFrameAllocator {
    next: u64,
    limit: u64,
}

impl BumpFrameAllocator {
    /// Creates an allocator handing out `[start, start + num_frames)`.
    #[must_use]
    pub fn new(start: PhysFrameNum, num_frames: u64) -> Self {
        Self {
            next: start.raw(),
            limit: start.raw() + num_frames,
        }
    }

    /// Frames still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }
}

impl FrameAllocator for BumpFrameAllocator {
    fn alloc_frame(&mut self) -> Result<PhysFrameNum, AllocError> {
        if self.next >= self.limit {
            return Err(AllocError::OutOfMemory { order: 0 });
        }
        let f = PhysFrameNum::new(self.next);
        self.next += 1;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_contiguous() {
        let mut a = BumpFrameAllocator::new(PhysFrameNum::new(10), 3);
        assert_eq!(a.alloc_frame().unwrap().raw(), 10);
        assert_eq!(a.alloc_frame().unwrap().raw(), 11);
        assert_eq!(a.remaining(), 1);
        assert_eq!(a.alloc_frame().unwrap().raw(), 12);
        assert!(a.alloc_frame().is_err());
    }

    #[test]
    fn buddy_implements_frame_allocator() {
        let mut b = BuddyAllocator::new(PhysFrameNum::new(0), 16);
        let f = FrameAllocator::alloc_frame(&mut b).unwrap();
        FrameAllocator::free_frame(&mut b, f);
        assert_eq!(b.free_frames(), 16);
    }
}
