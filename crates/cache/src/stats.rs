//! Cache statistics counters.

use asap_telemetry::{Collect, MetricSet};

/// Hit/miss/fill counters for a single cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Lines installed.
    pub fills: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
}

impl CacheStats {
    pub(crate) fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total demand lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in [0, 1]; zero when no accesses were made.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// Statistics for the whole hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Per-level stats: L1, L2, L3.
    pub levels: [CacheStats; 3],
    /// Accesses ultimately served by DRAM.
    pub memory_accesses: u64,
    /// Prefetch fills requested.
    pub prefetch_fills: u64,
    /// Prefetches dropped for lack of a free MSHR (§3.4: best-effort).
    pub prefetches_dropped: u64,
    /// Demand accesses that merged with an in-flight prefetch MSHR.
    pub mshr_merges: u64,
}

impl Collect for CacheStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        out.counter(
            format!("{prefix}hits_total"),
            "demand lookups that hit",
            self.hits,
        );
        out.counter(
            format!("{prefix}misses_total"),
            "demand lookups that missed",
            self.misses,
        );
        out.counter(
            format!("{prefix}fills_total"),
            "lines installed",
            self.fills,
        );
        out.counter(
            format!("{prefix}evictions_total"),
            "lines evicted by fills",
            self.evictions,
        );
    }
}

impl Collect for HierarchyStats {
    fn collect(&self, prefix: &str, out: &mut MetricSet) {
        for (stats, level) in self.levels.iter().zip(["l1", "l2", "l3"]) {
            stats.collect(&format!("{prefix}{level}_"), out);
        }
        out.counter(
            format!("{prefix}memory_accesses_total"),
            "accesses ultimately served by DRAM",
            self.memory_accesses,
        );
        out.counter(
            format!("{prefix}prefetch_fills_total"),
            "prefetch fills requested",
            self.prefetch_fills,
        );
        out.counter(
            format!("{prefix}prefetches_dropped_total"),
            "prefetches dropped for lack of a free MSHR",
            self.prefetches_dropped,
        );
        out.counter(
            format!("{prefix}mshr_merges_total"),
            "demand accesses merged with an in-flight prefetch MSHR",
            self.mshr_merges,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        s.record(true);
        s.record(true);
        s.record(false);
        assert_eq!(s.accesses(), 3);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
