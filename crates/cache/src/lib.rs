//! Cache-hierarchy simulation for the ASAP reproduction.
//!
//! The paper's evaluation metric — page-walk latency — is determined entirely
//! by *which level of the memory hierarchy serves each page-table-node
//! access* (§4, "Measuring page walk latency"). This crate provides that
//! machinery:
//!
//! * a generic set-associative container ([`SetAssoc`]) with pluggable
//!   replacement ([`ReplacementKind`]: LRU, tree-PLRU, random), reused by the
//!   TLBs and page-walk caches in `asap-tlb`;
//! * a physical-line cache model ([`Cache`]);
//! * a miss-status-holding-register file ([`MshrFile`]) that merges demand
//!   accesses with in-flight ASAP prefetches — the paper's §3.4 mechanism
//!   ("ASAP leverages existing machinery for buffering the outstanding
//!   prefetch requests in L1-D's MSHRs");
//! * a three-level hierarchy plus DRAM ([`CacheHierarchy`]) with the paper's
//!   Table 5 latencies, attributing every access to the level that served it
//!   ([`ServedBy`], the raw material of the paper's Figure 9);
//! * the shared, explicitly-timed multi-core view of that hierarchy
//!   ([`MemoryFabric`] / [`SharedFabric`]) that N per-core translation
//!   engines reference when simulating an SMP machine.
//!
//! # Examples
//!
//! ```
//! use asap_cache::{CacheHierarchy, HierarchyConfig, ServedBy};
//! use asap_types::CacheLineAddr;
//!
//! let mut hier = CacheHierarchy::new(HierarchyConfig::broadwell_like());
//! let line = CacheLineAddr::new(0x40);
//! let first = hier.access(line);
//! assert_eq!(first.served_by, ServedBy::Memory);
//! let second = hier.access(line);
//! assert_eq!(second.served_by, ServedBy::L1);
//! assert!(second.latency < first.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assoc;
mod cache;
mod config;
mod fabric;
mod hierarchy;
mod mshr;
mod replacement;
mod stats;

pub use assoc::{Eviction, SetAssoc};
pub use cache::Cache;
pub use config::{CacheConfig, HierarchyConfig};
pub use fabric::{MemoryFabric, NumaConfig, NumaStats, SharedFabric, NUMA_HOP_CYCLES};
pub use hierarchy::{AccessKind, AccessResult, CacheHierarchy, ServedBy};
pub use mshr::{MshrFile, MshrOutcome};
pub use replacement::ReplacementKind;
pub use stats::{CacheStats, HierarchyStats};
