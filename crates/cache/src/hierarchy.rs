//! The three-level cache hierarchy plus DRAM.

use crate::{Cache, HierarchyConfig, HierarchyStats, MshrFile, MshrOutcome};
use asap_types::CacheLineAddr;

/// The hierarchy level that ultimately served an access — the per-request
/// attribution behind the paper's Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServedBy {
    /// Hit in the L1 data cache.
    L1,
    /// Served from the unified L2.
    L2,
    /// Served from the shared last-level cache.
    L3,
    /// Served from DRAM.
    Memory,
}

impl ServedBy {
    /// All variants, fastest first.
    pub const ALL: [ServedBy; 4] = [ServedBy::L1, ServedBy::L2, ServedBy::L3, ServedBy::Memory];
}

impl core::fmt::Display for ServedBy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServedBy::L1 => f.write_str("L1"),
            ServedBy::L2 => f.write_str("L2"),
            ServedBy::L3 => f.write_str("LLC"),
            ServedBy::Memory => f.write_str("Mem"),
        }
    }
}

/// Whether an access is a demand request or an ASAP prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand access (data reference or page-walker PT-node read).
    Demand,
    /// A best-effort ASAP prefetch.
    Prefetch,
}

/// The outcome of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycles from issue to data return.
    pub latency: u64,
    /// Level that served the request.
    pub served_by: ServedBy,
    /// Whether the request merged with an in-flight prefetch MSHR; when
    /// true, `latency` is the *residual* wait, not a full fetch.
    pub merged: bool,
}

/// A three-level cache hierarchy with DRAM backing and an L1-D MSHR file for
/// in-flight ASAP prefetches.
///
/// Timing model: a hit at level *n* costs that level's configured total
/// latency (Table 5 latencies are load-to-use, not incremental); a full miss
/// costs the memory latency. Fills install the line in every level (the
/// paper routes ASAP prefetches "into the L1-D", and walker/demand misses
/// likewise allocate up the hierarchy).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    memory_latency: u64,
    mshrs: MshrFile,
    stats: HierarchyStats,
    now: u64,
}

impl CacheHierarchy {
    /// Builds an empty hierarchy from `config`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        let seed = config.seed;
        Self {
            l1: Cache::new(config.l1, seed ^ 1),
            l2: Cache::new(config.l2, seed ^ 2),
            l3: Cache::new(config.l3, seed ^ 3),
            memory_latency: config.memory_latency,
            mshrs: MshrFile::new(config.mshr_entries),
            stats: HierarchyStats::default(),
            now: 0,
        }
    }

    /// The internal clock, advanced by [`CacheHierarchy::access`] and
    /// [`CacheHierarchy::advance`].
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the internal clock (e.g. to account for non-memory work
    /// between accesses).
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Demand access at the internal clock; the clock then advances past the
    /// access (serialized execution, which is how a page walk behaves).
    pub fn access(&mut self, line: CacheLineAddr) -> AccessResult {
        let result = self.access_at(line, self.now);
        self.now += result.latency;
        result
    }

    /// Demand access at an explicit cycle `now` (does not move the internal
    /// clock). Used by the walk timeline, which interleaves walker progress
    /// and prefetch completions.
    pub fn access_at(&mut self, line: CacheLineAddr, now: u64) -> AccessResult {
        // An in-flight prefetch to the same line absorbs the demand miss.
        if let Some((completion, source)) = self.mshrs.in_flight(line, now) {
            self.stats.mshr_merges += 1;
            let latency = completion.saturating_sub(now).max(self.l1.latency());
            return AccessResult {
                latency,
                served_by: source,
                merged: true,
            };
        }
        let (latency, served_by) = self.lookup_and_fill(line);
        AccessResult {
            latency,
            served_by,
            merged: false,
        }
    }

    /// Issues a best-effort prefetch for `line` at cycle `now`.
    ///
    /// Returns the completion cycle, or `None` if the prefetch was dropped
    /// because no MSHR was available. A prefetch to a line already resident
    /// in L1 is a no-op completing immediately; a prefetch to a line already
    /// in flight merges with the existing entry.
    pub fn prefetch_at(&mut self, line: CacheLineAddr, now: u64) -> Option<u64> {
        // In-flight entries are checked before residency: fills are installed
        // optimistically at issue time, so an in-flight line already appears
        // in L1 even though its data has not arrived yet.
        if let Some((completion, _)) = self.mshrs.in_flight(line, now) {
            return Some(completion);
        }
        if self.l1.contains(line) {
            return Some(now);
        }
        // Determine where the line would come from, then move it into L1
        // (and the outer levels) with an MSHR covering the flight time.
        let (latency, served_by) = self.probe_source(line);
        match self.mshrs.allocate(line, now, now + latency, served_by) {
            MshrOutcome::Issued { completion } | MshrOutcome::Merged { completion } => {
                self.fill_all(line);
                self.stats.prefetch_fills += 1;
                Some(completion)
            }
            MshrOutcome::Full => {
                self.stats.prefetches_dropped += 1;
                None
            }
        }
    }

    fn probe_source(&self, line: CacheLineAddr) -> (u64, ServedBy) {
        if self.l1.contains(line) {
            (self.l1.latency(), ServedBy::L1)
        } else if self.l2.contains(line) {
            (self.l2.latency(), ServedBy::L2)
        } else if self.l3.contains(line) {
            (self.l3.latency(), ServedBy::L3)
        } else {
            (self.memory_latency, ServedBy::Memory)
        }
    }

    fn lookup_and_fill(&mut self, line: CacheLineAddr) -> (u64, ServedBy) {
        if self.l1.access(line) {
            self.record(0, true);
            return (self.l1.latency(), ServedBy::L1);
        }
        self.record(0, false);
        if self.l2.access(line) {
            self.record(1, true);
            self.l1.fill(line);
            return (self.l2.latency(), ServedBy::L2);
        }
        self.record(1, false);
        if self.l3.access(line) {
            self.record(2, true);
            self.l1.fill(line);
            self.l2.fill(line);
            return (self.l3.latency(), ServedBy::L3);
        }
        self.record(2, false);
        self.stats.memory_accesses += 1;
        self.fill_all(line);
        (self.memory_latency, ServedBy::Memory)
    }

    fn fill_all(&mut self, line: CacheLineAddr) {
        self.l1.fill(line);
        self.l2.fill(line);
        self.l3.fill(line);
    }

    fn record(&mut self, level: usize, hit: bool) {
        let s = &mut self.stats.levels[level];
        if hit {
            s.hits += 1;
        } else {
            s.misses += 1;
        }
    }

    /// Residency probe that disturbs nothing (no fills, no stats).
    #[must_use]
    pub fn source_of(&self, line: CacheLineAddr) -> ServedBy {
        self.probe_source(line).1
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&mut self, line: CacheLineAddr) {
        self.l1.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line);
    }

    /// Empties all levels and the MSHR file (stats preserved).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.mshrs.clear();
    }

    /// L1 hit latency (the floor for any demand access).
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.l1.latency()
    }

    /// L2 hit latency — what a cache-resident TLB-block lookup costs.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.l2.latency()
    }

    /// Installs `line` into the L2 **only** — the insertion path of a
    /// Victima-style backend, which parks evicted TLB entries as TLB blocks
    /// in the L2 without polluting the L1 or LLC. The block then competes
    /// for L2 ways with ordinary data, so cache pressure naturally evicts
    /// stale translations.
    pub fn l2_install(&mut self, line: CacheLineAddr) {
        self.l2.fill(line);
    }

    /// Probes the L2 for `line`, updating recency on a hit (a real lookup,
    /// as a TLB-block probe performs). Does not fill other levels and does
    /// not touch the hierarchy-level hit/miss statistics — block probes are
    /// accounted by the backend that issues them.
    pub fn l2_lookup(&mut self, line: CacheLineAddr) -> bool {
        self.l2.access(line)
    }

    /// Whether the L2 currently holds `line` (no side effects).
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.l2.contains(line)
    }

    /// DRAM latency.
    #[must_use]
    pub fn memory_latency(&self) -> u64 {
        self.memory_latency
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Resets statistics (e.g. after warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny_for_tests())
    }

    #[test]
    fn miss_fills_all_levels() {
        let mut h = tiny();
        let line = CacheLineAddr::new(0x99);
        let r = h.access(line);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(r.latency, 191);
        let r2 = h.access(line);
        assert_eq!(r2.served_by, ServedBy::L1);
        assert_eq!(r2.latency, 4);
    }

    #[test]
    fn l2_serves_after_l1_eviction() {
        let mut h = tiny();
        let line = CacheLineAddr::new(1);
        h.access(line);
        // Thrash L1 (64 lines, 16 sets x 4 ways in tiny config) with lines
        // that conflict on the same set as `line`.
        for i in 1..=8u64 {
            h.access(CacheLineAddr::new(1 + i * 16));
        }
        let r = h.access(line);
        assert_eq!(r.served_by, ServedBy::L2);
        assert_eq!(r.latency, 12);
    }

    #[test]
    fn prefetch_then_demand_is_l1_hit_after_completion() {
        let mut h = tiny();
        let line = CacheLineAddr::new(0x40);
        let completion = h.prefetch_at(line, 0).expect("mshr available");
        assert_eq!(completion, 191);
        // Demand access after completion: plain L1 hit.
        let r = h.access_at(line, 200);
        assert_eq!(r.served_by, ServedBy::L1);
        assert_eq!(r.latency, 4);
        assert!(!r.merged);
    }

    #[test]
    fn demand_merges_with_inflight_prefetch() {
        let mut h = tiny();
        let line = CacheLineAddr::new(0x41);
        let completion = h.prefetch_at(line, 0).unwrap();
        // Walker arrives at cycle 100 < 191: waits only the residual.
        let r = h.access_at(line, 100);
        assert!(r.merged);
        assert_eq!(r.latency, completion - 100);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(h.stats().mshr_merges, 1);
    }

    #[test]
    fn merge_latency_floor_is_l1_hit() {
        let mut h = tiny();
        let line = CacheLineAddr::new(0x42);
        let completion = h.prefetch_at(line, 0).unwrap();
        // Demand lands 1 cycle before completion: cannot beat an L1 hit.
        let r = h.access_at(line, completion - 1);
        assert!(r.merged);
        assert_eq!(r.latency, 4);
    }

    #[test]
    fn prefetch_to_resident_line_is_free() {
        let mut h = tiny();
        let line = CacheLineAddr::new(0x43);
        h.access(line); // now resident
        let now = h.now();
        assert_eq!(h.prefetch_at(line, now), Some(now));
        assert_eq!(h.stats().prefetch_fills, 0);
    }

    #[test]
    fn prefetch_dropped_when_mshrs_full() {
        let mut cfg = HierarchyConfig::tiny_for_tests();
        cfg.mshr_entries = 2;
        let mut h = CacheHierarchy::new(cfg);
        assert!(h.prefetch_at(CacheLineAddr::new(1), 0).is_some());
        assert!(h.prefetch_at(CacheLineAddr::new(2), 0).is_some());
        assert!(h.prefetch_at(CacheLineAddr::new(3), 0).is_none());
        assert_eq!(h.stats().prefetches_dropped, 1);
        // After the first two complete, capacity frees up.
        assert!(h.prefetch_at(CacheLineAddr::new(3), 200).is_some());
    }

    #[test]
    fn duplicate_prefetch_merges() {
        let mut h = tiny();
        let line = CacheLineAddr::new(9);
        let c1 = h.prefetch_at(line, 0).unwrap();
        let c2 = h.prefetch_at(line, 10).unwrap();
        assert_eq!(c1, c2, "second prefetch rides the first");
    }

    #[test]
    fn internal_clock_advances_with_access() {
        let mut h = tiny();
        assert_eq!(h.now(), 0);
        h.access(CacheLineAddr::new(1));
        assert_eq!(h.now(), 191);
        h.access(CacheLineAddr::new(1));
        assert_eq!(h.now(), 195);
        h.advance(5);
        assert_eq!(h.now(), 200);
    }

    #[test]
    fn source_probe_matches_access() {
        let mut h = tiny();
        let line = CacheLineAddr::new(77);
        assert_eq!(h.source_of(line), ServedBy::Memory);
        h.access(line);
        assert_eq!(h.source_of(line), ServedBy::L1);
        h.invalidate(line);
        assert_eq!(h.source_of(line), ServedBy::Memory);
    }

    #[test]
    fn flush_clears_contents() {
        let mut h = tiny();
        let line = CacheLineAddr::new(5);
        h.access(line);
        h.flush();
        assert_eq!(h.source_of(line), ServedBy::Memory);
    }
}
