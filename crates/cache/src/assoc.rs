//! A generic set-associative container.
//!
//! This is the common structural core of every tagged hardware structure in
//! the simulator: data caches, L1/L2 TLBs, page-walk caches and the clustered
//! TLB all wrap [`SetAssoc`] with their own tag and payload types.

use crate::replacement::{policy_rng, SetPolicy};
use crate::ReplacementKind;
use rand::rngs::SmallRng;

/// An entry evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction<K, V> {
    /// The evicted tag.
    pub key: K,
    /// The evicted payload.
    pub value: V,
}

#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
}

#[derive(Debug, Clone)]
struct Set<K, V> {
    ways: Vec<Option<Way<K, V>>>,
    policy: SetPolicy,
}

/// A set-associative array mapping tags `K` to payloads `V`.
///
/// The caller chooses the set for each operation (different structures index
/// with different address bits), while `SetAssoc` owns way management,
/// replacement and eviction.
///
/// # Examples
///
/// ```
/// use asap_cache::{ReplacementKind, SetAssoc};
///
/// let mut tlb: SetAssoc<u64, &str> = SetAssoc::new(2, 2, ReplacementKind::Lru, 0);
/// tlb.insert(0, 100, "a");
/// tlb.insert(0, 200, "b");
/// assert_eq!(tlb.lookup(0, &100), Some(&"a"));
/// // Set 0 is full and 200 is now LRU; inserting evicts it.
/// let evicted = tlb.insert(0, 300, "c").unwrap();
/// assert_eq!(evicted.key, 200);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<K, V> {
    sets: Vec<Set<K, V>>,
    ways: usize,
    clock: u64,
    rng: SmallRng,
}

impl<K: Eq + Copy, V> SetAssoc<K, V> {
    /// Creates a structure with `num_sets` sets of `ways` ways each.
    ///
    /// `seed` makes the random replacement policy (if selected)
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero, or if tree-PLRU is requested
    /// with non-power-of-two `ways`.
    #[must_use]
    pub fn new(num_sets: usize, ways: usize, policy: ReplacementKind, seed: u64) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        let sets = (0..num_sets)
            .map(|_| Set {
                ways: (0..ways).map(|_| None).collect(),
                policy: SetPolicy::new(policy, ways),
            })
            .collect();
        Self {
            sets,
            ways,
            clock: 0,
            rng: policy_rng(seed),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Looks up `key` in `set`, updating recency on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn lookup(&mut self, set: usize, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let s = &mut self.sets[set];
        for (w, slot) in s.ways.iter().enumerate() {
            if let Some(way) = slot {
                if way.key == *key {
                    s.policy.touch(w, clock);
                    return s.ways[w].as_ref().map(|way| &way.value);
                }
            }
        }
        None
    }

    /// Looks up `key` in `set` returning a mutable payload, updating recency.
    pub fn lookup_mut(&mut self, set: usize, key: &K) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        let s = &mut self.sets[set];
        for (w, slot) in s.ways.iter().enumerate() {
            if let Some(way) = slot {
                if way.key == *key {
                    s.policy.touch(w, clock);
                    return s.ways[w].as_mut().map(|way| &mut way.value);
                }
            }
        }
        None
    }

    /// Checks for `key` in `set` without updating replacement state.
    #[must_use]
    pub fn probe(&self, set: usize, key: &K) -> Option<&V> {
        self.sets[set]
            .ways
            .iter()
            .flatten()
            .find(|way| way.key == *key)
            .map(|way| &way.value)
    }

    /// Inserts `key -> value` into `set`, returning any eviction.
    ///
    /// If `key` is already present its payload is replaced (no eviction is
    /// reported) and its recency refreshed.
    pub fn insert(&mut self, set: usize, key: K, value: V) -> Option<Eviction<K, V>> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let s = &mut self.sets[set];
        // Hit: replace in place.
        for (w, slot) in s.ways.iter_mut().enumerate() {
            if let Some(way) = slot {
                if way.key == key {
                    way.value = value;
                    s.policy.touch(w, clock);
                    return None;
                }
            }
        }
        // Free way.
        for (w, slot) in s.ways.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(Way { key, value });
                s.policy.touch(w, clock);
                return None;
            }
        }
        // Evict.
        let victim = s.policy.victim(ways, &mut self.rng);
        let old = s.ways[victim]
            .replace(Way { key, value })
            .expect("victim way occupied in a full set");
        s.policy.touch(victim, clock);
        Some(Eviction {
            key: old.key,
            value: old.value,
        })
    }

    /// Removes `key` from `set`, returning its payload if present.
    pub fn invalidate(&mut self, set: usize, key: &K) -> Option<V> {
        let s = &mut self.sets[set];
        for slot in s.ways.iter_mut() {
            if slot.as_ref().is_some_and(|way| way.key == *key) {
                return slot.take().map(|way| way.value);
            }
        }
        None
    }

    /// Clears every entry.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            for slot in &mut s.ways {
                *slot = None;
            }
        }
    }

    /// Number of valid entries across all sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.ways.iter().flatten().count())
            .sum()
    }

    /// Whether the structure holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(set, key, value)` for all valid entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &K, &V)> {
        self.sets.iter().enumerate().flat_map(|(i, s)| {
            s.ways
                .iter()
                .flatten()
                .map(move |way| (i, &way.key, &way.value))
        })
    }

    /// Removes all entries failing `keep`, returning how many were dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut dropped = 0;
        for s in &mut self.sets {
            for slot in &mut s.ways {
                if let Some(way) = slot {
                    if !keep(&way.key, &way.value) {
                        *slot = None;
                        dropped += 1;
                    }
                }
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssoc<u64, u64> {
        SetAssoc::new(4, 2, ReplacementKind::Lru, 42)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = small();
        assert!(c.is_empty());
        assert_eq!(c.insert(1, 10, 100), None);
        assert_eq!(c.lookup(1, &10), Some(&100));
        assert_eq!(c.lookup(1, &11), None);
        assert_eq!(c.lookup(0, &10), None, "keys are per-set");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_on_full_set() {
        let mut c = small();
        c.insert(2, 1, 1);
        c.insert(2, 2, 2);
        c.lookup(2, &1); // make key 2 the LRU
        let ev = c.insert(2, 3, 3).expect("must evict");
        assert_eq!(ev.key, 2);
        assert_eq!(ev.value, 2);
        assert!(c.probe(2, &1).is_some());
        assert!(c.probe(2, &3).is_some());
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let mut c = small();
        c.insert(0, 7, 70);
        c.insert(0, 8, 80);
        assert_eq!(c.insert(0, 7, 71), None);
        assert_eq!(c.probe(0, &7), Some(&71));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        // Probing key 1 must NOT refresh it...
        assert_eq!(c.probe(0, &1), Some(&1));
        // ...so it is still the LRU victim.
        let ev = c.insert(0, 3, 3).unwrap();
        assert_eq!(ev.key, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small();
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        assert_eq!(c.invalidate(0, &1), Some(10));
        assert_eq!(c.invalidate(0, &1), None);
        assert_eq!(c.len(), 1);
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn lookup_mut_mutates() {
        let mut c = small();
        c.insert(3, 9, 90);
        *c.lookup_mut(3, &9).unwrap() += 1;
        assert_eq!(c.probe(3, &9), Some(&91));
    }

    #[test]
    fn retain_filters() {
        let mut c = small();
        for k in 0..8u64 {
            c.insert((k % 4) as usize, k, k);
        }
        let dropped = c.retain(|k, _| k % 2 == 0);
        assert_eq!(dropped + c.len(), 8);
        assert!(c.iter().all(|(_, k, _)| k % 2 == 0));
    }

    #[test]
    fn capacity_accessors() {
        let c = small();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity(), 8);
    }
}
