//! A generic set-associative container.
//!
//! This is the common structural core of every tagged hardware structure in
//! the simulator: data caches, L1/L2 TLBs, page-walk caches and the clustered
//! TLB all wrap [`SetAssoc`] with their own tag and payload types.

use crate::replacement::{policy_rng, PolicyState};
use crate::ReplacementKind;
use rand::rngs::SmallRng;

/// An entry evicted by an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction<K, V> {
    /// The evicted tag.
    pub key: K,
    /// The evicted payload.
    pub value: V,
}

#[derive(Debug, Clone)]
struct Way<K, V> {
    key: K,
    value: V,
}

/// A set-associative array mapping tags `K` to payloads `V`.
///
/// The caller chooses the set for each operation (different structures index
/// with different address bits), while `SetAssoc` owns way management,
/// replacement and eviction.
///
/// Storage is a single set-major arena (`slots[set * ways + w]`) plus one
/// structure-wide replacement-state array, rather than a `Vec` of per-set
/// `Vec`s: a lookup touches one contiguous run of ways with no per-set
/// pointer chase, which is what the simulator's hot loop spends most of its
/// time doing.
///
/// # Examples
///
/// ```
/// use asap_cache::{ReplacementKind, SetAssoc};
///
/// let mut tlb: SetAssoc<u64, &str> = SetAssoc::new(2, 2, ReplacementKind::Lru, 0);
/// tlb.insert(0, 100, "a");
/// tlb.insert(0, 200, "b");
/// assert_eq!(tlb.lookup(0, &100), Some(&"a"));
/// // Set 0 is full and 200 is now LRU; inserting evicts it.
/// let evicted = tlb.insert(0, 300, "c").unwrap();
/// assert_eq!(evicted.key, 200);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<K, V> {
    slots: Vec<Option<Way<K, V>>>,
    num_sets: usize,
    ways: usize,
    clock: u64,
    policy: PolicyState,
    rng: SmallRng,
}

impl<K: Eq + Copy, V> SetAssoc<K, V> {
    /// Creates a structure with `num_sets` sets of `ways` ways each.
    ///
    /// `seed` makes the random replacement policy (if selected)
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `ways` is zero, or if tree-PLRU is requested
    /// with non-power-of-two `ways`.
    #[must_use]
    pub fn new(num_sets: usize, ways: usize, policy: ReplacementKind, seed: u64) -> Self {
        assert!(num_sets > 0, "need at least one set");
        assert!(ways > 0, "need at least one way");
        Self {
            slots: (0..num_sets * ways).map(|_| None).collect(),
            num_sets,
            ways,
            clock: 0,
            policy: PolicyState::new(policy, num_sets, ways),
            rng: policy_rng(seed),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_sets * self.ways
    }

    /// Looks up `key` in `set`, updating recency on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn lookup(&mut self, set: usize, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let base = set * self.ways;
        let ways = self.ways;
        assert!(set < self.num_sets, "set {set} out of range");
        for w in 0..ways {
            if let Some(way) = &self.slots[base + w] {
                if way.key == *key {
                    self.policy.touch(set, ways, w, clock);
                    return self.slots[base + w].as_ref().map(|way| &way.value);
                }
            }
        }
        None
    }

    /// Looks up `key` in `set` returning a mutable payload, updating recency.
    pub fn lookup_mut(&mut self, set: usize, key: &K) -> Option<&mut V> {
        self.clock += 1;
        let clock = self.clock;
        let base = set * self.ways;
        let ways = self.ways;
        assert!(set < self.num_sets, "set {set} out of range");
        for w in 0..ways {
            if let Some(way) = &self.slots[base + w] {
                if way.key == *key {
                    self.policy.touch(set, ways, w, clock);
                    return self.slots[base + w].as_mut().map(|way| &mut way.value);
                }
            }
        }
        None
    }

    /// Checks for `key` in `set` without updating replacement state.
    #[must_use]
    pub fn probe(&self, set: usize, key: &K) -> Option<&V> {
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .flatten()
            .find(|way| way.key == *key)
            .map(|way| &way.value)
    }

    /// Inserts `key -> value` into `set`, returning any eviction.
    ///
    /// If `key` is already present its payload is replaced (no eviction is
    /// reported) and its recency refreshed.
    pub fn insert(&mut self, set: usize, key: K, value: V) -> Option<Eviction<K, V>> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let base = set * ways;
        assert!(set < self.num_sets, "set {set} out of range");
        // Hit: replace in place.
        for w in 0..ways {
            if let Some(way) = &mut self.slots[base + w] {
                if way.key == key {
                    way.value = value;
                    self.policy.touch(set, ways, w, clock);
                    return None;
                }
            }
        }
        // Free way.
        for w in 0..ways {
            if self.slots[base + w].is_none() {
                self.slots[base + w] = Some(Way { key, value });
                self.policy.touch(set, ways, w, clock);
                return None;
            }
        }
        // Evict.
        let victim = self.policy.victim(set, ways, &mut self.rng);
        let old = self.slots[base + victim]
            .replace(Way { key, value })
            .expect("victim way occupied in a full set");
        self.policy.touch(set, ways, victim, clock);
        Some(Eviction {
            key: old.key,
            value: old.value,
        })
    }

    /// Removes `key` from `set`, returning its payload if present.
    pub fn invalidate(&mut self, set: usize, key: &K) -> Option<V> {
        let base = set * self.ways;
        for slot in &mut self.slots[base..base + self.ways] {
            if slot.as_ref().is_some_and(|way| way.key == *key) {
                return slot.take().map(|way| way.value);
            }
        }
        None
    }

    /// Clears every entry.
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Number of valid entries across all sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Whether the structure holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(set, key, value)` for all valid entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &K, &V)> {
        let ways = self.ways;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, slot)| slot.as_ref().map(|way| (i / ways, &way.key, &way.value)))
    }

    /// Removes all entries failing `keep`, returning how many were dropped.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> usize {
        let mut dropped = 0;
        for slot in &mut self.slots {
            if let Some(way) = slot {
                if !keep(&way.key, &way.value) {
                    *slot = None;
                    dropped += 1;
                }
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssoc<u64, u64> {
        SetAssoc::new(4, 2, ReplacementKind::Lru, 42)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = small();
        assert!(c.is_empty());
        assert_eq!(c.insert(1, 10, 100), None);
        assert_eq!(c.lookup(1, &10), Some(&100));
        assert_eq!(c.lookup(1, &11), None);
        assert_eq!(c.lookup(0, &10), None, "keys are per-set");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_on_full_set() {
        let mut c = small();
        c.insert(2, 1, 1);
        c.insert(2, 2, 2);
        c.lookup(2, &1); // make key 2 the LRU
        let ev = c.insert(2, 3, 3).expect("must evict");
        assert_eq!(ev.key, 2);
        assert_eq!(ev.value, 2);
        assert!(c.probe(2, &1).is_some());
        assert!(c.probe(2, &3).is_some());
    }

    #[test]
    fn reinsert_same_key_updates_value_without_eviction() {
        let mut c = small();
        c.insert(0, 7, 70);
        c.insert(0, 8, 80);
        assert_eq!(c.insert(0, 7, 71), None);
        assert_eq!(c.probe(0, &7), Some(&71));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        // Probing key 1 must NOT refresh it...
        assert_eq!(c.probe(0, &1), Some(&1));
        // ...so it is still the LRU victim.
        let ev = c.insert(0, 3, 3).unwrap();
        assert_eq!(ev.key, 1);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small();
        c.insert(0, 1, 10);
        c.insert(1, 2, 20);
        assert_eq!(c.invalidate(0, &1), Some(10));
        assert_eq!(c.invalidate(0, &1), None);
        assert_eq!(c.len(), 1);
        c.flush();
        assert!(c.is_empty());
    }

    #[test]
    fn lookup_mut_mutates() {
        let mut c = small();
        c.insert(3, 9, 90);
        *c.lookup_mut(3, &9).unwrap() += 1;
        assert_eq!(c.probe(3, &9), Some(&91));
    }

    #[test]
    fn retain_filters() {
        let mut c = small();
        for k in 0..8u64 {
            c.insert((k % 4) as usize, k, k);
        }
        let dropped = c.retain(|k, _| k % 2 == 0);
        assert_eq!(dropped + c.len(), 8);
        assert!(c.iter().all(|(_, k, _)| k % 2 == 0));
    }

    #[test]
    fn capacity_accessors() {
        let c = small();
        assert_eq!(c.num_sets(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn sets_are_independent_in_flat_layout() {
        // Fill two adjacent sets and verify each set's LRU decisions ignore
        // the other's state (guards the set-major slot/stamp indexing).
        let mut c = small();
        c.insert(0, 1, 1);
        c.insert(1, 2, 2);
        c.insert(0, 3, 3);
        c.insert(1, 4, 4);
        c.lookup(0, &1); // refresh set 0's key 1; set 1 untouched
        let ev0 = c.insert(0, 5, 5).unwrap();
        assert_eq!(ev0.key, 3);
        let ev1 = c.insert(1, 6, 6).unwrap();
        assert_eq!(ev1.key, 2, "set 1 LRU order unaffected by set 0 traffic");
    }
}
