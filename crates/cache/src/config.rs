//! Cache and hierarchy configuration.

use crate::ReplacementKind;
use asap_types::CACHE_LINE_SIZE;

/// Geometry and timing of a single cache level.
///
/// # Examples
///
/// ```
/// use asap_cache::CacheConfig;
/// // The paper's L1-D: 32 KiB, 8-way, 4 cycles (Table 5).
/// let l1 = CacheConfig::from_capacity("L1-D", 32 * 1024, 8, 4);
/// assert_eq!(l1.num_sets, 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in reports.
    pub name: &'static str,
    /// Number of sets (must be a power of two; the set index is taken from
    /// the low line-address bits as in real hardware).
    pub num_sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles, measured from the start of the access.
    pub latency: u64,
    /// Replacement policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Builds a config from total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is not a power of two or capacity is
    /// not an exact multiple of `ways * 64`.
    #[must_use]
    pub fn from_capacity(name: &'static str, bytes: u64, ways: usize, latency: u64) -> Self {
        let lines = bytes / CACHE_LINE_SIZE;
        assert_eq!(
            lines * CACHE_LINE_SIZE,
            bytes,
            "{name}: capacity must be a multiple of the line size"
        );
        let num_sets = (lines as usize) / ways;
        assert_eq!(
            num_sets * ways,
            lines as usize,
            "{name}: capacity/ways mismatch"
        );
        assert!(
            num_sets.is_power_of_two(),
            "{name}: set count must be a power of two"
        );
        Self {
            name,
            num_sets,
            ways,
            latency,
            replacement: ReplacementKind::Lru,
        }
    }

    /// Overrides the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementKind) -> Self {
        self.replacement = replacement;
        self
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.num_sets as u64 * self.ways as u64 * CACHE_LINE_SIZE
    }
}

/// Configuration of the full memory hierarchy (Table 5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// Number of L1-D miss-status-holding registers; ASAP prefetches are
    /// dropped (best-effort) when none are free (§3.4).
    pub mshr_entries: usize,
    /// Seed for replacement randomness (only used by `ReplacementKind::Random`).
    pub seed: u64,
}

impl HierarchyConfig {
    /// The paper's simulated Intel Broadwell-like hierarchy (Table 5):
    /// L1-D 32 KiB/8-way/4 cycles, L2 256 KiB/8-way/12 cycles,
    /// L3 20 MiB/20-way/40 cycles, memory 191 cycles.
    #[must_use]
    pub fn broadwell_like() -> Self {
        Self {
            l1: CacheConfig::from_capacity("L1-D", 32 * 1024, 8, 4),
            l2: CacheConfig::from_capacity("L2", 256 * 1024, 8, 12),
            l3: CacheConfig::from_capacity("L3", 20 * 1024 * 1024, 20, 40),
            memory_latency: 191,
            mshr_entries: 10,
            seed: 0,
        }
    }

    /// A tiny hierarchy for fast unit tests (64-line L1, 256-line L2,
    /// 1024-line L3, same latencies as Broadwell).
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        Self {
            l1: CacheConfig::from_capacity("L1-D", 64 * 64, 4, 4),
            l2: CacheConfig::from_capacity("L2", 256 * 64, 4, 12),
            l3: CacheConfig::from_capacity("L3", 1024 * 64, 4, 40),
            memory_latency: 191,
            mshr_entries: 10,
            seed: 0,
        }
    }

    /// Overrides the seed used for randomized replacement.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::broadwell_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_geometry_matches_table5() {
        let h = HierarchyConfig::broadwell_like();
        assert_eq!(h.l1.capacity_bytes(), 32 * 1024);
        assert_eq!(h.l1.ways, 8);
        assert_eq!(h.l1.latency, 4);
        assert_eq!(h.l2.capacity_bytes(), 256 * 1024);
        assert_eq!(h.l2.latency, 12);
        assert_eq!(h.l3.capacity_bytes(), 20 * 1024 * 1024);
        assert_eq!(h.l3.ways, 20);
        assert_eq!(h.l3.latency, 40);
        assert_eq!(h.memory_latency, 191);
    }

    #[test]
    fn from_capacity_derives_sets() {
        let c = CacheConfig::from_capacity("x", 64 * 1024, 16, 10);
        assert_eq!(c.num_sets, 64);
        assert_eq!(c.capacity_bytes(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_capacity_rejects_bad_sets() {
        // 20 MiB with 32 ways -> 10240 sets: not a power of two.
        let _ = CacheConfig::from_capacity("bad", 20 * 1024 * 1024, 32, 1);
    }

    #[test]
    fn replacement_override() {
        let c =
            CacheConfig::from_capacity("x", 4096, 4, 1).with_replacement(ReplacementKind::Random);
        assert_eq!(c.replacement, ReplacementKind::Random);
    }
}
