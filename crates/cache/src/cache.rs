//! A single physical-line cache level.

use crate::{CacheConfig, CacheStats, Eviction, SetAssoc};
use asap_types::CacheLineAddr;

/// One level of the cache hierarchy, indexed by physical cache-line address.
///
/// The model tracks tags only — the simulator never needs line *data*, since
/// page-table contents live in `asap-pt`'s simulated physical memory and the
/// hierarchy only decides service latency.
///
/// # Examples
///
/// ```
/// use asap_cache::{Cache, CacheConfig};
/// use asap_types::CacheLineAddr;
///
/// let mut l1 = Cache::new(CacheConfig::from_capacity("L1-D", 4096, 4, 4), 0);
/// let line = CacheLineAddr::new(123);
/// assert!(!l1.access(line));
/// l1.fill(line);
/// assert!(l1.access(line));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    array: SetAssoc<CacheLineAddr, ()>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig, seed: u64) -> Self {
        let array = SetAssoc::new(config.num_sets, config.ways, config.replacement, seed);
        Self {
            config,
            array,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, line: CacheLineAddr) -> usize {
        (line.raw() as usize) & (self.config.num_sets - 1)
    }

    /// Performs a demand lookup; returns whether it hit. Misses do **not**
    /// allocate — the hierarchy decides where fills go.
    pub fn access(&mut self, line: CacheLineAddr) -> bool {
        let set = self.set_of(line);
        let hit = self.array.lookup(set, &line).is_some();
        self.stats.record(hit);
        hit
    }

    /// Checks residency without disturbing replacement state or stats.
    #[must_use]
    pub fn contains(&self, line: CacheLineAddr) -> bool {
        self.array.probe(self.set_of(line), &line).is_some()
    }

    /// Installs a line, returning the evicted line if any.
    pub fn fill(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let set = self.set_of(line);
        self.stats.fills += 1;
        self.array
            .insert(set, line, ())
            .map(|Eviction { key, .. }| {
                self.stats.evictions += 1;
                key
            })
    }

    /// Removes a line if present.
    pub fn invalidate(&mut self, line: CacheLineAddr) -> bool {
        let set = self.set_of(line);
        self.array.invalidate(set, &line).is_some()
    }

    /// Empties the cache (stats are preserved).
    pub fn flush(&mut self) {
        self.array.flush();
    }

    /// Hit latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.array.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.array.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(
            CacheConfig {
                name: "t",
                num_sets: 2,
                ways: 2,
                latency: 4,
                replacement: crate::ReplacementKind::Lru,
            },
            0,
        )
    }

    #[test]
    fn miss_does_not_allocate() {
        let mut c = tiny();
        assert!(!c.access(CacheLineAddr::new(0)));
        assert!(!c.access(CacheLineAddr::new(0)), "still absent after miss");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        let line = CacheLineAddr::new(5);
        c.fill(line);
        assert!(c.access(line));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn conflict_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        assert_eq!(c.fill(CacheLineAddr::new(0)), None);
        assert_eq!(c.fill(CacheLineAddr::new(2)), None);
        let evicted = c.fill(CacheLineAddr::new(4)).expect("set full");
        assert_eq!(evicted, CacheLineAddr::new(0));
        assert!(c.contains(CacheLineAddr::new(2)));
        assert!(c.contains(CacheLineAddr::new(4)));
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.fill(CacheLineAddr::new(0)); // set 0
        c.fill(CacheLineAddr::new(1)); // set 1
        c.fill(CacheLineAddr::new(2)); // set 0
        c.fill(CacheLineAddr::new(3)); // set 1
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = tiny();
        let line = CacheLineAddr::new(9);
        c.fill(line);
        assert!(c.invalidate(line));
        assert!(!c.invalidate(line));
        c.fill(line);
        c.flush();
        assert!(c.is_empty());
    }
}
