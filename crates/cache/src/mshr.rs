//! Miss-status-holding registers (MSHRs).
//!
//! ASAP prefetches are buffered in the L1-D's MSHRs and are *best-effort*: a
//! prefetch is dropped when no MSHR is available (paper §3.4). A later demand
//! access to a line with an in-flight prefetch merges with the MSHR entry and
//! completes when the prefetch does — this is what turns the page walker's
//! serialized misses into overlapped ones.

use crate::ServedBy;
use asap_types::CacheLineAddr;

/// Outcome of attempting to register a prefetch in the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the miss completes at the given cycle.
    Issued {
        /// Absolute cycle at which the fill completes.
        completion: u64,
    },
    /// The line already had an in-flight entry; the request merged with it.
    Merged {
        /// Absolute cycle at which the existing fill completes.
        completion: u64,
    },
    /// No MSHR was free; the request must be dropped (best-effort prefetch).
    Full,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: CacheLineAddr,
    completion: u64,
    source: ServedBy,
}

/// A fixed-capacity file of in-flight misses.
///
/// # Examples
///
/// ```
/// use asap_cache::{MshrFile, MshrOutcome, ServedBy};
/// use asap_types::CacheLineAddr;
///
/// let mut mshrs = MshrFile::new(2);
/// let line = CacheLineAddr::new(1);
/// let out = mshrs.allocate(line, 100, 291, ServedBy::Memory);
/// assert_eq!(out, MshrOutcome::Issued { completion: 291 });
/// // The same line merges rather than taking a second entry.
/// let again = mshrs.allocate(line, 120, 400, ServedBy::Memory);
/// assert_eq!(again, MshrOutcome::Merged { completion: 291 });
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
}

impl MshrFile {
    /// Creates an empty file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Retires every entry whose fill completed at or before `now`.
    pub fn retire(&mut self, now: u64) {
        self.entries.retain(|e| e.completion > now);
    }

    /// Looks up an in-flight entry for `line`, retiring stale entries first.
    ///
    /// Returns the completion cycle and the hierarchy level the fill is
    /// coming from.
    pub fn in_flight(&mut self, line: CacheLineAddr, now: u64) -> Option<(u64, ServedBy)> {
        self.retire(now);
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| (e.completion, e.source))
    }

    /// Attempts to allocate an entry for a miss on `line` completing at
    /// `completion`, sourced from `source`.
    pub fn allocate(
        &mut self,
        line: CacheLineAddr,
        now: u64,
        completion: u64,
        source: ServedBy,
    ) -> MshrOutcome {
        self.retire(now);
        if let Some(e) = self.entries.iter().find(|e| e.line == line) {
            return MshrOutcome::Merged {
                completion: e.completion,
            };
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.push(Entry {
            line,
            completion,
            source,
        });
        MshrOutcome::Issued { completion }
    }

    /// Number of occupied registers (without retiring).
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.entries.len()
    }

    /// Total number of registers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all in-flight entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full() {
        let mut m = MshrFile::new(2);
        assert!(matches!(
            m.allocate(CacheLineAddr::new(1), 0, 191, ServedBy::Memory),
            MshrOutcome::Issued { .. }
        ));
        assert!(matches!(
            m.allocate(CacheLineAddr::new(2), 0, 191, ServedBy::Memory),
            MshrOutcome::Issued { .. }
        ));
        assert_eq!(
            m.allocate(CacheLineAddr::new(3), 0, 191, ServedBy::Memory),
            MshrOutcome::Full
        );
        assert_eq!(m.occupied(), 2);
    }

    #[test]
    fn retirement_frees_registers() {
        let mut m = MshrFile::new(1);
        m.allocate(CacheLineAddr::new(1), 0, 50, ServedBy::L3);
        assert_eq!(
            m.allocate(CacheLineAddr::new(2), 10, 60, ServedBy::L3),
            MshrOutcome::Full
        );
        // At cycle 50 the first fill has completed.
        assert!(matches!(
            m.allocate(CacheLineAddr::new(2), 50, 100, ServedBy::L3),
            MshrOutcome::Issued { .. }
        ));
    }

    #[test]
    fn in_flight_lookup() {
        let mut m = MshrFile::new(4);
        let line = CacheLineAddr::new(7);
        m.allocate(line, 0, 191, ServedBy::Memory);
        assert_eq!(m.in_flight(line, 100), Some((191, ServedBy::Memory)));
        assert_eq!(m.in_flight(line, 191), None, "retired at completion");
        assert_eq!(m.in_flight(CacheLineAddr::new(8), 0), None);
    }

    #[test]
    fn merge_preserves_original_completion() {
        let mut m = MshrFile::new(4);
        let line = CacheLineAddr::new(3);
        m.allocate(line, 0, 191, ServedBy::Memory);
        let out = m.allocate(line, 50, 300, ServedBy::Memory);
        assert_eq!(out, MshrOutcome::Merged { completion: 191 });
        assert_eq!(m.occupied(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut m = MshrFile::new(2);
        m.allocate(CacheLineAddr::new(1), 0, 10, ServedBy::L2);
        m.clear();
        assert_eq!(m.occupied(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
