//! The shared memory fabric of a (possibly multi-core) simulated machine.
//!
//! A [`CacheHierarchy`] owns an *internal* clock, which is the right model
//! for a single in-order core but breaks down when several cores — each
//! with its own notion of time — contend for one hierarchy. The
//! [`MemoryFabric`] is the multi-core view: the same caches, MSHR file and
//! (for a Victima-style backend) synthetic TLB-block lines, but with an
//! **explicitly timed** API — every request carries the issuing core's
//! local cycle count, and the fabric never keeps time of its own.
//!
//! [`SharedFabric`] is the handle cores actually hold: a cheaply clonable
//! reference (`Rc<RefCell<_>>`) to one fabric. A run is simulated on a
//! single host thread with deterministic core arbitration, so the shared
//! mutable state needs no locking — the interior mutability only expresses
//! that N per-core engines reference one memory system.
//!
//! The fabric can further be split into **NUMA nodes**
//! ([`MemoryFabric::configure_numa`]): physical windows register a home
//! node round-robin, each core's handle carries its node
//! ([`SharedFabric::for_node`]), and a DRAM-served access whose home
//! differs from the requester's pays an interconnect hop on top of the
//! memory latency. Unconfigured (the default), nothing changes — the
//! uniform-memory timing is bit-identical to the pre-NUMA fabric.
//!
//! # Examples
//!
//! ```
//! use asap_cache::{HierarchyConfig, ServedBy, SharedFabric};
//! use asap_types::CacheLineAddr;
//!
//! let fabric = SharedFabric::new(HierarchyConfig::broadwell_like());
//! let core0 = fabric.clone(); // a second core's handle to the SAME caches
//! let line = CacheLineAddr::new(0x40);
//! assert_eq!(fabric.access_at(line, 0).served_by, ServedBy::Memory);
//! // Core 0 finds the line core 1's miss just filled.
//! assert_eq!(core0.access_at(line, 500).served_by, ServedBy::L1);
//! assert_eq!(fabric.ports(), 2);
//! ```

use crate::{AccessResult, CacheHierarchy, HierarchyConfig, HierarchyStats, ServedBy};
use asap_types::CacheLineAddr;
use std::cell::RefCell;
use std::rc::Rc;

/// Interconnect-hop latency in cycles a DRAM access pays when the line's
/// home node differs from the requesting core's: remote DRAM at
/// `191 + 120 = 311` cycles against 191 local, the ~1.6× remote/local
/// ratio of a two-socket machine.
pub const NUMA_HOP_CYCLES: u64 = 120;

/// NUMA topology parameters for a [`MemoryFabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaConfig {
    /// Number of memory nodes (>= 2; a single node is simply uniform
    /// memory, i.e. no topology at all).
    pub nodes: usize,
    /// Extra cycles a DRAM-served access pays when the line's home node
    /// differs from the requester's.
    pub hop_cycles: u64,
}

impl NumaConfig {
    /// A symmetric topology of `nodes` nodes at the default hop latency.
    #[must_use]
    pub fn symmetric(nodes: usize) -> Self {
        Self {
            nodes,
            hop_cycles: NUMA_HOP_CYCLES,
        }
    }
}

/// DRAM-service counters split by locality (managed windows only; lines
/// outside every registered window — e.g. the legacy co-runner stream or
/// Victima's synthetic block lines — are treated as node-local).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NumaStats {
    /// DRAM serves whose home node matched the requester's.
    pub local_dram: u64,
    /// DRAM serves that paid the interconnect hop.
    pub remote_dram: u64,
}

impl asap_telemetry::Collect for NumaStats {
    fn collect(&self, prefix: &str, out: &mut asap_telemetry::MetricSet) {
        out.counter(
            format!("{prefix}local_dram_total"),
            "DRAM serves whose home node matched the requester's",
            self.local_dram,
        );
        out.counter(
            format!("{prefix}remote_dram_total"),
            "DRAM serves that paid the interconnect hop",
            self.remote_dram,
        );
    }
}

/// The NUMA side of the fabric: the topology, the physical windows with
/// their home nodes (kept sorted and disjoint for binary search), the
/// round-robin cursor the next registered window is assigned with, and the
/// locality counters.
#[derive(Debug, Clone)]
struct NumaState {
    config: NumaConfig,
    /// `(start_line, end_line, home_node)`, sorted by start.
    windows: Vec<(u64, u64, usize)>,
    next_node: usize,
    stats: NumaStats,
}

impl NumaState {
    /// The home node of `line`, if it falls inside a registered window.
    fn home_node(&self, line: CacheLineAddr) -> Option<usize> {
        let addr = line.raw();
        let idx = self
            .windows
            .partition_point(|&(start, _, _)| start <= addr)
            .checked_sub(1)?;
        let (_, end, node) = self.windows[idx];
        (addr < end).then_some(node)
    }
}

/// The shared memory-system layer all simulated cores reference: the
/// three-level cache hierarchy, DRAM, the MSHR file, and any synthetic
/// lines a backend installs (e.g. Victima TLB blocks). Purely
/// explicitly-timed — callers pass their local clock on every request.
#[derive(Debug, Clone)]
pub struct MemoryFabric {
    hierarchy: CacheHierarchy,
    /// `None` until [`MemoryFabric::configure_numa`] — the uniform-memory
    /// fast path stays byte-identical to the pre-NUMA fabric.
    numa: Option<NumaState>,
}

impl MemoryFabric {
    /// Builds an empty fabric from `config`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            hierarchy: CacheHierarchy::new(config),
            numa: None,
        }
    }

    /// Spreads the fabric's DRAM over `config.nodes` memory nodes. Windows
    /// registered afterwards with [`MemoryFabric::assign_window`] receive
    /// home nodes round-robin.
    ///
    /// # Panics
    ///
    /// Panics on fewer than two nodes — a one-node "topology" is uniform
    /// memory and must stay on the unconfigured fast path.
    pub fn configure_numa(&mut self, config: NumaConfig) {
        assert!(config.nodes >= 2, "a NUMA topology needs at least 2 nodes");
        self.numa = Some(NumaState {
            config,
            windows: Vec::new(),
            next_node: 0,
            stats: NumaStats::default(),
        });
    }

    /// Registers a physical window of `lines` cache lines starting at
    /// `start_line` and assigns it the next home node round-robin,
    /// returning that node. Models default first-touch-free page placement
    /// at datacenter scale: allocation classes spread across sockets, so
    /// every core ends up with a deterministic mix of local and remote
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics without a prior [`MemoryFabric::configure_numa`], or when
    /// the window overlaps one already registered.
    pub fn assign_window(&mut self, start_line: CacheLineAddr, lines: u64) -> usize {
        let numa = self.numa.as_mut().expect("configure_numa first");
        let node = numa.next_node;
        numa.next_node = (numa.next_node + 1) % numa.config.nodes;
        let start = start_line.raw();
        let end = start + lines;
        let idx = numa.windows.partition_point(|&(s, _, _)| s < start);
        let disjoint = (idx == 0 || numa.windows[idx - 1].1 <= start)
            && (idx == numa.windows.len() || end <= numa.windows[idx].0);
        assert!(disjoint, "NUMA windows must be disjoint");
        numa.windows.insert(idx, (start, end, node));
        node
    }

    /// The home node of `line`, when NUMA is configured and the line falls
    /// in a registered window.
    #[must_use]
    pub fn home_node(&self, line: CacheLineAddr) -> Option<usize> {
        self.numa.as_ref().and_then(|n| n.home_node(line))
    }

    /// A demand access issued at the caller's local cycle `now`.
    pub fn access_at(&mut self, line: CacheLineAddr, now: u64) -> AccessResult {
        self.access_from(line, now, 0)
    }

    /// A demand access issued at `now` by a core on `node`. When the line
    /// is served by DRAM and homed on a different node, the interconnect
    /// hop is added to the reported latency; merged accesses ride the fill
    /// already in flight and pay nothing extra.
    // asap-lint: hot-path
    pub fn access_from(&mut self, line: CacheLineAddr, now: u64, node: usize) -> AccessResult {
        let mut r = self.hierarchy.access_at(line, now);
        if let Some(numa) = self.numa.as_mut() {
            if r.served_by == ServedBy::Memory && !r.merged {
                if let Some(home) = numa.home_node(line) {
                    if home == node {
                        numa.stats.local_dram += 1;
                    } else {
                        numa.stats.remote_dram += 1;
                        r.latency += numa.config.hop_cycles;
                    }
                }
            }
        }
        r
    }

    /// A best-effort prefetch issued at `now`; `None` when dropped for
    /// lack of an MSHR.
    pub fn prefetch_at(&mut self, line: CacheLineAddr, now: u64) -> Option<u64> {
        self.hierarchy.prefetch_at(line, now)
    }

    /// Residency probe that disturbs nothing (no fills, no stats).
    #[must_use]
    pub fn source_of(&self, line: CacheLineAddr) -> ServedBy {
        self.hierarchy.source_of(line)
    }

    /// L1 hit latency (the floor for any demand access).
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.hierarchy.l1_latency()
    }

    /// L2 hit latency — what a cache-resident TLB-block lookup costs.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.hierarchy.l2_latency()
    }

    /// DRAM latency.
    #[must_use]
    pub fn memory_latency(&self) -> u64 {
        self.hierarchy.memory_latency()
    }

    /// Installs `line` into the L2 only (the Victima TLB-block insertion
    /// path; see [`CacheHierarchy::l2_install`]).
    pub fn l2_install(&mut self, line: CacheLineAddr) {
        self.hierarchy.l2_install(line);
    }

    /// Probes the L2 for `line`, updating recency on a hit.
    pub fn l2_lookup(&mut self, line: CacheLineAddr) -> bool {
        self.hierarchy.l2_lookup(line)
    }

    /// Whether the L2 currently holds `line` (no side effects).
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.hierarchy.l2_contains(line)
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&mut self, line: CacheLineAddr) {
        self.hierarchy.invalidate(line);
    }

    /// Accumulated hierarchy statistics (fabric-wide, across all cores).
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        *self.hierarchy.stats()
    }

    /// DRAM locality counters (zero until NUMA is configured).
    #[must_use]
    pub fn numa_stats(&self) -> NumaStats {
        self.numa.as_ref().map(|n| n.stats).unwrap_or_default()
    }

    /// Resets the fabric-wide statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
        if let Some(numa) = self.numa.as_mut() {
            numa.stats = NumaStats::default();
        }
    }
}

/// A core's handle to the one [`MemoryFabric`] of its machine.
///
/// Clone one handle per core; all clones reference the same caches. The
/// handle is single-threaded by design (`Rc`): a simulated machine lives
/// on one host thread, and determinism comes from the driver's fixed
/// arbitration order, not from locks.
///
/// Each handle also carries the NUMA node its core sits on (node 0 until
/// [`SharedFabric::for_node`]), so engines stay topology-oblivious: they
/// call [`SharedFabric::access_at`] as always, and the handle stamps the
/// requester's node onto the request.
#[derive(Debug, Clone)]
pub struct SharedFabric {
    fabric: Rc<RefCell<MemoryFabric>>,
    node: usize,
}

impl SharedFabric {
    /// Builds a fresh fabric from `config` and returns the first handle.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryFabric::new(config).into_shared()
    }

    /// How many handles (≈ attached cores) reference this fabric.
    #[must_use]
    pub fn ports(&self) -> usize {
        Rc::strong_count(&self.fabric)
    }

    /// A handle to the same fabric for a core on `node` — what the SMP
    /// assembly passes to each engine constructor on a NUMA machine.
    #[must_use]
    pub fn for_node(&self, node: usize) -> Self {
        Self {
            fabric: Rc::clone(&self.fabric),
            node,
        }
    }

    /// The NUMA node this handle's requests are stamped with.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Spreads the fabric's DRAM over NUMA nodes (see
    /// [`MemoryFabric::configure_numa`]).
    ///
    /// # Panics
    ///
    /// Panics on fewer than two nodes.
    pub fn configure_numa(&self, config: NumaConfig) {
        self.fabric.borrow_mut().configure_numa(config);
    }

    /// Registers a physical window and returns its round-robin home node
    /// (see [`MemoryFabric::assign_window`]).
    ///
    /// # Panics
    ///
    /// Panics without a prior [`SharedFabric::configure_numa`] or on an
    /// overlapping window.
    pub fn assign_window(&self, start_line: CacheLineAddr, lines: u64) -> usize {
        self.fabric.borrow_mut().assign_window(start_line, lines)
    }

    /// The home node of `line`, when registered.
    #[must_use]
    pub fn home_node(&self, line: CacheLineAddr) -> Option<usize> {
        self.fabric.borrow().home_node(line)
    }

    /// A demand access issued at the caller's local cycle `now`, stamped
    /// with this handle's node.
    // asap-lint: hot-path
    pub fn access_at(&self, line: CacheLineAddr, now: u64) -> AccessResult {
        self.fabric.borrow_mut().access_from(line, now, self.node)
    }

    /// A best-effort prefetch issued at `now`; `None` when dropped. The
    /// reported completion never includes an interconnect hop: a prefetch
    /// that lands hides the remote latency entirely (that is the point of
    /// prefetching); a demand access that misses it still pays the hop
    /// through [`SharedFabric::access_at`].
    pub fn prefetch_at(&self, line: CacheLineAddr, now: u64) -> Option<u64> {
        self.fabric.borrow_mut().prefetch_at(line, now)
    }

    /// Residency probe that disturbs nothing.
    #[must_use]
    pub fn source_of(&self, line: CacheLineAddr) -> ServedBy {
        self.fabric.borrow().source_of(line)
    }

    /// L1 hit latency.
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.fabric.borrow().l1_latency()
    }

    /// L2 hit latency.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.fabric.borrow().l2_latency()
    }

    /// DRAM latency.
    #[must_use]
    pub fn memory_latency(&self) -> u64 {
        self.fabric.borrow().memory_latency()
    }

    /// Installs `line` into the L2 only (Victima TLB-block insertion).
    pub fn l2_install(&self, line: CacheLineAddr) {
        self.fabric.borrow_mut().l2_install(line);
    }

    /// Probes the L2 for `line`, updating recency on a hit.
    pub fn l2_lookup(&self, line: CacheLineAddr) -> bool {
        self.fabric.borrow_mut().l2_lookup(line)
    }

    /// Whether the L2 currently holds `line`.
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.fabric.borrow().l2_contains(line)
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&self, line: CacheLineAddr) {
        self.fabric.borrow_mut().invalidate(line);
    }

    /// Fabric-wide hierarchy statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        self.fabric.borrow().stats()
    }

    /// Fabric-wide DRAM locality counters.
    #[must_use]
    pub fn numa_stats(&self) -> NumaStats {
        self.fabric.borrow().numa_stats()
    }

    /// Resets the fabric-wide statistics.
    pub fn reset_stats(&self) {
        self.fabric.borrow_mut().reset_stats();
    }
}

impl MemoryFabric {
    /// Wraps the fabric in a shareable handle (node 0).
    #[must_use]
    pub fn into_shared(self) -> SharedFabric {
        SharedFabric {
            fabric: Rc::new(RefCell::new(self)),
            node: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyConfig;

    #[test]
    fn handles_share_one_hierarchy() {
        let a = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let b = a.clone();
        assert_eq!(a.ports(), 2);
        let line = CacheLineAddr::new(0x7);
        assert_eq!(a.access_at(line, 0).served_by, ServedBy::Memory);
        assert_eq!(b.access_at(line, 300).served_by, ServedBy::L1);
        assert_eq!(b.stats().levels[0].hits, 1);
    }

    #[test]
    fn fabric_is_explicitly_timed() {
        // Two "cores" at different local times merge on the same MSHR.
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let line = CacheLineAddr::new(0x9);
        let completion = f.prefetch_at(line, 0).expect("mshr available");
        let r = f.access_at(line, completion / 2);
        assert!(r.merged);
        assert_eq!(r.latency, completion - completion / 2);
    }

    #[test]
    fn remote_dram_pays_the_interconnect_hop() {
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        f.configure_numa(NumaConfig::symmetric(2));
        // Two windows: round-robin puts the first on node 0, second on 1.
        assert_eq!(f.assign_window(CacheLineAddr::new(0), 1 << 20), 0);
        assert_eq!(f.assign_window(CacheLineAddr::new(1 << 20), 1 << 20), 1);
        let core1 = f.for_node(1);
        assert_eq!(core1.node(), 1);
        assert_eq!(f.node(), 0);

        let local = CacheLineAddr::new(0x40); // homed on node 0
        let remote = CacheLineAddr::new((1 << 20) + 0x40); // homed on node 1
        assert_eq!(f.home_node(local), Some(0));
        assert_eq!(f.home_node(remote), Some(1));
        // Node 0 touching its own window: plain DRAM latency.
        let r = f.access_at(local, 0);
        assert_eq!(r.served_by, ServedBy::Memory);
        assert_eq!(r.latency, f.memory_latency());
        // Node 0 touching node 1's window: DRAM + hop.
        let r = f.access_at(remote, 0);
        assert_eq!(r.latency, f.memory_latency() + NUMA_HOP_CYCLES);
        // Node 1 touching its own window's next line: local again.
        let r = core1.access_at(CacheLineAddr::new((1 << 20) + 0x80), 0);
        assert_eq!(r.latency, f.memory_latency());
        assert_eq!(
            f.numa_stats(),
            NumaStats {
                local_dram: 2,
                remote_dram: 1
            }
        );
        // Cache hits never pay the hop, wherever the line is homed.
        let r = f.access_at(remote, 10_000);
        assert_ne!(r.served_by, ServedBy::Memory);
        assert_eq!(f.numa_stats().remote_dram, 1);
        // Unregistered lines (co-runner traffic, synthetic blocks) are
        // node-local by definition.
        assert_eq!(f.home_node(CacheLineAddr::new(1 << 40)), None);
        f.reset_stats();
        assert_eq!(f.numa_stats(), NumaStats::default());
    }

    #[test]
    fn merged_accesses_ride_the_inflight_fill_without_a_hop() {
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        f.configure_numa(NumaConfig::symmetric(2));
        f.assign_window(CacheLineAddr::new(0), 1 << 20);
        f.assign_window(CacheLineAddr::new(1 << 20), 1 << 20);
        let remote = CacheLineAddr::new((1 << 20) + 0x40);
        let completion = f.prefetch_at(remote, 0).expect("mshr available");
        let r = f.access_at(remote, completion / 2);
        assert!(r.merged);
        assert_eq!(r.latency, completion - completion / 2);
        assert_eq!(f.numa_stats(), NumaStats::default());
    }

    #[test]
    fn cross_node_merge_charges_neither_dram_counter() {
        // Core 1 prefetches a line homed on node 0; core 0 — for which
        // that line is LOCAL — demand-accesses it mid-flight and merges
        // on the MSHR. Only one DRAM transaction ever happens, and it is
        // a prefetch fill, so the merged demand must increment neither
        // local_dram nor remote_dram and pay no hop. A later genuinely
        // remote demand still counts, proving the counters are armed.
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        f.configure_numa(NumaConfig::symmetric(2));
        f.assign_window(CacheLineAddr::new(0), 1 << 20);
        f.assign_window(CacheLineAddr::new(1 << 20), 1 << 20);
        let core1 = f.for_node(1);
        let local = CacheLineAddr::new(0x40); // homed on node 0

        let completion = core1.prefetch_at(local, 0).expect("mshr available");
        let merged = f.access_at(local, completion / 2);
        assert!(merged.merged);
        assert_eq!(merged.latency, completion - completion / 2);
        assert_eq!(
            f.numa_stats(),
            NumaStats::default(),
            "merged demand over a prefetch fill counts no DRAM locality"
        );

        let remote = CacheLineAddr::new((1 << 20) + 0x40); // homed on node 1
        let demand = f.access_at(remote, 0);
        assert_eq!(demand.served_by, ServedBy::Memory);
        assert_eq!(demand.latency, f.memory_latency() + NUMA_HOP_CYCLES);
        assert_eq!(
            f.numa_stats(),
            NumaStats {
                local_dram: 0,
                remote_dram: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_numa_windows_are_rejected() {
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        f.configure_numa(NumaConfig::symmetric(2));
        f.assign_window(CacheLineAddr::new(0), 1 << 20);
        f.assign_window(CacheLineAddr::new(1 << 10), 1 << 20);
    }

    #[test]
    fn block_line_api_reaches_the_l2() {
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let line = CacheLineAddr::new(1 << 62);
        assert!(!f.l2_contains(line));
        f.l2_install(line);
        assert!(f.l2_contains(line));
        assert!(f.l2_lookup(line));
        f.invalidate(line);
        assert!(!f.l2_contains(line));
    }
}
