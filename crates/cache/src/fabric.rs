//! The shared memory fabric of a (possibly multi-core) simulated machine.
//!
//! A [`CacheHierarchy`] owns an *internal* clock, which is the right model
//! for a single in-order core but breaks down when several cores — each
//! with its own notion of time — contend for one hierarchy. The
//! [`MemoryFabric`] is the multi-core view: the same caches, MSHR file and
//! (for a Victima-style backend) synthetic TLB-block lines, but with an
//! **explicitly timed** API — every request carries the issuing core's
//! local cycle count, and the fabric never keeps time of its own.
//!
//! [`SharedFabric`] is the handle cores actually hold: a cheaply clonable
//! reference (`Rc<RefCell<_>>`) to one fabric. A run is simulated on a
//! single host thread with deterministic core arbitration, so the shared
//! mutable state needs no locking — the interior mutability only expresses
//! that N per-core engines reference one memory system.
//!
//! # Examples
//!
//! ```
//! use asap_cache::{HierarchyConfig, ServedBy, SharedFabric};
//! use asap_types::CacheLineAddr;
//!
//! let fabric = SharedFabric::new(HierarchyConfig::broadwell_like());
//! let core0 = fabric.clone(); // a second core's handle to the SAME caches
//! let line = CacheLineAddr::new(0x40);
//! assert_eq!(fabric.access_at(line, 0).served_by, ServedBy::Memory);
//! // Core 0 finds the line core 1's miss just filled.
//! assert_eq!(core0.access_at(line, 500).served_by, ServedBy::L1);
//! assert_eq!(fabric.ports(), 2);
//! ```

use crate::{AccessResult, CacheHierarchy, HierarchyConfig, HierarchyStats, ServedBy};
use asap_types::CacheLineAddr;
use std::cell::RefCell;
use std::rc::Rc;

/// The shared memory-system layer all simulated cores reference: the
/// three-level cache hierarchy, DRAM, the MSHR file, and any synthetic
/// lines a backend installs (e.g. Victima TLB blocks). Purely
/// explicitly-timed — callers pass their local clock on every request.
#[derive(Debug, Clone)]
pub struct MemoryFabric {
    hierarchy: CacheHierarchy,
}

impl MemoryFabric {
    /// Builds an empty fabric from `config`.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            hierarchy: CacheHierarchy::new(config),
        }
    }

    /// A demand access issued at the caller's local cycle `now`.
    pub fn access_at(&mut self, line: CacheLineAddr, now: u64) -> AccessResult {
        self.hierarchy.access_at(line, now)
    }

    /// A best-effort prefetch issued at `now`; `None` when dropped for
    /// lack of an MSHR.
    pub fn prefetch_at(&mut self, line: CacheLineAddr, now: u64) -> Option<u64> {
        self.hierarchy.prefetch_at(line, now)
    }

    /// Residency probe that disturbs nothing (no fills, no stats).
    #[must_use]
    pub fn source_of(&self, line: CacheLineAddr) -> ServedBy {
        self.hierarchy.source_of(line)
    }

    /// L1 hit latency (the floor for any demand access).
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.hierarchy.l1_latency()
    }

    /// L2 hit latency — what a cache-resident TLB-block lookup costs.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.hierarchy.l2_latency()
    }

    /// DRAM latency.
    #[must_use]
    pub fn memory_latency(&self) -> u64 {
        self.hierarchy.memory_latency()
    }

    /// Installs `line` into the L2 only (the Victima TLB-block insertion
    /// path; see [`CacheHierarchy::l2_install`]).
    pub fn l2_install(&mut self, line: CacheLineAddr) {
        self.hierarchy.l2_install(line);
    }

    /// Probes the L2 for `line`, updating recency on a hit.
    pub fn l2_lookup(&mut self, line: CacheLineAddr) -> bool {
        self.hierarchy.l2_lookup(line)
    }

    /// Whether the L2 currently holds `line` (no side effects).
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.hierarchy.l2_contains(line)
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&mut self, line: CacheLineAddr) {
        self.hierarchy.invalidate(line);
    }

    /// Accumulated hierarchy statistics (fabric-wide, across all cores).
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        *self.hierarchy.stats()
    }

    /// Resets the fabric-wide statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
    }
}

/// A core's handle to the one [`MemoryFabric`] of its machine.
///
/// Clone one handle per core; all clones reference the same caches. The
/// handle is single-threaded by design (`Rc`): a simulated machine lives
/// on one host thread, and determinism comes from the driver's fixed
/// arbitration order, not from locks.
#[derive(Debug, Clone)]
pub struct SharedFabric(Rc<RefCell<MemoryFabric>>);

impl SharedFabric {
    /// Builds a fresh fabric from `config` and returns the first handle.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        MemoryFabric::new(config).into_shared()
    }

    /// How many handles (≈ attached cores) reference this fabric.
    #[must_use]
    pub fn ports(&self) -> usize {
        Rc::strong_count(&self.0)
    }

    /// A demand access issued at the caller's local cycle `now`.
    pub fn access_at(&self, line: CacheLineAddr, now: u64) -> AccessResult {
        self.0.borrow_mut().access_at(line, now)
    }

    /// A best-effort prefetch issued at `now`; `None` when dropped.
    pub fn prefetch_at(&self, line: CacheLineAddr, now: u64) -> Option<u64> {
        self.0.borrow_mut().prefetch_at(line, now)
    }

    /// Residency probe that disturbs nothing.
    #[must_use]
    pub fn source_of(&self, line: CacheLineAddr) -> ServedBy {
        self.0.borrow().source_of(line)
    }

    /// L1 hit latency.
    #[must_use]
    pub fn l1_latency(&self) -> u64 {
        self.0.borrow().l1_latency()
    }

    /// L2 hit latency.
    #[must_use]
    pub fn l2_latency(&self) -> u64 {
        self.0.borrow().l2_latency()
    }

    /// DRAM latency.
    #[must_use]
    pub fn memory_latency(&self) -> u64 {
        self.0.borrow().memory_latency()
    }

    /// Installs `line` into the L2 only (Victima TLB-block insertion).
    pub fn l2_install(&self, line: CacheLineAddr) {
        self.0.borrow_mut().l2_install(line);
    }

    /// Probes the L2 for `line`, updating recency on a hit.
    pub fn l2_lookup(&self, line: CacheLineAddr) -> bool {
        self.0.borrow_mut().l2_lookup(line)
    }

    /// Whether the L2 currently holds `line`.
    #[must_use]
    pub fn l2_contains(&self, line: CacheLineAddr) -> bool {
        self.0.borrow().l2_contains(line)
    }

    /// Invalidates a line everywhere.
    pub fn invalidate(&self, line: CacheLineAddr) {
        self.0.borrow_mut().invalidate(line);
    }

    /// Fabric-wide hierarchy statistics.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        self.0.borrow().stats()
    }

    /// Resets the fabric-wide statistics.
    pub fn reset_stats(&self) {
        self.0.borrow_mut().reset_stats();
    }
}

impl MemoryFabric {
    /// Wraps the fabric in a shareable handle.
    #[must_use]
    pub fn into_shared(self) -> SharedFabric {
        SharedFabric(Rc::new(RefCell::new(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyConfig;

    #[test]
    fn handles_share_one_hierarchy() {
        let a = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let b = a.clone();
        assert_eq!(a.ports(), 2);
        let line = CacheLineAddr::new(0x7);
        assert_eq!(a.access_at(line, 0).served_by, ServedBy::Memory);
        assert_eq!(b.access_at(line, 300).served_by, ServedBy::L1);
        assert_eq!(b.stats().levels[0].hits, 1);
    }

    #[test]
    fn fabric_is_explicitly_timed() {
        // Two "cores" at different local times merge on the same MSHR.
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let line = CacheLineAddr::new(0x9);
        let completion = f.prefetch_at(line, 0).expect("mshr available");
        let r = f.access_at(line, completion / 2);
        assert!(r.merged);
        assert_eq!(r.latency, completion - completion / 2);
    }

    #[test]
    fn block_line_api_reaches_the_l2() {
        let f = SharedFabric::new(HierarchyConfig::tiny_for_tests());
        let line = CacheLineAddr::new(1 << 62);
        assert!(!f.l2_contains(line));
        f.l2_install(line);
        assert!(f.l2_contains(line));
        assert!(f.l2_lookup(line));
        f.invalidate(line);
        assert!(!f.l2_contains(line));
    }
}
