//! Replacement policies for set-associative structures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The replacement policy used by a set-associative structure.
///
/// LRU is the paper's implicit default for caches and TLBs; tree-PLRU and
/// random are provided for the replacement-policy ablation documented in
/// DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used via per-way recency stamps.
    #[default]
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// Uniform random victim selection (deterministically seeded).
    Random,
}

impl core::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("LRU"),
            ReplacementKind::TreePlru => f.write_str("tree-PLRU"),
            ReplacementKind::Random => f.write_str("random"),
        }
    }
}

/// Structure-wide replacement state, flattened across all sets: one
/// contiguous stamp array (LRU) or bit array (tree-PLRU) instead of a heap
/// allocation per set, so the hot lookup/insert paths touch a single cache
/// line per set rather than chasing a per-set `Vec`.
///
/// Decisions are bit-identical to the old per-set representation: each
/// set's state occupies its own `set * ways ..` slice (LRU) or `bits[set]`
/// word (tree-PLRU), and the victim/touch logic over that slice is
/// unchanged.
#[derive(Debug, Clone)]
pub(crate) enum PolicyState {
    Lru { stamps: Vec<u64> },
    TreePlru { bits: Vec<u64> },
    Random,
}

impl PolicyState {
    pub(crate) fn new(kind: ReplacementKind, num_sets: usize, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => PolicyState::Lru {
                stamps: vec![0; num_sets * ways],
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {ways}"
                );
                PolicyState::TreePlru {
                    bits: vec![0; num_sets],
                }
            }
            ReplacementKind::Random => PolicyState::Random,
        }
    }

    /// Records a use of `way` in `set` at logical time `stamp`.
    pub(crate) fn touch(&mut self, set: usize, ways: usize, way: usize, stamp: u64) {
        match self {
            PolicyState::Lru { stamps } => stamps[set * ways + way] = stamp,
            PolicyState::TreePlru { bits } => {
                // Walk from the root, flipping each internal node away from
                // the touched way.
                let bits = &mut bits[set];
                let mut node = 1usize;
                let levels = ways.trailing_zeros();
                for level in (0..levels).rev() {
                    let bit = (way >> level) & 1;
                    if bit == 0 {
                        *bits |= 1 << node; // point away: towards right
                    } else {
                        *bits &= !(1 << node); // point towards left
                    }
                    node = node * 2 + bit;
                }
            }
            PolicyState::Random => {}
        }
    }

    /// Chooses a victim way in `set` among `ways` candidates.
    pub(crate) fn victim(&self, set: usize, ways: usize, rng: &mut SmallRng) -> usize {
        match self {
            PolicyState::Lru { stamps } => stamps[set * ways..(set + 1) * ways]
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(w, _)| w)
                .expect("non-empty set"),
            PolicyState::TreePlru { bits } => {
                let bits = bits[set];
                let mut node = 1usize;
                let levels = ways.trailing_zeros();
                let mut way = 0usize;
                for _ in 0..levels {
                    let dir = ((bits >> node) & 1) as usize;
                    way = way * 2 + dir;
                    node = node * 2 + dir;
                }
                way
            }
            PolicyState::Random => rng.gen_range(0..ways),
        }
    }
}

/// A deterministic RNG for replacement decisions; seeded per structure so
/// simulations are exactly reproducible.
pub(crate) fn policy_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let mut p = PolicyState::new(ReplacementKind::Lru, 2, 4);
        let mut rng = policy_rng(0);
        for (way, t) in [(0, 10), (1, 5), (2, 20), (3, 15)] {
            p.touch(1, 4, way, t);
        }
        assert_eq!(p.victim(1, 4, &mut rng), 1);
        p.touch(1, 4, 1, 30);
        assert_eq!(p.victim(1, 4, &mut rng), 0);
        // The untouched set 0 is independent: all-zero stamps pick way 0.
        assert_eq!(p.victim(0, 4, &mut rng), 0);
    }

    #[test]
    fn tree_plru_avoids_recent() {
        let mut p = PolicyState::new(ReplacementKind::TreePlru, 1, 4);
        let mut rng = policy_rng(0);
        // After touching way 0, the victim must not be way 0.
        p.touch(0, 4, 0, 1);
        assert_ne!(p.victim(0, 4, &mut rng), 0);
        // Touch everything; victim is still a valid way.
        for w in 0..4 {
            p.touch(0, 4, w, 2);
        }
        assert!(p.victim(0, 4, &mut rng) < 4);
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeatedly touching the current victim must visit every way.
        let mut p = PolicyState::new(ReplacementKind::TreePlru, 1, 8);
        let mut rng = policy_rng(0);
        let mut seen = std::collections::HashSet::new();
        for t in 0..8 {
            let v = p.victim(0, 8, &mut rng);
            seen.insert(v);
            p.touch(0, 8, v, t);
        }
        assert_eq!(seen.len(), 8, "PLRU failed to cycle: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two() {
        let _ = PolicyState::new(ReplacementKind::TreePlru, 1, 6);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = PolicyState::new(ReplacementKind::Random, 1, 8);
        let seq1: Vec<_> = {
            let mut rng = policy_rng(7);
            (0..16).map(|_| p.victim(0, 8, &mut rng)).collect()
        };
        let seq2: Vec<_> = {
            let mut rng = policy_rng(7);
            (0..16).map(|_| p.victim(0, 8, &mut rng)).collect()
        };
        assert_eq!(seq1, seq2);
        assert!(seq1.iter().all(|w| *w < 8));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ReplacementKind::Lru.to_string(), "LRU");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-PLRU");
        assert_eq!(ReplacementKind::Random.to_string(), "random");
    }
}
