//! Replacement policies for set-associative structures.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The replacement policy used by a set-associative structure.
///
/// LRU is the paper's implicit default for caches and TLBs; tree-PLRU and
/// random are provided for the replacement-policy ablation documented in
/// DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used via per-way recency stamps.
    #[default]
    Lru,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
    /// Uniform random victim selection (deterministically seeded).
    Random,
}

impl core::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplacementKind::Lru => f.write_str("LRU"),
            ReplacementKind::TreePlru => f.write_str("tree-PLRU"),
            ReplacementKind::Random => f.write_str("random"),
        }
    }
}

/// Per-set replacement state; one instance per set.
#[derive(Debug, Clone)]
pub(crate) enum SetPolicy {
    Lru { stamps: Vec<u64> },
    TreePlru { bits: u64, ways: usize },
    Random,
}

impl SetPolicy {
    pub(crate) fn new(kind: ReplacementKind, ways: usize) -> Self {
        match kind {
            ReplacementKind::Lru => SetPolicy::Lru {
                stamps: vec![0; ways],
            },
            ReplacementKind::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {ways}"
                );
                SetPolicy::TreePlru { bits: 0, ways }
            }
            ReplacementKind::Random => SetPolicy::Random,
        }
    }

    /// Records a use of `way` at logical time `stamp`.
    pub(crate) fn touch(&mut self, way: usize, stamp: u64) {
        match self {
            SetPolicy::Lru { stamps } => stamps[way] = stamp,
            SetPolicy::TreePlru { bits, ways } => {
                // Walk from the root, flipping each internal node away from
                // the touched way.
                let mut node = 1usize;
                let levels = ways.trailing_zeros();
                for level in (0..levels).rev() {
                    let bit = (way >> level) & 1;
                    if bit == 0 {
                        *bits |= 1 << node; // point away: towards right
                    } else {
                        *bits &= !(1 << node); // point towards left
                    }
                    node = node * 2 + bit;
                }
            }
            SetPolicy::Random => {}
        }
    }

    /// Chooses a victim way among `ways` candidates.
    pub(crate) fn victim(&self, ways: usize, rng: &mut SmallRng) -> usize {
        match self {
            SetPolicy::Lru { stamps } => stamps
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(w, _)| w)
                .expect("non-empty set"),
            SetPolicy::TreePlru { bits, ways } => {
                let mut node = 1usize;
                let levels = ways.trailing_zeros();
                let mut way = 0usize;
                for _ in 0..levels {
                    let dir = ((bits >> node) & 1) as usize;
                    way = way * 2 + dir;
                    node = node * 2 + dir;
                }
                way
            }
            SetPolicy::Random => rng.gen_range(0..ways),
        }
    }
}

/// A deterministic RNG for replacement decisions; seeded per structure so
/// simulations are exactly reproducible.
pub(crate) fn policy_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let mut p = SetPolicy::new(ReplacementKind::Lru, 4);
        let mut rng = policy_rng(0);
        for (way, t) in [(0, 10), (1, 5), (2, 20), (3, 15)] {
            p.touch(way, t);
        }
        assert_eq!(p.victim(4, &mut rng), 1);
        p.touch(1, 30);
        assert_eq!(p.victim(4, &mut rng), 0);
    }

    #[test]
    fn tree_plru_avoids_recent() {
        let mut p = SetPolicy::new(ReplacementKind::TreePlru, 4);
        let mut rng = policy_rng(0);
        // After touching way 0, the victim must not be way 0.
        p.touch(0, 1);
        assert_ne!(p.victim(4, &mut rng), 0);
        // Touch everything; victim is still a valid way.
        for w in 0..4 {
            p.touch(w, 2);
        }
        assert!(p.victim(4, &mut rng) < 4);
    }

    #[test]
    fn tree_plru_cycles_through_all_ways() {
        // Repeatedly touching the current victim must visit every way.
        let mut p = SetPolicy::new(ReplacementKind::TreePlru, 8);
        let mut rng = policy_rng(0);
        let mut seen = std::collections::HashSet::new();
        for t in 0..8 {
            let v = p.victim(8, &mut rng);
            seen.insert(v);
            p.touch(v, t);
        }
        assert_eq!(seen.len(), 8, "PLRU failed to cycle: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_non_power_of_two() {
        let _ = SetPolicy::new(ReplacementKind::TreePlru, 6);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = SetPolicy::new(ReplacementKind::Random, 8);
        let seq1: Vec<_> = {
            let mut rng = policy_rng(7);
            (0..16).map(|_| p.victim(8, &mut rng)).collect()
        };
        let seq2: Vec<_> = {
            let mut rng = policy_rng(7);
            (0..16).map(|_| p.victim(8, &mut rng)).collect()
        };
        assert_eq!(seq1, seq2);
        assert!(seq1.iter().all(|w| *w < 8));
    }

    #[test]
    fn kind_display() {
        assert_eq!(ReplacementKind::Lru.to_string(), "LRU");
        assert_eq!(ReplacementKind::TreePlru.to_string(), "tree-PLRU");
        assert_eq!(ReplacementKind::Random.to_string(), "random");
    }
}
