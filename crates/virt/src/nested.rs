//! The two-dimensional page walk (paper Fig. 7).

use crate::Ept;
use asap_pt::{Pte, Translation, WalkSource};
use asap_types::{PhysAddr, PtLevel, VirtAddr};

/// Which dimension an access belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A guest page-table node read (accesses 5, 10, 15, 20 in Fig. 7).
    Guest,
    /// A host page-table node read within a 1D walk.
    Host,
}

/// One access of the 2D walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedStep {
    /// Guest or host dimension.
    pub dim: Dim,
    /// The page-table level read *within its dimension*.
    pub level: PtLevel,
    /// For host steps: the guest level whose node translation this 1D walk
    /// serves; `None` for the final data-address walk (accesses 21–24).
    /// For guest steps: the step's own level.
    pub for_guest_level: Option<PtLevel>,
    /// Host-physical address of the 8-byte entry read — what the memory
    /// hierarchy sees.
    pub host_entry_addr: PhysAddr,
    /// The guest-physical address this access helps translate: for host
    /// steps, the gPA their 1D walk is resolving (the input to host-ASAP
    /// base-plus-offset arithmetic and to the host PWC tags); for guest
    /// steps, the gPA of the entry being read.
    pub translating_gpa: PhysAddr,
    /// The entry value observed.
    pub entry: Pte,
}

/// Outcome of a nested walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedOutcome {
    /// Full translation: the guest mapping and the final host-physical
    /// address of the data.
    Mapped {
        /// The guest-dimension translation (gVA page → guest frame).
        guest: Translation,
        /// Host-physical address of the data.
        data_hpa: PhysAddr,
    },
    /// A guest-dimension fault (guest page not mapped) at the given level.
    GuestFault {
        /// Guest level holding the not-present entry.
        level: PtLevel,
    },
    /// A host-dimension fault (gPA not backed) while serving the given
    /// guest level (`None` = final data walk).
    HostFault {
        /// The guest level whose node translation faulted.
        for_guest_level: Option<PtLevel>,
    },
}

/// The full record of one 2D walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedWalkTrace {
    /// The guest virtual address.
    pub va: VirtAddr,
    /// All accesses in Fig. 7 order.
    pub steps: Vec<NestedStep>,
    /// How the walk ended.
    pub outcome: NestedOutcome,
}

impl NestedWalkTrace {
    /// Whether the walk produced a full translation.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        matches!(self.outcome, NestedOutcome::Mapped { .. })
    }

    /// The final data host-physical address, if mapped.
    #[must_use]
    pub fn data_hpa(&self) -> Option<PhysAddr> {
        match self.outcome {
            NestedOutcome::Mapped { data_hpa, .. } => Some(data_hpa),
            _ => None,
        }
    }

    /// The guest translation, if mapped.
    #[must_use]
    pub fn guest_translation(&self) -> Option<Translation> {
        match self.outcome {
            NestedOutcome::Mapped { guest, .. } => Some(guest),
            _ => None,
        }
    }

    /// Steps in the guest dimension (4 on a successful 4-level walk).
    pub fn guest_steps(&self) -> impl Iterator<Item = &NestedStep> {
        self.steps.iter().filter(|s| s.dim == Dim::Guest)
    }

    /// Steps in the host dimension.
    pub fn host_steps(&self) -> impl Iterator<Item = &NestedStep> {
        self.steps.iter().filter(|s| s.dim == Dim::Host)
    }
}

/// Executes 2D walks, lazily backing guest-physical pages in the EPT (the
/// hypervisor's fault-in path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NestedWalker;

impl NestedWalker {
    /// Performs the 2D walk of Fig. 7 for `va`.
    ///
    /// `guest` supplies the guest-dimension walk (the radix tables or the
    /// process' flat mirror — equivalent by the differential harness);
    /// `ept` supplies and lazily extends the host dimension.
    #[must_use]
    pub fn walk(guest: &dyn WalkSource, ept: &mut Ept, va: VirtAddr) -> NestedWalkTrace {
        let mut steps = Vec::with_capacity(24);
        if !guest.mode().contains(va) {
            return NestedWalkTrace {
                va,
                steps,
                outcome: NestedOutcome::GuestFault {
                    level: guest.mode().root_level(),
                },
            };
        }
        let gwalk = guest.walk_fixed(va);
        for gstep in gwalk.steps() {
            let g_level = gstep.level;
            // Guest-physical address of the gPT entry to read.
            let entry_gpa = gstep.entry_addr;
            // 1D host walk translating that gPA (accesses 1-4, 6-9, ...).
            let Some(entry_hpa) = Self::host_1d(ept, entry_gpa, Some(g_level), &mut steps) else {
                return NestedWalkTrace {
                    va,
                    steps,
                    outcome: NestedOutcome::HostFault {
                        for_guest_level: Some(g_level),
                    },
                };
            };
            // The gPT node read itself (access 5, 10, 15, 20).
            let entry = gstep.entry;
            steps.push(NestedStep {
                dim: Dim::Guest,
                level: g_level,
                for_guest_level: Some(g_level),
                host_entry_addr: entry_hpa,
                translating_gpa: entry_gpa,
                entry,
            });
            if !entry.is_present() {
                return NestedWalkTrace {
                    va,
                    steps,
                    outcome: NestedOutcome::GuestFault { level: g_level },
                };
            }
            if g_level == PtLevel::Pl1 || entry.is_large_leaf() {
                let size =
                    asap_types::PageSize::from_leaf_level(g_level).expect("leaf at PL1/PL2/PL3");
                let guest_t = Translation {
                    frame: entry.frame(),
                    size,
                    flags: entry.flags(),
                };
                // Final host walk for the data address (accesses 21-24).
                let data_gpa = guest_t.phys_addr(va);
                let Some(data_hpa) = Self::host_1d(ept, data_gpa, None, &mut steps) else {
                    return NestedWalkTrace {
                        va,
                        steps,
                        outcome: NestedOutcome::HostFault {
                            for_guest_level: None,
                        },
                    };
                };
                return NestedWalkTrace {
                    va,
                    steps,
                    outcome: NestedOutcome::Mapped {
                        guest: guest_t,
                        data_hpa,
                    },
                };
            }
        }
        unreachable!("guest walk terminates at PL1 or a leaf");
    }

    /// One 1D host walk: appends its steps and returns the host-physical
    /// translation of `gpa`. Backs the page lazily (hypervisor fault-in).
    fn host_1d(
        ept: &mut Ept,
        gpa: PhysAddr,
        for_guest_level: Option<PtLevel>,
        steps: &mut Vec<NestedStep>,
    ) -> Option<PhysAddr> {
        ept.ensure_mapped(gpa);
        let trace = ept.walk_fixed(gpa);
        for s in trace.steps() {
            steps.push(NestedStep {
                dim: Dim::Host,
                level: s.level,
                for_guest_level,
                host_entry_addr: s.entry_addr,
                translating_gpa: gpa,
                entry: s.entry,
            });
        }
        let t = trace.translation()?;
        Some(t.phys_addr(Ept::gpa_as_va(gpa)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EptConfig;
    use asap_os::{AsapOsConfig, Process, ProcessConfig, VmaKind};
    use asap_pt::RadixSource;
    use asap_types::{Asid, ByteSize};

    fn setup(guest_asap: AsapOsConfig, ept_cfg: EptConfig) -> (Process, Ept, VirtAddr) {
        let mut guest = Process::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(32))
                .with_asap(guest_asap)
                .with_compact_phys()
                .with_seed(11),
        );
        let va = guest.vma_of_kind(VmaKind::Heap).unwrap().start();
        guest.touch(va).unwrap();
        (guest, Ept::new(ept_cfg), va)
    }

    #[test]
    fn full_2d_walk_is_24_accesses() {
        let (guest, mut ept, va) = setup(AsapOsConfig::disabled(), EptConfig::default());
        let trace = NestedWalker::walk(
            &RadixSource {
                mem: guest.mem(),
                pt: guest.page_table(),
            },
            &mut ept,
            va,
        );
        assert!(trace.is_mapped());
        assert_eq!(trace.steps.len(), 24);
        assert_eq!(trace.guest_steps().count(), 4);
        assert_eq!(trace.host_steps().count(), 20);
        // Fig. 7 ordering: 4 host steps, then a guest step, repeated; the
        // final 4 host steps translate the data address.
        for (i, chunk) in trace.steps.chunks(5).enumerate().take(4) {
            assert!(chunk[..4].iter().all(|s| s.dim == Dim::Host), "group {i}");
            assert_eq!(chunk[4].dim, Dim::Guest);
            let expect_level = PtLevel::from_depth(4 - i as u32).unwrap();
            assert_eq!(chunk[4].level, expect_level);
        }
        let tail = &trace.steps[20..];
        assert!(tail
            .iter()
            .all(|s| s.dim == Dim::Host && s.for_guest_level.is_none()));
    }

    #[test]
    fn host_2m_pages_shorten_walk_to_16() {
        let (guest, mut ept, va) = setup(
            AsapOsConfig::disabled(),
            EptConfig::default().host_2m_pages(),
        );
        let trace = NestedWalker::walk(
            &RadixSource {
                mem: guest.mem(),
                pt: guest.page_table(),
            },
            &mut ept,
            va,
        );
        assert!(trace.is_mapped());
        // 5 host walks of 3 steps + 4 guest reads = 19 accesses
        // (the paper: 2 MiB host pages eliminate "up to five long-latency
        // accesses", one per 1D walk).
        assert_eq!(trace.steps.len(), 19);
    }

    #[test]
    fn data_hpa_is_identity_backed() {
        let (guest, mut ept, va) = setup(AsapOsConfig::disabled(), EptConfig::default());
        let trace = NestedWalker::walk(
            &RadixSource {
                mem: guest.mem(),
                pt: guest.page_table(),
            },
            &mut ept,
            va,
        );
        let data_gpa = guest.translate(va).unwrap().phys_addr(va);
        assert_eq!(trace.data_hpa(), Some(data_gpa));
    }

    #[test]
    fn guest_fault_stops_after_partial_walk() {
        let (guest, mut ept, va) = setup(AsapOsConfig::disabled(), EptConfig::default());
        // An address sharing the PL4/PL3/PL2 chain but with no PL1 mapping.
        let cousin = VirtAddr::new(va.raw() ^ 0x1000).unwrap();
        let trace = NestedWalker::walk(
            &RadixSource {
                mem: guest.mem(),
                pt: guest.page_table(),
            },
            &mut ept,
            cousin,
        );
        assert_eq!(
            trace.outcome,
            NestedOutcome::GuestFault {
                level: PtLevel::Pl1
            }
        );
        // 4 host walks + 4 guest reads happened; no final data walk.
        assert_eq!(trace.steps.len(), 20);
    }

    #[test]
    fn guest_asap_regions_are_host_contiguous() {
        // §3.6: the vmcall protocol guarantees guest PT regions are
        // contiguous in host physical memory; with identity backing, the
        // gPT PL1 node lines seen by the hierarchy are base+index exactly.
        let (mut guest, mut ept, _) = setup(AsapOsConfig::pl1_and_pl2(), EptConfig::default());
        let heap = *guest.vma_of_kind(VmaKind::Heap).unwrap();
        for region in [3u64, 0, 2] {
            let va = VirtAddr::new(heap.start().raw() + region * (2 << 20)).unwrap();
            guest.touch(va).unwrap();
        }
        let desc = guest
            .vma_descriptors()
            .iter()
            .find(|d| d.covers(heap.start()))
            .copied()
            .unwrap();
        let pl1_base = desc.pl1_base.unwrap();
        for region in [0u64, 2, 3] {
            let va = VirtAddr::new(heap.start().raw() + region * (2 << 20)).unwrap();
            let trace = NestedWalker::walk(
                &RadixSource {
                    mem: guest.mem(),
                    pt: guest.page_table(),
                },
                &mut ept,
                va,
            );
            let gpt_pl1 = trace
                .guest_steps()
                .find(|s| s.level == PtLevel::Pl1)
                .unwrap();
            // The host-physical frame of the gPT PL1 node = descriptor base
            // + region (identity backing models the vmcall guarantee).
            assert_eq!(
                gpt_pl1.host_entry_addr.frame_number().raw(),
                pl1_base.frame_number().raw() + region
            );
        }
    }
}
