//! Host-physical windows used by the hypervisor.
//!
//! The guest's compact physical space (see `asap_os::PhysMap::compact_guest`)
//! occupies host frames `[0, 2^33)` under the identity data backing; the
//! hypervisor's own page-table frames live above it.

use asap_types::PhysFrameNum;

/// Host-side window anchors for nested-page-table frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostPtMap;

impl HostPtMap {
    /// End (exclusive) of the identity-backed guest region.
    pub const GUEST_IDENTITY_END: u64 = 1 << 33;

    /// Frames for scattered host-PT nodes.
    pub const SCATTER_WINDOW_FRAMES: u64 = 1 << 22;

    /// Frames for the reserved, sorted host PL1 region (one per 2 MiB of
    /// guest-physical space).
    pub const RES_PL1_WINDOW_FRAMES: u64 = 1 << 24;

    /// Frames for the reserved, sorted host PL2 region.
    pub const RES_PL2_WINDOW_FRAMES: u64 = 1 << 16;

    /// Base of the scattered host-PT window.
    #[must_use]
    pub fn scatter_base() -> PhysFrameNum {
        PhysFrameNum::new(1 << 33)
    }

    /// Base of the reserved host PL1 region.
    #[must_use]
    pub fn res_pl1_base() -> PhysFrameNum {
        PhysFrameNum::new(1 << 34)
    }

    /// Base of the reserved host PL2 region.
    #[must_use]
    pub fn res_pl2_base() -> PhysFrameNum {
        PhysFrameNum::new((1 << 34) + (1 << 25))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_windows_disjoint_and_above_guest() {
        let windows = [
            (
                HostPtMap::scatter_base().raw(),
                HostPtMap::SCATTER_WINDOW_FRAMES,
            ),
            (
                HostPtMap::res_pl1_base().raw(),
                HostPtMap::RES_PL1_WINDOW_FRAMES,
            ),
            (
                HostPtMap::res_pl2_base().raw(),
                HostPtMap::RES_PL2_WINDOW_FRAMES,
            ),
        ];
        for (base, span) in windows {
            assert!(base >= HostPtMap::GUEST_IDENTITY_END);
            assert!(base + span < 1 << 40, "fits the PFN field");
        }
        for (i, (b1, s1)) in windows.iter().enumerate() {
            for (b2, s2) in windows.iter().skip(i + 1) {
                assert!(b1 + s1 <= *b2 || b2 + s2 <= *b1, "windows overlap");
            }
        }
        // Also disjoint from the co-runner window.
        let co = asap_os::PhysMap::corunner_base().raw();
        for (base, span) in windows {
            assert!(base + span <= co);
        }
    }
}
