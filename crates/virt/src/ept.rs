//! The host-dimension (nested/extended) page table.

use crate::HostPtMap;
use asap_alloc::{FrameAllocator, ScatterAllocator, ScatterConfig};
use asap_pt::{
    FixedWalk, FlatMirror, PageTable, PtCensus, PtNodeAllocator, PteFlags, SimPhysMem, WalkSource,
    WalkTrace,
};
use asap_types::{PageSize, PagingMode, PhysAddr, PhysFrameNum, PtLevel, VirtAddr, INDEX_BITS};

/// Configuration of the host dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct EptConfig {
    /// Host-PT levels placed in reserved, sorted regions (the host half of
    /// ASAP: `P1h`, `P2h`). Empty = baseline scattered host PT.
    pub host_levels: Vec<PtLevel>,
    /// Host page size backing guest memory: 4 KiB for the main evaluation,
    /// 2 MiB for the Fig. 12 configuration (walks shorten by one level).
    pub host_page_size: PageSize,
    /// Mean run length of scattered host-PT pages (the paper models the
    /// baseline host PT "by randomly scattering the PT pages", §4).
    pub scatter_run: f64,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for EptConfig {
    /// Baseline: no host ASAP, 4 KiB host pages, near-random scatter.
    fn default() -> Self {
        Self {
            host_levels: Vec::new(),
            host_page_size: PageSize::Size4K,
            scatter_run: 2.0,
            seed: 0,
        }
    }
}

impl EptConfig {
    /// Host ASAP on PL1 only (`P1h`).
    #[must_use]
    pub fn host_pl1(mut self) -> Self {
        self.host_levels = vec![PtLevel::Pl1];
        self
    }

    /// Host ASAP on PL1 and PL2 (`P1h + P2h`).
    #[must_use]
    pub fn host_pl1_and_pl2(mut self) -> Self {
        self.host_levels = vec![PtLevel::Pl1, PtLevel::Pl2];
        self
    }

    /// 2 MiB host pages with host ASAP on PL2 only — the Fig. 12 setup
    /// ("prefetching from both PL1 and PL2 in the guest and PL2-only in the
    /// host"; with 2 MiB host pages the host PT has no PL1 level).
    #[must_use]
    pub fn host_2m_pages(mut self) -> Self {
        self.host_page_size = PageSize::Size2M;
        self.host_levels = vec![PtLevel::Pl2];
        self
    }

    /// Overrides the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The nested page table: guest-physical → host-physical.
///
/// Guest-physical addresses are treated as the "virtual addresses" of the
/// host dimension (the guest VM is a single host VMA starting at zero,
/// §3.6). Data frames are backed **identity**: host frame = guest frame.
/// This models the §3.6 vmcall guarantee that guest-side ASAP regions are
/// contiguous *in host physical memory as well* — and is innocuous for
/// everything else, since data-page placement only affects cache-set
/// indexing (see DESIGN.md).
#[derive(Debug)]
pub struct Ept {
    mem: SimPhysMem,
    table: PageTable,
    /// Derived flat index over `table` (re-synced after every fault-in);
    /// the radix table in `mem` stays the ground truth.
    flat: FlatMirror,
    scatter: ScatterAllocator,
    config: EptConfig,
    faults: u64,
}

impl Ept {
    /// Creates an empty nested table.
    #[must_use]
    pub fn new(config: EptConfig) -> Self {
        let mut mem = SimPhysMem::new();
        let mut scatter = ScatterAllocator::new(ScatterConfig {
            mean_run_len: config.scatter_run,
            phys_frames: HostPtMap::SCATTER_WINDOW_FRAMES,
            seed: config.seed ^ 0xE97,
        });
        let mut placer = HostNodePlacer {
            levels: &config.host_levels,
            scatter: &mut scatter,
        };
        let table = PageTable::new(PagingMode::FourLevel, &mut mem, &mut placer);
        let flat = FlatMirror::new(&table);
        Self {
            mem,
            table,
            flat,
            scatter,
            config,
            faults: 0,
        }
    }

    /// Reinterprets a guest-physical address as a host-dimension VA.
    ///
    /// # Panics
    ///
    /// Panics if the gPA exceeds the 4-level span (the compact guest map
    /// guarantees it never does).
    #[must_use]
    pub fn gpa_as_va(gpa: PhysAddr) -> VirtAddr {
        let va = VirtAddr::new(gpa.raw()).expect("gPA exceeds canonical VA");
        assert!(
            PagingMode::FourLevel.contains(va),
            "gPA {gpa} exceeds the 4-level nested table span"
        );
        va
    }

    /// Ensures the guest-physical page containing `gpa` is backed,
    /// faulting in an identity mapping at the configured host page size.
    pub fn ensure_mapped(&mut self, gpa: PhysAddr) {
        let va = Self::gpa_as_va(gpa);
        if self.flat.is_mapped(va) {
            return;
        }
        let size = self.config.host_page_size;
        let va_base = VirtAddr::new_unchecked(va.raw() & !(size.bytes() - 1));
        let frame = PhysFrameNum::new(va_base.raw() >> 12);
        let mut placer = HostNodePlacer {
            levels: &self.config.host_levels,
            scatter: &mut self.scatter,
        };
        self.table
            .map(
                &mut self.mem,
                &mut placer,
                va_base,
                frame,
                size,
                PteFlags::user_data(),
            )
            .expect("EPT fault-in cannot double-map");
        self.flat.sync_va(&self.mem, &self.table, va_base);
        self.faults += 1;
    }

    /// Translates a guest-physical address to host-physical.
    #[must_use]
    pub fn translate(&self, gpa: PhysAddr) -> Option<PhysAddr> {
        let va = Self::gpa_as_va(gpa);
        self.flat.translate(va).map(|t| t.phys_addr(va))
    }

    /// Walks the host table for `gpa`, returning the node trace (one 1D
    /// walk of the 2D sequence).
    #[must_use]
    pub fn walk(&self, gpa: PhysAddr) -> WalkTrace {
        self.walk_fixed(gpa).to_trace()
    }

    /// [`Ept::walk`] without the heap allocation (the hot-path form).
    #[must_use]
    pub fn walk_fixed(&self, gpa: PhysAddr) -> FixedWalk {
        self.flat.walk_fixed(Self::gpa_as_va(gpa))
    }

    /// The flat walk index mirroring the nested table.
    #[must_use]
    pub fn flat_mirror(&self) -> &FlatMirror {
        &self.flat
    }

    /// Base host-physical address of the reserved host region for `level`,
    /// when host ASAP covers it — the host dimension's range-register
    /// payload (a single descriptor covers the whole guest, §3.6).
    #[must_use]
    pub fn host_region_base(&self, level: PtLevel) -> Option<PhysAddr> {
        if !self.config.host_levels.contains(&level) {
            return None;
        }
        match level {
            PtLevel::Pl1 => Some(HostPtMap::res_pl1_base().base_addr()),
            PtLevel::Pl2 => Some(HostPtMap::res_pl2_base().base_addr()),
            _ => None,
        }
    }

    /// The configured host page size.
    #[must_use]
    pub fn host_page_size(&self) -> PageSize {
        self.config.host_page_size
    }

    /// Number of EPT fault-ins performed.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Census over the host PT (diagnostics / host Table 2 analogue).
    #[must_use]
    pub fn census(&self) -> PtCensus {
        PtCensus::collect(&self.mem, &self.table)
    }

    /// The host-PT backing memory (for timing models that need entry reads).
    #[must_use]
    pub fn mem(&self) -> &SimPhysMem {
        &self.mem
    }

    /// The nested table handle.
    #[must_use]
    pub fn table(&self) -> &PageTable {
        &self.table
    }
}

/// Places host-PT nodes: reserved sorted regions for ASAP levels, scattered
/// otherwise.
struct HostNodePlacer<'a> {
    levels: &'a [PtLevel],
    scatter: &'a mut ScatterAllocator,
}

impl PtNodeAllocator for HostNodePlacer<'_> {
    fn alloc_node(&mut self, level: PtLevel, va: VirtAddr) -> PhysFrameNum {
        if self.levels.contains(&level) {
            let index = va.raw() >> (level.index_shift() + INDEX_BITS);
            let base = match level {
                PtLevel::Pl1 => Some(HostPtMap::res_pl1_base()),
                PtLevel::Pl2 => Some(HostPtMap::res_pl2_base()),
                _ => None,
            };
            if let Some(base) = base {
                return base.add(index);
            }
        }
        let f = self
            .scatter
            .alloc_frame()
            .expect("host PT scatter window exhausted");
        HostPtMap::scatter_base().add(f.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpa(raw: u64) -> PhysAddr {
        PhysAddr::new(raw)
    }

    #[test]
    fn identity_backing() {
        let mut ept = Ept::new(EptConfig::default());
        let g = gpa(0x12_3456_7000);
        ept.ensure_mapped(g);
        assert_eq!(ept.translate(g), Some(g));
        // Offsets carry through.
        let off = gpa(0x12_3456_7123);
        assert_eq!(ept.translate(off), Some(off));
        assert_eq!(ept.fault_count(), 1);
        // Idempotent.
        ept.ensure_mapped(g);
        assert_eq!(ept.fault_count(), 1);
    }

    #[test]
    fn unmapped_gpa_is_none() {
        let ept = Ept::new(EptConfig::default());
        assert_eq!(ept.translate(gpa(0x1000)), None);
    }

    #[test]
    fn host_walk_has_four_steps_on_4k() {
        let mut ept = Ept::new(EptConfig::default());
        let g = gpa(0x4000_0000);
        ept.ensure_mapped(g);
        let trace = ept.walk(g);
        assert_eq!(trace.steps.len(), 4);
        assert!(!trace.is_fault());
    }

    #[test]
    fn host_walk_has_three_steps_on_2m() {
        let mut ept = Ept::new(EptConfig::default().host_2m_pages());
        let g = gpa(0x4000_0000);
        ept.ensure_mapped(g);
        let trace = ept.walk(g);
        assert_eq!(trace.steps.len(), 3, "2 MiB leaf at PL2");
        let t = trace.translation().unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        // Identity at 2 MiB granularity.
        assert_eq!(ept.translate(g), Some(g));
    }

    #[test]
    fn host_asap_sorts_pl1_nodes() {
        let mut ept = Ept::new(EptConfig::default().host_pl1_and_pl2().with_seed(3));
        // Touch gPAs in several distinct 2 MiB regions, out of order.
        for region in [9u64, 2, 5, 0] {
            ept.ensure_mapped(gpa(region * (2 << 20)));
        }
        for region in [0u64, 2, 5, 9] {
            let trace = ept.walk(gpa(region * (2 << 20)));
            let pl1 = trace.step_at(PtLevel::Pl1).unwrap();
            assert_eq!(
                pl1.entry_addr.frame_number().raw(),
                HostPtMap::res_pl1_base().raw() + region,
                "hPL1 node for region {region}"
            );
        }
        assert_eq!(
            ept.host_region_base(PtLevel::Pl1),
            Some(HostPtMap::res_pl1_base().base_addr())
        );
        assert_eq!(
            ept.host_region_base(PtLevel::Pl2),
            Some(HostPtMap::res_pl2_base().base_addr())
        );
    }

    #[test]
    fn baseline_has_no_region_bases() {
        let ept = Ept::new(EptConfig::default());
        assert_eq!(ept.host_region_base(PtLevel::Pl1), None);
        assert_eq!(ept.host_region_base(PtLevel::Pl2), None);
    }

    #[test]
    fn baseline_pl1_nodes_scattered() {
        let mut ept = Ept::new(EptConfig {
            scatter_run: 1.0,
            ..EptConfig::default()
        });
        let mut frames = Vec::new();
        for region in 0..8u64 {
            let g = gpa(region * (2 << 20));
            ept.ensure_mapped(g);
            frames.push(
                ept.walk(g)
                    .step_at(PtLevel::Pl1)
                    .unwrap()
                    .entry_addr
                    .frame_number()
                    .raw(),
            );
        }
        let contiguous = frames.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(!contiguous, "{frames:?}");
        // All inside the scatter window.
        for f in frames {
            assert!(f >= HostPtMap::scatter_base().raw());
            assert!(f < HostPtMap::scatter_base().raw() + HostPtMap::SCATTER_WINDOW_FRAMES);
        }
    }

    #[test]
    #[should_panic(expected = "4-level nested table span")]
    fn oversized_gpa_rejected() {
        let _ = Ept::gpa_as_va(PhysAddr::new(1 << 49));
    }
}
