//! Nested (two-dimensional) address translation for the ASAP reproduction.
//!
//! Under virtualization (paper §2.1, §3.6, Fig. 7), a guest TLB miss
//! triggers a 2D walk: each of the four guest-PT node reads first needs a
//! full 1D walk of the host page table to translate the node's
//! guest-physical address, and a final host walk translates the data
//! address — up to 24 memory accesses. This crate builds that machinery:
//!
//! * [`Ept`] — the host-dimension page table (nested/extended page table)
//!   mapping guest-physical to host-physical addresses, with lazy identity
//!   backing for data frames, scattered-vs-reserved placement for its own
//!   nodes (the host half of ASAP), and 2 MiB host pages for the Fig. 12
//!   configuration;
//! * [`NestedWalker`] / [`NestedWalkTrace`] — the exact Fig. 7 access
//!   sequence, each step carrying the host-physical address the memory
//!   hierarchy sees;
//! * [`VirtualMachine`] — a guest [`Process`](asap_os::Process) (with its own guest-side ASAP
//!   policy, negotiated with the hypervisor via vmcalls per §3.6) behind an
//!   [`Ept`].
//!
//! # Examples
//!
//! ```
//! use asap_os::{AsapOsConfig, ProcessConfig, VmaKind};
//! use asap_types::{Asid, ByteSize};
//! use asap_virt::{EptConfig, VirtualMachine};
//!
//! let guest_cfg = ProcessConfig::new(Asid(1))
//!     .with_heap(ByteSize::mib(32))
//!     .with_compact_phys();
//! let mut vm = VirtualMachine::new(guest_cfg, EptConfig::default());
//! let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
//! vm.touch(va).unwrap();
//! let trace = vm.nested_walk(va);
//! assert_eq!(trace.steps.len(), 24); // the full 2D walk of Fig. 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ept;
mod host_map;
mod nested;
mod vm;

pub use ept::{Ept, EptConfig};
pub use host_map::HostPtMap;
pub use nested::{Dim, NestedStep, NestedWalkTrace, NestedWalker};
pub use vm::VirtualMachine;
