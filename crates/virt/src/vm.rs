//! A virtual machine: guest process behind a nested page table.

use crate::{Ept, EptConfig, NestedWalkTrace, NestedWalker};
use asap_os::{OsError, Process, ProcessConfig, TouchOutcome, VmaDescriptor};
use asap_types::{PhysAddr, PtLevel, VirtAddr};

/// One guest [`Process`] plus the hypervisor's [`Ept`].
///
/// The guest's big-memory process is the unit the paper virtualizes; from
/// the host's perspective the whole VM is a single process with one VMA
/// (§3.6), which is why a single set of host range registers suffices.
#[derive(Debug)]
pub struct VirtualMachine {
    guest: Process,
    ept: Ept,
}

impl VirtualMachine {
    /// Boots a VM: builds the guest process and an empty nested table.
    ///
    /// # Panics
    ///
    /// Panics unless the guest config uses the compact physical map — the
    /// sparse host map would overflow the 4-level nested table's span.
    #[must_use]
    pub fn new(guest_config: ProcessConfig, ept_config: EptConfig) -> Self {
        assert!(
            guest_config.compact_phys,
            "guest processes must use ProcessConfig::with_compact_phys()"
        );
        Self {
            guest: Process::new(guest_config),
            ept: Ept::new(ept_config),
        }
    }

    /// Demand-faults the guest page containing `va`, then eagerly backs the
    /// touched guest-PT node pages and the data page in the EPT (the
    /// hypervisor fault-in that would otherwise interrupt the first nested
    /// walk).
    ///
    /// # Errors
    ///
    /// Propagates guest [`OsError`]s (e.g. segfaults outside every VMA).
    pub fn touch(&mut self, va: VirtAddr) -> Result<TouchOutcome, OsError> {
        let outcome = self.guest.touch(va)?;
        if outcome == TouchOutcome::AlreadyMapped {
            return Ok(outcome);
        }
        let trace = self.guest.walk_fixed(va);
        for step in trace.steps() {
            self.ept.ensure_mapped(step.entry_addr);
        }
        if let Some(t) = trace.translation() {
            self.ept.ensure_mapped(t.phys_addr(va));
        }
        Ok(outcome)
    }

    /// Performs the full 2D walk for `va` (Fig. 7).
    #[must_use]
    pub fn nested_walk(&mut self, va: VirtAddr) -> NestedWalkTrace {
        NestedWalker::walk(self.guest.flat_mirror(), &mut self.ept, va)
    }

    /// The guest's ASAP VMA descriptors. Thanks to the §3.6 vmcall
    /// contiguity guarantee (modelled by identity backing), their region
    /// bases are valid host-physical prefetch bases.
    #[must_use]
    pub fn guest_descriptors(&self) -> &[VmaDescriptor] {
        self.guest.vma_descriptors()
    }

    /// Host-dimension reserved-region base for `level` (the host range
    /// register), if host ASAP covers that level.
    #[must_use]
    pub fn host_region_base(&self, level: PtLevel) -> Option<PhysAddr> {
        self.ept.host_region_base(level)
    }

    /// The guest process.
    #[must_use]
    pub fn guest(&self) -> &Process {
        &self.guest
    }

    /// The guest process, mutably (dataset loading, heap growth).
    pub fn guest_mut(&mut self) -> &mut Process {
        &mut self.guest
    }

    /// The nested table.
    #[must_use]
    pub fn ept(&self) -> &Ept {
        &self.ept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_os::{AsapOsConfig, ProcessConfig, VmaKind};
    use asap_types::{Asid, ByteSize};

    fn vm(guest_asap: AsapOsConfig, ept: EptConfig) -> VirtualMachine {
        VirtualMachine::new(
            ProcessConfig::new(Asid(1))
                .with_heap(ByteSize::mib(32))
                .with_asap(guest_asap)
                .with_compact_phys()
                .with_seed(5),
            ept,
        )
    }

    #[test]
    fn touch_then_nested_walk_succeeds() {
        let mut vm = vm(AsapOsConfig::disabled(), EptConfig::default());
        let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
        vm.touch(va).unwrap();
        let trace = vm.nested_walk(va);
        assert!(trace.is_mapped());
        assert_eq!(trace.steps.len(), 24);
    }

    #[test]
    #[should_panic(expected = "compact_phys")]
    fn sparse_guest_rejected() {
        let _ = VirtualMachine::new(
            ProcessConfig::new(Asid(1)).with_heap(ByteSize::mib(1)),
            EptConfig::default(),
        );
    }

    #[test]
    fn host_bases_follow_ept_config() {
        let vm1 = vm(AsapOsConfig::disabled(), EptConfig::default());
        assert!(vm1.host_region_base(PtLevel::Pl1).is_none());
        let vm2 = vm(
            AsapOsConfig::disabled(),
            EptConfig::default().host_pl1_and_pl2(),
        );
        assert!(vm2.host_region_base(PtLevel::Pl1).is_some());
        assert!(vm2.host_region_base(PtLevel::Pl2).is_some());
    }

    #[test]
    fn guest_descriptors_surface_through_vm() {
        let mut vm = vm(AsapOsConfig::pl1_and_pl2(), EptConfig::default());
        let va = vm.guest().vma_of_kind(VmaKind::Heap).unwrap().start();
        vm.touch(va).unwrap();
        let descs = vm.guest_descriptors();
        assert!(descs.iter().any(|d| d.covers(va) && d.pl1_base.is_some()));
    }
}
