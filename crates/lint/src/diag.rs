//! Diagnostics: the one violation shape every rule produces.

use std::fmt;

/// A single rule violation, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`crate::rules::RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable description of what tripped.
    pub message: String,
}

impl Violation {
    /// Builds a violation.
    #[must_use]
    pub fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Self {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Violation {
    /// Renders in the `file:line: rule: message` shape editors and CI logs
    /// can jump from — the same anchor format `DriverError::anchor` and
    /// the bench error reporter use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_anchor_shaped() {
        let v = Violation::new("crates/x/src/a.rs", 7, "panic-freedom", "x".into());
        assert_eq!(v.to_string(), "crates/x/src/a.rs:7: panic-freedom: x");
    }
}
