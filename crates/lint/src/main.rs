//! The `asap-lint` binary: run the rules, gate against the ratchet.
//!
//! ```text
//! cargo run -p asap-lint                      # check, exit 1 on any gate failure
//! cargo run -p asap-lint -- --update-baseline # rewrite lint-baseline.toml
//! cargo run -p asap-lint -- --list            # print the rule registry
//! cargo run -p asap-lint -- --root <dir>      # lint another workspace copy
//! ```
//!
//! Exit codes: 0 clean at baseline, 1 violations or gate failure, 2 usage
//! or I/O error.

use asap_lint::{load_baseline, rules, run, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--list" => {
                for rule in rules::RULE_NAMES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("asap-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update_baseline {
        let baseline = report.as_baseline();
        if let Err(e) = std::fs::write(root.join(BASELINE_FILE), baseline.render()) {
            eprintln!("asap-lint: writing {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        for (rule, count) in &report.counts {
            println!("{rule}: baseline set to {count}");
        }
        println!("asap-lint: wrote {BASELINE_FILE}");
        return ExitCode::SUCCESS;
    }

    for v in &report.violations {
        println!("{v}");
    }
    let gate_errors = match load_baseline(&root) {
        Ok(baseline) => report.gate(&baseline),
        Err(e) => vec![e],
    };
    for e in &gate_errors {
        eprintln!("asap-lint: {e}");
    }
    println!(
        "asap-lint: {} file(s), {} violation(s), {} gate error(s)",
        report.files_scanned,
        report.violations.len(),
        gate_errors.len()
    );
    if gate_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("asap-lint: {why}");
    eprintln!("usage: asap-lint [--root <dir>] [--update-baseline] [--list]");
    ExitCode::from(2)
}
