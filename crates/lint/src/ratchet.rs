//! The ratchet baseline: per-rule violation budgets that may only go down.
//!
//! `lint-baseline.toml` commits one allowed count per rule. The gate
//! enforces the ratchet in both directions:
//!
//! * `actual > allowed` — the PR introduced new violations: **fail**.
//! * `actual < allowed` — someone fixed violations but left the budget
//!   slack a later PR could silently spend: **fail** with a "ratchet
//!   down" message (`--update-baseline` rewrites the file).
//!
//! The file is a strict subset of TOML (one `[rules]` table of
//! `name = integer` lines) parsed by hand, so the lint gate needs no
//! dependencies.

use std::collections::BTreeMap;

/// The committed per-rule budgets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Rule name → allowed violation count.
    pub counts: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parses the TOML subset: comments, blank lines, a `[rules]` header,
    /// and `name = count` entries (names may be bare or double-quoted).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts = BTreeMap::new();
        let mut in_rules = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_rules = line == "[rules]";
                if !in_rules {
                    return Err(format!("line {}: unknown table {line}", idx + 1));
                }
                continue;
            }
            if !in_rules {
                return Err(format!("line {}: entry outside [rules]: {line}", idx + 1));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected name = count: {line}", idx + 1))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count is not an integer: {line}", idx + 1))?;
            if counts.insert(key.clone(), value).is_some() {
                return Err(format!("line {}: duplicate rule {key}", idx + 1));
            }
        }
        Ok(Self { counts })
    }

    /// Renders the canonical file content for these counts.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# asap-lint ratchet baseline: allowed violations per rule.\n\
             # Counts may only decrease. After fixing violations, regenerate with:\n\
             #   cargo run -p asap-lint -- --update-baseline\n\
             \n[rules]\n",
        );
        for (rule, count) in &self.counts {
            out.push_str(&format!("{rule} = {count}\n"));
        }
        out
    }

    /// Compares actual per-rule counts against the baseline. Returns one
    /// message per gate failure; empty means the gate passes.
    ///
    /// `known_rules` is the registry: baseline entries outside it are
    /// stale configuration and flagged too.
    #[must_use]
    pub fn gate(
        &self,
        actual: &BTreeMap<&'static str, usize>,
        known_rules: &[&str],
    ) -> Vec<String> {
        let mut errors = Vec::new();
        for rule in self.counts.keys() {
            if !known_rules.contains(&rule.as_str()) {
                errors.push(format!(
                    "lint-baseline.toml names unknown rule `{rule}` — remove the stale entry"
                ));
            }
        }
        for (rule, &count) in actual {
            let allowed = self.counts.get(*rule).copied();
            match allowed {
                None => {
                    if count > 0 {
                        errors.push(format!(
                            "{rule}: {count} violation(s) but no baseline entry — \
                             fix them or run --update-baseline"
                        ));
                    } else {
                        errors.push(format!(
                            "{rule}: missing from lint-baseline.toml — run --update-baseline"
                        ));
                    }
                }
                Some(allowed) if count > allowed => errors.push(format!(
                    "{rule}: {count} violation(s), baseline allows {allowed} — \
                     fix the new ones (the ratchet only goes down)"
                )),
                Some(allowed) if count < allowed => errors.push(format!(
                    "{rule}: {count} violation(s), baseline allows {allowed} — \
                     stale budget; ratchet down with --update-baseline"
                )),
                Some(_) => {}
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actual(pairs: &[(&'static str, usize)]) -> BTreeMap<&'static str, usize> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.counts.insert("panic-freedom".into(), 12);
        b.counts.insert("determinism-map".into(), 0);
        let rendered = b.render();
        assert_eq!(Baseline::parse(&rendered).unwrap(), b);
    }

    #[test]
    fn equal_counts_pass() {
        let b = Baseline::parse("[rules]\npanic-freedom = 3\n").unwrap();
        assert!(b
            .gate(&actual(&[("panic-freedom", 3)]), &["panic-freedom"])
            .is_empty());
    }

    #[test]
    fn increase_fails() {
        let b = Baseline::parse("[rules]\npanic-freedom = 3\n").unwrap();
        let errs = b.gate(&actual(&[("panic-freedom", 4)]), &["panic-freedom"]);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("ratchet only goes down"), "{errs:?}");
    }

    #[test]
    fn decrease_requires_ratcheting_down() {
        let b = Baseline::parse("[rules]\npanic-freedom = 3\n").unwrap();
        let errs = b.gate(&actual(&[("panic-freedom", 1)]), &["panic-freedom"]);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("stale budget"), "{errs:?}");
    }

    #[test]
    fn unknown_and_missing_rules_are_flagged() {
        let b = Baseline::parse("[rules]\nretired-rule = 9\n").unwrap();
        let errs = b.gate(&actual(&[("panic-freedom", 0)]), &["panic-freedom"]);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("unknown rule")));
        assert!(errs
            .iter()
            .any(|e| e.contains("missing from lint-baseline.toml")));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[rules]\nnot a pair\n").is_err());
        assert!(Baseline::parse("[other]\n").is_err());
        assert!(Baseline::parse("loose = 1\n").is_err());
        assert!(Baseline::parse("[rules]\na = 1\na = 2\n").is_err());
    }

    #[test]
    fn quoted_keys_parse() {
        let b = Baseline::parse("[rules]\n\"hot-path-alloc\" = 2\n").unwrap();
        assert_eq!(b.counts["hot-path-alloc"], 2);
    }
}
