//! The hand-rolled Rust token scanner behind every lint rule.
//!
//! `asap-lint` deliberately does not parse Rust (the offline vendor set has
//! no `syn`); it *classifies* source bytes instead. A [`FileScan`] splits a
//! file into:
//!
//! * **masked code** — the source with every comment and string/char
//!   literal blanked to spaces (newlines preserved), so token searches can
//!   never match inside a doc example, an error message, or a `"HashMap"`
//!   string;
//! * **comments** — kept aside with their offsets, because that is where
//!   the `asap-lint:` directives live;
//! * **string literals** — kept aside with their offsets, because that is
//!   where the metric-name manifest rule reads `"{prefix}…"` fragments;
//! * **regions** — `#[cfg(test)]` item bodies (exempt from most rules) and
//!   `// asap-lint: hot-path` fenced bodies (subject to the
//!   allocation-freedom rule).
//!
//! The scanner understands line and (nested) block comments, plain/byte
//! strings with escapes, raw strings with any `#` count, and the
//! char-literal-versus-lifetime ambiguity well enough for this workspace's
//! idiomatic Rust. It is a classifier, not a compiler: pathological token
//! soup can fool it, and the golden fixture tests pin the cases that
//! matter.

/// A half-open byte range `[start, end)` in a scanned file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Region {
    /// Whether `offset` lies inside the region.
    #[must_use]
    pub fn contains(&self, offset: usize) -> bool {
        self.start <= offset && offset < self.end
    }
}

/// A comment with its location (offset of the first `/`) and its text
/// content (without the `//`, `///`, `/*` markers, trimmed).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the comment opener.
    pub offset: usize,
    /// Trimmed comment content.
    pub text: String,
}

/// A string literal with the byte offset of its opening quote and its raw
/// (unescaped) content.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote.
    pub offset: usize,
    /// Raw text between the quotes (escape sequences are not processed —
    /// the metric-name fragments this feeds never contain escapes).
    pub value: String,
}

/// One scanned file: classified regions plus the masked code.
#[derive(Debug)]
pub struct FileScan {
    /// Workspace-relative path, as reported in diagnostics.
    pub path: String,
    /// Code with comments and literals blanked (newlines preserved), same
    /// byte length as the source.
    pub masked: String,
    /// Every comment, in order.
    pub comments: Vec<Comment>,
    /// Every string literal, in order.
    pub strings: Vec<StrLit>,
    /// Bodies of `#[cfg(test)]` items.
    pub cfg_test: Vec<Region>,
    /// Bodies fenced by a `// asap-lint: hot-path` comment.
    pub hot_path: Vec<Region>,
    /// `(line, rule)` suppressions from `// asap-lint: allow(rule)`.
    pub allows: Vec<(usize, String)>,
    line_starts: Vec<usize>,
}

/// The comment that opens a hot-path fence (exact trimmed content).
pub const HOT_PATH_FENCE: &str = concat!("asap-lint:", " hot-path");

/// The prefix of a line-level suppression directive.
pub const ALLOW_PREFIX: &str = concat!("asap-lint:", " allow(");

impl FileScan {
    /// Scans `src`, labelling diagnostics with `path`.
    #[must_use]
    pub fn parse(path: &str, src: &str) -> Self {
        let bytes = src.as_bytes();
        let mut masked = bytes.to_vec();
        let mut comments = Vec::new();
        let mut strings = Vec::new();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    let start = i;
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                    let text = src[start..i]
                        .trim_start_matches('/')
                        .trim_start_matches('!')
                        .trim()
                        .to_string();
                    comments.push(Comment {
                        offset: start,
                        text,
                    });
                    blank(&mut masked, start, i);
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    let start = i;
                    let mut depth = 1;
                    i += 2;
                    while i < bytes.len() && depth > 0 {
                        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    let inner = src[start..i]
                        .trim_start_matches('/')
                        .trim_start_matches('*')
                        .trim_end_matches('/')
                        .trim_end_matches('*')
                        .trim()
                        .to_string();
                    comments.push(Comment {
                        offset: start,
                        text: inner,
                    });
                    blank(&mut masked, start, i);
                }
                b'"' => {
                    i = scan_string(bytes, i, &mut masked, &mut strings, src);
                }
                b'r' | b'b' if !ident_before(bytes, i) => {
                    if let Some(next) = raw_or_byte_string_start(bytes, i) {
                        i = next(bytes, i, &mut masked, &mut strings, src);
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal vs lifetime: `'\…'` and `'x'` are
                    // literals; anything else (`'a`, `'static`) is a
                    // lifetime and stays code.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        let start = i;
                        i += 2; // consume the backslash and escape head
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1;
                        }
                        i = (i + 1).min(bytes.len());
                        blank_keep_quotes(&mut masked, start, i);
                    } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                        blank_keep_quotes(&mut masked, i, i + 3);
                        i += 3;
                    } else {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        let masked = String::from_utf8(masked).expect("masking preserves UTF-8");
        let mut line_starts = vec![0];
        for (idx, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(idx + 1);
            }
        }
        let cfg_test = find_attr_regions(&masked);
        let mut scan = Self {
            path: path.to_string(),
            masked,
            comments,
            strings,
            cfg_test,
            hot_path: Vec::new(),
            allows: Vec::new(),
            line_starts,
        };
        scan.hot_path = scan.find_fenced_regions();
        scan.allows = scan.find_allows();
        scan
    }

    /// 1-based line number of a byte offset.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `offset` lies in a `#[cfg(test)]` body.
    #[must_use]
    pub fn in_test(&self, offset: usize) -> bool {
        self.cfg_test.iter().any(|r| r.contains(offset))
    }

    /// Whether `rule` is suppressed on the line containing `offset` (a
    /// directive suppresses its own line and the line below it, so it
    /// works both trailing and standalone-above).
    #[must_use]
    pub fn allowed(&self, offset: usize, rule: &str) -> bool {
        let line = self.line_of(offset);
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }

    fn find_fenced_regions(&self) -> Vec<Region> {
        let mut out = Vec::new();
        for c in &self.comments {
            if c.text == HOT_PATH_FENCE {
                if let Some(open) = self.masked[c.offset..].find('{').map(|rel| c.offset + rel) {
                    let end = match_brace(self.masked.as_bytes(), open);
                    out.push(Region { start: open, end });
                }
            }
        }
        out
    }

    fn find_allows(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for c in &self.comments {
            if let Some(rest) = c.text.strip_prefix(ALLOW_PREFIX) {
                if let Some(rule) = rest.split(')').next() {
                    out.push((self.line_of(c.offset), rule.trim().to_string()));
                }
            }
        }
        out
    }
}

fn blank(masked: &mut [u8], start: usize, end: usize) {
    let end = end.min(masked.len());
    for b in &mut masked[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Blanks a literal but keeps its first and last byte (the quotes), so the
/// masked code keeps token boundaries.
fn blank_keep_quotes(masked: &mut [u8], start: usize, end: usize) {
    if end > start + 2 {
        blank(masked, start + 1, end - 1);
    }
}

fn ident_before(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

type StringScanner = fn(&[u8], usize, &mut [u8], &mut Vec<StrLit>, &str) -> usize;

/// Dispatches `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `br#"…"#` openers.
fn raw_or_byte_string_start(bytes: &[u8], i: usize) -> Option<StringScanner> {
    let rest = &bytes[i..];
    match rest {
        [b'r', b'"', ..] | [b'r', b'#', ..] | [b'b', b'r', b'"', ..] | [b'b', b'r', b'#', ..] => {
            Some(scan_raw_string)
        }
        [b'b', b'"', ..] => Some(scan_byte_string),
        [b'b', b'\'', ..] => Some(scan_byte_char),
        _ => None,
    }
}

fn scan_string(
    bytes: &[u8],
    start: usize,
    masked: &mut [u8],
    strings: &mut Vec<StrLit>,
    src: &str,
) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    strings.push(StrLit {
        offset: start,
        value: src[start + 1..i.saturating_sub(1).max(start + 1)].to_string(),
    });
    blank_keep_quotes(masked, start, i);
    i
}

fn scan_byte_string(
    bytes: &[u8],
    start: usize,
    masked: &mut [u8],
    strings: &mut Vec<StrLit>,
    src: &str,
) -> usize {
    scan_string(bytes, start + 1, masked, strings, src)
}

fn scan_byte_char(
    bytes: &[u8],
    start: usize,
    masked: &mut [u8],
    _strings: &mut Vec<StrLit>,
    _src: &str,
) -> usize {
    let mut i = start + 2; // past b'
    if bytes.get(i) == Some(&b'\\') {
        i += 1;
    }
    while i < bytes.len() && bytes[i] != b'\'' {
        i += 1;
    }
    let end = (i + 1).min(bytes.len());
    blank(masked, start + 1, end);
    end
}

fn scan_raw_string(
    bytes: &[u8],
    start: usize,
    masked: &mut [u8],
    strings: &mut Vec<StrLit>,
    src: &str,
) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // past r
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return start + 1; // not a raw string after all
    }
    let content_start = i + 1;
    i = content_start;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat(b'#').take(hashes))
        .collect();
    while i < bytes.len() {
        if bytes[i..].starts_with(&closer) {
            strings.push(StrLit {
                offset: start,
                value: src[content_start..i].to_string(),
            });
            let end = i + closer.len();
            blank(masked, start + 1, end - 1);
            return end;
        }
        i += 1;
    }
    strings.push(StrLit {
        offset: start,
        value: src[content_start..].to_string(),
    });
    blank(masked, start + 1, bytes.len());
    bytes.len()
}

/// Finds the byte offset one past the `}` matching the `{` at `open`.
/// Operates on masked code, so braces inside strings or comments cannot
/// unbalance it; an unbalanced file yields the end of the buffer.
#[must_use]
pub fn match_brace(masked: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < masked.len() {
        match masked[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    masked.len()
}

/// Bodies of items annotated `#[cfg(test)]`: from each attribute, the next
/// `{`…`}` block — or nothing if a `;` arrives first (e.g. a `cfg`'d
/// `use`), which ends the item without a body.
fn find_attr_regions(masked: &str) -> Vec<Region> {
    let needle = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut out: Vec<Region> = Vec::new();
    let mut from = 0;
    while let Some(rel) = masked[from..].find(needle) {
        let at = from + rel;
        from = at + needle.len();
        if out.iter().any(|r| r.contains(at)) {
            continue; // a nested test helper inside an already-masked body
        }
        let mut i = at + needle.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    out.push(Region {
                        start: i,
                        end: match_brace(bytes, i),
                    });
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1;\n";
        let s = FileScan::parse("f.rs", src);
        assert!(!s.masked.contains("HashMap"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "HashMap");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].text, "HashMap here");
        assert_eq!(s.masked.len(), src.len());
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "a(r#\"no \"quote\" escape\"#); b(\"esc \\\" quote\"); c('x'); d('\\n');";
        let s = FileScan::parse("f.rs", src);
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].value, "no \"quote\" escape");
        assert_eq!(s.strings[1].value, "esc \\\" quote");
        assert!(!s.masked.contains("quote"));
        assert!(!s.masked.contains('x') || !s.masked.contains("'x'"));
    }

    #[test]
    fn lifetimes_stay_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let s = FileScan::parse("f.rs", src);
        assert_eq!(s.masked, src); // nothing to mask
    }

    #[test]
    fn cfg_test_region_covers_mod_body() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let s = FileScan::parse("f.rs", src);
        assert_eq!(s.cfg_test.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(s.in_test(unwrap_at));
        assert!(!s.in_test(0));
    }

    #[test]
    fn fence_covers_next_body_only() {
        let src =
            format!("// {HOT_PATH_FENCE}\nfn hot(&self) -> u64 {{ self.x }}\nfn cold() {{ }}\n");
        let s = FileScan::parse("f.rs", &src);
        assert_eq!(s.hot_path.len(), 1);
        let hot = src.find("self.x").unwrap();
        let cold = src.rfind("fn cold").unwrap();
        assert!(s.hot_path[0].contains(hot));
        assert!(!s.hot_path[0].contains(cold));
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let src = format!("// {ALLOW_PREFIX}panic-freedom)\nx.unwrap();\ny.unwrap();\n");
        let s = FileScan::parse("f.rs", &src);
        let first = src.find("x.unwrap").unwrap();
        let second = src.find("y.unwrap").unwrap();
        assert!(s.allowed(first, "panic-freedom"));
        assert!(!s.allowed(second, "panic-freedom"));
        assert!(!s.allowed(first, "determinism-map"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let s = FileScan::parse("f.rs", "a\nb\nc\n");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(4), 3);
    }
}
