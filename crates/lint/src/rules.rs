//! The rule registry: every per-file invariant the workspace enforces.
//!
//! All rules operate on the *masked* code of a [`FileScan`] — comments and
//! string literals are already blanked — so a banned token in a doc
//! example or an error message never trips. `#[cfg(test)]` bodies are
//! exempt from every rule here (tests may allocate, panic and hash
//! however they like), and any single site can be suppressed with a
//! `// asap-lint: allow(<rule>)` directive on or above the offending
//! line.

use crate::diag::Violation;
use crate::scan::FileScan;

/// Rule: no ambient-randomized `std` hash containers in simulation code.
pub const DETERMINISM_MAP_RULE: &str = "determinism-map";
/// Rule: no wall-clock or ambient-entropy sources outside the allowlist.
pub const DETERMINISM_TIME_RULE: &str = "determinism-time";
/// Rule: no allocation inside `// asap-lint: hot-path` fenced bodies.
pub const HOT_PATH_ALLOC_RULE: &str = "hot-path-alloc";
/// Rule: no `unwrap`/`expect`/`panic!` in non-test library code.
pub const PANIC_FREEDOM_RULE: &str = "panic-freedom";
/// Rule: code and `METRICS.json` agree on metric names (see
/// [`crate::metrics`]).
pub const METRIC_NAMES_RULE: &str = "metric-names";

/// Every rule the gate knows, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    DETERMINISM_MAP_RULE,
    DETERMINISM_TIME_RULE,
    HOT_PATH_ALLOC_RULE,
    PANIC_FREEDOM_RULE,
    METRIC_NAMES_RULE,
];

/// Files where wall-clock reads are the *point* (self-profiling, bench
/// timing, and the result cache's advisory cost measurement), exempt
/// from [`DETERMINISM_TIME_RULE`]. Everything the simulation result
/// depends on stays banned — a cached cost hint only reorders the
/// fan-out schedule, never a statistic.
pub const TIME_ALLOWLIST: &[&str] = &[
    "crates/sim/src/observe.rs",
    "crates/sim/src/cache.rs",
    "crates/bench/src/bin/asap.rs",
];

/// Tokens banned by [`DETERMINISM_MAP_RULE`]: `RandomState`-seeded
/// containers whose iteration order varies run to run.
const MAP_TOKENS: &[&str] = &["HashMap", "HashSet"];

/// Tokens banned by [`DETERMINISM_TIME_RULE`].
const TIME_TOKENS: &[&str] = &["Instant::now", "SystemTime", "thread_rng", "from_entropy"];

/// Tokens banned inside hot-path fences by [`HOT_PATH_ALLOC_RULE`].
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec![",
    ".collect()",
    "Box::new",
    "format!",
    "String::from",
];

/// Tokens banned by [`PANIC_FREEDOM_RULE`].
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// Runs every per-file rule over one scan.
#[must_use]
pub fn check_file(scan: &FileScan) -> Vec<Violation> {
    let mut out = Vec::new();
    banned_tokens(
        scan,
        DETERMINISM_MAP_RULE,
        MAP_TOKENS,
        "nondeterministic std hash container — use asap_types::FastMap / FastSet",
        &mut out,
    );
    if !TIME_ALLOWLIST.contains(&scan.path.as_str()) {
        banned_tokens(
            scan,
            DETERMINISM_TIME_RULE,
            TIME_TOKENS,
            "wall-clock/entropy source outside the telemetry allowlist — \
             simulation results must be a pure function of the seed",
            &mut out,
        );
    }
    hot_path_rule(scan, &mut out);
    banned_tokens(
        scan,
        PANIC_FREEDOM_RULE,
        PANIC_TOKENS,
        "panicking call in library code — return an error or document the invariant",
        &mut out,
    );
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn banned_tokens(
    scan: &FileScan,
    rule: &'static str,
    tokens: &[&str],
    why: &str,
    out: &mut Vec<Violation>,
) {
    for token in tokens {
        for offset in token_hits(&scan.masked, token) {
            if scan.in_test(offset) || scan.allowed(offset, rule) {
                continue;
            }
            out.push(Violation::new(
                &scan.path,
                scan.line_of(offset),
                rule,
                format!("`{token}`: {why}"),
            ));
        }
    }
}

fn hot_path_rule(scan: &FileScan, out: &mut Vec<Violation>) {
    for region in &scan.hot_path {
        for token in ALLOC_TOKENS {
            for offset in token_hits(&scan.masked, token) {
                if !region.contains(offset)
                    || scan.in_test(offset)
                    || scan.allowed(offset, HOT_PATH_ALLOC_RULE)
                {
                    continue;
                }
                out.push(Violation::new(
                    &scan.path,
                    scan.line_of(offset),
                    HOT_PATH_ALLOC_RULE,
                    format!("`{token}` allocates inside an `asap-lint: hot-path` fence"),
                ));
            }
        }
    }
}

/// Finds `needle` in `haystack` at identifier boundaries: if the needle
/// starts (or ends) with an identifier character, the byte before (or
/// after) the hit must not be one — so `HashMap` never matches inside
/// `FastHashMapLike`, while `std::collections::HashMap` still hits.
#[must_use]
pub fn token_hits(haystack: &str, needle: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let bytes = haystack.as_bytes();
    let first_is_ident = needle.as_bytes().first().is_some_and(|b| is_ident(*b));
    let last_is_ident = needle.as_bytes().last().is_some_and(|b| is_ident(*b));
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        from = at + 1;
        if first_is_ident && at > 0 && is_ident(bytes[at - 1]) {
            continue;
        }
        let end = at + needle.len();
        if last_is_ident && end < bytes.len() && is_ident(bytes[end]) {
            continue;
        }
        hits.push(at);
    }
    hits
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<Violation> {
        check_file(&FileScan::parse("crates/x/src/f.rs", src))
    }

    #[test]
    fn token_boundaries() {
        assert_eq!(token_hits("let m = HashMap::new();", "HashMap"), vec![8]);
        assert!(token_hits("let m = FastHashMapper::new();", "HashMap").is_empty());
        assert_eq!(token_hits("std::collections::HashMap", "HashMap").len(), 1);
    }

    #[test]
    fn map_rule_fires_in_code_not_strings() {
        let v = violations("let m: HashMap<u64, u64> = HashMap::new();\n");
        assert_eq!(
            v.iter().filter(|v| v.rule == DETERMINISM_MAP_RULE).count(),
            2
        );
        let v = violations("let s = \"HashMap\"; // HashMap\n");
        assert!(v.is_empty());
    }

    #[test]
    fn time_rule_respects_allowlist() {
        let src = "let t = Instant::now();\n";
        assert_eq!(violations(src).len(), 1);
        let allowed = FileScan::parse(TIME_ALLOWLIST[0], src);
        assert!(check_file(&allowed).is_empty());
    }

    #[test]
    fn panic_rule_exempts_tests_and_allows() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let v = violations(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        let src =
            "// asap-lint: allow(panic-freedom) invariant: non-empty\nfn f() { x.unwrap(); }\n";
        assert!(violations(src).is_empty());
    }

    #[test]
    fn hot_path_rule_only_inside_fence() {
        let src = "\
fn cold() { let v = Vec::new(); }
// asap-lint: hot-path
fn hot() { let v = Vec::new(); let s = format!(\"x\"); }
";
        let v = violations(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .all(|v| v.rule == HOT_PATH_ALLOC_RULE && v.line == 3));
    }
}
