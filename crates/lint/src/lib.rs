//! `asap-lint`: invariant-enforcing static analysis for the ASAP
//! reproduction workspace.
//!
//! The simulator's correctness claims lean on properties the compiler
//! does not check: runs are a pure function of the seed (determinism),
//! the translation inner loops never allocate (hot-path freedom), library
//! code surfaces errors instead of panicking, and metric names — the
//! public telemetry contract — never drift silently. This crate walks
//! every `crates/*/src/**/*.rs` file with a hand-rolled token scanner
//! ([`scan`]), applies the rule registry ([`rules`] + [`metrics`]), and
//! gates the result against a committed ratchet baseline ([`ratchet`])
//! whose per-rule counts may only decrease. `ci.sh` runs the binary in
//! both full and `--quick` modes.
//!
//! Zero dependencies by design: the gate builds in seconds and can never
//! be broken by the crates it polices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod metrics;
pub mod ratchet;
pub mod rules;
pub mod scan;

use diag::Violation;
use ratchet::Baseline;
use scan::FileScan;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The committed baseline file name, relative to the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";
/// The committed metric-name manifest, relative to the workspace root.
pub const MANIFEST_FILE: &str = "METRICS.json";

/// The outcome of one full workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation found, in path order.
    pub violations: Vec<Violation>,
    /// Violation count per rule (every registry rule present, 0 included).
    pub counts: BTreeMap<&'static str, usize>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Gate messages against `baseline`; empty means the gate passes.
    #[must_use]
    pub fn gate(&self, baseline: &Baseline) -> Vec<String> {
        baseline.gate(&self.counts, rules::RULE_NAMES)
    }

    /// The baseline that would make this report pass exactly.
    #[must_use]
    pub fn as_baseline(&self) -> Baseline {
        Baseline {
            counts: self
                .counts
                .iter()
                .map(|(rule, count)| ((*rule).to_string(), *count))
                .collect(),
        }
    }
}

/// Lists every Rust source file the lint covers: `crates/*/src/**/*.rs`,
/// sorted, workspace-relative with forward slashes. Integration-test and
/// vendor trees are deliberately out of scope.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn source_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut stack = vec![crates_dir];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                // Keep only files under a `src/` directory of some crate.
                let rel = path.strip_prefix(root).unwrap_or(&path);
                if rel.components().any(|c| c.as_os_str() == "src") {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for c in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&c.as_os_str().to_string_lossy());
    }
    s
}

/// Runs the full pass: scan every source file, apply every rule, check
/// the metric manifest.
///
/// # Errors
///
/// Propagates filesystem errors; a missing or malformed `METRICS.json`
/// is a violation, not an error.
pub fn run(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for rule in rules::RULE_NAMES {
        report.counts.insert(rule, 0);
    }
    let mut fragments = Vec::new();
    for path in source_files(root)? {
        let src = fs::read_to_string(&path)?;
        let scan = FileScan::parse(&relative_path(root, &path), &src);
        report.violations.extend(rules::check_file(&scan));
        fragments.extend(metrics::extract_fragments(&scan));
        report.files_scanned += 1;
    }
    match fs::read_to_string(root.join(MANIFEST_FILE)) {
        Ok(raw) => match metrics::Manifest::parse(&raw) {
            Ok(manifest) => report
                .violations
                .extend(metrics::check(&manifest, &fragments)),
            Err(why) => report.violations.push(Violation::new(
                MANIFEST_FILE,
                1,
                rules::METRIC_NAMES_RULE,
                why,
            )),
        },
        Err(_) => report.violations.push(Violation::new(
            MANIFEST_FILE,
            1,
            rules::METRIC_NAMES_RULE,
            "METRICS.json is missing — generate it with `asap metrics-manifest`".into(),
        )),
    }
    for v in &report.violations {
        *report.counts.entry(v.rule).or_insert(0) += 1;
    }
    Ok(report)
}

/// Loads the committed baseline from `root`.
///
/// # Errors
///
/// Returns a message when the file is missing or malformed.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    let raw = fs::read_to_string(&path)
        .map_err(|e| format!("{BASELINE_FILE}: {e} — run --update-baseline to create it"))?;
    Baseline::parse(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_two_up() {
        // The binary resolves the workspace root from its own manifest
        // dir; keep that assumption pinned here.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates/lint/src/lib.rs").exists());
    }

    #[test]
    fn source_walk_finds_this_file_and_skips_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = source_files(&root).unwrap();
        let rels: Vec<String> = files.iter().map(|p| relative_path(&root, p)).collect();
        assert!(
            rels.iter().any(|p| p == "crates/lint/src/lib.rs"),
            "{rels:?}"
        );
        assert!(rels.iter().all(|p| p.starts_with("crates/")));
        assert!(rels.iter().all(|p| !p.contains("vendor/")));
        // Sorted and stable, so diagnostics order is deterministic.
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted);
    }
}
