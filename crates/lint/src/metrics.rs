//! The metric-name stability rule: code and `METRICS.json` must agree.
//!
//! Every metric in this workspace is named by a string literal of the
//! shape `"{prefix}walks_total"` inside a `Collect` impl (see
//! ARCHITECTURE.md's naming scheme); the runtime composes prefixes
//! (`core{i}_`, `walk_`, `numa_`, …) dynamically. `METRICS.json` commits
//! the full names observed from live runs of all four backends.
//!
//! This module statically extracts the literal *fragments* from the code
//! and checks them against the manifest in both directions:
//!
//! * **manifest → code**: every manifest name (after normalising the
//!   per-core prefix) must end in some extracted leaf fragment —
//!   otherwise the manifest carries a name no code can emit any more;
//! * **code → manifest**: every leaf fragment must terminate at least one
//!   manifest name, and every sub-prefix fragment (ending in `_`) must
//!   occur inside at least one name — otherwise the code grew a metric
//!   the committed manifest has never seen (regenerate with
//!   `cargo run -p asap-bench --bin asap -- metrics-manifest`).
//!
//! Fragments may interpolate (`served_pl{depth}_{name}_total`); each
//! `{…}` hole matches any run of `[a-z0-9_]` characters, glob-style.

use crate::diag::Violation;
use crate::rules::METRIC_NAMES_RULE;
use crate::scan::FileScan;

/// The marker every metric-name literal starts with.
const PREFIX_HOLE: &str = "{prefix}";

/// One extracted fragment with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Workspace-relative path of the literal.
    pub path: String,
    /// 1-based line of the literal.
    pub line: usize,
    /// The fragment text after `{prefix}` (may contain `{…}` holes).
    pub text: String,
    /// Whether this is a sub-prefix fragment (ends in `_`) rather than a
    /// complete metric-name tail.
    pub is_prefix: bool,
}

/// Extracts metric-name fragments from one scanned file: every
/// non-test string literal starting with `{prefix}`.
#[must_use]
pub fn extract_fragments(scan: &FileScan) -> Vec<Fragment> {
    let mut out = Vec::new();
    for lit in &scan.strings {
        if scan.in_test(lit.offset) {
            continue;
        }
        let Some(rest) = lit.value.strip_prefix(PREFIX_HOLE) else {
            continue;
        };
        if rest.is_empty() {
            continue; // a bare "{prefix}" passthrough composes nothing
        }
        out.push(Fragment {
            path: scan.path.clone(),
            line: scan.line_of(lit.offset),
            text: rest.to_string(),
            is_prefix: rest.ends_with('_') && !rest.ends_with("_total"),
        });
    }
    out
}

/// The committed manifest: the sorted full metric names live runs emit.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Every name, in file order.
    pub names: Vec<String>,
    raw: String,
}

impl Manifest {
    /// Parses `METRICS.json` — a JSON array of strings. The reader is a
    /// hand-rolled subset: it collects every double-quoted string in the
    /// file (the manifest generator never emits escapes).
    ///
    /// # Errors
    ///
    /// Returns a message if the file holds no names.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let mut names = Vec::new();
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'"' {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                names.push(raw[start..j].to_string());
                i = j + 1;
            } else {
                i += 1;
            }
        }
        if names.is_empty() {
            return Err("METRICS.json contains no metric names".into());
        }
        Ok(Self {
            names,
            raw: raw.to_string(),
        })
    }

    /// Renders the canonical manifest for a sorted, deduplicated name set.
    #[must_use]
    pub fn render(names: &[String]) -> String {
        let mut sorted: Vec<&String> = names.iter().collect();
        sorted.sort();
        sorted.dedup();
        let mut out = String::from("[\n");
        for (i, name) in sorted.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(name);
            out.push('"');
            if i + 1 != sorted.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// 1-based line of a name inside the raw manifest text (for
    /// diagnostics that anchor into `METRICS.json`).
    #[must_use]
    pub fn line_of(&self, name: &str) -> usize {
        let needle = format!("\"{name}\"");
        match self.raw.find(&needle) {
            Some(at) => self.raw[..at].bytes().filter(|&b| b == b'\n').count() + 1,
            None => 1,
        }
    }
}

/// Strips a `core<digits>_` per-core prefix, the one composition level the
/// driver builds outside any `Collect` impl (`observe.rs`).
#[must_use]
pub fn normalize(name: &str) -> &str {
    if let Some(rest) = name.strip_prefix("core") {
        let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            if let Some(tail) = rest[digits..].strip_prefix('_') {
                return tail;
            }
        }
    }
    name
}

/// Glob match: `{…}` holes match any (possibly empty) run of
/// `[a-z0-9_]`; everything else is literal.
#[must_use]
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let parts = split_holes(pattern);
    match_parts(&parts, text, true, true)
}

/// Whether some suffix of `text` glob-matches `pattern`.
#[must_use]
pub fn glob_matches_suffix(pattern: &str, text: &str) -> bool {
    (0..=text.len()).any(|i| text.is_char_boundary(i) && glob_match(pattern, &text[i..]))
}

/// Whether some substring of `text` glob-matches `pattern`.
#[must_use]
pub fn glob_matches_infix(pattern: &str, text: &str) -> bool {
    let parts = split_holes(pattern);
    (0..=text.len()).any(|i| match_parts(&parts, &text[i..], true, false))
}

fn split_holes(pattern: &str) -> Vec<Option<String>> {
    // None = a `{…}` hole; Some(lit) = a literal segment.
    let mut parts = Vec::new();
    let mut rest = pattern;
    while let Some(open) = rest.find('{') {
        if open > 0 {
            parts.push(Some(rest[..open].to_string()));
        }
        match rest[open..].find('}') {
            Some(close) => {
                parts.push(None);
                rest = &rest[open + close + 1..];
            }
            None => {
                parts.push(Some(rest[open..].to_string()));
                rest = "";
            }
        }
    }
    if !rest.is_empty() {
        parts.push(Some(rest.to_string()));
    }
    parts
}

fn match_parts(parts: &[Option<String>], text: &str, anchor_start: bool, anchor_end: bool) -> bool {
    match parts {
        [] => !anchor_end || text.is_empty(),
        [Some(lit), rest @ ..] => {
            if anchor_start {
                match text.strip_prefix(lit.as_str()) {
                    Some(tail) => match_parts(rest, tail, true, anchor_end),
                    None => false,
                }
            } else {
                // After a hole: the hole eats `[a-z0-9_]*`, so try every
                // split point within that character class.
                let mut limit = 0;
                for b in text.bytes() {
                    if b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' {
                        limit += 1;
                    } else {
                        break;
                    }
                }
                (0..=limit).any(|i| match_parts(parts, &text[i..], true, anchor_end))
            }
        }
        [None, rest @ ..] => match_parts(rest, text, false, anchor_end),
    }
}

/// Runs the bidirectional check, producing `metric-names` violations.
#[must_use]
pub fn check(manifest: &Manifest, fragments: &[Fragment]) -> Vec<Violation> {
    let mut out = Vec::new();
    let leaves: Vec<&Fragment> = fragments.iter().filter(|f| !f.is_prefix).collect();
    let prefixes: Vec<&Fragment> = fragments.iter().filter(|f| f.is_prefix).collect();

    // manifest → code: every name must end in some leaf fragment.
    for name in &manifest.names {
        let tail = normalize(name);
        if !leaves.iter().any(|f| glob_matches_suffix(&f.text, tail)) {
            out.push(Violation::new(
                "METRICS.json",
                manifest.line_of(name),
                METRIC_NAMES_RULE,
                format!(
                    "manifest name `{name}` matches no metric literal in the code — \
                     regenerate the manifest (asap metrics-manifest)"
                ),
            ));
        }
    }

    // code → manifest: every leaf must finish a name, every sub-prefix
    // must occur inside one.
    for f in &leaves {
        if !manifest
            .names
            .iter()
            .any(|n| glob_matches_suffix(&f.text, normalize(n)))
        {
            out.push(Violation::new(
                &f.path,
                f.line,
                METRIC_NAMES_RULE,
                format!(
                    "metric fragment `{{prefix}}{}` appears in no committed manifest name — \
                     regenerate METRICS.json (asap metrics-manifest)",
                    f.text
                ),
            ));
        }
    }
    for f in &prefixes {
        if !manifest
            .names
            .iter()
            .any(|n| glob_matches_infix(&f.text, normalize(n)))
        {
            out.push(Violation::new(
                &f.path,
                f.line,
                METRIC_NAMES_RULE,
                format!(
                    "metric sub-prefix `{{prefix}}{}` occurs in no committed manifest name — \
                     regenerate METRICS.json (asap metrics-manifest)",
                    f.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_literals() {
        assert!(glob_match("walks_total", "walks_total"));
        assert!(!glob_match("walks_total", "walks_tot"));
        assert!(!glob_match("walks_total", "xwalks_total"));
    }

    #[test]
    fn glob_holes() {
        assert!(glob_match(
            "served_pl{depth}_{name}_total",
            "served_pl4_pwc_total"
        ));
        assert!(glob_match(
            "served_pl{depth}_{name}_total",
            "served_pl5_dram_row_total"
        ));
        assert!(!glob_match("served_pl{depth}_{name}_total", "served_total"));
    }

    #[test]
    fn suffix_and_infix() {
        assert!(glob_matches_suffix("hits_total", "tlb_l2_hits_total"));
        assert!(!glob_matches_suffix("hits_total", "hits_total_ratio"));
        assert!(glob_matches_infix("{level}_", "l1_hits_total"));
        assert!(glob_matches_infix("tlb_l2_", "tlb_l2_fills_total"));
        assert!(!glob_matches_infix("victima_", "walks_total"));
    }

    #[test]
    fn normalize_strips_core_prefix_only() {
        assert_eq!(normalize("core12_walks_total"), "walks_total");
        assert_eq!(normalize("core_walks_total"), "core_walks_total");
        assert_eq!(normalize("walks_total"), "walks_total");
    }

    #[test]
    fn manifest_round_trip_and_lines() {
        let raw = Manifest::render(&["b_total".into(), "a_total".into(), "a_total".into()]);
        let m = Manifest::parse(&raw).unwrap();
        assert_eq!(m.names, vec!["a_total", "b_total"]);
        assert_eq!(m.line_of("a_total"), 2);
        assert_eq!(m.line_of("b_total"), 3);
    }

    #[test]
    fn bidirectional_check() {
        let m = Manifest::parse("[\"walks_total\", \"ghost_total\"]").unwrap();
        let frags = vec![
            Fragment {
                path: "crates/x/src/a.rs".into(),
                line: 3,
                text: "walks_total".into(),
                is_prefix: false,
            },
            Fragment {
                path: "crates/x/src/a.rs".into(),
                line: 9,
                text: "new_metric_total".into(),
                is_prefix: false,
            },
        ];
        let v = check(&m, &frags);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|v| v.path == "METRICS.json" && v.message.contains("ghost_total")));
        assert!(v
            .iter()
            .any(|v| v.line == 9 && v.message.contains("new_metric_total")));
    }

    #[test]
    fn extraction_skips_tests_and_bare_prefix() {
        let src = r##"
fn collect(prefix: &str) {
    out.counter(format!("{prefix}walks_total"), "h", 1);
    inner.collect(&format!("{prefix}walk_"), out);
    passthrough.collect(&format!("{prefix}"), out);
}
#[cfg(test)]
mod tests {
    fn t() { assert_eq!(name, format!("{prefix}fake_total")); }
}
"##;
        let scan = FileScan::parse("crates/x/src/a.rs", src);
        let frags = extract_fragments(&scan);
        assert_eq!(frags.len(), 2, "{frags:?}");
        assert_eq!(frags[0].text, "walks_total");
        assert!(!frags[0].is_prefix);
        assert_eq!(frags[1].text, "walk_");
        assert!(frags[1].is_prefix);
    }
}
