//! The self-test `ci.sh` leans on: the workspace must lint clean at the
//! committed baseline, the committed artifacts must parse, and the
//! structural inputs the rules key on (hot-path fences, metric
//! fragments) must actually exist — a scanner that silently found no
//! fences would otherwise pass every rule vacuously.

use asap_lint::ratchet::Baseline;
use asap_lint::scan::FileScan;
use asap_lint::{load_baseline, metrics, run, scan, source_files, BASELINE_FILE};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_clean_at_committed_baseline() {
    let root = workspace_root();
    let report = run(&root).unwrap();
    let baseline = load_baseline(&root).unwrap();
    let errors = report.gate(&baseline);
    let details: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        errors.is_empty(),
        "lint gate failed:\n{}\nviolations:\n{}",
        errors.join("\n"),
        details.join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}

#[test]
fn committed_baseline_is_canonical() {
    // Hand-edited budgets must not drift from the renderer's format, or
    // `--update-baseline` diffs would mix formatting and budget changes.
    let root = workspace_root();
    let raw = std::fs::read_to_string(root.join(BASELINE_FILE)).unwrap();
    let parsed = Baseline::parse(&raw).unwrap();
    assert_eq!(raw, parsed.render(), "run --update-baseline to normalize");
}

#[test]
fn workspace_declares_hot_path_fences() {
    let root = workspace_root();
    let mut fences = 0;
    let mut fenced_files = Vec::new();
    for path in source_files(&root).unwrap() {
        let src = std::fs::read_to_string(&path).unwrap();
        let s = FileScan::parse(&path.to_string_lossy(), &src);
        if !s.hot_path.is_empty() {
            fences += s.hot_path.len();
            fenced_files.push(path);
        }
    }
    // The inner translation loop is fenced end to end: the flat-mirror
    // walk, the MMU engine step, the event-queue scheduler, the driver
    // step, and the shared memory fabric.
    assert!(
        fences >= 7,
        "expected the hot translation path to stay fenced, found {fences} in {fenced_files:?}"
    );
}

#[test]
fn workspace_metric_fragments_cover_every_namespace() {
    let root = workspace_root();
    let mut fragments = Vec::new();
    for path in source_files(&root).unwrap() {
        let src = std::fs::read_to_string(&path).unwrap();
        let s = FileScan::parse(&path.to_string_lossy(), &src);
        fragments.extend(metrics::extract_fragments(&s));
    }
    let prefixes: Vec<&str> = fragments
        .iter()
        .filter(|f| f.is_prefix)
        .map(|f| f.text.as_str())
        .collect();
    for expected in [
        "walk_",
        "tlb_l2_",
        "host_",
        "numa_",
        "victima_",
        "revelator_",
    ] {
        assert!(
            prefixes.contains(&expected),
            "metric sub-prefix {expected} no longer extracted (got {prefixes:?})"
        );
    }
    assert!(fragments.iter().any(|f| !f.is_prefix), "no leaf fragments");
}

#[test]
fn fence_and_allow_markers_use_the_canonical_spelling() {
    // The scanner matches directives byte-for-byte; a typo like
    // `asap-lint:hot-path` (no space) would silently fence nothing.
    // Guard the canonical spellings the docs advertise.
    assert_eq!(scan::HOT_PATH_FENCE, "asap-lint: hot-path");
    assert_eq!(scan::ALLOW_PREFIX, "asap-lint: allow(");
}
