//! Golden tests: every fixture under `tests/fixtures/` is scanned and the
//! violations found must be exactly the lines tagged `VIOLATION(rule)` —
//! one expected violation per tagged line, zero anywhere else. The
//! fixtures deliberately bait each rule's false-positive traps (strings,
//! comments, doc examples, `#[cfg(test)]` bodies, allow directives), so
//! a scanner regression shows up as either a missing or a spurious line.

use asap_lint::rules::check_file;
use asap_lint::scan::FileScan;
use std::path::Path;

/// `(line, rule)` pairs a fixture declares via `VIOLATION(rule)` tags.
fn expected(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(at) = line.find("VIOLATION(") {
            let rest = &line[at + "VIOLATION(".len()..];
            let rule = rest.split(')').next().unwrap_or("").to_string();
            out.push((idx + 1, rule));
        }
    }
    out
}

fn check_fixture(name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    let scan = FileScan::parse(&format!("crates/x/src/{name}"), &src);
    let got: Vec<(usize, String)> = check_file(&scan)
        .into_iter()
        .map(|v| (v.line, v.rule.to_string()))
        .collect();
    assert_eq!(
        got,
        expected(&src),
        "fixture {name}: found violations (left) != tagged lines (right)"
    );
}

#[test]
fn determinism_map_fixture() {
    check_fixture("det_map_bad.rs");
}

#[test]
fn determinism_time_fixture() {
    check_fixture("det_time_bad.rs");
}

#[test]
fn hot_path_fixture() {
    check_fixture("hot_path_bad.rs");
}

#[test]
fn panic_freedom_fixture() {
    check_fixture("panic_bad.rs");
}

#[test]
fn clean_fixture_is_silent() {
    check_fixture("clean.rs");
}

#[test]
fn every_fixture_is_covered() {
    // A fixture added without a golden test would silently assert nothing.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "clean.rs",
            "det_map_bad.rs",
            "det_time_bad.rs",
            "hot_path_bad.rs",
            "panic_bad.rs",
        ]
    );
}
