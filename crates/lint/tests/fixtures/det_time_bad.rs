//! Fixture: determinism-time violations. Wall clocks and ambient entropy
//! make simulation results depend on the host, not the seed.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now() // VIOLATION(determinism-time)
}

pub fn epoch() -> u64 {
    let t = std::time::SystemTime::now(); // VIOLATION(determinism-time)
    drop(t);
    0
}

pub fn roll() -> u64 {
    // thread_rng would seed from the OS — this comment must not fire.
    let mut rng = rand::thread_rng(); // VIOLATION(determinism-time)
    rng.gen()
}

pub fn profiled() -> Instant {
    // asap-lint: allow(determinism-time) — self-profile wall clock
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_freely() {
        let _ = std::time::Instant::now();
    }
}
