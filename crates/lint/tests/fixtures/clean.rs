//! Fixture: a fully clean file — every rule must stay silent, including
//! on the raw string, char literals and lifetimes below.

use asap_types::FastMap;

pub struct Counter<'a> {
    counts: FastMap<u64, u64>,
    label: &'a str,
}

impl<'a> Counter<'a> {
    pub fn bump(&mut self, key: u64) -> Result<(), &'static str> {
        let slot = self.counts.entry(key).or_insert(0);
        *slot = slot.checked_add(1).ok_or("counter overflow")?;
        Ok(())
    }

    pub fn describe(&self) -> String {
        let marker = '#';
        let newline = '\n';
        let raw = r#"a "quoted" HashMap mention, safely in a raw string"#;
        let mut s = String::from(self.label);
        s.push(marker);
        s.push(newline);
        s.push_str(raw);
        s
    }
}
