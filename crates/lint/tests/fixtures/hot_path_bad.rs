//! Fixture: hot-path allocation-freedom violations. Only fenced bodies
//! are policed — cold code may allocate freely.

pub fn cold_setup() -> Vec<u64> {
    let mut v = Vec::new(); // unfenced: must not fire
    v.push(1);
    v
}

// asap-lint: hot-path
pub fn hot_translate(x: u64) -> u64 {
    let v = Vec::new(); // VIOLATION(hot-path-alloc)
    let w = vec![x]; // VIOLATION(hot-path-alloc)
    let c: Vec<u64> = w.iter().map(|y| y + 1).collect(); // VIOLATION(hot-path-alloc)
    let b = Box::new(x); // VIOLATION(hot-path-alloc)
    let s = format!("{x}"); // VIOLATION(hot-path-alloc)
    let t = String::from("y"); // VIOLATION(hot-path-alloc)
    drop((v, c, s, t));
    *b
}

// The fence covers exactly one block: this next function is cold again.
pub fn cold_again() -> String {
    format!("fine out here")
}
