//! Fixture: panic-freedom violations. Library code returns errors;
//! only tests may unwrap.

pub fn first(v: &[u64]) -> u64 {
    *v.first().unwrap() // VIOLATION(panic-freedom)
}

pub fn must(v: Option<u64>) -> u64 {
    v.expect("present") // VIOLATION(panic-freedom)
}

pub fn never(flag: bool) {
    if flag {
        panic!("boom"); // VIOLATION(panic-freedom)
    }
}

pub fn unwrap_or_is_fine(v: Option<u64>) -> u64 {
    // `.unwrap()` in a comment must not fire, nor the string below.
    let _ = "call .unwrap() responsibly";
    v.unwrap_or(0)
}

pub fn checked(v: &[u64]) -> u64 {
    // asap-lint: allow(panic-freedom) — invariant: caller checked non-empty
    *v.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
