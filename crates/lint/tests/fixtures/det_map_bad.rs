//! Fixture: determinism-map violations — and the false-positive traps
//! (strings, comments, doc examples, cfg(test)) that must NOT fire.
//! Never compiled; scanned by tests/golden.rs, which expects exactly one
//! violation of the named rule on every tagged line.

use std::collections::HashMap; // VIOLATION(determinism-map)

/// Doc comments may say `HashMap` freely:
///
/// ```
/// let m = std::collections::HashMap::new(); // doc example, masked
/// ```
pub struct Book {
    index: HashMap<u64, u64>, // VIOLATION(determinism-map)
    title: &'static str,
}

pub fn describe() -> &'static str {
    // A HashSet would be nondeterministic — this comment must not fire.
    "uses a HashMap internally" // string literal must not fire
}

// asap-lint: allow(determinism-map) — justified single-site escape
pub type Legacy = std::collections::HashSet<u64>;

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_hash_freely() {
        let mut s: HashSet<u64> = HashSet::new();
        s.insert(1);
    }
}
