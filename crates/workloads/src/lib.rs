//! Synthetic workload generators for the ASAP reproduction.
//!
//! The paper evaluates seven applications (Table 3): `mcf` (SPEC'06),
//! `canneal` (PARSEC), `bfs`/`pagerank` (60 GB Twitter-like graphs on
//! Galois), `memcached` with 80 GB and 400 GB datasets, and `redis` (50 GB
//! YCSB). Their traces are unavailable, so this crate generates address
//! streams with the properties that matter to translation behaviour —
//! footprint, VMA shape (Table 2), temporal locality (the L2 TLB miss
//! ratios of §4), PT-page scatter (Table 2's contiguous-region counts) and
//! data-page contiguity (Table 7) — as first-class, documented parameters:
//!
//! * [`UniformStream`] — uniform random pages (memcached's random GETs);
//! * [`ZipfStream`] — Zipfian item popularity (redis under YCSB);
//! * [`PointerChaseStream`] — hot-set + cold pointer chasing (mcf,
//!   canneal);
//! * [`GraphStream`] — power-law graph traversal in BFS or PageRank mode;
//! * [`CoRunner`] — the §4 SMT co-runner ("one request to a random address
//!   for each memory access by the application thread").
//!
//! [`WorkloadSpec::paper_suite`] returns all seven calibrated presets.
//!
//! # Examples
//!
//! ```
//! use asap_os::AsapOsConfig;
//! use asap_workloads::{AccessStream, WorkloadSpec};
//!
//! let spec = WorkloadSpec::mcf();
//! let process = spec.build_process(asap_types::Asid(1), AsapOsConfig::disabled(), 7);
//! let mut stream = spec.build_stream(&process, 7);
//! let va = stream.next_va();
//! assert!(process.vmas().find(va).is_some(), "streams stay inside the VMAs");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corunner;
mod graph;
mod pointer_chase;
mod spec;
mod stream;
mod uniform;
mod zipf;

pub use corunner::CoRunner;
pub use graph::{GraphMode, GraphStream};
pub use pointer_chase::PointerChaseStream;
pub use spec::{PatternKind, WorkloadSpec};
pub use stream::{AccessStream, BoxedStream};
pub use uniform::UniformStream;
pub use zipf::{Zipf, ZipfStream};
