//! The access-stream abstraction.

use asap_types::VirtAddr;

/// A deterministic generator of virtual addresses — one application's
/// memory reference stream as seen by the MMU.
///
/// Streams are infinite: simulations decide how many references to draw
/// (warmup + measurement windows).
pub trait AccessStream {
    /// The next memory reference.
    fn next_va(&mut self) -> VirtAddr;

    /// A short label for reports.
    fn name(&self) -> &'static str;
}

/// A boxed stream, as produced by workload factories.
pub type BoxedStream = Box<dyn AccessStream + Send>;

impl AccessStream for BoxedStream {
    fn next_va(&mut self) -> VirtAddr {
        (**self).next_va()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The ranges a stream draws addresses from: the process' large data VMAs
/// with proportional weights.
#[derive(Debug, Clone, Default)]
pub struct Ranges {
    pub(crate) spans: Vec<(u64, u64)>, // (start, len_bytes)
    total: u64,
}

impl Ranges {
    /// Builds from (start, len) pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty or any span has zero length.
    #[must_use]
    pub fn new(spans: Vec<(u64, u64)>) -> Self {
        assert!(!spans.is_empty(), "a stream needs at least one range");
        assert!(spans.iter().all(|(_, l)| *l > 0), "zero-length range");
        let total = spans.iter().map(|(_, l)| l).sum();
        Self { spans, total }
    }

    /// Total bytes across all ranges.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Total 4 KiB pages.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total / asap_types::PAGE_SIZE
    }

    /// Maps a global page index in `[0, total_pages)` to a virtual address
    /// (page base).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn page(&self, index: u64) -> VirtAddr {
        let mut remaining = index;
        for (start, len) in &self.spans {
            let pages = len / asap_types::PAGE_SIZE;
            if remaining < pages {
                return VirtAddr::new_unchecked(start + remaining * asap_types::PAGE_SIZE);
            }
            remaining -= pages;
        }
        panic!("page index {index} out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_indexing_spans_ranges() {
        let r = Ranges::new(vec![(0x10000, 2 * 4096), (0x90000, 4096)]);
        assert_eq!(r.total_pages(), 3);
        assert_eq!(r.page(0).raw(), 0x10000);
        assert_eq!(r.page(1).raw(), 0x11000);
        assert_eq!(r.page(2).raw(), 0x90000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_page_panics() {
        let r = Ranges::new(vec![(0x10000, 4096)]);
        let _ = r.page(1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ranges_rejected() {
        let _ = Ranges::new(vec![]);
    }
}
