//! Calibrated presets for the paper's seven workloads (Tables 2, 3, 7).

use crate::stream::Ranges;
use crate::{BoxedStream, GraphMode, GraphStream, PointerChaseStream, UniformStream, ZipfStream};
use asap_os::{AsapOsConfig, Process, ProcessConfig, ProcessLayout, VmaKind, VmaSpec};
use asap_types::{Asid, ByteSize};

/// The reference pattern a workload generates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternKind {
    /// Uniform random pages (memcached).
    Uniform {
        /// Fraction of the dataset actually touched.
        hot_fraction: f64,
        /// Mean sequential run in pages (multi-page values).
        seq_run: u64,
    },
    /// Zipfian popularity (redis/YCSB).
    Zipfian {
        /// Skew exponent (YCSB ≈ 0.99).
        s: f64,
    },
    /// Hot-set pointer chasing (mcf, canneal).
    PointerChase {
        /// Probability of revisiting a recent page.
        reuse: f64,
        /// Hot-stack capacity in pages.
        capacity: usize,
        /// Mean sequential scan after a cold jump, in pages.
        scan_mean: u64,
    },
    /// Implicit power-law graph traversal (bfs, pagerank).
    Graph(GraphMode),
}

/// One workload: footprint, VMA shape and locality knobs, all traceable to
/// a paper table (see DESIGN.md's calibration section).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as in the paper's figures.
    pub name: &'static str,
    /// Dataset footprint (Table 3).
    pub footprint: ByteSize,
    /// Number of large VMAs holding the dataset (Table 2, "VMAs for 99%
    /// footprint coverage").
    pub big_vmas: usize,
    /// Number of library mappings, chosen so text + libs + stack + big VMAs
    /// equals Table 2's "Total VMAs".
    pub libs: usize,
    /// The access pattern.
    pub pattern: PatternKind,
    /// Mean physical run length of scattered PT pages (Table 2: PT pages /
    /// contiguous regions).
    pub pt_scatter_run: f64,
    /// Fraction of 8-page groups that are physically clusterable,
    /// calibrated against Table 7's clustered-TLB MPKI reductions.
    pub data_cluster_fraction: f64,
}

impl WorkloadSpec {
    /// SPEC'06 `mcf` (ref input): ~1.7 GB, pointer chasing with a sizeable
    /// hot set. Table 2 row: 16 VMAs, 1 for 99%, 626 regions / 3189 pages.
    #[must_use]
    pub fn mcf() -> Self {
        Self {
            name: "mcf",
            footprint: ByteSize::mib(1700),
            big_vmas: 1,
            libs: 13,
            pattern: PatternKind::PointerChase {
                reuse: 0.88,
                capacity: 768,
                scan_mean: 16,
            },
            pt_scatter_run: 5.1,
            data_cluster_fraction: 0.75,
        }
    }

    /// PARSEC `canneal` (native input): ~0.9 GB, random pointer chasing.
    /// Table 2: 18 VMAs, 4 for 99%, 487 regions / 2842 pages.
    #[must_use]
    pub fn canneal() -> Self {
        Self {
            name: "canneal",
            footprint: ByteSize::mib(900),
            big_vmas: 4,
            libs: 12,
            pattern: PatternKind::PointerChase {
                reuse: 0.82,
                capacity: 384,
                scan_mean: 6,
            },
            pt_scatter_run: 5.8,
            data_cluster_fraction: 0.62,
        }
    }

    /// Breadth-first search, 60 GB Twitter-like graph.
    /// Table 2: 14 VMAs, 1 for 99%, 4285 regions / 66015 pages.
    #[must_use]
    pub fn bfs() -> Self {
        Self {
            name: "bfs",
            footprint: ByteSize::gib(60),
            big_vmas: 1,
            libs: 11,
            pattern: PatternKind::Graph(GraphMode::Bfs),
            pt_scatter_run: 15.4,
            data_cluster_fraction: 0.13,
        }
    }

    /// PageRank, 60 GB Twitter-like graph.
    /// Table 2: 18 VMAs, 1 for 99%, 2076 regions / 38504 pages.
    #[must_use]
    pub fn pagerank() -> Self {
        Self {
            name: "pagerank",
            footprint: ByteSize::gib(60),
            big_vmas: 1,
            libs: 15,
            pattern: PatternKind::Graph(GraphMode::PageRank),
            pt_scatter_run: 18.5,
            data_cluster_fraction: 0.21,
        }
    }

    /// Memcached with an 80 GB dataset, uniform GETs.
    /// Table 2: 26 VMAs, 6 for 99%, 1976 regions / 45878 pages.
    #[must_use]
    pub fn mc80() -> Self {
        Self {
            name: "mc80",
            footprint: ByteSize::gib(80),
            big_vmas: 6,
            libs: 18,
            pattern: PatternKind::Uniform {
                hot_fraction: 1.0,
                seq_run: 4,
            },
            pt_scatter_run: 23.2,
            data_cluster_fraction: 0.05,
        }
    }

    /// Memcached with a 400 GB dataset.
    /// Table 2: 33 VMAs, 13 for 99%, 5376 regions / 213097 pages.
    #[must_use]
    pub fn mc400() -> Self {
        Self {
            name: "mc400",
            footprint: ByteSize::gib(400),
            big_vmas: 13,
            libs: 18,
            pattern: PatternKind::Uniform {
                hot_fraction: 1.0,
                seq_run: 4,
            },
            pt_scatter_run: 39.6,
            data_cluster_fraction: 0.11,
        }
    }

    /// The memory-intensive SMT co-runner as an **ordinary schedulable
    /// workload**: uniform random touches over a 32 GiB dataset (§4's
    /// "one request to a random address per application access"). On a
    /// multi-core machine the colocated neighbor runs this preset on its
    /// own core — contending for the shared fabric with real TLB misses
    /// and walks — instead of injecting raw cache lines out of band.
    #[must_use]
    pub fn corunner() -> Self {
        Self {
            name: "corunner",
            footprint: ByteSize::gib(32),
            big_vmas: 1,
            libs: 0,
            pattern: PatternKind::Uniform {
                hot_fraction: 1.0,
                seq_run: 1,
            },
            pt_scatter_run: 23.2,
            data_cluster_fraction: 0.0,
        }
    }

    /// Redis with a 50 GB YCSB dataset, zipfian GETs.
    /// Table 2: 7 VMAs, 1 for 99%, 3555 regions / 44171 pages.
    #[must_use]
    pub fn redis() -> Self {
        Self {
            name: "redis",
            footprint: ByteSize::gib(50),
            big_vmas: 1,
            libs: 4,
            pattern: PatternKind::Zipfian { s: 0.99 },
            pt_scatter_run: 12.4,
            data_cluster_fraction: 0.15,
        }
    }

    /// All seven workloads in the paper's figure order.
    #[must_use]
    pub fn paper_suite() -> Vec<Self> {
        vec![
            Self::mcf(),
            Self::canneal(),
            Self::bfs(),
            Self::pagerank(),
            Self::mc80(),
            Self::mc400(),
            Self::redis(),
        ]
    }

    /// The suite used by figures that exclude `mc400` (e.g. Fig. 2).
    #[must_use]
    pub fn paper_suite_no_mc400() -> Vec<Self> {
        Self::paper_suite()
            .into_iter()
            .filter(|w| w.name != "mc400")
            .collect()
    }

    /// Looks up a preset by its paper name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::paper_suite().into_iter().find(|w| w.name == name)
    }

    /// The process layout this workload implies: text, `libs` libraries, a
    /// stack, and the dataset split evenly across `big_vmas` regions (the
    /// first as heap, the rest as mmaps — the shapes Table 2 reports).
    #[must_use]
    pub fn layout(&self) -> ProcessLayout {
        let share = self.footprint.bytes() / self.big_vmas as u64;
        let mut layout = ProcessLayout::new();
        layout.push(VmaSpec::new(VmaKind::Text, ByteSize::mib(2)));
        for _ in 0..self.libs {
            layout.push(VmaSpec::new(VmaKind::Library, ByteSize::mib(2)));
        }
        layout.push(VmaSpec::new(VmaKind::Stack, ByteSize::mib(8)));
        layout.push(VmaSpec::new(VmaKind::Heap, ByteSize(share)));
        for _ in 1..self.big_vmas {
            layout.push(VmaSpec::new(VmaKind::Mmap, ByteSize(share)));
        }
        layout
    }

    /// Builds the process configuration for this workload.
    #[must_use]
    pub fn process_config(&self, asid: Asid, asap: AsapOsConfig, seed: u64) -> ProcessConfig {
        ProcessConfig::new(asid)
            .with_layout(self.layout())
            .with_asap(asap)
            .with_pt_scatter_run(self.pt_scatter_run)
            .with_data_cluster_fraction(self.data_cluster_fraction)
            .with_seed(seed)
    }

    /// Builds the process directly (native execution).
    #[must_use]
    pub fn build_process(&self, asid: Asid, asap: AsapOsConfig, seed: u64) -> Process {
        Process::new(self.process_config(asid, asap, seed))
    }

    /// The dataset ranges of a built process (its big VMAs).
    #[must_use]
    pub fn dataset_ranges(&self, process: &Process) -> Ranges {
        let spans: Vec<(u64, u64)> = process
            .vmas()
            .iter()
            .filter(|v| matches!(v.kind(), VmaKind::Heap | VmaKind::Mmap))
            .map(|v| (v.start().raw(), v.len()))
            .collect();
        Ranges::new(spans)
    }

    /// Builds this workload's access stream over a built process.
    #[must_use]
    pub fn build_stream(&self, process: &Process, seed: u64) -> BoxedStream {
        let ranges = self.dataset_ranges(process);
        match self.pattern {
            PatternKind::Uniform {
                hot_fraction,
                seq_run,
            } => Box::new(UniformStream::new(ranges, hot_fraction, seq_run, seed)),
            PatternKind::Zipfian { s } => Box::new(ZipfStream::new(ranges, s, seed)),
            PatternKind::PointerChase {
                reuse,
                capacity,
                scan_mean,
            } => Box::new(PointerChaseStream::new(
                ranges, reuse, capacity, scan_mean, seed,
            )),
            PatternKind::Graph(mode) => Box::new(GraphStream::new(ranges, mode, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessStream;

    #[test]
    fn suite_has_seven_workloads() {
        let suite = WorkloadSpec::paper_suite();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["mcf", "canneal", "bfs", "pagerank", "mc80", "mc400", "redis"]
        );
        assert_eq!(WorkloadSpec::paper_suite_no_mc400().len(), 6);
        assert!(WorkloadSpec::by_name("redis").is_some());
        assert!(WorkloadSpec::by_name("nope").is_none());
    }

    #[test]
    fn vma_counts_match_table2() {
        // Total VMAs = text + libs + stack + big VMAs.
        let expect = [
            ("mcf", 16),
            ("canneal", 18),
            ("bfs", 14),
            ("pagerank", 18),
            ("mc80", 26),
            ("mc400", 33),
            ("redis", 7),
        ];
        for (name, total) in expect {
            let w = WorkloadSpec::by_name(name).unwrap();
            assert_eq!(
                2 + w.libs + w.big_vmas,
                total,
                "{name}: total VMA count vs Table 2"
            );
        }
    }

    #[test]
    fn built_process_matches_table2_shape() {
        let w = WorkloadSpec::mc80();
        let p = w.build_process(Asid(1), AsapOsConfig::disabled(), 3);
        assert_eq!(p.vmas().len(), 26);
        // 99% coverage needs ~the big VMAs (size ties can round off one).
        let cover = p.vmas().vmas_covering(0.99);
        assert!((5..=7).contains(&cover), "coverage = {cover}");
        // Footprint within 1% of 80 GiB.
        let footprint = p.vmas().footprint().bytes() as f64;
        assert!((footprint / ByteSize::gib(80).bytes() as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn streams_stay_inside_dataset_vmas() {
        for w in WorkloadSpec::paper_suite() {
            // Shrink footprints so the test is fast but shapes hold.
            let small = WorkloadSpec {
                footprint: ByteSize::mib(64 * w.big_vmas as u64),
                ..w.clone()
            };
            let p = small.build_process(Asid(1), AsapOsConfig::disabled(), 5);
            let mut stream = small.build_stream(&p, 5);
            for _ in 0..500 {
                let va = stream.next_va();
                let vma = p
                    .vmas()
                    .find(va)
                    .unwrap_or_else(|| panic!("{}: {va} outside every VMA", small.name));
                assert!(
                    matches!(vma.kind(), VmaKind::Heap | VmaKind::Mmap),
                    "{}: stream escaped the dataset",
                    small.name
                );
            }
        }
    }

    #[test]
    fn scatter_runs_match_table2_ratios() {
        // pages/regions from Table 2, sanity-checking the preset constants.
        assert!((WorkloadSpec::mc80().pt_scatter_run - 45878.0 / 1976.0).abs() < 0.1);
        assert!((WorkloadSpec::mc400().pt_scatter_run - 213097.0 / 5376.0).abs() < 0.1);
        assert!((WorkloadSpec::redis().pt_scatter_run - 44171.0 / 3555.0).abs() < 0.1);
    }
}
