//! The SMT co-runner (§4 workload colocation).

use asap_os::PhysMap;
use asap_types::CacheLineAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The synthetic memory-intensive co-runner: "issues one request to a
/// random address for each memory access by the application thread" (§4).
///
/// Its accesses land in a dedicated physical window (it is a different
/// process) and thrash the shared cache hierarchy; per the paper's
/// methodology, TLB/PWC contention is *not* modelled, which makes ASAP
/// estimates conservative.
///
/// **Compat shim.** This out-of-band line injector survives only for
/// single-core `coloc` runs, whose statistics are pinned bit-identically
/// by the committed engine-parity goldens and smoke-tier
/// `BENCH_results.json`. Multi-core machines model the neighbor honestly
/// instead: [`WorkloadSpec::corunner`](crate::WorkloadSpec::corunner)
/// runs as an ordinary workload on its own core.
#[derive(Debug, Clone)]
pub struct CoRunner {
    footprint_lines: u64,
    burst: usize,
    rng: SmallRng,
}

impl CoRunner {
    /// Creates a co-runner with the given footprint and per-event burst.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is smaller than one cache line or the burst
    /// is zero.
    #[must_use]
    pub fn new(footprint_bytes: u64, burst: usize, seed: u64) -> Self {
        let footprint_lines = footprint_bytes / asap_types::CACHE_LINE_SIZE;
        assert!(footprint_lines > 0, "co-runner needs a footprint");
        assert!(burst > 0, "co-runner burst cannot be zero");
        Self {
            footprint_lines,
            burst,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A memory-intensive co-runner with a 32 GiB footprint. One driver
    /// "access" stands for one application *operation* (hundreds of
    /// instructions), so the sibling thread contributes a burst of line
    /// touches per operation — this calibrates the paper's §2.2 observation
    /// that colocation multiplies walk latency by ~2.7x.
    #[must_use]
    pub fn memory_intensive(seed: u64) -> Self {
        Self::new(32 << 30, 24, seed)
    }

    /// Lines injected per application operation. Drivers draw this many
    /// [`CoRunner::next_line`] calls per access instead of collecting a
    /// `Vec` — the burst is on the per-access hot path.
    #[must_use]
    pub fn burst(&self) -> usize {
        self.burst
    }

    /// The next single random line touched by the co-runner.
    pub fn next_line(&mut self) -> CacheLineAddr {
        let line = self.rng.gen_range(0..self.footprint_lines);
        CacheLineAddr::new(
            (PhysMap::corunner_base().base_addr().raw() >> asap_types::CACHE_LINE_SHIFT) + line,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_stay_in_corunner_window() {
        let mut c = CoRunner::memory_intensive(1);
        let base = PhysMap::corunner_base().base_addr().raw() >> 6;
        for _ in 0..1000 {
            let l = c.next_line().raw();
            assert!(l >= base);
            assert!(l < base + (32u64 << 30) / 64);
        }
    }

    #[test]
    fn spreads_widely() {
        let mut c = CoRunner::memory_intensive(2);
        let lines: std::collections::HashSet<u64> =
            (0..1000).map(|_| c.next_line().raw()).collect();
        assert!(lines.len() > 990, "collisions should be rare in 32 GiB");
    }
}
