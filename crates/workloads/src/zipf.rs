//! Zipfian access — redis under YCSB.

use crate::stream::Ranges;
use crate::AccessStream;
use asap_types::VirtAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Zipf(s) sampler over `1..=n` using rejection-inversion (Hörmann &
/// Derflinger), which needs O(1) memory — crucial because the paper's redis
/// dataset has ~12 million pages, far too many for a CDF table.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    dens: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s` (s ≠ 1 handled via
    /// the generalized harmonic integral; s=1 works through the log form).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "empty domain");
        assert!(s >= 0.0, "negative exponent");
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        Self {
            n,
            s,
            h_x1,
            h_n,
            dens: 1.0 / (h(n as f64 + 0.5) - h(1.5) + 1.0),
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.s)).powf(1.0 / (1.0 - self.s))
        }
    }

    /// Draws one rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let _ = self.dens;
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Acceptance test (standard rejection-inversion condition).
            let h_k = if (self.s - 1.0).abs() < 1e-9 {
                (k + 0.5).ln() - (k - 0.5).ln()
            } else {
                ((k + 0.5).powf(1.0 - self.s) - (k - 0.5).powf(1.0 - self.s)) / (1.0 - self.s)
            };
            if h_k >= k.powf(-self.s) * rng.gen::<f64>() {
                return k as u64;
            }
        }
    }

    /// Domain size.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// Zipfian page accesses: popularity rank is scrambled across the dataset
/// so hot pages are scattered in the virtual space (hash-distributed keys,
/// as in a real key-value store).
#[derive(Debug, Clone)]
pub struct ZipfStream {
    ranges: Ranges,
    zipf: Zipf,
    rng: SmallRng,
    scramble_key: u64,
}

impl ZipfStream {
    /// Creates a stream with exponent `s` (YCSB uses ≈ 0.99).
    #[must_use]
    pub fn new(ranges: Ranges, s: f64, seed: u64) -> Self {
        let pages = ranges.total_pages();
        Self {
            ranges,
            zipf: Zipf::new(pages, s),
            rng: SmallRng::seed_from_u64(seed),
            scramble_key: seed ^ 0x5CA4,
        }
    }
}

impl AccessStream for ZipfStream {
    fn next_va(&mut self) -> VirtAddr {
        let rank = self.zipf.sample(&mut self.rng) - 1;
        // Scramble rank -> page index so hot pages are spread out.
        let pages = self.ranges.total_pages();
        let mut x = rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.scramble_key;
        x ^= x >> 29;
        let page = x % pages;
        let offset = (rank.wrapping_mul(31)) % 64 * 64;
        VirtAddr::new_unchecked(self.ranges.page(page).raw() + offset)
    }

    fn name(&self) -> &'static str {
        "zipfian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_respects_domain() {
        let z = Zipf::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(z.sample(&mut rng)).or_default() += 1;
        }
        let top = counts.get(&1).copied().unwrap_or(0);
        let mid = counts.get(&500).copied().unwrap_or(0);
        assert!(
            top > 20 * mid.max(1),
            "rank 1 ({top}) must dominate rank 500 ({mid})"
        );
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u64; 11];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let f = count as f64 / 20_000.0;
            assert!((f - 0.1).abs() < 0.02, "rank {k}: {f}");
        }
    }

    #[test]
    fn large_domain_is_cheap() {
        // 12.5M pages (redis, 50 GB): must construct instantly.
        let z = Zipf::new(12_500_000, 0.99);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let _ = z.sample(&mut rng);
        }
    }

    #[test]
    fn stream_stays_in_ranges() {
        let ranges = Ranges::new(vec![(0x40_0000, 128 * 4096)]);
        let mut s = ZipfStream::new(ranges, 0.99, 5);
        for _ in 0..1000 {
            let va = s.next_va().raw();
            assert!((0x40_0000..0x40_0000 + 128 * 4096).contains(&va));
        }
    }

    #[test]
    fn stream_concentrates_on_few_pages() {
        let ranges = Ranges::new(vec![(0x40_0000, 4096 * 4096)]);
        let mut s = ZipfStream::new(ranges, 0.99, 6);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(s.next_va().raw() >> 12).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / 20_000.0 > 0.25,
            "top-10 pages should absorb >25% of a zipfian stream"
        );
    }
}
